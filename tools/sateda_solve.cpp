/// \file sateda_solve.cpp
/// \brief DIMACS command-line SAT solver.
///
/// Usage: sateda_solve [options] <file.cnf | ->
///   --preprocess          run the §4.1/§6 preprocessor first
///   --no-restarts         disable restarts
///   --no-learning         disable clause recording
///   --chronological       chronological backtracking
///   --proof <file>        write a DRAT refutation on UNSAT
///   --max-conflicts <n>   give up after n conflicts
///   --quiet               verdict only (exit code 10 SAT / 20 UNSAT)
///
/// Prints an s-line and v-lines in SAT-competition format.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cnf/dimacs.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--preprocess] [--no-restarts] [--no-learning] "
               "[--chronological] [--proof FILE] [--max-conflicts N] "
               "[--quiet] <file.cnf | ->\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sateda;
  std::string path;
  std::string proof_path;
  bool preprocess_first = false;
  bool quiet = false;
  sat::SolverOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--preprocess") {
      preprocess_first = true;
    } else if (arg == "--no-restarts") {
      opts.restarts = false;
    } else if (arg == "--no-learning") {
      opts.clause_learning = false;
    } else if (arg == "--chronological") {
      opts.backtrack = sat::BacktrackMode::kChronological;
    } else if (arg == "--proof" && i + 1 < argc) {
      proof_path = argv[++i];
    } else if (arg == "--max-conflicts" && i + 1 < argc) {
      opts.conflict_budget = std::atoll(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage(argv[0]);

  CnfFormula f;
  try {
    f = (path == "-") ? read_dimacs(std::cin) : read_dimacs_file(path);
  } catch (const DimacsError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!quiet) {
    std::printf("c sateda_solve: %d vars, %zu clauses\n", f.num_vars(),
                f.num_clauses());
  }

  sat::PreprocessResult pre;
  const CnfFormula* to_solve = &f;
  if (preprocess_first) {
    pre = sat::preprocess(f);
    if (pre.unsat) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (!quiet) std::printf("c preprocess: %s\n", pre.stats.summary().c_str());
    to_solve = &pre.simplified;
  }

  sat::Proof proof;
  sat::Solver solver(opts);
  if (!proof_path.empty()) solver.set_proof_logger(&proof);
  solver.add_formula(*to_solve);
  solver.ensure_var(f.num_vars() - 1);
  sat::SolveResult r = solver.solve();
  if (!quiet) std::printf("c %s\n", solver.stats().summary().c_str());

  switch (r) {
    case sat::SolveResult::kUnknown:
      std::printf("s UNKNOWN\n");
      return 0;
    case sat::SolveResult::kUnsat: {
      std::printf("s UNSATISFIABLE\n");
      if (!proof_path.empty() && !preprocess_first) {
        std::ofstream out(proof_path);
        proof.write_drat(out);
        if (!quiet) {
          std::printf("c DRAT proof (%zu steps) written to %s\n",
                      proof.steps().size(), proof_path.c_str());
        }
      } else if (!proof_path.empty()) {
        std::fprintf(stderr,
                     "warning: --proof covers the solver run only; it is "
                     "not emitted when --preprocess rewrote the formula\n");
      }
      return 20;
    }
    case sat::SolveResult::kSat: {
      std::printf("s SATISFIABLE\n");
      std::vector<lbool> model = solver.model();
      if (preprocess_first) model = pre.reconstruct_model(model);
      std::printf("v");
      for (Var v = 0; v < f.num_vars(); ++v) {
        lbool val = v < static_cast<Var>(model.size()) ? model[v] : l_undef;
        std::printf(" %d", val.is_false() ? -(v + 1) : (v + 1));
      }
      std::printf(" 0\n");
      // Self-check before claiming victory.
      std::vector<bool> bits(f.num_vars());
      for (Var v = 0; v < f.num_vars(); ++v) {
        bits[v] = v < static_cast<Var>(model.size()) && model[v].is_true();
      }
      if (!f.is_satisfied_by(bits)) {
        std::fprintf(stderr, "internal error: model check failed\n");
        return 1;
      }
      return 10;
    }
  }
  return 0;
}
