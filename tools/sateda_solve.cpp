/// \file sateda_solve.cpp
/// \brief DIMACS command-line SAT solver over the SatEngine interface.
///
/// Any registered backend can be selected with --engine; the parallel
/// portfolio additionally takes --threads.  Output follows the SAT
/// competition conventions: `c` comment lines, one `s` verdict line,
/// and (on SATISFIABLE) `v` literal lines, with exit code 10 for SAT,
/// 20 for UNSAT and 0 for UNKNOWN.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cnf/dimacs.hpp"
#include "common/cli.hpp"
#include "sat/core/mus.hpp"
#include "sat/cube/proc.hpp"
#include "sat/engine.hpp"
#include "sat/portfolio.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace {

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options] <file.cnf | ->\n"
      "\n"
      "Reads a DIMACS CNF file (or stdin with `-`) and decides it.\n"
      "\n"
      "engine selection:\n"
      "%s"
      "\n"
      "search options (cdcl and portfolio):\n"
      "  --no-restarts        disable restarts\n"
      "  --no-learning        disable clause recording\n"
      "  --chronological      chronological backtracking\n"
      "  --proof FILE         write a DRAT refutation on UNSAT (cdcl or\n"
      "                       portfolio; composes with --preprocess)\n"
      "  --binary-proof       emit the proof in binary DRAT\n"
      "%s"
      "  --inprocess          simplify periodically during search\n"
      "                       (variable elimination, vivification,\n"
      "                       failed-literal probing; cdcl and portfolio)\n"
      "\n"
      "assumptions and UNSAT cores:\n"
      "  --assume LIT         solve under a DIMACS assumption literal\n"
      "                       (repeatable; SATISFIABLE models honour all\n"
      "                       assumptions, UNSATISFIABLE means 'under the\n"
      "                       assumptions' and reports a failed core)\n"
      "  --core-out FILE      on UNSAT under assumptions, write the failed\n"
      "                       assumption core: `c` comments, then one line\n"
      "                       of DIMACS literals terminated by 0 (a subset\n"
      "                       of the --assume literals whose conjunction\n"
      "                       is already inconsistent with the formula)\n"
      "  --minimize-core      shrink the core first (iterative refinement\n"
      "                       plus deletion-based MUS extraction); every\n"
      "                       literal of the written core is then\n"
      "                       necessary\n"
      "\n"
      "general:\n"
      "  --preprocess         run the CNF preprocessor first\n"
      "  --pre-pass NAME      run only the named preprocessor pass\n"
      "                       (repeatable; implies --preprocess).  Names:\n"
      "                       pure, equiv, subsume, selfsub, bve\n"
      "  --strict-dimacs      enforce header variable/clause declarations\n"
      "  --cube-worker        serve framed cube requests on stdin/stdout\n"
      "                       (spawned by sateda-cube --procs; with\n"
      "                       `--proof -`, UNSAT responses carry DRAT\n"
      "                       deltas)\n"
      "%s"
      "  --help               this message\n"
      "\n"
      "output: SAT-competition format (`s` verdict line; `v` literal\n"
      "lines on SATISFIABLE).  Exit code 10 = SAT, 20 = UNSAT,\n"
      "0 = UNKNOWN (the reason is reported on stderr), 2 = usage or\n"
      "input error.\n",
      argv0, sateda::tools::engine_help(), sateda::tools::budget_help(),
      sateda::tools::report_help());
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <file.cnf | ->  (--help for details)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sateda;
  std::string path;
  std::string proof_path;
  std::string core_path;
  std::vector<Lit> assumptions;
  bool minimize_core = false;
  bool cube_worker = false;
  bool preprocess_first = false;
  std::vector<std::string> pre_passes;
  DimacsOptions dimacs_opts;
  sat::DratFormat proof_format = sat::DratFormat::kText;
  sat::SolverOptions opts;
  tools::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--preprocess") {
      preprocess_first = true;
    } else if (arg == "--pre-pass" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name != "pure" && name != "equiv" && name != "subsume" &&
          name != "selfsub" && name != "bve") {
        std::fprintf(stderr, "error: unknown --pre-pass %s\n", name.c_str());
        return 2;
      }
      pre_passes.push_back(name);
      preprocess_first = true;
    } else if (arg == "--inprocess") {
      opts.inprocess.enabled = true;
    } else if (arg == "--strict-dimacs") {
      dimacs_opts.strict_header_bounds = true;
      dimacs_opts.strict_clause_count = true;
    } else if (arg == "--no-restarts") {
      opts.restarts = false;
    } else if (arg == "--no-learning") {
      opts.clause_learning = false;
    } else if (arg == "--chronological") {
      opts.backtrack = sat::BacktrackMode::kChronological;
    } else if (arg == "--proof" && i + 1 < argc) {
      proof_path = argv[++i];
    } else if (arg == "--binary-proof") {
      proof_format = sat::DratFormat::kBinary;
    } else if (arg == "--assume" && i + 1 < argc) {
      assumptions.push_back(tools::parse_dimacs_lit(argv[++i], "--assume"));
    } else if (arg == "--core-out" && i + 1 < argc) {
      core_path = argv[++i];
    } else if (arg == "--minimize-core") {
      minimize_core = true;
    } else if (arg == "--cube-worker") {
      cube_worker = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage(argv[0]);

  const bool quiet = common.quiet;
  common.apply(opts);
  if (cube_worker) {
    // Conquer-child mode: stdin/stdout carry framed cube requests, so
    // no competition-format output — load the formula and serve.
    CnfFormula f;
    try {
      f = (path == "-") ? read_dimacs(std::cin, dimacs_opts)
                        : read_dimacs_file(path, dimacs_opts);
    } catch (const DimacsError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    return sat::cube::run_cube_worker(f, opts, proof_path == "-");
  }
  const bool want_proof = !proof_path.empty();
  sat::EngineSpec spec;
  try {
    spec = common.spec();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const bool is_portfolio =
      spec.backend() == sat::EngineSpec::Backend::kPortfolio;
  if (want_proof && spec.backend() != sat::EngineSpec::Backend::kCdcl &&
      !is_portfolio) {
    std::fprintf(stderr, "error: --proof requires --engine cdcl or portfolio\n");
    return 2;
  }
  if (!assumptions.empty() && preprocess_first) {
    // Preprocessing may eliminate or rename assumed variables, which
    // would silently change what the assumptions mean.
    std::fprintf(stderr, "error: --assume cannot be combined with "
                         "--preprocess\n");
    return 2;
  }
  if ((!core_path.empty() || minimize_core) && assumptions.empty()) {
    std::fprintf(stderr,
                 "error: --core-out/--minimize-core require --assume\n");
    return 2;
  }

  CnfFormula f;
  try {
    f = (path == "-") ? read_dimacs(std::cin, dimacs_opts)
                      : read_dimacs_file(path, dimacs_opts);
  } catch (const DimacsError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!quiet) {
    std::printf("c sateda_solve: %d vars, %zu clauses, engine %s\n",
                f.num_vars(), f.num_clauses(), spec.to_string().c_str());
  }

  // Preprocessor derivations land in pre_proof; the solver's trace is
  // appended after it, so the emitted file is one linear DRAT proof.
  sat::Proof pre_proof;
  auto emit_proof = [&](const sat::Proof& solver_proof) {
    std::ofstream out(proof_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot open proof file %s\n",
                   proof_path.c_str());
      return;
    }
    pre_proof.write_drat(out, proof_format);
    solver_proof.write_drat(out, proof_format);
    if (!quiet) {
      std::printf("c DRAT proof (%zu steps) written to %s\n",
                  pre_proof.steps().size() + solver_proof.steps().size(),
                  proof_path.c_str());
    }
  };

  sat::PreprocessResult pre;
  const CnfFormula* to_solve = &f;
  if (preprocess_first) {
    sat::PreprocessOptions popts;
    if (!pre_passes.empty()) {
      // --pre-pass whitelists: only the named passes run.
      popts.pure_literals = false;
      popts.equivalency_reasoning = false;
      popts.subsumption = false;
      popts.self_subsumption = false;
      popts.bounded_variable_elimination = false;
      for (const std::string& name : pre_passes) {
        if (name == "pure") popts.pure_literals = true;
        if (name == "equiv") popts.equivalency_reasoning = true;
        if (name == "subsume") popts.subsumption = true;
        if (name == "selfsub") popts.self_subsumption = true;
        if (name == "bve") popts.bounded_variable_elimination = true;
      }
    }
    if (want_proof) popts.proof = &pre_proof;
    pre = sat::preprocess(f, popts);
    if (pre.unsat) {
      if (want_proof) emit_proof(sat::Proof{});
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    if (!quiet) std::printf("c preprocess: %s\n", pre.stats.summary().c_str());
    to_solve = &pre.simplified;
  }

  sat::Proof proof;
  std::unique_ptr<sat::SatEngine> solver = sat::make_engine(spec, opts);
  sat::PortfolioSolver* portfolio =
      is_portfolio ? static_cast<sat::PortfolioSolver*>(solver.get())
                   : nullptr;
  if (want_proof) {
    if (portfolio != nullptr) {
      portfolio->enable_proof();
    } else {
      // Checked above: only the concrete CDCL backend remains.
      static_cast<sat::Solver&>(*solver).set_proof_tracer(&proof);
    }
  }
  bool ok = solver->add_formula(*to_solve);
  solver->ensure_var(f.num_vars() - 1);
  for (Lit a : assumptions) solver->ensure_var(a.var());
  sat::SolveResult r =
      ok ? solver->solve(assumptions) : sat::SolveResult::kUnsat;
  if (!quiet) std::printf("c %s\n", solver->stats().summary().c_str());
  if (common.stats) {
    // One counter per `c` line, SAT-competition friendly.
    tools::print_comment_block(solver->stats().detailed());
  }

  switch (r) {
    case sat::SolveResult::kUnknown:
      // A resource-limited run is not a failure: report the reason on
      // stderr, answer UNKNOWN and exit 0.
      std::fprintf(stderr, "c unknown reason: %s\n",
                   sat::to_string(solver->unknown_reason()).c_str());
      std::printf("s UNKNOWN\n");
      return 0;
    case sat::SolveResult::kUnsat: {
      std::vector<Lit> core = solver->conflict_core();
      if (!assumptions.empty() && minimize_core) {
        const sat::core::CoreResult cr =
            sat::core::minimize_core(*solver, core);
        if (cr.unsat) {
          core = cr.core;
          if (!quiet) {
            std::printf("c core minimization: %s%s\n",
                        cr.stats.summary().c_str(),
                        cr.minimal ? " (minimal)" : "");
          }
        }
      }
      std::printf("s UNSATISFIABLE\n");
      if (!assumptions.empty()) {
        std::printf("c failed assumptions: %zu of %zu\n", core.size(),
                    assumptions.size());
        if (!core_path.empty()) {
          std::ofstream out(core_path);
          if (!out) {
            std::fprintf(stderr, "error: cannot open core file %s\n",
                         core_path.c_str());
            return 2;
          }
          out << "c failed assumption core (" << core.size() << " of "
              << assumptions.size() << " assumptions) of " << path << "\n";
          for (Lit l : core) {
            out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
          }
          out << "0\n";
          if (!quiet) {
            std::printf("c assumption core written to %s\n",
                        core_path.c_str());
          }
        }
      }
      if (want_proof) {
        sat::Proof emitted =
            portfolio != nullptr ? portfolio->stitched_proof()
                                 : std::move(proof);
        // An assumption run's trace ends with the negated core; close
        // the refutation explicitly so the file checks standalone with
        // the same --assume literals.
        if (!assumptions.empty()) emitted.on_derive({});
        emit_proof(emitted);
      }
      return 20;
    }
    case sat::SolveResult::kSat: {
      std::printf("s SATISFIABLE\n");
      std::vector<lbool> model = solver->model();
      if (preprocess_first) model = pre.reconstruct_model(model);
      std::printf("v");
      for (Var v = 0; v < f.num_vars(); ++v) {
        lbool val = v < static_cast<Var>(model.size()) ? model[v] : l_undef;
        std::printf(" %d", val.is_false() ? -(v + 1) : (v + 1));
      }
      std::printf(" 0\n");
      // Self-check before claiming victory.
      std::vector<bool> bits(f.num_vars());
      for (Var v = 0; v < f.num_vars(); ++v) {
        bits[v] = v < static_cast<Var>(model.size()) && model[v].is_true();
      }
      if (!f.is_satisfied_by(bits)) {
        std::fprintf(stderr, "internal error: model check failed\n");
        return 1;
      }
      return 10;
    }
  }
  return 0;
}
