/// \file sateda_bench.cpp
/// \brief Solver throughput benchmark over the bundled corpus plus
///        generated PHP / dubois / random-3SAT / parity / CEC-miter
///        families.
///
/// Protocol (matches the seed-baseline measurements recorded in
/// BENCH_solver.json): each instance is solved on a fresh Solver,
/// timing only solve(), repeating until at least --min-time seconds
/// of wall clock accumulate (minimum 3 reps, at most --max-reps).
/// Results are written as JSON: per-instance records first, then an
/// aggregate block.  With --baseline the run is compared against a
/// previously written JSON file and the process exits non-zero when
/// the geometric-mean propagations/sec ratio drops below
/// 1 - --max-regression — the CI perf-smoke gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/simulator.hpp"
#include "cnf/dimacs.hpp"
#include "cnf/generators.hpp"
#include "equiv/cec.hpp"
#include "sat/drat_check.hpp"
#include "sat/engine.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace {

using namespace sateda;

struct Instance {
  std::string name;
  std::string family;
  CnfFormula formula;
  bool quick = false;  // part of the --quick subset
};

struct Result {
  std::string name;
  std::string family;
  int vars = 0;
  std::size_t clauses = 0;
  std::string verdict;
  int reps = 0;
  double wall_sec = 0.0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t binary_propagations = 0;
  std::int64_t arena_gc_runs = 0;
  std::int64_t arena_bytes_reclaimed = 0;
  double props_per_sec = 0.0;
  double conflicts_per_sec = 0.0;
  // Watcher-efficiency figures from the flat watch arena (watch.hpp):
  // how much watcher traffic the blocker test absorbed, and how much
  // arena maintenance the run needed.
  std::int64_t watch_visits = 0;
  std::int64_t blocker_hits = 0;
  double blocker_hit_rate = 0.0;
  std::int64_t watch_rebuilds = 0;
  // Second measurement: the same instance solved with periodic
  // inprocessing enabled.  Per-rep wall seconds, end-to-end speedup
  // versus the baseline per-rep wall (>1 = faster), throughput with
  // the passes running, and the scheduler's per-pass ledger.
  double inprocess_wall_sec = 0.0;
  double inprocess_speedup = 0.0;
  std::int64_t inprocess_props = 0;
  double inprocess_props_per_sec = 0.0;
  std::int64_t probe_runs = 0, probe_ticks = 0, probe_skips = 0;
  std::int64_t vivify_runs = 0, vivify_ticks = 0, vivify_skips = 0;
  std::int64_t bve_runs = 0, bve_ticks = 0, bve_skips = 0;
  double probe_utility = 0.0, vivify_utility = 0.0, bve_utility = 0.0;
};

/// Seed-tree throughput on this corpus (Release, pre-arena solver),
/// embedded so the before/after comparison ships with the results.
struct SeedPoint {
  const char* name;
  double props_per_sec;
};
constexpr SeedPoint kSeedBaseline[] = {
    {"php5", 3.99e6},          {"php6", 2.55e6},
    {"php8", 0.835e6},         {"php9", 0.135e6},
    {"dubois20", 6.35e6},      {"dubois400", 5.12e6},
    {"rand3sat_v200", 2.99e6}, {"rand3sat_v250", 0.634e6},
    {"parity200", 20.3e6},     {"cec_adder32", 7.22e6},
    {"cec_adder64", 6.81e6},
};

std::string verdict_string(sat::SolveResult r) {
  switch (r) {
    case sat::SolveResult::kSat:
      return "SAT";
    case sat::SolveResult::kUnsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

Result run_instance(const Instance& inst, double min_time, int max_reps) {
  Result res;
  res.name = inst.name;
  res.family = inst.family;
  res.vars = inst.formula.num_vars();
  res.clauses = inst.formula.num_clauses();
  for (; res.reps < max_reps && (res.wall_sec < min_time || res.reps < 3);
       ++res.reps) {
    sat::Solver solver;
    (void)solver.add_formula(inst.formula);
    const auto t0 = std::chrono::steady_clock::now();
    const sat::SolveResult r = solver.solve();
    const auto t1 = std::chrono::steady_clock::now();
    res.wall_sec += std::chrono::duration<double>(t1 - t0).count();
    const sat::SolverStats& s = solver.stats();
    res.propagations += s.propagations;
    res.conflicts += s.conflicts;
    res.binary_propagations += s.binary_propagations;
    res.arena_gc_runs += s.arena_gc_runs;
    res.arena_bytes_reclaimed += s.arena_bytes_reclaimed;
    res.watch_visits += s.watch_visits;
    res.blocker_hits += s.blocker_hits;
    res.watch_rebuilds += s.watch_rebuilds;
    res.verdict = verdict_string(r);
  }
  if (res.wall_sec > 0.0) {
    res.props_per_sec = static_cast<double>(res.propagations) / res.wall_sec;
    res.conflicts_per_sec = static_cast<double>(res.conflicts) / res.wall_sec;
  }
  if (res.watch_visits > 0) {
    res.blocker_hit_rate = static_cast<double>(res.blocker_hits) /
                           static_cast<double>(res.watch_visits);
  }
  return res;
}

/// End-to-end wall clock with periodic inprocessing enabled, recorded
/// separately so the baseline protocol above (and therefore the
/// regression gate) is untouched.  Fills res.inprocess_wall_sec with
/// the per-rep average and res.inprocess_speedup with the ratio of
/// baseline per-rep wall over inprocess per-rep wall.
void measure_inprocess(const Instance& inst, Result& res, double min_time,
                       int max_reps) {
  sat::SolverOptions opts;
  opts.inprocess.enabled = true;
  opts.inprocess.interval = 2000;  // fire on medium instances too
  double wall = 0.0;
  int reps = 0;
  for (; reps < max_reps && (wall < min_time || reps < 3); ++reps) {
    sat::Solver solver(opts);
    (void)solver.add_formula(inst.formula);
    const auto t0 = std::chrono::steady_clock::now();
    (void)solver.solve();
    const auto t1 = std::chrono::steady_clock::now();
    wall += std::chrono::duration<double>(t1 - t0).count();
    const sat::SolverStats s = solver.stats();
    res.inprocess_props += s.propagations;
    res.probe_runs += s.probe_runs;
    res.probe_ticks += s.probe_ticks;
    res.probe_skips += s.probe_skips;
    res.vivify_runs += s.vivify_runs;
    res.vivify_ticks += s.vivify_ticks;
    res.vivify_skips += s.vivify_skips;
    res.bve_runs += s.bve_runs;
    res.bve_ticks += s.bve_ticks;
    res.bve_skips += s.bve_skips;
    // Utilities are gauges; the last rep's reading stands for the run.
    res.probe_utility = s.probe_utility;
    res.vivify_utility = s.vivify_utility;
    res.bve_utility = s.bve_utility;
  }
  if (reps == 0) return;
  res.inprocess_wall_sec = wall / reps;
  if (wall > 0.0) {
    res.inprocess_props_per_sec =
        static_cast<double>(res.inprocess_props) / wall;
  }
  const double base_per_rep = res.reps > 0 ? res.wall_sec / res.reps : 0.0;
  if (res.inprocess_wall_sec > 0.0 && base_per_rep > 0.0) {
    res.inprocess_speedup = base_per_rep / res.inprocess_wall_sec;
  }
}

std::vector<Instance> build_instances(const std::string& corpus_dir,
                                      bool quick) {
  std::vector<Instance> all;
  auto add = [&](std::string name, std::string family, CnfFormula f,
                 bool in_quick) {
    all.push_back({std::move(name), std::move(family), std::move(f), in_quick});
  };
  add("php5", "pigeonhole", pigeonhole(5), true);
  add("php6", "pigeonhole", pigeonhole(6), true);
  add("php8", "pigeonhole", pigeonhole(8), false);
  add("php9", "pigeonhole", pigeonhole(9), false);
  add("dubois20", "dubois", dubois(20), true);
  add("dubois400", "dubois", dubois(400), false);
  add("rand3sat_v200", "random3sat", random_3sat(200, 4.26, /*seed=*/7), true);
  add("rand3sat_v250", "random3sat", random_3sat(250, 4.26, /*seed=*/7), false);
  add("parity200", "parity", parity_chain(200, true), true);
  add("cec_adder32", "cec_miter", benchutil::adder_miter_cnf(32), true);
  add("cec_adder64", "cec_miter", benchutil::adder_miter_cnf(64), false);

  // The bundled DIMACS corpus (BMC reachability instances and friends).
  // Prefixed so corpus files never collide with a generated name.
  if (!corpus_dir.empty() && std::filesystem::is_directory(corpus_dir)) {
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
      if (entry.path().extension() == ".cnf") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      try {
        add("corpus_" + path.stem().string(), "corpus",
            read_dimacs_file(path.string()), true);
      } catch (const DimacsError& e) {
        std::fprintf(stderr, "warning: skipping %s: %s\n",
                     path.string().c_str(), e.what());
      }
    }
  }

  if (quick) {
    std::erase_if(all, [](const Instance& i) { return !i.quick; });
  }
  return all;
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool last = false) {
  out += "      \"";
  out += key;
  out += "\": \"";
  out += value;
  out += last ? "\"\n" : "\",\n";
}

void append_kv(std::string& out, const char* key, double value,
               bool last = false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += "      \"";
  out += key;
  out += "\": ";
  out += buf;
  out += last ? "\n" : ",\n";
}

void append_kv(std::string& out, const char* key, std::int64_t value,
               bool last = false) {
  out += "      \"";
  out += key;
  out += "\": ";
  out += std::to_string(value);
  out += last ? "\n" : ",\n";
}

/// Hand-rolled writer so the key order is fixed: the regression gate
/// and CI scripts scan for "name" / "propagations_per_sec" pairs in
/// the instances array, which ends at the "aggregate" key.
std::string to_json(const std::vector<Result>& results, bool quick) {
  std::string out = "{\n  \"tool\": \"sateda-bench\",\n";
  out += "  \"mode\": \"";
  out += quick ? "quick" : "full";
  out += "\",\n  \"instances\": [\n";
  double total_wall = 0.0;
  std::int64_t total_props = 0;
  double log_sum = 0.0;
  int log_count = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    out += "    {\n";
    append_kv(out, "name", r.name);
    append_kv(out, "family", r.family);
    append_kv(out, "vars", static_cast<std::int64_t>(r.vars));
    append_kv(out, "clauses", static_cast<std::int64_t>(r.clauses));
    append_kv(out, "verdict", r.verdict);
    append_kv(out, "reps", static_cast<std::int64_t>(r.reps));
    append_kv(out, "wall_sec", r.wall_sec);
    append_kv(out, "propagations", r.propagations);
    append_kv(out, "conflicts", r.conflicts);
    append_kv(out, "binary_propagations", r.binary_propagations);
    append_kv(out, "arena_gc_runs", r.arena_gc_runs);
    append_kv(out, "arena_bytes_reclaimed", r.arena_bytes_reclaimed);
    append_kv(out, "propagations_per_sec", r.props_per_sec);
    append_kv(out, "conflicts_per_sec", r.conflicts_per_sec);
    // Keys below must not contain "name" or "propagations_per_sec":
    // the baseline scanner in parse_results matches raw substrings.
    append_kv(out, "watch_visits", r.watch_visits);
    append_kv(out, "blocker_hits", r.blocker_hits);
    append_kv(out, "blocker_hit_rate", r.blocker_hit_rate);
    append_kv(out, "watch_rebuilds", r.watch_rebuilds);
    append_kv(out, "inprocess_wall_sec", r.inprocess_wall_sec);
    append_kv(out, "inprocess_speedup", r.inprocess_speedup);
    append_kv(out, "inprocess_props_per_sec", r.inprocess_props_per_sec);
    append_kv(out, "probe_runs", r.probe_runs);
    append_kv(out, "probe_ticks", r.probe_ticks);
    append_kv(out, "probe_skips", r.probe_skips);
    append_kv(out, "probe_utility", r.probe_utility);
    append_kv(out, "vivify_runs", r.vivify_runs);
    append_kv(out, "vivify_ticks", r.vivify_ticks);
    append_kv(out, "vivify_skips", r.vivify_skips);
    append_kv(out, "vivify_utility", r.vivify_utility);
    append_kv(out, "bve_runs", r.bve_runs);
    append_kv(out, "bve_ticks", r.bve_ticks);
    append_kv(out, "bve_skips", r.bve_skips);
    append_kv(out, "bve_utility", r.bve_utility, /*last=*/true);
    out += (i + 1 < results.size()) ? "    },\n" : "    }\n";
    total_wall += r.wall_sec;
    total_props += r.propagations;
    if (r.props_per_sec > 0.0) {
      log_sum += std::log(r.props_per_sec);
      ++log_count;
    }
  }
  out += "  ],\n  \"aggregate\": {\n";
  append_kv(out, "instances", static_cast<std::int64_t>(results.size()));
  append_kv(out, "wall_sec", total_wall);
  append_kv(out, "propagations", total_props);
  append_kv(out, "propagations_per_sec",
            total_wall > 0.0 ? total_props / total_wall : 0.0);
  append_kv(out, "geomean_propagations_per_sec",
            log_count > 0 ? std::exp(log_sum / log_count) : 0.0);
  double ip_log_sum = 0.0, spd_log_sum = 0.0;
  int ip_count = 0, spd_count = 0;
  for (const Result& r : results) {
    if (r.inprocess_props_per_sec > 0.0) {
      ip_log_sum += std::log(r.inprocess_props_per_sec);
      ++ip_count;
    }
    if (r.inprocess_speedup > 0.0) {
      spd_log_sum += std::log(r.inprocess_speedup);
      ++spd_count;
    }
  }
  append_kv(out, "geomean_inprocess_props_per_sec",
            ip_count > 0 ? std::exp(ip_log_sum / ip_count) : 0.0);
  append_kv(out, "geomean_inprocess_speedup",
            spd_count > 0 ? std::exp(spd_log_sum / spd_count) : 0.0,
            /*last=*/true);
  out += "  },\n  \"seed_baseline\": [\n";
  constexpr std::size_t n_seed = std::size(kSeedBaseline);
  for (std::size_t i = 0; i < n_seed; ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "    {\"instance\": \"%s\", \"seed_propagations_per_sec\": "
                  "%.6g}%s\n",
                  kSeedBaseline[i].name, kSeedBaseline[i].props_per_sec,
                  i + 1 < n_seed ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

/// One baseline instance: throughput without and (if the baseline file
/// has the field) with inprocessing enabled.
struct BaselineEntry {
  std::string name;
  double pps = 0.0;
  double inprocess_pps = 0.0;
};

/// Extracts per-instance throughput from a JSON file written by this
/// tool.  Scans "name"/"propagations_per_sec" key pairs — plus the
/// optional "inprocess_props_per_sec" key — inside the instances array
/// only (parsing stops at the "aggregate" key), so no JSON library is
/// needed.
bool parse_results(const std::string& path, std::vector<BaselineEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t stop = std::min(text.find("\"aggregate\""), text.size());
  std::size_t pos = 0;
  while (true) {
    const std::size_t nk = text.find("\"name\": \"", pos);
    if (nk == std::string::npos || nk >= stop) break;
    const std::size_t ns = nk + std::strlen("\"name\": \"");
    const std::size_t ne = text.find('"', ns);
    if (ne == std::string::npos) break;
    BaselineEntry e;
    e.name = text.substr(ns, ne - ns);
    const std::size_t pk = text.find("\"propagations_per_sec\": ", ne);
    if (pk == std::string::npos || pk >= stop) break;
    e.pps =
        std::atof(text.c_str() + pk + std::strlen("\"propagations_per_sec\": "));
    // Optional key (older baselines lack it); it must belong to this
    // instance, i.e. appear before the next "name".
    const std::size_t next_nk = text.find("\"name\": \"", pk);
    const std::size_t ik = text.find("\"inprocess_props_per_sec\": ", pk);
    if (ik != std::string::npos && ik < stop &&
        (next_nk == std::string::npos || ik < next_nk)) {
      e.inprocess_pps = std::atof(text.c_str() + ik +
                                  std::strlen("\"inprocess_props_per_sec\": "));
    }
    out->push_back(std::move(e));
    pos = pk;
  }
  return !out->empty();
}

/// Compares this run against a baseline file over the instances present
/// in both:
///   * geomean of per-instance new/old propagations/sec ratios must
///     stay >= 1 - max_regression (base solve, inprocessing off);
///   * the same geomean gate on inprocess_props_per_sec ratios when
///     both sides measured them (inprocessing ON);
///   * no single instance's ratio (base or inprocess) may fall below
///     min_instance_ratio — geomean gates alone let one instance fall
///     off a cliff while the rest of the corpus hides it.
bool check_regression(const std::vector<Result>& results,
                      const std::string& baseline_path, double max_regression,
                      double min_instance_ratio) {
  std::vector<BaselineEntry> base;
  if (!parse_results(baseline_path, &base)) {
    std::fprintf(stderr, "error: cannot read baseline %s\n",
                 baseline_path.c_str());
    return false;
  }
  double log_sum = 0.0, ip_log_sum = 0.0;
  int count = 0, ip_count = 0;
  bool floor_ok = true;
  std::printf("\n%-24s %14s %14s %8s %9s\n", "instance", "baseline", "current",
              "ratio", "inp-ratio");
  for (const Result& r : results) {
    for (const BaselineEntry& b : base) {
      if (b.name != r.name || b.pps <= 0.0 || r.props_per_sec <= 0.0) continue;
      const double ratio = r.props_per_sec / b.pps;
      log_sum += std::log(ratio);
      ++count;
      double ip_ratio = 0.0;
      if (b.inprocess_pps > 0.0 && r.inprocess_props_per_sec > 0.0) {
        ip_ratio = r.inprocess_props_per_sec / b.inprocess_pps;
        ip_log_sum += std::log(ip_ratio);
        ++ip_count;
      }
      if (ip_ratio > 0.0) {
        std::printf("%-24s %14.0f %14.0f %8.2f %9.2f\n", b.name.c_str(), b.pps,
                    r.props_per_sec, ratio, ip_ratio);
      } else {
        std::printf("%-24s %14.0f %14.0f %8.2f %9s\n", b.name.c_str(), b.pps,
                    r.props_per_sec, ratio, "-");
      }
      if (ratio < min_instance_ratio) {
        std::fprintf(stderr,
                     "error: %s propagations/sec ratio %.3f is below the "
                     "per-instance %.2f floor\n",
                     b.name.c_str(), ratio, min_instance_ratio);
        floor_ok = false;
      }
      if (ip_ratio > 0.0 && ip_ratio < min_instance_ratio) {
        std::fprintf(stderr,
                     "error: %s inprocessing-on props/sec ratio %.3f is below "
                     "the per-instance %.2f floor\n",
                     b.name.c_str(), ip_ratio, min_instance_ratio);
        floor_ok = false;
      }
      break;
    }
  }
  if (count == 0) {
    std::fprintf(stderr, "error: no common instances with baseline\n");
    return false;
  }
  const double geomean = std::exp(log_sum / count);
  const double floor = 1.0 - max_regression;
  std::printf("%-24s %14s %14s %8.2f  (floor %.2f", "geomean", "", "", geomean,
              floor);
  bool ok = floor_ok;
  if (ip_count > 0) {
    const double ip_geomean = std::exp(ip_log_sum / ip_count);
    std::printf("; inprocessing-on %.2f", ip_geomean);
    if (ip_geomean < floor) {
      std::fprintf(stderr,
                   "error: inprocessing-on props/sec regressed: geomean ratio "
                   "%.3f is below the %.2f floor\n",
                   ip_geomean, floor);
      ok = false;
    }
  }
  std::printf(")\n");
  if (geomean < floor) {
    std::fprintf(stderr,
                 "error: propagations/sec regressed: geomean ratio %.3f is "
                 "below the %.2f floor\n",
                 geomean, floor);
    ok = false;
  }
  return ok;
}

// ---- cube-and-conquer comparison bench (--cube) ---------------------
//
// A separate protocol from the throughput bench above: each instance
// is solved once per strategy under one wall-clock budget — cold
// (single CDCL), racing portfolio, and cube-and-conquer — through the
// EngineSpec seam, so the comparison measures exactly what an
// application routing a whale query to `cube:N` would see.

struct CubeBenchResult {
  std::string name;
  std::string family;
  int vars = 0;
  std::size_t clauses = 0;
  std::string cold_verdict, portfolio_verdict, cube_verdict;
  double cold_sec = 0.0, portfolio_sec = 0.0, cube_sec = 0.0;
  std::int64_t cubes_generated = 0;
  std::int64_t cubes_refuted_split = 0;
  std::int64_t cubes_solved = 0;
  std::int64_t cubes_stolen = 0;
  double cube_speedup_vs_cold = 0.0;       ///< 0 when cube timed out
  double cube_speedup_vs_portfolio = 0.0;  ///< 0 when cube timed out
};

/// The harder generated family for the cube comparison: instances
/// where a single trajectory stalls but the split tree has headroom.
/// Deliberately not part of the throughput corpus above — its
/// untimed repeat-until-min-time protocol would run for hours on
/// php11 or mult_comm5.
std::vector<Instance> build_cube_instances(bool quick) {
  std::vector<Instance> all;
  auto add = [&](std::string name, std::string family, CnfFormula f,
                 bool in_quick) {
    all.push_back({std::move(name), std::move(family), std::move(f), in_quick});
  };
  add("php8", "pigeonhole", pigeonhole(8), true);
  add("php9", "pigeonhole", pigeonhole(9), true);
  add("php10", "pigeonhole", pigeonhole(10), false);
  add("php11", "pigeonhole", pigeonhole(11), false);
  add("rand3sat_v250", "random3sat", random_3sat(250, 4.26, /*seed=*/7), true);
  add("rand3sat_v300", "random3sat", random_3sat(300, 4.26, /*seed=*/7),
      false);
  add("rand3sat_v350", "random3sat", random_3sat(350, 4.26, /*seed=*/7),
      false);
  add("mult_comm4", "cec_miter", benchutil::multiplier_comm_miter_cnf(4),
      true);
  add("mult_comm5", "cec_miter", benchutil::multiplier_comm_miter_cnf(5),
      false);
  if (quick) {
    std::erase_if(all, [](const Instance& i) { return !i.quick; });
  }
  return all;
}

/// One timed solve through the engine seam.  Returns wall seconds.
double timed_engine_solve(const std::string& spec, const CnfFormula& f,
                          std::int64_t timeout_ms, std::string* verdict,
                          sat::SolverStats* stats) {
  auto e = sat::EngineSpec::parse(spec).build();
  (void)e->add_formula(f);
  e->set_budgets(-1, timeout_ms);
  const auto t0 = std::chrono::steady_clock::now();
  const sat::SolveResult r = e->solve();
  const auto t1 = std::chrono::steady_clock::now();
  *verdict = verdict_string(r);
  if (stats != nullptr) *stats = e->stats();
  return std::chrono::duration<double>(t1 - t0).count();
}

CubeBenchResult run_cube_instance(const Instance& inst, int workers,
                                  std::int64_t timeout_ms) {
  CubeBenchResult res;
  res.name = inst.name;
  res.family = inst.family;
  res.vars = inst.formula.num_vars();
  res.clauses = inst.formula.num_clauses();
  res.cold_sec = timed_engine_solve("cdcl", inst.formula, timeout_ms,
                                    &res.cold_verdict, nullptr);
  res.portfolio_sec = timed_engine_solve(
      "portfolio:" + std::to_string(workers), inst.formula, timeout_ms,
      &res.portfolio_verdict, nullptr);
  sat::SolverStats cube_stats;
  res.cube_sec =
      timed_engine_solve("cube:" + std::to_string(workers), inst.formula,
                         timeout_ms, &res.cube_verdict, &cube_stats);
  res.cubes_generated = cube_stats.cubes_generated;
  res.cubes_refuted_split = cube_stats.cubes_refuted_split;
  res.cubes_solved = cube_stats.cubes_solved;
  res.cubes_stolen = cube_stats.cubes_stolen;
  if (res.cube_verdict != "UNKNOWN" && res.cube_sec > 0.0) {
    res.cube_speedup_vs_cold = res.cold_sec / res.cube_sec;
    res.cube_speedup_vs_portfolio = res.portfolio_sec / res.cube_sec;
  }
  return res;
}

std::string cube_to_json(const std::vector<CubeBenchResult>& results,
                         bool quick, int workers, double timeout_sec) {
  std::string out = "{\n  \"tool\": \"sateda-bench --cube\",\n";
  out += "  \"mode\": \"";
  out += quick ? "quick" : "full";
  out += "\",\n  \"workers\": " + std::to_string(workers) + ",\n";
  char tbuf[32];
  std::snprintf(tbuf, sizeof(tbuf), "%g", timeout_sec);
  out += "  \"timeout_sec\": ";
  out += tbuf;
  out += ",\n  \"instances\": [\n";
  double cold_log = 0.0, pf_log = 0.0;
  int cold_n = 0, pf_n = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CubeBenchResult& r = results[i];
    out += "    {\n";
    append_kv(out, "name", r.name);
    append_kv(out, "family", r.family);
    append_kv(out, "vars", static_cast<std::int64_t>(r.vars));
    append_kv(out, "clauses", static_cast<std::int64_t>(r.clauses));
    append_kv(out, "cold_verdict", r.cold_verdict);
    append_kv(out, "cold_sec", r.cold_sec);
    append_kv(out, "portfolio_verdict", r.portfolio_verdict);
    append_kv(out, "portfolio_sec", r.portfolio_sec);
    append_kv(out, "cube_verdict", r.cube_verdict);
    append_kv(out, "cube_sec", r.cube_sec);
    append_kv(out, "cubes_generated", r.cubes_generated);
    append_kv(out, "cubes_refuted_split", r.cubes_refuted_split);
    append_kv(out, "cubes_solved", r.cubes_solved);
    append_kv(out, "cubes_stolen", r.cubes_stolen);
    append_kv(out, "cube_speedup_vs_cold", r.cube_speedup_vs_cold);
    append_kv(out, "cube_speedup_vs_portfolio", r.cube_speedup_vs_portfolio,
              /*last=*/true);
    out += (i + 1 < results.size()) ? "    },\n" : "    }\n";
    if (r.cube_speedup_vs_cold > 0.0) {
      cold_log += std::log(r.cube_speedup_vs_cold);
      ++cold_n;
    }
    if (r.cube_speedup_vs_portfolio > 0.0) {
      pf_log += std::log(r.cube_speedup_vs_portfolio);
      ++pf_n;
    }
  }
  out += "  ],\n  \"aggregate\": {\n";
  append_kv(out, "instances", static_cast<std::int64_t>(results.size()));
  append_kv(out, "geomean_cube_speedup_vs_cold",
            cold_n > 0 ? std::exp(cold_log / cold_n) : 0.0);
  append_kv(out, "geomean_cube_speedup_vs_portfolio",
            pf_n > 0 ? std::exp(pf_log / pf_n) : 0.0, /*last=*/true);
  out += "  }\n}\n";
  return out;
}

int run_cube_bench(const std::string& out_path, bool quick, int workers,
                   double timeout_sec) {
  const std::vector<Instance> instances = build_cube_instances(quick);
  const auto timeout_ms = static_cast<std::int64_t>(timeout_sec * 1000.0);
  std::vector<CubeBenchResult> results;
  results.reserve(instances.size());
  std::printf("%-16s %8s %9s %8s %9s %8s %9s %7s %7s\n", "instance", "cold",
              "cold(s)", "pfolio", "pfol(s)", "cube", "cube(s)", "xcold",
              "xpfol");
  for (const Instance& inst : instances) {
    CubeBenchResult r = run_cube_instance(inst, workers, timeout_ms);
    std::printf("%-16s %8s %9.3f %8s %9.3f %8s %9.3f %7.2f %7.2f\n",
                r.name.c_str(), r.cold_verdict.c_str(), r.cold_sec,
                r.portfolio_verdict.c_str(), r.portfolio_sec,
                r.cube_verdict.c_str(), r.cube_sec, r.cube_speedup_vs_cold,
                r.cube_speedup_vs_portfolio);
    std::fflush(stdout);
    results.push_back(std::move(r));
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << cube_to_json(results, quick, workers, timeout_sec);
  out.close();
  std::printf("\nresults written to %s\n", out_path.c_str());
  return 0;
}

// ---- circuit CEC pipeline bench (--cec) ------------------------------
//
// End-to-end equivalence-checking wall clock over circuit pairs: the
// same pair checked with the plain path (strash + circuit-SAT layer)
// and with the structure-aware CNF pipeline (rewrite → polarity-aware
// encoding → StructureHints).  The per-instance figure is
// pipeline_speedup = plain per-rep wall / pipeline per-rep wall.
// Every pipeline UNSAT (equivalent) verdict is re-certified untimed:
// structurally-settled miters need no proof; SAT-settled ones are
// solved once more with DRAT tracing and checked in-process.

struct CecInstance {
  std::string name;
  std::string family;
  circuit::Circuit a, b;
  bool quick = false;
};

struct CecBenchRow {
  std::string name;
  std::string family;
  std::size_t inputs = 0;
  std::size_t gates = 0;  // miter-side total (a + b)
  std::string verdict;    // from the pipeline run
  int reps = 0;
  double plain_sec = 0.0;     // per-rep wall, plain path
  double pipeline_sec = 0.0;  // per-rep wall, structure-aware path
  double pipeline_speedup = 0.0;
  bool settled_structurally = false;
  std::string certification;  // "structural" | "drat" | "counterexample"
  bool certified = false;
};

std::vector<CecInstance> build_cec_instances(bool quick) {
  std::vector<CecInstance> all;
  auto add = [&](std::string name, std::string family, circuit::Circuit a,
                 circuit::Circuit b, bool in_quick) {
    all.push_back(
        {std::move(name), std::move(family), std::move(a), std::move(b),
         in_quick});
  };
  add("cec_adder16", "cec_adder", circuit::ripple_carry_adder(16),
      benchutil::resynthesized_adder(16), true);
  add("cec_adder32", "cec_adder", circuit::ripple_carry_adder(32),
      benchutil::resynthesized_adder(32), true);
  add("cec_adder64", "cec_adder", circuit::ripple_carry_adder(64),
      benchutil::resynthesized_adder(64), false);
  add("cec_adder32_bug", "cec_adder_sat", circuit::ripple_carry_adder(32),
      benchutil::with_inverted_output(benchutil::resynthesized_adder(32), 0),
      true);
  add("cec_mult3", "cec_mult", circuit::array_multiplier(3),
      benchutil::swapped_multiplier(3), true);
  add("cec_mult4", "cec_mult", circuit::array_multiplier(4),
      benchutil::swapped_multiplier(4), false);
  if (quick) {
    std::erase_if(all, [](const CecInstance& i) { return !i.quick; });
  }
  return all;
}

const char* cec_verdict_string(equiv::CecVerdict v) {
  switch (v) {
    case equiv::CecVerdict::kEquivalent:
      return "EQ";
    case equiv::CecVerdict::kNotEquivalent:
      return "NEQ";
    default:
      return "UNKNOWN";
  }
}

equiv::CecOptions cec_pipeline_options() {
  equiv::CecOptions opts;
  opts.rewrite = true;
  opts.plaisted_greenbaum = true;
  opts.struct_hints = true;
  return opts;
}

/// Repeats check_equivalence until \p min_time seconds accumulate
/// (3..max_reps reps); returns per-rep wall and the last result.
double timed_cec(const CecInstance& inst, const equiv::CecOptions& opts,
                 double min_time, int max_reps, int* reps_out,
                 equiv::CecResult* last) {
  double wall = 0.0;
  int reps = 0;
  while ((wall < min_time || reps < 3) && reps < max_reps) {
    const auto t0 = std::chrono::steady_clock::now();
    equiv::CecResult r = equiv::check_equivalence(inst.a, inst.b, opts);
    const auto t1 = std::chrono::steady_clock::now();
    wall += std::chrono::duration<double>(t1 - t0).count();
    ++reps;
    *last = std::move(r);
  }
  if (reps_out != nullptr) *reps_out = reps;
  return wall / reps;
}

CecBenchRow run_cec_instance(const CecInstance& inst, double min_time,
                             int max_reps) {
  CecBenchRow row;
  row.name = inst.name;
  row.family = inst.family;
  row.inputs = inst.a.inputs().size();
  row.gates = inst.a.num_gates() + inst.b.num_gates();

  equiv::CecResult plain, piped;
  row.plain_sec =
      timed_cec(inst, equiv::CecOptions{}, min_time, max_reps, nullptr, &plain);
  row.pipeline_sec = timed_cec(inst, cec_pipeline_options(), min_time,
                               max_reps, &row.reps, &piped);
  row.verdict = cec_verdict_string(piped.verdict);
  row.settled_structurally = piped.settled_structurally;
  if (row.pipeline_sec > 0.0 && piped.verdict != equiv::CecVerdict::kUnknown &&
      piped.verdict == plain.verdict) {
    row.pipeline_speedup = row.plain_sec / row.pipeline_sec;
  }

  // Untimed certification pass.
  if (piped.verdict == equiv::CecVerdict::kNotEquivalent) {
    row.certification = "counterexample";
    row.certified = circuit::simulate_outputs(inst.a, piped.counterexample) !=
                    circuit::simulate_outputs(inst.b, piped.counterexample);
  } else if (piped.settled_structurally) {
    row.certification = "structural";
    row.certified = true;
  } else {
    equiv::CecOptions certify = cec_pipeline_options();
    sat::Proof proof;
    certify.proof = &proof;
    equiv::CecResult r = equiv::check_equivalence(inst.a, inst.b, certify);
    row.certification = "drat";
    if (r.verdict == equiv::CecVerdict::kEquivalent &&
        !r.settled_structurally) {
      const sat::DratCheckResult chk =
          sat::check_drat(r.pipeline_formula, proof);
      row.certified = chk.ok && chk.refutation;
    } else {
      // The certification rerun settled structurally after all (it
      // never should: the options match the timed run).
      row.certified = r.verdict == equiv::CecVerdict::kEquivalent;
    }
  }
  return row;
}

std::string cec_to_json(const std::vector<CecBenchRow>& rows, bool quick,
                        double min_time) {
  std::string out = "{\n  \"tool\": \"sateda-bench --cec\",\n";
  out += "  \"mode\": \"";
  out += quick ? "quick" : "full";
  out += "\",\n";
  char tbuf[32];
  std::snprintf(tbuf, sizeof(tbuf), "%g", min_time);
  out += "  \"min_time_sec\": ";
  out += tbuf;
  out += ",\n  \"instances\": [\n";
  double log_sum = 0.0;
  int n = 0;
  bool all_certified = true;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CecBenchRow& r = rows[i];
    out += "    {\n";
    append_kv(out, "name", r.name);
    append_kv(out, "family", r.family);
    append_kv(out, "inputs", static_cast<std::int64_t>(r.inputs));
    append_kv(out, "gates", static_cast<std::int64_t>(r.gates));
    append_kv(out, "verdict", r.verdict);
    append_kv(out, "reps", static_cast<std::int64_t>(r.reps));
    append_kv(out, "plain_sec", r.plain_sec);
    append_kv(out, "pipeline_sec", r.pipeline_sec);
    append_kv(out, "pipeline_speedup", r.pipeline_speedup);
    append_kv(out, "settled_structurally",
              static_cast<std::int64_t>(r.settled_structurally ? 1 : 0));
    append_kv(out, "certification", r.certification);
    append_kv(out, "certified",
              static_cast<std::int64_t>(r.certified ? 1 : 0), /*last=*/true);
    out += (i + 1 < rows.size()) ? "    },\n" : "    }\n";
    if (r.pipeline_speedup > 0.0) {
      log_sum += std::log(r.pipeline_speedup);
      ++n;
    }
    all_certified = all_certified && r.certified;
  }
  out += "  ],\n  \"aggregate\": {\n";
  append_kv(out, "instances", static_cast<std::int64_t>(rows.size()));
  append_kv(out, "all_certified",
            static_cast<std::int64_t>(all_certified ? 1 : 0));
  append_kv(out, "geomean_pipeline_speedup",
            n > 0 ? std::exp(log_sum / n) : 0.0, /*last=*/true);
  out += "  }\n}\n";
  return out;
}

/// Baseline gate for --cec: per-instance pipeline_speedup must not
/// fall below min_instance_ratio times the baseline's figure, and the
/// geomean ratio must stay above 1 - max_regression.
bool check_cec_regression(const std::vector<CecBenchRow>& rows,
                          const std::string& baseline_path,
                          double max_regression, double min_instance_ratio) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read baseline %s\n",
                 baseline_path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t stop = std::min(text.find("\"aggregate\""), text.size());
  double log_sum = 0.0;
  int count = 0;
  bool ok = true;
  std::printf("\n%-20s %10s %10s %8s\n", "instance", "baseline", "current",
              "ratio");
  std::size_t pos = 0;
  while (true) {
    const std::size_t nk = text.find("\"name\": \"", pos);
    if (nk == std::string::npos || nk >= stop) break;
    const std::size_t ns = nk + std::strlen("\"name\": \"");
    const std::size_t ne = text.find('"', ns);
    if (ne == std::string::npos) break;
    const std::string name = text.substr(ns, ne - ns);
    const std::size_t sk = text.find("\"pipeline_speedup\": ", ne);
    if (sk == std::string::npos || sk >= stop) break;
    const double base =
        std::atof(text.c_str() + sk + std::strlen("\"pipeline_speedup\": "));
    pos = sk;
    if (base <= 0.0) continue;
    for (const CecBenchRow& r : rows) {
      if (r.name != name || r.pipeline_speedup <= 0.0) continue;
      const double ratio = r.pipeline_speedup / base;
      std::printf("%-20s %10.2f %10.2f %8.2f\n", name.c_str(), base,
                  r.pipeline_speedup, ratio);
      log_sum += std::log(ratio);
      ++count;
      if (ratio < min_instance_ratio) {
        std::fprintf(stderr,
                     "error: %s pipeline_speedup ratio %.3f is below the "
                     "per-instance floor %.3f\n",
                     name.c_str(), ratio, min_instance_ratio);
        ok = false;
      }
    }
  }
  if (count == 0) {
    std::fprintf(stderr, "error: no common instances with baseline\n");
    return false;
  }
  const double geomean = std::exp(log_sum / count);
  const double floor = 1.0 - max_regression;
  std::printf("%-20s %10s %10s %8.2f  (floor %.2f)\n", "geomean", "", "",
              geomean, floor);
  if (geomean < floor) {
    std::fprintf(stderr,
                 "error: pipeline_speedup regressed: geomean ratio %.3f is "
                 "below %.3f\n",
                 geomean, floor);
    ok = false;
  }
  return ok;
}

int run_cec_bench(const std::string& out_path, bool quick, double min_time,
                  int max_reps, const std::string& baseline_path,
                  double max_regression, double min_instance_ratio) {
  const std::vector<CecInstance> instances = build_cec_instances(quick);
  std::vector<CecBenchRow> rows;
  rows.reserve(instances.size());
  std::printf("%-20s %8s %5s %10s %10s %8s %6s %10s\n", "instance", "verdict",
              "reps", "plain(s)", "pipe(s)", "speedup", "struct", "certified");
  for (const CecInstance& inst : instances) {
    CecBenchRow r = run_cec_instance(inst, min_time, max_reps);
    std::printf("%-20s %8s %5d %10.4f %10.4f %8.2f %6s %6s/%s\n",
                r.name.c_str(), r.verdict.c_str(), r.reps, r.plain_sec,
                r.pipeline_sec, r.pipeline_speedup,
                r.settled_structurally ? "yes" : "no",
                r.certified ? "yes" : "NO", r.certification.c_str());
    std::fflush(stdout);
    rows.push_back(std::move(r));
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << cec_to_json(rows, quick, min_time);
  out.close();
  std::printf("\nresults written to %s\n", out_path.c_str());
  for (const CecBenchRow& r : rows) {
    if (!r.certified) {
      std::fprintf(stderr, "error: %s verdict was not certified\n",
                   r.name.c_str());
      return 1;
    }
  }
  if (!baseline_path.empty() &&
      !check_cec_regression(rows, baseline_path, max_regression,
                            min_instance_ratio)) {
    return 1;
  }
  return 0;
}

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Solver throughput benchmark: bundled corpus + generated PHP,\n"
      "dubois, random-3SAT, parity and CEC adder-miter families.\n"
      "\n"
      "  --out FILE           write JSON results here (default\n"
      "                       BENCH_solver.json)\n"
      "  --corpus DIR         DIMACS corpus directory (default\n"
      "                       examples/cnf; pass '' to skip)\n"
      "  --quick              small-instance subset, shorter timing\n"
      "                       windows (CI perf smoke)\n"
      "  --min-time S         minimum seconds of accumulated solve\n"
      "                       wall per instance (default 1.0;\n"
      "                       0.25 under --quick)\n"
      "  --max-reps N         repetition cap per instance (default 2000)\n"
      "  --baseline FILE      compare against a previous results file\n"
      "                       and fail on regression\n"
      "  --cube               cube-and-conquer comparison instead: solve\n"
      "                       a harder generated family cold / racing\n"
      "                       portfolio / cube:N under one timeout and\n"
      "                       write BENCH_cube.json\n"
      "  --cec                circuit equivalence-checking comparison:\n"
      "                       time check_equivalence plain versus the\n"
      "                       structure-aware pipeline (rewrite + PG +\n"
      "                       hints) over adder/multiplier miter pairs,\n"
      "                       certify every verdict, and write\n"
      "                       BENCH_cec.json\n"
      "  --workers N          worker count for --cube (default 8)\n"
      "  --timeout S          per-solve wall budget for --cube\n"
      "                       (default 60; 10 under --quick)\n"
      "  --max-regression X   allowed geomean props/sec drop versus\n"
      "                       the baseline (default 0.25)\n"
      "  --min-instance-ratio X\n"
      "                       per-instance props/sec floor versus the\n"
      "                       baseline, applied to both the base and\n"
      "                       inprocessing-on measurements (default 0.9)\n"
      "  --help               this message\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string corpus_dir = "examples/cnf";
  std::string baseline_path;
  bool quick = false;
  bool cube = false;
  bool cec = false;
  int workers = 8;
  double timeout_sec = -1.0;
  double min_time = -1.0;
  int max_reps = 2000;
  double max_regression = 0.25;
  double min_instance_ratio = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--cube") {
      cube = true;
    } else if (arg == "--cec") {
      cec = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout_sec = std::atof(argv[++i]);
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_time = std::atof(argv[++i]);
    } else if (arg == "--max-reps" && i + 1 < argc) {
      max_reps = std::atoi(argv[++i]);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--max-regression" && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else if (arg == "--min-instance-ratio" && i + 1 < argc) {
      min_instance_ratio = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [options]  (--help for details)\n",
                   argv[0]);
      return 2;
    }
  }
  if (min_time < 0.0) min_time = quick ? 0.25 : 1.0;
  if (timeout_sec < 0.0) timeout_sec = quick ? 10.0 : 60.0;
  if (out_path.empty()) {
    out_path = cube   ? "BENCH_cube.json"
               : cec ? "BENCH_cec.json"
                     : "BENCH_solver.json";
  }
  if (cube) return run_cube_bench(out_path, quick, workers, timeout_sec);
  if (cec) {
    return run_cec_bench(out_path, quick, min_time, max_reps, baseline_path,
                         max_regression, min_instance_ratio);
  }

  const std::vector<Instance> instances = build_instances(corpus_dir, quick);
  std::vector<Result> results;
  results.reserve(instances.size());
  std::printf("%-24s %8s %5s %9s %14s %13s %9s\n", "instance", "verdict",
              "reps", "wall(s)", "props/sec", "confl/sec", "inp-spdup");
  for (const Instance& inst : instances) {
    Result r = run_instance(inst, min_time, max_reps);
    // Quick mode measures inprocessing too: the CI perf-smoke gate
    // covers throughput with the passes scheduled in.
    measure_inprocess(inst, r, min_time, max_reps);
    std::printf("%-24s %8s %5d %9.3f %14.0f %13.0f %9.2f\n", r.name.c_str(),
                r.verdict.c_str(), r.reps, r.wall_sec, r.props_per_sec,
                r.conflicts_per_sec, r.inprocess_speedup);
    std::fflush(stdout);
    results.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 2;
  }
  out << to_json(results, quick);
  out.close();
  std::printf("\nresults written to %s\n", out_path.c_str());

  if (!baseline_path.empty() &&
      !check_regression(results, baseline_path, max_regression,
                        min_instance_ratio)) {
    return 1;
  }
  return 0;
}
