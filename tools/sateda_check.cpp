/// \file sateda_check.cpp
/// \brief Standalone DRAT proof checker for sateda-solve certificates.
///
/// Verifies that a DRAT proof (text or binary, auto-detected) refutes
/// a DIMACS CNF formula.  The checker is the independent backward
/// RUP/RAT implementation in sat/drat_check.hpp — it shares no code
/// with the solver that produced the proof.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "cnf/dimacs.hpp"
#include "common/cli.hpp"
#include "sat/drat_check.hpp"

namespace {

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options] <file.cnf> <proof.drat>\n"
      "\n"
      "Checks that the DRAT proof refutes the DIMACS CNF formula.\n"
      "\n"
      "options:\n"
      "  --text               force text DRAT parsing\n"
      "  --binary             force binary DRAT parsing\n"
      "  --assume LIT         add a DIMACS literal as a root assumption\n"
      "                       (repeatable; the proof then refutes\n"
      "                       formula AND assumptions)\n"
      "  --no-refutation      accept a proof that verifies but never\n"
      "                       derives the empty clause (derivation mode)\n"
      "  --core FILE          after verification, write the clausal core\n"
      "                       (formula clauses plus assumptions the proof\n"
      "                       actually used) as DIMACS CNF; the core is\n"
      "                       itself unsatisfiable\n"
      "  --trim FILE          write the proof trimmed to the steps the\n"
      "                       refutation used (text DRAT); together with\n"
      "                       the --core CNF it re-verifies standalone\n"
      "  --quiet              verdict line only\n"
      "  --help               this message\n"
      "\n"
      "output: `s VERIFIED` or `s NOT VERIFIED`.  Exit code 0 when the\n"
      "proof is accepted, 1 when rejected, 2 on usage or input errors.\n",
      argv0);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.cnf> <proof.drat>  (--help for "
               "details)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sateda;
  std::vector<std::string> paths;
  std::vector<Lit> assumptions;
  sat::DratParseFormat format = sat::DratParseFormat::kAuto;
  bool require_refutation = true;
  bool quiet = false;
  std::string core_path;
  std::string trim_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--text") {
      format = sat::DratParseFormat::kText;
    } else if (arg == "--binary") {
      format = sat::DratParseFormat::kBinary;
    } else if (arg == "--no-refutation") {
      require_refutation = false;
    } else if (arg == "--assume" && i + 1 < argc) {
      assumptions.push_back(tools::parse_dimacs_lit(argv[++i], "--assume"));
    } else if (arg == "--core" && i + 1 < argc) {
      core_path = argv[++i];
    } else if (arg == "--trim" && i + 1 < argc) {
      trim_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  CnfFormula f;
  try {
    f = read_dimacs_file(paths[0]);
  } catch (const DimacsError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  sat::DratProof proof;
  try {
    proof = sat::parse_drat_file(paths[1], format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!quiet) {
    std::printf("c sateda_check: %d vars, %zu clauses, %zu proof steps\n",
                f.num_vars(), f.num_clauses(), proof.steps.size());
  }

  sat::DratCheckOptions opts;
  opts.assumptions = assumptions;
  opts.require_refutation = require_refutation;
  opts.collect_core = !core_path.empty() || !trim_path.empty();
  sat::DratCheckResult r = sat::check_drat(f, proof, opts);
  if (!quiet) {
    std::printf("c checked %zu additions, skipped %zu unused\n",
                r.steps_checked, r.steps_skipped);
    if (!r.ok) {
      std::printf("c rejected at step %zu: %s\n", r.failed_step,
                  r.message.c_str());
    }
  }
  if (r.ok && opts.collect_core) {
    if (!quiet) {
      std::printf("c core: %zu of %zu formula clauses, %zu of %zu "
                  "assumptions, %zu of %zu proof steps\n",
                  r.core_clauses.size(), f.num_clauses(),
                  r.core_assumptions.size(), assumptions.size(),
                  r.trimmed_proof.steps.size(), proof.steps.size());
    }
    if (!core_path.empty()) {
      // The core CNF folds used assumptions in as unit clauses, so it
      // is unsatisfiable on its own and the trimmed proof re-checks
      // against it without any --assume flags.
      CnfFormula core;
      if (f.num_vars() > 0) core.ensure_var(f.num_vars() - 1);
      std::size_t ci = 0;
      std::size_t idx = 0;
      for (const Clause& c : f) {
        if (ci < r.core_clauses.size() && r.core_clauses[ci] == idx) {
          core.add_clause(std::vector<Lit>(c.begin(), c.end()));
          ++ci;
        }
        ++idx;
      }
      for (Lit a : r.core_assumptions) core.add_unit(a);
      try {
        write_dimacs_file(core_path, core,
                          "clausal core of " + paths[0] + " via " + paths[1]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    }
    if (!trim_path.empty()) {
      std::ofstream out(trim_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trim_path.c_str());
        return 2;
      }
      sat::write_drat_text(out, r.trimmed_proof);
    }
  }
  std::printf(r.ok ? "s VERIFIED\n" : "s NOT VERIFIED\n");
  return r.ok ? 0 : 1;
}
