/// \file cli.hpp
/// \brief Shared command-line handling for the sateda-* tools.
///
/// Every solver-backed tool takes the same knobs — engine selection
/// (--engine/--threads/--deterministic), resource budgets
/// (--timeout/--max-conflicts) and reporting (--stats/--quiet) — and
/// reports verdicts with SAT-competition exit codes.  This header
/// centralizes all of it so a flag behaves identically everywhere and
/// a new tool gets the full set in three lines:
///
///   tools::CommonCli common;
///   for (int i = 1; i < argc; ++i)
///     if (common.consume(argc, argv, i)) continue;  // else tool flags
///   ...
///   sat::EngineSpec spec = common.spec();   // throws invalid_argument
///   common.apply(solver_options);           // budgets
#pragma once

#include <cstdint>
#include <string>

#include "cnf/literal.hpp"
#include "sat/engine.hpp"

namespace sateda::tools {

// SAT-competition exit codes, shared by every tool front end.
inline constexpr int kExitSat = 10;
inline constexpr int kExitUnsat = 20;
inline constexpr int kExitUnknown = 0;
inline constexpr int kExitError = 2;

/// Maps a solve verdict to its SAT-competition exit code.
int solve_exit_code(sat::SolveResult r);

/// The shared options, parsed incrementally by consume().
struct CommonCli {
  std::string engine_name = "cdcl";  ///< --engine
  int threads = 0;                   ///< --threads (0 = one per core)
  bool deterministic = false;        ///< --deterministic
  std::int64_t max_conflicts = -1;   ///< --max-conflicts (-1 unlimited)
  std::int64_t time_budget_ms = -1;  ///< --timeout, converted to ms
  bool stats = false;                ///< --stats
  bool quiet = false;                ///< --quiet
  bool engine_flag_seen = false;     ///< any engine-selection flag given

  /// Tries to consume argv[i] as a shared option, advancing \p i past
  /// the flag's value when it takes one.  Returns true when consumed.
  /// A malformed value prints an error to stderr and exits kExitError
  /// (matching the tools' historical behaviour for bad arguments).
  bool consume(int argc, char** argv, int& i);

  /// The engine spec the flags describe.  Throws std::invalid_argument
  /// on an unknown engine name.
  sat::EngineSpec spec() const;

  /// Applies the budget flags onto solver options (only the flags the
  /// user actually set override the tool's defaults).
  void apply(sat::SolverOptions& opts) const;
};

/// Help text for the shared flags, ready to print inside a tool's
/// usage message (every line ends in '\n').
const char* engine_help();   ///< --engine/--threads/--deterministic
const char* budget_help();   ///< --timeout/--max-conflicts
const char* report_help();   ///< --stats/--quiet

/// Parses a nonzero DIMACS literal code ("7", "-3") into a Lit.
/// Prints an error and exits kExitError on 0 or garbage.
Lit parse_dimacs_lit(const char* text, const char* flag);

/// Prints a multi-line text block with a "c " prefix per line — the
/// SAT-competition comment convention for stats dumps.
void print_comment_block(const std::string& block);

}  // namespace sateda::tools
