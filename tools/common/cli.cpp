#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sateda::tools {

namespace {

const char* value_of(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s needs an argument\n", flag);
    std::exit(kExitError);
  }
  return argv[++i];
}

}  // namespace

int solve_exit_code(sat::SolveResult r) {
  switch (r) {
    case sat::SolveResult::kSat: return kExitSat;
    case sat::SolveResult::kUnsat: return kExitUnsat;
    case sat::SolveResult::kUnknown: return kExitUnknown;
  }
  return kExitUnknown;
}

bool CommonCli::consume(int argc, char** argv, int& i) {
  const char* arg = argv[i];
  if (std::strcmp(arg, "--engine") == 0) {
    engine_name = value_of(argc, argv, i, "--engine");
    engine_flag_seen = true;
  } else if (std::strcmp(arg, "--threads") == 0) {
    threads = std::atoi(value_of(argc, argv, i, "--threads"));
    engine_flag_seen = true;
  } else if (std::strcmp(arg, "--deterministic") == 0) {
    deterministic = true;
    engine_flag_seen = true;
  } else if (std::strcmp(arg, "--max-conflicts") == 0) {
    max_conflicts = std::atoll(value_of(argc, argv, i, "--max-conflicts"));
  } else if (std::strcmp(arg, "--timeout") == 0) {
    const double seconds = std::atof(value_of(argc, argv, i, "--timeout"));
    if (seconds < 0) {
      std::fprintf(stderr, "error: --timeout takes a nonnegative number\n");
      std::exit(kExitError);
    }
    time_budget_ms = static_cast<std::int64_t>(seconds * 1000.0);
  } else if (std::strcmp(arg, "--stats") == 0) {
    stats = true;
  } else if (std::strcmp(arg, "--quiet") == 0) {
    quiet = true;
  } else {
    return false;
  }
  return true;
}

sat::EngineSpec CommonCli::spec() const {
  // Only the flags the user actually set override the spec text, so
  // "--engine portfolio:8:det" alone keeps its embedded fields.
  sat::EngineSpec s = sat::EngineSpec::parse(engine_name);
  if (threads != 0) s.with_workers(threads);
  if (deterministic) s.with_deterministic(true);
  return s;
}

void CommonCli::apply(sat::SolverOptions& opts) const {
  if (max_conflicts >= 0) opts.conflict_budget = max_conflicts;
  if (time_budget_ms >= 0) opts.time_budget_ms = time_budget_ms;
}

const char* engine_help() {
  return
      "  --engine NAME        SAT backend: cdcl (default), dpll, wsat,\n"
      "                       portfolio (parallel clause-sharing CDCL);\n"
      "                       spec syntax also accepted (portfolio:8:det)\n"
      "  --threads N          portfolio worker count (0 = one per core)\n"
      "  --deterministic      portfolio: reproducible barrier-synchronized\n"
      "                       rounds instead of free racing\n";
}

const char* budget_help() {
  return
      "  --max-conflicts N    give up after N conflicts (per worker)\n"
      "  --timeout S          give up after S seconds of wall clock\n"
      "                       (answer UNKNOWN, exit 0)\n";
}

const char* report_help() {
  return
      "  --stats              print a detailed counter breakdown after\n"
      "                       solving\n"
      "  --quiet              suppress `c` comment lines\n";
}

Lit parse_dimacs_lit(const char* text, const char* flag) {
  char* end = nullptr;
  const long long code = std::strtoll(text, &end, 10);
  if (code == 0 || end == text || *end != '\0') {
    std::fprintf(stderr, "error: %s takes a nonzero DIMACS literal\n", flag);
    std::exit(kExitError);
  }
  const Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
  return Lit(v, code < 0);
}

void print_comment_block(const std::string& block) {
  std::size_t start = 0;
  while (start <= block.size()) {
    const std::size_t end = block.find('\n', start);
    const std::string line = block.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (!line.empty()) std::printf("c %s\n", line.c_str());
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

}  // namespace sateda::tools
