/// \file sateda_atpg.cpp
/// \brief Command-line ATPG for BENCH netlists.
///
/// Usage: sateda_atpg [options] <file.bench>
///   --no-random          skip the random-pattern phase
///   --no-collapse        keep the uncollapsed fault list
///   --no-layer           plain CNF queries (no §5 layer)
///   --patterns           print the generated test set
///   --faults             print per-fault status
/// plus the shared budget/report flags (--timeout, --max-conflicts,
/// --stats, --quiet).  The TPG queries run on the §5 structural
/// circuit-SAT layer, so --engine does not apply here.
#include <cstdio>
#include <cstring>
#include <string>

#include "atpg/engine.hpp"
#include "circuit/bench_io.hpp"
#include "common/cli.hpp"

int main(int argc, char** argv) {
  using namespace sateda;
  std::string path;
  atpg::AtpgOptions opts;
  bool show_patterns = false, show_faults = false;
  tools::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    if (arg == "--no-random") {
      opts.random_phase = false;
    } else if (arg == "--no-collapse") {
      opts.collapse = false;
    } else if (arg == "--no-layer") {
      opts.use_structural_layer = false;
    } else if (arg == "--patterns") {
      show_patterns = true;
    } else if (arg == "--faults") {
      show_faults = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--no-random] [--no-collapse] [--no-layer] "
                   "[--patterns] [--faults] [--timeout S] [--max-conflicts N] "
                   "[--stats] <file.bench>\n",
                   argv[0]);
      return 2;
    } else {
      path = arg;
    }
  }
  if (common.engine_flag_seen) {
    std::fprintf(stderr, "error: the TPG queries run on the structural "
                         "circuit-SAT layer; --engine does not apply\n");
    return 2;
  }
  common.apply(opts.solver);
  if (common.max_conflicts >= 0) opts.conflict_budget = common.max_conflicts;
  if (path.empty()) {
    std::fprintf(stderr, "error: no input netlist\n");
    return 2;
  }
  circuit::Circuit c;
  try {
    c = circuit::read_bench_file(path);
  } catch (const circuit::CircuitError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("circuit: %zu inputs, %zu gates, %zu outputs\n",
              c.inputs().size(), c.num_gates(), c.outputs().size());
  atpg::AtpgResult r = atpg::run_atpg(c, opts);
  std::printf("%s\n", r.stats.summary().c_str());
  if (common.stats) {
    std::printf("sat calls         : %d\n", r.stats.sat_calls);
    std::printf("decisions         : %lld\n",
                static_cast<long long>(r.stats.decisions));
    std::printf("conflicts         : %lld\n",
                static_cast<long long>(r.stats.conflicts));
  }
  std::printf("fault coverage    : %.2f%%\n",
              100.0 * r.stats.fault_coverage());
  std::printf("test efficiency   : %.2f%%\n",
              100.0 * r.stats.test_efficiency());
  std::printf("test patterns     : %zu\n", r.tests.size());
  if (show_patterns) {
    for (std::size_t i = 0; i < r.tests.size(); ++i) {
      std::printf("t%zu ", i);
      for (bool b : r.tests[i]) std::printf("%d", b ? 1 : 0);
      std::printf("\n");
    }
  }
  if (show_faults) {
    for (std::size_t i = 0; i < r.faults.size(); ++i) {
      const char* st = "?";
      switch (r.status[i]) {
        case atpg::FaultStatus::kDetected: st = "detected"; break;
        case atpg::FaultStatus::kRedundant: st = "redundant"; break;
        case atpg::FaultStatus::kAborted: st = "aborted"; break;
        case atpg::FaultStatus::kUntested: st = "untested"; break;
      }
      std::printf("%-16s %s\n", to_string(r.faults[i]).c_str(), st);
    }
  }
  return r.stats.aborted == 0 ? 0 : 1;
}
