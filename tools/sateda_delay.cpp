/// \file sateda_delay.cpp
/// \brief Command-line SAT-based timing analysis for BENCH netlists:
///        topological vs sensitizable delay, false-path report, and
///        path-delay tests for the longest structural paths.
///
/// Usage: sateda_delay [--paths N] [--engine SPEC] [--threads N]
///        [--timeout S] [--max-conflicts N] [--stats] <file.bench>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "circuit/bench_io.hpp"
#include "common/cli.hpp"
#include "delay/delay.hpp"

int main(int argc, char** argv) {
  using namespace sateda;
  std::string path;
  std::size_t max_paths = 8;
  tools::CommonCli common;
  delay::DelayOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    if (arg == "--paths" && i + 1 < argc) {
      max_paths = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--paths N] [--engine SPEC] [--threads N] "
                   "[--timeout S] [--max-conflicts N] [--stats] "
                   "<file.bench>\n",
                   argv[0]);
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "error: no input netlist\n");
    return 2;
  }
  try {
    opts.engine = common.spec();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  common.apply(opts.solver);
  if (common.max_conflicts >= 0) opts.conflict_budget = common.max_conflicts;
  try {
    circuit::Circuit c = circuit::read_bench_file(path);
    delay::DelayResult r = delay::compute_delay(c, opts);
    std::printf("topological delay : %d\n", r.topological);
    std::printf("sensitizable delay: %d  (%d SAT queries)\n", r.sensitizable,
                r.sat_queries);
    if (common.stats) {
      std::printf("conflicts         : %lld\n",
                  static_cast<long long>(r.conflicts));
    }
    if (r.sensitizable < r.topological) {
      std::printf("false paths       : every path longer than %d is "
                  "statically unsensitizable\n",
                  r.sensitizable);
    }
    std::printf("critical vector   :");
    for (bool b : r.critical_vector) std::printf(" %d", b ? 1 : 0);
    std::printf("\n\nlongest structural paths (up to %zu):\n", max_paths);
    for (const delay::Path& p : delay::longest_paths(c, max_paths)) {
      auto witness = delay::sensitize_path(c, p);
      std::printf("  len %zu [%s]:", p.size() - 1,
                  witness.has_value() ? "testable" : "FALSE");
      for (circuit::NodeId n : p) {
        std::string name = c.node(n).name;
        if (name.empty()) name = "n" + std::to_string(n);
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
    }
    return 0;
  } catch (const circuit::CircuitError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
