/// \file sateda_cec.cpp
/// \brief Command-line combinational equivalence checker for two BENCH
///        netlists with matching interfaces.
///
/// Usage: sateda_cec [--no-strash] [--rewrite] [--pg] [--struct-hints]
///        [--timeout S] [--max-conflicts N] [--stats]
///        <golden.bench> <revised.bench>
/// Exit code: 0 equivalent, 1 not equivalent, 2 error/unknown.
/// By default the miter query runs on the §5 structural circuit-SAT
/// layer (--engine does not apply).  --rewrite / --pg / --struct-hints
/// route it through the structure-aware CNF pipeline instead (AIG
/// rewriting → polarity-aware cone encoding → StructureHints), where
/// --engine selects the SAT backend.
#include <cstdio>
#include <string>

#include "circuit/bench_io.hpp"
#include "circuit/simulator.hpp"
#include "common/cli.hpp"
#include "equiv/cec.hpp"

int main(int argc, char** argv) {
  using namespace sateda;
  equiv::CecOptions opts;
  std::string a_path, b_path;
  tools::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    std::string arg = argv[i];
    if (arg == "--no-strash") {
      opts.structural_hashing = false;
    } else if (arg == "--rewrite") {
      opts.rewrite = true;
    } else if (arg == "--pg") {
      opts.plaisted_greenbaum = true;
    } else if (arg == "--struct-hints") {
      opts.struct_hints = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--no-strash] [--rewrite] [--pg] "
                   "[--struct-hints] [--timeout S] [--max-conflicts N] "
                   "[--stats] <a.bench> <b.bench>\n",
                   argv[0]);
      return 2;
    } else if (a_path.empty()) {
      a_path = arg;
    } else {
      b_path = arg;
    }
  }
  if (common.engine_flag_seen && !opts.wants_cnf_pipeline()) {
    std::fprintf(stderr,
                 "error: the default miter query runs on the structural "
                 "circuit-SAT layer; --engine applies only with "
                 "--rewrite/--pg/--struct-hints\n");
    return 2;
  }
  if (common.engine_flag_seen) {
    try {
      opts.engine = common.spec();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  common.apply(opts.solver);
  if (common.max_conflicts >= 0) opts.conflict_budget = common.max_conflicts;
  if (a_path.empty() || b_path.empty()) {
    std::fprintf(stderr, "error: need two netlists\n");
    return 2;
  }
  try {
    circuit::Circuit a = circuit::read_bench_file(a_path);
    circuit::Circuit b = circuit::read_bench_file(b_path);
    equiv::CecResult r = equiv::check_equivalence(a, b, opts);
    std::printf("verdict: %s%s\n", to_string(r.verdict).c_str(),
                r.settled_structurally ? " (structural)" : "");
    if (common.stats) {
      std::printf("decisions: %lld\nconflicts: %lld\n",
                  static_cast<long long>(r.decisions),
                  static_cast<long long>(r.conflicts));
    }
    if (r.verdict == equiv::CecVerdict::kNotEquivalent) {
      std::printf("counterexample:");
      for (bool bit : r.counterexample) std::printf(" %d", bit ? 1 : 0);
      std::printf("\n");
      auto ga = circuit::simulate_outputs(a, r.counterexample);
      auto gb = circuit::simulate_outputs(b, r.counterexample);
      std::printf("%s outputs:", a_path.c_str());
      for (bool bit : ga) std::printf(" %d", bit ? 1 : 0);
      std::printf("\n%s outputs:", b_path.c_str());
      for (bool bit : gb) std::printf(" %d", bit ? 1 : 0);
      std::printf("\n");
      return 1;
    }
    return r.verdict == equiv::CecVerdict::kEquivalent ? 0 : 2;
  } catch (const circuit::CircuitError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
