// Fixture for sateda-lit-var-index-confusion.
//
// Mirrors the solver's two index spaces: per-variable arrays
// (assigns_, level_, ...) are indexed by Lit::var(), per-literal
// arrays (watches_, bin_watches_) by Lit::index().  The loose::Lit
// class adds the implicit `operator int()` the in-tree Lit
// deliberately omits, to exercise the implicit-conversion arm.

template <class T>
struct Vec {
  T &operator[](unsigned i);
  const T &operator[](unsigned i) const;
};

class Lit {
 public:
  explicit Lit(int code) : code_(code) {}
  int var() const { return code_ >> 1; }
  int index() const { return code_; }

 private:
  int code_;
};

namespace loose {
class Lit {
 public:
  int var() const;
  int index() const;
  operator int() const;  // implicit escape hatch — the bug enabler
};
}  // namespace loose

struct Solver {
  Vec<signed char> assigns_;
  Vec<int> level_;
  Vec<int> watches_;
  Vec<int> bin_watches_;

  int bad_var_array_lit_index(Lit l) {
    return level_[l.index()];  // WARN: per-variable container with .index()
  }

  signed char ok_var_array(Lit l) { return assigns_[l.var()]; }

  int bad_lit_array_var_index(Lit l) {
    return watches_[l.var()];  // WARN: per-literal container with .var()
  }

  int ok_lit_array(Lit l) { return bin_watches_[l.index()]; }

  signed char bad_implicit_conversion(loose::Lit l) {
    return assigns_[l];  // WARN: implicit Lit -> int conversion as index
  }

  signed char ok_explicit_cast(loose::Lit l) {
    // An explicit cast is the programmer saying "I meant it".
    return assigns_[static_cast<int>(l)];
  }

  int ok_untracked_container(Lit l) {
    Vec<int> scratch;
    return scratch[l.index()];  // not a configured container name
  }
};
