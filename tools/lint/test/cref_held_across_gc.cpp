// Fixture for sateda-cref-held-across-gc.
//
// Self-contained mock of the arena API: CRef is a raw offset typedef
// exactly like src/sat/arena.hpp, and check_garbage()/reduce_db() are
// names on the check's default may-compact list.  Lines expected to
// produce a warning carry a `// WARN` marker; scripts/lint_fixtures.sh
// diffs clang-tidy's output against them.

using CRef = unsigned int;

CRef alloc_clause();
unsigned clause_size(CRef c);
void check_garbage();
void reduce_db();
void bump_activity();  // not on the may-compact list

void bad_read_after_gc() {
  CRef c = alloc_clause();
  check_garbage();
  clause_size(c);  // WARN: read after may-compact call
}

void bad_read_after_reduce() {
  CRef c = alloc_clause();
  reduce_db();
  if (clause_size(c) != 0u) {  // WARN: read after may-compact call
  }
}

void ok_rederived_after_gc() {
  CRef c = alloc_clause();
  check_garbage();
  c = alloc_clause();  // re-derived: the stale value is dead
  clause_size(c);
}

void ok_read_before_gc() {
  CRef c = alloc_clause();
  clause_size(c);
  check_garbage();
}

void ok_no_gc_in_between() {
  CRef c = alloc_clause();
  bump_activity();
  clause_size(c);
}

void ok_not_a_cref() {
  unsigned n = clause_size(alloc_clause());
  check_garbage();
  clause_size(n);  // plain unsigned, not a CRef spelling
}
