// Fixture for sateda-cref-held-across-gc.
//
// Self-contained mock of the arena API: CRef is a raw offset typedef
// exactly like src/sat/arena.hpp, and check_garbage()/reduce_db() are
// names on the check's default may-compact list.  Lines expected to
// produce a warning carry a `// WARN` marker; scripts/lint_fixtures.sh
// diffs clang-tidy's output against them.

using CRef = unsigned int;

CRef alloc_clause();
unsigned clause_size(CRef c);
void check_garbage();
void reduce_db();
void bump_activity();  // not on the may-compact list

void bad_read_after_gc() {
  CRef c = alloc_clause();
  check_garbage();
  clause_size(c);  // WARN: read after may-compact call
}

void bad_read_after_reduce() {
  CRef c = alloc_clause();
  reduce_db();
  if (clause_size(c) != 0u) {  // WARN: read after may-compact call
  }
}

void ok_rederived_after_gc() {
  CRef c = alloc_clause();
  check_garbage();
  c = alloc_clause();  // re-derived: the stale value is dead
  clause_size(c);
}

void ok_read_before_gc() {
  CRef c = alloc_clause();
  clause_size(c);
  check_garbage();
}

void ok_no_gc_in_between() {
  CRef c = alloc_clause();
  bump_activity();
  clause_size(c);
}

void ok_not_a_cref() {
  unsigned n = clause_size(alloc_clause());
  check_garbage();
  clause_size(n);  // plain unsigned, not a CRef spelling
}

// Watch-arena slab references follow the same invalidation contract:
// WatchRef is a raw pool offset (src/sat/watch.hpp) and the rebuild /
// rebuild_watches entry points compact the watcher pool, so a held
// WatchRef dangles across them exactly like a CRef across arena GC.
// .clang-tidy adds WatchRef to CrefTypes and both names to GcFunctions.

using WatchRef = unsigned int;

WatchRef watch_slab(unsigned lit);
unsigned watch_slab_count(WatchRef w);
void rebuild_watches();
void rebuild();

void bad_slab_ref_across_watch_rebuild() {
  WatchRef w = watch_slab(3u);
  rebuild_watches();
  watch_slab_count(w);  // WARN: slab offset stale after pool compaction
}

void bad_slab_ref_across_gc_rebuild() {
  WatchRef w = watch_slab(5u);
  rebuild();
  if (watch_slab_count(w) != 0u) {  // WARN: read after may-compact call
  }
}

void ok_slab_rederived_after_rebuild() {
  WatchRef w = watch_slab(3u);
  rebuild_watches();
  w = watch_slab(3u);  // re-derived: the stale offset is dead
  watch_slab_count(w);
}

void ok_slab_read_before_rebuild() {
  WatchRef w = watch_slab(7u);
  watch_slab_count(w);
  rebuild_watches();
}
