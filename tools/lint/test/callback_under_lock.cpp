// Fixture for sateda-callback-under-lock.
//
// Stub std::function / lock types so the fixture compiles with no
// include path; the check matches on class *names* (function,
// MutexLock, lock_guard, ...) so the stubs behave like the real thing.
// Mirrors the serve layer's respond-outside-lock contract.

namespace std {
template <class T>
class function;
template <class R, class... A>
class function<R(A...)> {
 public:
  R operator()(A...) const;
};
class mutex {
 public:
  void lock();
  void unlock();
};
template <class M>
class lock_guard {
 public:
  explicit lock_guard(M &m);
};
}  // namespace std

class Mutex {
 public:
  void lock();
  void unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex *mu);
  void Unlock();
  void Lock();
};

struct Server {
  Mutex mu_;
  std::mutex raw_mu_;
  std::function<void(int)> hook_;

  void bad_callback_under_mutexlock(const std::function<void(int)> &respond) {
    MutexLock lock(&mu_);
    respond(1);  // WARN: callback while guard held
  }

  void ok_callback_after_unlock(const std::function<void(int)> &respond) {
    MutexLock lock(&mu_);
    lock.Unlock();
    respond(1);  // guard released above
  }

  void bad_callback_after_relock(const std::function<void(int)> &respond) {
    MutexLock lock(&mu_);
    lock.Unlock();
    respond(1);  // released: fine
    lock.Lock();
    hook_(2);  // WARN: guard re-acquired before the call
  }

  void bad_callback_under_std_guard() {
    std::lock_guard<std::mutex> lock(raw_mu_);
    hook_(3);  // WARN: std::lock_guard counts too
  }

  void ok_callback_no_guard(const std::function<void(int)> &respond) {
    respond(4);
  }

  void ok_deferred_in_lambda() {
    MutexLock lock(&mu_);
    // The lambda body runs later — the guard is not (necessarily) held
    // at invocation time, so this must not warn.
    auto task = [this] { hook_(5); };
    (void)task;
  }
};
