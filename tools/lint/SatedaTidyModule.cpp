/// \file SatedaTidyModule.cpp
/// \brief clang-tidy module registering the sateda project-specific
///        checks.
///
/// Built as a standalone shared object and loaded into stock
/// clang-tidy with `-load libSatedaTidyModule.so`; the checks then
/// behave like any built-in check (enable with `-checks=sateda-*`,
/// configure through CheckOptions in .clang-tidy).
///
/// The three checks mechanize the two bug classes code review has had
/// to catch by hand since the arena (PR 3) and the concurrent layers
/// (PRs 1/6) landed, plus the portfolio's historical deadlock shape:
///
///   sateda-cref-held-across-gc      arena offsets dangling across a
///                                   compacting GC
///   sateda-lit-var-index-confusion  Lit-indexed vs Var-indexed
///                                   container mixups
///   sateda-callback-under-lock      user callbacks invoked while a
///                                   lock guard is held

#include <clang-tidy/ClangTidyModule.h>
#include <clang-tidy/ClangTidyModuleRegistry.h>

#include "CallbackUnderLockCheck.hpp"
#include "CrefHeldAcrossGcCheck.hpp"
#include "LitVarIndexConfusionCheck.hpp"

namespace clang::tidy::sateda {

class SatedaModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<CrefHeldAcrossGcCheck>(
        "sateda-cref-held-across-gc");
    CheckFactories.registerCheck<LitVarIndexConfusionCheck>(
        "sateda-lit-var-index-confusion");
    CheckFactories.registerCheck<CallbackUnderLockCheck>(
        "sateda-callback-under-lock");
  }
};

}  // namespace clang::tidy::sateda

namespace clang::tidy {

// Register the module with the hosting clang-tidy's registry.
static ClangTidyModuleRegistry::Add<sateda::SatedaModule> X(
    "sateda-module", "Adds the sateda EDA-SAT project-specific checks.");

// Anchor so the static registration above is not dead-stripped.
volatile int SatedaModuleAnchorSource = 0;  // NOLINT

}  // namespace clang::tidy
