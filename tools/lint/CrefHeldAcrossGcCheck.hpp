/// \file CrefHeldAcrossGcCheck.hpp
/// \brief sateda-cref-held-across-gc: flags a CRef local that is read
///        after a call that may compact the clause arena.
///
/// A `CRef` is a raw uint32 word offset into the flat ClauseArena
/// (src/sat/arena.hpp).  Compacting garbage collection relocates every
/// live clause and rewrites the watch lists, reasons and clause lists
/// — but it cannot rewrite a CRef sitting in a local variable, which
/// silently points into freed (or worse, reused) arena memory
/// afterwards.  The check warns when a CRef-typed local whose value
/// was obtained *before* a may-compact call is read *after* it.
///
/// Options:
///   GcFunctions  semicolon-separated callee names that may compact
///                (default: the solver's GC/reduce/inprocess/import
///                entry points — see the .cpp)
///   CrefTypes    semicolon-separated type spellings treated as arena
///                references (default "CRef")
#pragma once

#include <clang-tidy/ClangTidyCheck.h>

#include <string>
#include <vector>

#include "llvm/ADT/DenseSet.h"

namespace clang::tidy::sateda {

class CrefHeldAcrossGcCheck : public ClangTidyCheck {
 public:
  CrefHeldAcrossGcCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool isGcCallee(const FunctionDecl *Callee) const;
  bool isCrefType(QualType Type) const;

  const std::string RawGcFunctions;
  const std::string RawCrefTypes;
  std::vector<std::string> GcFunctions;
  std::vector<std::string> CrefTypes;
  llvm::DenseSet<const FunctionDecl *> AnalyzedFunctions;
};

}  // namespace clang::tidy::sateda
