/// \file LitVarIndexConfusionCheck.hpp
/// \brief sateda-lit-var-index-confusion: catches mixing up the two
///        index spaces of the solver's flat arrays.
///
/// The solver keeps *per-variable* arrays (assigns_, level_, reason_,
/// ...) indexed by `Var` (= `lit.var()`) and *per-literal* arrays
/// (watches_, bin_watches_) indexed by `lit.index()` (= 2*var+sign).
/// Indexing one with the other's index is always a bug — it reads the
/// wrong slot (or runs off the end) yet type-checks fine because both
/// indices are plain integers.  The check flags:
///
///   1. a per-variable container subscripted with `<expr>.index()`,
///   2. a per-literal container subscripted with `<expr>.var()`,
///   3. a subscript whose index is an implicit user-defined conversion
///      from a `Lit` (e.g. a fixture Lit with a non-explicit
///      `operator int()` — the in-tree Lit deliberately has none).
///
/// Options:
///   VarIndexedMembers  semicolon-separated names of per-variable
///                      containers
///   LitIndexedMembers  semicolon-separated names of per-literal
///                      containers
///   LitTypes           type spellings treated as literal types
///                      (default "Lit")
#pragma once

#include <clang-tidy/ClangTidyCheck.h>

#include <string>
#include <vector>

namespace clang::tidy::sateda {

class LitVarIndexConfusionCheck : public ClangTidyCheck {
 public:
  LitVarIndexConfusionCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool isVarIndexed(StringRef Container) const;
  bool isLitIndexed(StringRef Container) const;
  bool isLitType(QualType Type) const;
  StringRef containerName(const Expr *Base) const;

  const std::string RawVarIndexedMembers;
  const std::string RawLitIndexedMembers;
  const std::string RawLitTypes;
  std::vector<std::string> VarIndexedMembers;
  std::vector<std::string> LitIndexedMembers;
  std::vector<std::string> LitTypes;
};

}  // namespace clang::tidy::sateda
