/// \file CallbackUnderLockCheck.hpp
/// \brief sateda-callback-under-lock: flags a std::function callback
///        invoked while a lock guard is held.
///
/// The serve layer's contract (DESIGN.md "Concurrency contracts") is
/// that user-supplied callbacks — respond hooks, progress hooks — are
/// invoked *outside* the scheduler lock: a callback that re-enters
/// `submit()` or blocks on I/O while the lock is held deadlocks the
/// worker pool.  The check warns when a `std::function` call operator
/// runs in a scope where a lock guard (MutexLock, std::lock_guard,
/// std::unique_lock, std::scoped_lock) is live, unless the guard was
/// textually released with `Unlock()`/`unlock()` before the call.
///
/// Lambdas are a boundary: a callback invoked inside a lambda body is
/// only flagged against guards declared inside that same lambda, since
/// the lambda may run long after the enclosing guard is gone.
///
/// Options:
///   CallbackTypes   semicolon-separated class names whose operator()
///                    is treated as a user callback (default "function")
///   LockGuardTypes  semicolon-separated class names treated as lock
///                    guards (default
///                    "MutexLock;lock_guard;unique_lock;scoped_lock")
#pragma once

#include <clang-tidy/ClangTidyCheck.h>

#include <string>
#include <vector>

namespace clang::tidy::sateda {

class CallbackUnderLockCheck : public ClangTidyCheck {
 public:
  CallbackUnderLockCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  bool isCallbackType(QualType Type) const;
  bool isLockGuardType(QualType Type) const;
  bool guardHeldAt(const VarDecl *Guard, const Expr *Call, const Stmt *Body,
                   ASTContext &Ctx, const SourceManager &SM) const;

  const std::string RawCallbackTypes;
  const std::string RawLockGuardTypes;
  std::vector<std::string> CallbackTypes;
  std::vector<std::string> LockGuardTypes;
};

}  // namespace clang::tidy::sateda
