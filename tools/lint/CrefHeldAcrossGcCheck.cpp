#include "CrefHeldAcrossGcCheck.hpp"

#include <clang-tidy/ClangTidyContext.h>

#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/DiagnosticIDs.h"
#include "llvm/ADT/DenseMap.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang::tidy::sateda {

namespace {

/// The solver entry points after which any previously obtained CRef
/// must be considered invalid: direct compaction, the reduce passes
/// that schedule it, and the import/inprocess wrappers that can reach
/// it.  rebuild/rebuild_watches compact the flat watch arena the same
/// way, invalidating WatchRef and slab Entry* (see CrefTypes).  Kept
/// as names (not qualified paths) so the check also fires on wrappers
/// in tests and fixtures.
constexpr char kDefaultGcFunctions[] =
    "add_learnt_clause;import_shared_clauses;check_garbage;garbage_collect;"
    "reduce_db;reduce_db_tiered;reduce_db_size_bounded;reduce_db_legacy;"
    "run_inprocess;simplify_db;rebuild;rebuild_watches";

std::vector<std::string> splitList(llvm::StringRef Raw) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty()) Out.push_back(P.str());
  }
  return Out;
}

/// True when \p Ref is the target of an assignment (the value it held
/// before is dead, so a preceding GC no longer matters).
bool isWriteRef(const DeclRefExpr *Ref, ASTContext &Ctx) {
  const Stmt *Child = Ref;
  auto Parents = Ctx.getParents(*Child);
  while (!Parents.empty()) {
    const Stmt *P = Parents[0].get<Stmt>();
    if (P == nullptr) break;
    if (const auto *BO = dyn_cast<BinaryOperator>(P)) {
      return BO->isAssignmentOp() &&
             BO->getLHS()->IgnoreParenCasts() == Ref;
    }
    if (isa<ImplicitCastExpr>(P) || isa<ParenExpr>(P)) {
      Child = P;
      Parents = Ctx.getParents(*Child);
      continue;
    }
    break;
  }
  return false;
}

}  // namespace

CrefHeldAcrossGcCheck::CrefHeldAcrossGcCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawGcFunctions(Options.get("GcFunctions", kDefaultGcFunctions)),
      RawCrefTypes(Options.get("CrefTypes", "CRef")),
      GcFunctions(splitList(RawGcFunctions)),
      CrefTypes(splitList(RawCrefTypes)) {}

void CrefHeldAcrossGcCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "GcFunctions", RawGcFunctions);
  Options.store(Opts, "CrefTypes", RawCrefTypes);
}

bool CrefHeldAcrossGcCheck::isGcCallee(const FunctionDecl *Callee) const {
  if (Callee == nullptr || !Callee->getDeclName().isIdentifier()) return false;
  StringRef Name = Callee->getName();
  for (const std::string &Gc : GcFunctions) {
    if (Name == Gc) return true;
  }
  return false;
}

bool CrefHeldAcrossGcCheck::isCrefType(QualType Type) const {
  if (Type.isNull()) return false;
  // Match on the *written* type, not the canonical one: CRef is a
  // typedef for uint32_t and the canonical spelling would flag every
  // unsigned local in the tree.
  const std::string Spelling =
      Type.getNonReferenceType().getUnqualifiedType().getAsString();
  for (const std::string &Name : CrefTypes) {
    if (Spelling == Name) return true;
    if (Spelling.size() > Name.size() + 2 &&
        Spelling.compare(Spelling.size() - Name.size(), Name.size(), Name) ==
            0 &&
        Spelling.compare(Spelling.size() - Name.size() - 2, 2, "::") == 0) {
      return true;  // qualified spelling like sateda::sat::CRef
    }
  }
  return false;
}

void CrefHeldAcrossGcCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  // Match every call inside a function definition; callee-name and
  // CRef filtering happen in check() so the configured lists stay
  // runtime options.
  Finder->addMatcher(
      callExpr(forFunction(
                   functionDecl(isDefinition(), hasBody(compoundStmt()))
                       .bind("fn")))
          .bind("gc"),
      this);
}

void CrefHeldAcrossGcCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const auto *GcCall = Result.Nodes.getNodeAs<CallExpr>("gc");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (Fn == nullptr || GcCall == nullptr) return;
  if (!isGcCallee(GcCall->getDirectCallee())) return;
  // The whole function is analyzed on its first may-compact call; the
  // remaining matches in the same function are duplicates.
  if (!AnalyzedFunctions.insert(Fn).second) return;

  ASTContext &Ctx = *Result.Context;
  const SourceManager &SM = *Result.SourceManager;
  const Stmt *Body = Fn->getBody();
  if (Body == nullptr) return;

  llvm::SmallVector<const CallExpr *, 8> GcCalls;
  for (const auto &M : match(findAll(callExpr().bind("c")), *Body, Ctx)) {
    const auto *CE = M.getNodeAs<CallExpr>("c");
    if (CE != nullptr && isGcCallee(CE->getDirectCallee()))
      GcCalls.push_back(CE);
  }

  struct Access {
    const DeclRefExpr *Ref;
    bool IsWrite;
  };
  llvm::DenseMap<const VarDecl *, llvm::SmallVector<Access, 8>> ByVar;
  for (const auto &M :
       match(findAll(declRefExpr(to(varDecl().bind("vd"))).bind("ref")),
             *Body, Ctx)) {
    const auto *VD = M.getNodeAs<VarDecl>("vd");
    const auto *Ref = M.getNodeAs<DeclRefExpr>("ref");
    if (VD == nullptr || Ref == nullptr) continue;
    if (!VD->hasLocalStorage() || !isCrefType(VD->getType())) continue;
    ByVar[VD].push_back({Ref, isWriteRef(Ref, Ctx)});
  }

  for (const auto &Entry : ByVar) {
    const VarDecl *VD = Entry.first;
    for (const Access &A : Entry.second) {
      if (A.IsWrite) continue;
      const SourceLocation UseLoc = A.Ref->getBeginLoc();
      // The value being read was produced by the last write (or the
      // declaration) before this use.
      SourceLocation LastWrite = VD->getLocation();
      for (const Access &W : Entry.second) {
        if (!W.IsWrite) continue;
        const SourceLocation WLoc = W.Ref->getBeginLoc();
        if (SM.isBeforeInTranslationUnit(WLoc, UseLoc) &&
            SM.isBeforeInTranslationUnit(LastWrite, WLoc)) {
          LastWrite = WLoc;
        }
      }
      for (const CallExpr *CE : GcCalls) {
        if (SM.isBeforeInTranslationUnit(LastWrite, CE->getBeginLoc()) &&
            SM.isBeforeInTranslationUnit(CE->getEndLoc(), UseLoc)) {
          const FunctionDecl *Callee = CE->getDirectCallee();
          diag(UseLoc,
               "CRef '%0' is read after a call to '%1' that may compact "
               "the clause arena; the reference may dangle — re-derive it "
               "after the call")
              << VD->getName()
              << (Callee != nullptr ? Callee->getName() : StringRef("<gc>"));
          diag(CE->getBeginLoc(), "the arena may be compacted here",
               DiagnosticIDs::Note);
          break;  // one diagnostic per use is enough
        }
      }
    }
  }
}

}  // namespace clang::tidy::sateda
