#include "LitVarIndexConfusionCheck.hpp"

#include <clang-tidy/ClangTidyContext.h>

#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang::tidy::sateda {

namespace {

// The solver's flat arrays, by index space (src/sat/solver.hpp).
constexpr char kDefaultVarIndexedMembers[] =
    "assigns_;level_;reason_;activity_;polarity_;decision_;frozen_;"
    "eliminated_;seen_;retired_;model_";
constexpr char kDefaultLitIndexedMembers[] = "watches_;bin_watches_";

std::vector<std::string> splitList(llvm::StringRef Raw) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty()) Out.push_back(P.str());
  }
  return Out;
}

bool nameInList(llvm::StringRef Name, const std::vector<std::string> &List) {
  for (const std::string &Entry : List) {
    if (Name == Entry) return true;
  }
  return false;
}

/// Strips implicit casts / parens only — an explicit cast is the
/// programmer saying "I meant it", so it must stop the walk.
const Expr *stripImplicit(const Expr *E) {
  while (E != nullptr) {
    if (const auto *ICE = dyn_cast<ImplicitCastExpr>(E)) {
      E = ICE->getSubExpr();
      continue;
    }
    if (const auto *PE = dyn_cast<ParenExpr>(E)) {
      E = PE->getSubExpr();
      continue;
    }
    if (const auto *MTE = dyn_cast<MaterializeTemporaryExpr>(E)) {
      E = MTE->getSubExpr();
      continue;
    }
    break;
  }
  return E;
}

}  // namespace

LitVarIndexConfusionCheck::LitVarIndexConfusionCheck(StringRef Name,
                                                     ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawVarIndexedMembers(
          Options.get("VarIndexedMembers", kDefaultVarIndexedMembers)),
      RawLitIndexedMembers(
          Options.get("LitIndexedMembers", kDefaultLitIndexedMembers)),
      RawLitTypes(Options.get("LitTypes", "Lit")),
      VarIndexedMembers(splitList(RawVarIndexedMembers)),
      LitIndexedMembers(splitList(RawLitIndexedMembers)),
      LitTypes(splitList(RawLitTypes)) {}

void LitVarIndexConfusionCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "VarIndexedMembers", RawVarIndexedMembers);
  Options.store(Opts, "LitIndexedMembers", RawLitIndexedMembers);
  Options.store(Opts, "LitTypes", RawLitTypes);
}

bool LitVarIndexConfusionCheck::isVarIndexed(StringRef Container) const {
  return nameInList(Container, VarIndexedMembers);
}

bool LitVarIndexConfusionCheck::isLitIndexed(StringRef Container) const {
  return nameInList(Container, LitIndexedMembers);
}

bool LitVarIndexConfusionCheck::isLitType(QualType Type) const {
  if (Type.isNull()) return false;
  const std::string Spelling =
      Type.getNonReferenceType().getUnqualifiedType().getAsString();
  for (const std::string &Name : LitTypes) {
    if (Spelling == Name) return true;
    if (Spelling.size() > Name.size() + 2 &&
        Spelling.compare(Spelling.size() - Name.size(), Name.size(), Name) ==
            0 &&
        Spelling.compare(Spelling.size() - Name.size() - 2, 2, "::") == 0) {
      return true;
    }
  }
  return false;
}

StringRef LitVarIndexConfusionCheck::containerName(const Expr *Base) const {
  if (Base == nullptr) return {};
  Base = Base->IgnoreParenImpCasts();
  const NamedDecl *ND = nullptr;
  if (const auto *ME = dyn_cast<MemberExpr>(Base)) {
    ND = ME->getMemberDecl();
  } else if (const auto *DRE = dyn_cast<DeclRefExpr>(Base)) {
    ND = DRE->getDecl();
  }
  if (ND == nullptr || !ND->getDeclName().isIdentifier()) return {};
  return ND->getName();
}

void LitVarIndexConfusionCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  // vector-style overloaded operator[] ...
  Finder->addMatcher(
      cxxOperatorCallExpr(hasOverloadedOperatorName("[]")).bind("opcall"),
      this);
  // ... and raw array subscripts.
  Finder->addMatcher(arraySubscriptExpr().bind("array"), this);
}

void LitVarIndexConfusionCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const Expr *Base = nullptr;
  const Expr *Index = nullptr;
  if (const auto *Op = Result.Nodes.getNodeAs<CXXOperatorCallExpr>("opcall")) {
    if (Op->getNumArgs() < 2) return;
    Base = Op->getArg(0);
    Index = Op->getArg(1);
  } else if (const auto *AS =
                 Result.Nodes.getNodeAs<ArraySubscriptExpr>("array")) {
    Base = AS->getBase();
    Index = AS->getIdx();
  }
  if (Base == nullptr || Index == nullptr) return;

  const StringRef Container = containerName(Base);
  if (Container.empty()) return;
  const bool VarIndexed = isVarIndexed(Container);
  const bool LitIndexed = isLitIndexed(Container);
  if (!VarIndexed && !LitIndexed) return;

  const Expr *Idx = stripImplicit(Index);

  // Arms 1+2: the index is spelled `<lit>.index()` / `<lit>.var()`.
  if (const auto *MC = dyn_cast<CXXMemberCallExpr>(Idx)) {
    const CXXMethodDecl *MD = MC->getMethodDecl();
    if (MD != nullptr && MD->getDeclName().isIdentifier() &&
        MC->getNumArgs() == 0 &&
        isLitType(MC->getImplicitObjectArgument()->getType())) {
      const StringRef Method = MD->getName();
      if (VarIndexed && Method == "index") {
        diag(Index->getBeginLoc(),
             "per-variable container '%0' indexed with Lit::index(); "
             "per-variable state is indexed by .var()")
            << Container;
        return;
      }
      if (LitIndexed && Method == "var") {
        diag(Index->getBeginLoc(),
             "per-literal container '%0' indexed with Lit::var(); "
             "watch-style state is indexed by .index()")
            << Container;
        return;
      }
    }
    // A conversion operator reached through implicit casts only is arm 3.
    if (MD != nullptr && isa<CXXConversionDecl>(MD) &&
        isLitType(MC->getImplicitObjectArgument()->getType())) {
      diag(Index->getBeginLoc(),
           "container '%0' indexed with a Lit through an implicit "
           "conversion; spell the index space explicitly with .var() or "
           ".index()")
          << Container;
      return;
    }
  }

  // Arm 3 (constructor form): a Lit built implicitly from the index or
  // vice versa, e.g. an int-taking subscript fed a braced Lit.
  if (const auto *CC = dyn_cast<CXXConstructExpr>(Idx)) {
    if (CC->getNumArgs() == 1 && isLitType(CC->getType()) &&
        !isLitType(CC->getArg(0)->getType())) {
      diag(Index->getBeginLoc(),
           "container '%0' indexed through an implicit conversion to a "
           "Lit; spell the index space explicitly with .var() or .index()")
          << Container;
      return;
    }
  }
}

}  // namespace clang::tidy::sateda
