#include "CallbackUnderLockCheck.hpp"

#include <clang-tidy/ClangTidyContext.h>

#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/DiagnosticIDs.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang::tidy::sateda {

namespace {

std::vector<std::string> splitList(llvm::StringRef Raw) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Raw.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty()) Out.push_back(P.str());
  }
  return Out;
}

/// Class-name test on the written type: "MutexLock" matches both
/// `MutexLock` and `sateda::MutexLock`; "lock_guard" matches any
/// `std::lock_guard<...>` specialization.
bool recordNameIn(QualType Type, const std::vector<std::string> &Names) {
  if (Type.isNull()) return false;
  const CXXRecordDecl *RD =
      Type.getNonReferenceType()->getAsCXXRecordDecl();
  if (RD == nullptr || !RD->getDeclName().isIdentifier()) return false;
  const llvm::StringRef Name = RD->getName();
  for (const std::string &Entry : Names) {
    if (Name == Entry) return true;
  }
  return false;
}

/// Display name for the callback being invoked ("respond", "hook_", …).
llvm::StringRef callbackName(const Expr *Base) {
  if (Base == nullptr) return "callback";
  Base = Base->IgnoreParenImpCasts();
  const NamedDecl *ND = nullptr;
  if (const auto *ME = dyn_cast<MemberExpr>(Base)) {
    ND = ME->getMemberDecl();
  } else if (const auto *DRE = dyn_cast<DeclRefExpr>(Base)) {
    ND = DRE->getDecl();
  }
  if (ND == nullptr || !ND->getDeclName().isIdentifier()) return "callback";
  return ND->getName();
}

}  // namespace

CallbackUnderLockCheck::CallbackUnderLockCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawCallbackTypes(Options.get("CallbackTypes", "function")),
      RawLockGuardTypes(Options.get(
          "LockGuardTypes", "MutexLock;lock_guard;unique_lock;scoped_lock")),
      CallbackTypes(splitList(RawCallbackTypes)),
      LockGuardTypes(splitList(RawLockGuardTypes)) {}

void CallbackUnderLockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CallbackTypes", RawCallbackTypes);
  Options.store(Opts, "LockGuardTypes", RawLockGuardTypes);
}

bool CallbackUnderLockCheck::isCallbackType(QualType Type) const {
  return recordNameIn(Type, CallbackTypes);
}

bool CallbackUnderLockCheck::isLockGuardType(QualType Type) const {
  return recordNameIn(Type, LockGuardTypes);
}

void CallbackUnderLockCheck::registerMatchers(
    ast_matchers::MatchFinder *Finder) {
  Finder->addMatcher(
      cxxOperatorCallExpr(
          hasOverloadedOperatorName("()"),
          forFunction(functionDecl(isDefinition()).bind("fn")))
          .bind("call"),
      this);
}

/// A guard declared before \p Call is held at the call unless the last
/// member-function call on it before \p Call (textually) is an
/// `Unlock()`/`unlock()`; an intervening `Lock()`/`lock()` re-arms it.
bool CallbackUnderLockCheck::guardHeldAt(const VarDecl *Guard,
                                         const Expr *Call, const Stmt *Body,
                                         ASTContext &Ctx,
                                         const SourceManager &SM) const {
  bool Held = true;
  SourceLocation Latest = Guard->getLocation();
  for (const auto &M :
       match(findAll(cxxMemberCallExpr(
                         on(declRefExpr(to(varDecl(equalsNode(Guard))))))
                         .bind("mc")),
             *Body, Ctx)) {
    const auto *MC = M.getNodeAs<CXXMemberCallExpr>("mc");
    if (MC == nullptr) continue;
    const CXXMethodDecl *MD = MC->getMethodDecl();
    if (MD == nullptr || !MD->getDeclName().isIdentifier()) continue;
    const SourceLocation Loc = MC->getBeginLoc();
    if (!SM.isBeforeInTranslationUnit(Loc, Call->getBeginLoc())) continue;
    if (!SM.isBeforeInTranslationUnit(Latest, Loc)) continue;
    const llvm::StringRef Method = MD->getName();
    if (Method == "Unlock" || Method == "unlock") {
      Held = false;
      Latest = Loc;
    } else if (Method == "Lock" || Method == "lock") {
      Held = true;
      Latest = Loc;
    }
  }
  return Held;
}

void CallbackUnderLockCheck::check(
    const ast_matchers::MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CXXOperatorCallExpr>("call");
  const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (Call == nullptr || Fn == nullptr || Call->getNumArgs() < 1) return;
  const Expr *Base = Call->getArg(0);
  if (!isCallbackType(Base->getType())) return;

  ASTContext &Ctx = *Result.Context;
  const SourceManager &SM = *Result.SourceManager;
  const Stmt *Body = Fn->getBody();
  if (Body == nullptr) return;

  // Collect the enclosing scopes up to the nearest lambda/function
  // boundary: a guard outside a lambda body is not (necessarily) held
  // when the lambda eventually runs.
  llvm::SmallVector<const CompoundStmt *, 8> Scopes;
  DynTypedNode Cur = DynTypedNode::create(*Call);
  while (true) {
    const auto Parents = Ctx.getParents(Cur);
    if (Parents.empty()) break;
    const DynTypedNode &P = Parents[0];
    if (P.get<LambdaExpr>() != nullptr || P.get<Decl>() != nullptr) break;
    if (const auto *CS = P.get<CompoundStmt>()) Scopes.push_back(CS);
    Cur = P;
  }

  for (const CompoundStmt *CS : Scopes) {
    for (const Stmt *S : CS->body()) {
      if (!SM.isBeforeInTranslationUnit(S->getBeginLoc(),
                                        Call->getBeginLoc())) {
        break;
      }
      const auto *DS = dyn_cast<DeclStmt>(S);
      if (DS == nullptr) continue;
      for (const Decl *D : DS->decls()) {
        const auto *VD = dyn_cast<VarDecl>(D);
        if (VD == nullptr || !isLockGuardType(VD->getType())) continue;
        if (!guardHeldAt(VD, Call, Body, Ctx, SM)) continue;
        diag(Call->getBeginLoc(),
             "callback '%0' invoked while lock guard '%1' is held; "
             "release the guard (or defer the call) before running user "
             "code")
            << callbackName(Base) << VD->getName();
        diag(VD->getLocation(), "lock guard '%0' acquired here",
             DiagnosticIDs::Note)
            << VD->getName();
        return;  // one diagnostic per invocation
      }
    }
  }
}

}  // namespace clang::tidy::sateda
