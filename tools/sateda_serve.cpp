/// \file sateda_serve.cpp
/// \brief SAT-as-a-service daemon: persistent sessions, JSONL over
///        stdin/stdout or length-prefixed frames over a Unix socket.
///
/// The daemon keeps one warm incremental engine per named session, so
/// a stream of related queries (ATPG faults, CEC cones, BMC frames)
/// reuses learnt clauses, VSIDS activity and saved phases instead of
/// re-deriving them per query.  See src/serve/protocol.hpp for the
/// message reference and DESIGN.md for the serving architecture.
///
/// Modes:
///   (default)            serve JSONL on stdin/stdout until EOF or a
///                        shutdown request
///   --socket PATH        serve length-prefixed JSON frames on a Unix
///                        domain socket (concurrent connections)
///   --bench              run the built-in ATPG load benchmark (all
///                        single-stuck-at queries of a generated
///                        circuit, warm sessions vs cold per-query
///                        sessions) and write BENCH_serve.json
///   --gen-atpg-trace F   record the warm single-session ATPG request
///                        stream as a JSONL file (the serve-smoke CI
///                        trace), instead of serving
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "atpg/fault.hpp"
#include "atpg/fault_cnf.hpp"
#include "circuit/encoder.hpp"
#include "circuit/generators.hpp"
#include "cnf/dimacs.hpp"
#include "common/cli.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/mutex.hpp"

namespace {

using namespace sateda;

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "SAT-as-a-service daemon over warm incremental sessions.\n"
      "Protocol: one JSON request per line (or per frame with\n"
      "--socket); see README 'sateda-serve protocol'.\n"
      "\n"
      "transports:\n"
      "  (default)            JSONL on stdin/stdout\n"
      "  --socket PATH        Unix domain socket, 4-byte big-endian\n"
      "                       length-prefixed JSON frames\n"
      "\n"
      "daemon options:\n"
      "  --workers N          concurrent session executors (default 2)\n"
      "%s"
      "%s"
      "\n"
      "benchmark / trace:\n"
      "  --bench              ATPG load benchmark, writes --bench-out\n"
      "  --bench-out FILE     default BENCH_serve.json\n"
      "  --circuit NAME       generated circuit: adder<N>, alu<N>,\n"
      "                       mult<N> (default alu6)\n"
      "  --sessions N         warm sessions to spread faults over\n"
      "                       (default 4)\n"
      "  --gen-atpg-trace F   write the warm ATPG JSONL trace to F\n"
      "%s"
      "  --help               this message\n",
      argv0, tools::engine_help(), tools::budget_help(), tools::report_help());
}

// --- ATPG request-stream generation ---------------------------------
//
// Mirrors SolverSession's variable allocation exactly (push takes one
// selector variable, then the fault query allocates from the next
// id), so the recorded requests can predict every variable the
// session will hand out.  This is the documented allocation guarantee
// in sat/session.hpp.

struct AtpgQuery {
  std::string fault;          ///< to_string(Fault) — used as request id
  serve::Json clauses;        ///< JSON array of clauses (DIMACS ints)
  std::vector<std::int64_t> assume;
};

struct AtpgLoad {
  std::string circuit_name;
  int nodes = 0;
  std::string dimacs;         ///< good-circuit base encoding
  std::vector<AtpgQuery> queries;
};

circuit::Circuit make_circuit(const std::string& name) {
  auto starts = [&](const char* p) {
    return name.rfind(p, 0) == 0;
  };
  const auto num = [&](std::size_t prefix_len) {
    return std::atoi(name.c_str() + prefix_len);
  };
  if (starts("adder")) return circuit::ripple_carry_adder(num(5));
  if (starts("alu")) return circuit::alu(num(3));
  if (starts("mult")) return circuit::array_multiplier(num(4));
  throw std::invalid_argument("unknown --circuit '" + name +
                              "' (adder<N>, alu<N>, mult<N>)");
}

AtpgLoad build_atpg_load(const std::string& circuit_name) {
  AtpgLoad load;
  load.circuit_name = circuit_name;
  const circuit::Circuit c = make_circuit(circuit_name);
  load.nodes = static_cast<int>(c.num_nodes());
  const CnfFormula base = circuit::encode_circuit(c);
  std::ostringstream dimacs;
  write_dimacs(dimacs, base, "good-circuit encoding of " + circuit_name);
  load.dimacs = dimacs.str();

  const std::vector<atpg::Fault> faults =
      atpg::collapse_faults(c, atpg::enumerate_faults(c));
  Var next_free = static_cast<Var>(base.num_vars());
  for (const atpg::Fault& f : faults) {
    // push() takes next_free (the epoch selector); query vars follow.
    const atpg::FaultQueryCnf q = atpg::encode_fault_query(c, f, next_free + 1);
    if (q.trivially_redundant) continue;
    AtpgQuery query;
    query.fault = atpg::to_string(f);
    query.clauses = serve::Json::array();
    for (const Clause& cl : q.clauses) {
      serve::Json row = serve::Json::array();
      for (Lit l : cl) row.push_back(serve::to_dimacs(l));
      query.clauses.push_back(std::move(row));
    }
    for (Lit a : q.assumptions) query.assume.push_back(serve::to_dimacs(a));
    load.queries.push_back(std::move(query));
    next_free = q.next_var;
  }
  return load;
}

serve::Json request(const char* op, const std::string& session) {
  serve::Json r = serve::Json::object();
  r.set("op", op);
  r.set("session", session);
  return r;
}

/// The warm request stream for one session covering queries
/// [begin, end): open, load, then push/add/solve/pop per fault.
std::vector<std::string> warm_trace(const AtpgLoad& load,
                                    const std::string& session,
                                    std::size_t begin, std::size_t end,
                                    const std::string& engine,
                                    std::int64_t conflicts, bool dump_cnf) {
  std::vector<std::string> lines;
  serve::Json open = request("open", session);
  if (!engine.empty()) open.set("engine", engine);
  if (conflicts >= 0) open.set("conflicts", conflicts);
  lines.push_back(open.dump());
  serve::Json loadreq = request("load", session);
  loadreq.set("dimacs", load.dimacs);
  lines.push_back(loadreq.dump());
  for (std::size_t i = begin; i < end; ++i) {
    const AtpgQuery& q = load.queries[i];
    lines.push_back(request("push", session).dump());
    serve::Json add = request("add", session);
    add.set("clauses", q.clauses);
    lines.push_back(add.dump());
    serve::Json solve = request("solve", session);
    solve.set("id", q.fault);
    serve::Json assume = serve::Json::array();
    for (std::int64_t a : q.assume) assume.push_back(a);
    solve.set("assume", std::move(assume));
    if (dump_cnf) solve.set("dump_cnf", true);
    lines.push_back(solve.dump());
    lines.push_back(request("pop", session).dump());
  }
  lines.push_back(request("close", session).dump());
  return lines;
}

/// The cold request stream: every query gets its own throwaway
/// session that reloads the circuit from scratch.
std::vector<std::string> cold_trace(const AtpgLoad& load,
                                    const std::string& engine,
                                    std::int64_t conflicts) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < load.queries.size(); ++i) {
    const AtpgQuery& q = load.queries[i];
    const std::string session = "cold-" + std::to_string(i);
    serve::Json open = request("open", session);
    if (!engine.empty()) open.set("engine", engine);
    if (conflicts >= 0) open.set("conflicts", conflicts);
    lines.push_back(open.dump());
    serve::Json loadreq = request("load", session);
    loadreq.set("dimacs", load.dimacs);
    lines.push_back(loadreq.dump());
    serve::Json add = request("add", session);
    add.set("clauses", q.clauses);
    lines.push_back(add.dump());
    serve::Json solve = request("solve", session);
    solve.set("id", q.fault);
    serve::Json assume = serve::Json::array();
    for (std::int64_t a : q.assume) assume.push_back(a);
    solve.set("assume", std::move(assume));
    lines.push_back(solve.dump());
    lines.push_back(request("close", session).dump());
  }
  return lines;
}

// --- benchmark ------------------------------------------------------

struct RunStats {
  double total_sec = 0.0;
  double queries_per_sec = 0.0;
  std::vector<double> wall_ms;       ///< per solve response
  std::map<std::string, std::string> verdicts;  ///< fault -> result
  int sat = 0, unsat = 0, unknown = 0, errors = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Fires the request lines at an in-process server (all pipelined up
/// front — the scheduler interleaves sessions), collects per-solve
/// timings and verdicts.
RunStats run_load(serve::Server& server,
                  const std::vector<std::string>& lines) {
  RunStats rs;
  sateda::Mutex mu;
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& line : lines) {
    server.submit(line, [&rs, &mu](std::string text) {
      serve::Json resp;
      try {
        resp = serve::Json::parse(text);
      } catch (const serve::JsonError&) {
        sateda::MutexLock lock(&mu);
        ++rs.errors;
        return;
      }
      const serve::Json* ok = resp.find("ok");
      const serve::Json* result = resp.find("result");
      sateda::MutexLock lock(&mu);
      if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
        ++rs.errors;
        return;
      }
      if (result == nullptr || !result->is_string()) return;  // non-solve
      if (result->as_string() == "pong") return;
      if (const serve::Json* wall = resp.find("wall_ms")) {
        rs.wall_ms.push_back(wall->as_number());
      }
      const serve::Json* rid = resp.find("id");
      if (rid != nullptr && rid->is_string()) {
        rs.verdicts[rid->as_string()] = result->as_string();
      }
      if (result->as_string() == "sat") ++rs.sat;
      else if (result->as_string() == "unsat") ++rs.unsat;
      else ++rs.unknown;
    });
  }
  server.drain();
  const auto t1 = std::chrono::steady_clock::now();
  rs.total_sec = std::chrono::duration<double>(t1 - t0).count();
  const std::size_t solves = rs.wall_ms.size();
  rs.queries_per_sec =
      rs.total_sec > 0.0 ? static_cast<double>(solves) / rs.total_sec : 0.0;
  return rs;
}

serve::Json run_json(const RunStats& rs) {
  serve::Json j = serve::Json::object();
  j.set("total_sec", rs.total_sec);
  j.set("queries_per_sec", rs.queries_per_sec);
  j.set("p50_ms", percentile(rs.wall_ms, 0.50));
  j.set("p95_ms", percentile(rs.wall_ms, 0.95));
  j.set("p99_ms", percentile(rs.wall_ms, 0.99));
  j.set("sat", rs.sat);
  j.set("unsat", rs.unsat);
  j.set("unknown", rs.unknown);
  j.set("errors", rs.errors);
  return j;
}

int run_bench(const std::string& circuit_name, int workers, int sessions,
              const std::string& engine, std::int64_t conflicts,
              const std::string& out_path, bool quiet) {
  const AtpgLoad load = build_atpg_load(circuit_name);
  if (load.queries.empty()) {
    std::fprintf(stderr, "error: no testable faults in %s\n",
                 circuit_name.c_str());
    return 2;
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "c serve-bench: %s (%d nodes), %zu fault queries, "
                 "%d workers, %d warm sessions\n",
                 circuit_name.c_str(), load.nodes, load.queries.size(),
                 workers, sessions);
  }

  // Warm: faults spread over a few long-lived sessions, epochs reused.
  std::vector<std::string> warm_lines;
  const std::size_t per =
      (load.queries.size() + static_cast<std::size_t>(sessions) - 1) /
      static_cast<std::size_t>(sessions);
  for (int s = 0; s < sessions; ++s) {
    const std::size_t begin = static_cast<std::size_t>(s) * per;
    const std::size_t end = std::min(begin + per, load.queries.size());
    if (begin >= end) break;
    std::vector<std::string> part =
        warm_trace(load, "warm-" + std::to_string(s), begin, end, engine,
                   conflicts, /*dump_cnf=*/false);
    warm_lines.insert(warm_lines.end(), part.begin(), part.end());
  }

  serve::ServerOptions sopts;
  sopts.workers = workers;
  RunStats warm, cold;
  {
    serve::Server server(sopts);
    warm = run_load(server, warm_lines);
  }
  {
    serve::Server server(sopts);
    cold = run_load(server, cold_trace(load, engine, conflicts));
  }

  bool identical = warm.verdicts.size() == cold.verdicts.size();
  if (identical) {
    for (const auto& [fault, verdict] : warm.verdicts) {
      auto it = cold.verdicts.find(fault);
      if (it == cold.verdicts.end() || it->second != verdict) {
        identical = false;
        break;
      }
    }
  }
  const double speedup = cold.queries_per_sec > 0.0
                             ? warm.queries_per_sec / cold.queries_per_sec
                             : 0.0;
  if (!quiet) {
    std::fprintf(stderr,
                 "c warm: %.1f q/s (p50 %.2f ms, p95 %.2f ms)  "
                 "cold: %.1f q/s (p50 %.2f ms, p95 %.2f ms)\n",
                 warm.queries_per_sec, percentile(warm.wall_ms, 0.5),
                 percentile(warm.wall_ms, 0.95), cold.queries_per_sec,
                 percentile(cold.wall_ms, 0.5),
                 percentile(cold.wall_ms, 0.95));
    std::fprintf(stderr, "c warm/cold speedup: %.2fx, answers %s\n", speedup,
                 identical ? "identical" : "DIFFER");
  }

  serve::Json out = serve::Json::object();
  out.set("benchmark", "serve_atpg");
  out.set("circuit", circuit_name);
  out.set("nodes", load.nodes);
  out.set("fault_queries", static_cast<std::int64_t>(load.queries.size()));
  out.set("workers", workers);
  out.set("warm_sessions", sessions);
  out.set("engine", engine.empty() ? "cdcl" : engine);
  out.set("warm", run_json(warm));
  out.set("cold", run_json(cold));
  out.set("warm_cold_speedup", speedup);
  out.set("answers_identical", identical);
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }
  f << out.dump() << "\n";
  if (!quiet) std::fprintf(stderr, "c wrote %s\n", out_path.c_str());
  if (!identical || warm.errors > 0 || cold.errors > 0) return 1;
  return 0;
}

// --- Unix socket transport ------------------------------------------

/// std::streambuf over a connected socket fd, so the shared framing
/// codec (serve/framing.hpp) drives real connections too.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
  }

 protected:
  int_type underflow() override {
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }
  int_type overflow(int_type c) override {
    if (c != traits_type::eof()) {
      const char byte = traits_type::to_char_type(c);
      if (::write(fd_, &byte, 1) != 1) return traits_type::eof();
    }
    return c;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize done = 0;
    while (done < n) {
      const ssize_t w = ::write(fd_, s + done, static_cast<size_t>(n - done));
      if (w <= 0) return done;
      done += w;
    }
    return done;
  }

 private:
  int fd_;
  char in_[4096];
};

void serve_connection(serve::Server& server, int fd) {
  FdStreambuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);
  sateda::Mutex out_mu;
  std::string payload;
  while (!server.shutdown_requested()) {
    const serve::FrameStatus st = serve::read_frame(in, payload);
    if (st == serve::FrameStatus::kEof ||
        st == serve::FrameStatus::kTruncated) {
      break;
    }
    if (st == serve::FrameStatus::kOversized) {
      // The stream can no longer be trusted to be in sync: answer
      // once, then drop the connection.
      const std::string resp =
          serve::error_response(nullptr, serve::kErrFrame,
                                "frame exceeds 64 MiB limit")
              .dump();
      sateda::MutexLock lock(&out_mu);
      // Best effort: the connection is dropped right after this frame.
      (void)serve::write_frame(out, resp);
      break;
    }
    server.submit(payload, [&out, &out_mu](std::string resp) {
      sateda::MutexLock lock(&out_mu);
      if (!serve::write_frame(out, resp)) {
        // The response itself blew the 64 MiB frame cap (e.g. a
        // dump_cnf of a huge formula): substitute an in-band error so
        // the client is not left waiting on a frame that never comes.
        (void)serve::write_frame(
            out, serve::error_response(nullptr, serve::kErrFrame,
                                       "response exceeds frame size limit")
                     .dump());
      }
    });
  }
  server.drain();  // responses must not outlive the connection buffers
  ::close(fd);
}

int run_socket(serve::Server& server, const std::string& path, bool quiet) {
  ::signal(SIGPIPE, SIG_IGN);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 2;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "error: socket path too long\n");
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("bind/listen");
    ::close(listen_fd);
    return 2;
  }
  if (!quiet) std::fprintf(stderr, "c sateda-serve listening on %s\n",
                           path.c_str());
  std::vector<std::thread> connections;
  while (!server.shutdown_requested()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200);
    if (r < 0) break;
    if (r == 0) continue;  // timeout: re-check shutdown
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [&server, fd] { serve_connection(server, fd); });
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  for (std::thread& t : connections) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::CommonCli common;
  std::string socket_path;
  std::string trace_path;
  std::string bench_out = "BENCH_serve.json";
  std::string circuit_name = "alu6";
  int workers = 2;
  int sessions = 4;
  bool bench = false;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--bench") {
      bench = true;
    } else if (arg == "--bench-out" && i + 1 < argc) {
      bench_out = argv[++i];
    } else if (arg == "--circuit" && i + 1 < argc) {
      circuit_name = argv[++i];
    } else if (arg == "--gen-atpg-trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown option %s (--help for usage)\n",
                   arg.c_str());
      return tools::kExitError;
    }
  }

  std::string engine_text;
  if (common.engine_flag_seen) {
    try {
      engine_text = common.spec().to_string();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return tools::kExitError;
    }
  }

  if (!trace_path.empty()) {
    try {
      const AtpgLoad load = build_atpg_load(circuit_name);
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 2;
      }
      for (const std::string& line :
           warm_trace(load, "atpg", 0, load.queries.size(), engine_text,
                      common.max_conflicts, /*dump_cnf=*/true)) {
        out << line << "\n";
      }
      if (!common.quiet) {
        std::fprintf(stderr, "c wrote %zu-query ATPG trace for %s to %s\n",
                     load.queries.size(), circuit_name.c_str(),
                     trace_path.c_str());
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  if (bench) {
    try {
      return run_bench(circuit_name, workers, sessions, engine_text,
                       common.max_conflicts, bench_out, common.quiet);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  serve::ServerOptions sopts;
  sopts.workers = workers;
  try {
    if (common.engine_flag_seen) sopts.default_engine = common.spec();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  common.apply(sopts.solver);
  sopts.default_budget.conflicts = common.max_conflicts;
  sopts.default_budget.time_ms = common.time_budget_ms;
  serve::Server server(sopts);

  if (!socket_path.empty()) {
    return run_socket(server, socket_path, common.quiet);
  }
  server.run_jsonl(std::cin, std::cout);
  if (common.stats) {
    const serve::ServerStats s = server.stats();
    std::fprintf(stderr,
                 "c serve: %llu requests, %llu sessions, %llu queries, "
                 "%llu errors\n",
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.sessions_opened),
                 static_cast<unsigned long long>(s.queries),
                 static_cast<unsigned long long>(s.errors));
  }
  return 0;
}
