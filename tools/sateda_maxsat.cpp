/// \file sateda_maxsat.cpp
/// \brief WCNF command-line MaxSAT solver over the core-guided engine
///        (opt/maxsat).
///
/// Reads a `p wcnf` file and minimizes the weight of falsified soft
/// clauses subject to the hard ones.  Output follows the MaxSAT
/// evaluation conventions: `c` comments, `o <cost>` bound lines, one
/// `s` status line and a `v` model line.  Exit code 30 = optimum
/// found, 20 = hard clauses unsatisfiable, 0 = undecided, 2 = usage
/// or input error, 1 = --expect mismatch.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "opt/maxsat/maxsat.hpp"
#include "opt/maxsat/wcnf.hpp"
#include "sat/engine.hpp"

namespace {

using sateda::opt::MaxSatAlgo;
using sateda::opt::MaxSatOptions;
using sateda::opt::MaxSatResult;
using sateda::opt::MaxSatStatus;
using sateda::opt::WcnfFormula;

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options] <file.wcnf | ->\n"
      "\n"
      "Reads a weighted CNF (`p wcnf <vars> <clauses> <top>`; weight ==\n"
      "top marks a hard clause) and computes a minimum-cost assignment\n"
      "with the core-guided MaxSAT engine.  Optima are proven, not\n"
      "approximated: the engine relaxes UNSAT cores until the model\n"
      "cost meets the certified lower bound.\n"
      "\n"
      "options:\n"
      "  --algo NAME      oll (default): one totalizer per core, bounds\n"
      "                   moved by assumptions; fumalik: clause cloning\n"
      "                   with per-round at-most-one relaxation\n"
      "  --engine NAME    SAT backend: cdcl (default), portfolio, ...;\n"
      "                   spec syntax also accepted (portfolio:8:det)\n"
      "  --threads N      portfolio worker count (0 = one per core)\n"
      "  --timeout S      per-SAT-call wall-clock budget in seconds\n"
      "  --no-minimize    skip core minimization before relaxing\n"
      "  --expect N       require the optimum to equal N (exit 1 when\n"
      "                   it does not) -- used by the smoke tests\n"
      "  --bench DIR      solve every *.wcnf under DIR and write a JSON\n"
      "                   report (see --out) instead of solving one file\n"
      "  --out FILE       JSON output path for --bench (default stdout)\n"
      "  --stats          detailed counters after solving\n"
      "  --quiet          suppress `c` comment lines\n"
      "  --help           this message\n"
      "\n"
      "output: `o <cost>` then `s OPTIMUM FOUND` (exit 30),\n"
      "`s UNSATISFIABLE` for inconsistent hard clauses (exit 20), or\n"
      "`s UNKNOWN` (exit 0); on an optimum a `v` line lists the model\n"
      "in DIMACS literals.\n",
      argv0);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.wcnf | ->  (--help for details)\n",
               argv0);
  return 2;
}

struct Cli {
  std::string path;
  std::string bench_dir;
  std::string out_path;
  MaxSatOptions opts;
  long long expect = -1;
  bool have_expect = false;
  bool stats = false;
  bool quiet = false;
};

double run_and_time(const WcnfFormula& w, const MaxSatOptions& opts,
                    MaxSatResult& result) {
  const auto t0 = std::chrono::steady_clock::now();
  result = sateda::opt::solve_maxsat(w, opts);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

const char* status_name(MaxSatStatus s) {
  switch (s) {
    case MaxSatStatus::kOptimal: return "OPTIMUM FOUND";
    case MaxSatStatus::kUnsat: return "UNSATISFIABLE";
    case MaxSatStatus::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

int solve_one(const Cli& cli) {
  WcnfFormula w;
  try {
    if (cli.path == "-") {
      w = sateda::opt::read_wcnf(std::cin);
    } else {
      w = sateda::opt::read_wcnf_file(cli.path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!cli.quiet) {
    std::printf("c sateda-maxsat: %d vars, %zu hard, %zu soft (top=%llu)\n",
                w.num_vars(), w.hard.num_clauses(), w.soft.size(),
                static_cast<unsigned long long>(w.top));
  }

  MaxSatResult r;
  const double ms = run_and_time(w, cli.opts, r);
  if (!cli.quiet) {
    std::printf("c %s in %.1f ms (%s)\n", status_name(r.status), ms,
                r.stats.summary().c_str());
  }
  if (cli.stats) {
    std::printf("%s", r.stats.solver.detailed().c_str());
  }
  if (r.status != MaxSatStatus::kUnsat) {
    std::printf("o %llu\n", static_cast<unsigned long long>(
                                r.status == MaxSatStatus::kOptimal
                                    ? r.cost
                                    : r.lower_bound));
  }
  std::printf("s %s\n", status_name(r.status));
  if (r.status == MaxSatStatus::kOptimal) {
    std::string v = "v";
    for (int i = 0; i < w.num_vars(); ++i) {
      const sateda::lbool val = static_cast<std::size_t>(i) < r.model.size()
                                    ? r.model[i]
                                    : sateda::l_undef;
      v += val.is_true() ? " " + std::to_string(i + 1)
                         : " -" + std::to_string(i + 1);
    }
    std::printf("%s 0\n", v.c_str());
  }
  std::fflush(stdout);

  if (cli.have_expect) {
    if (r.status != MaxSatStatus::kOptimal ||
        r.cost != static_cast<std::uint64_t>(cli.expect)) {
      std::fprintf(stderr,
                   "error: expected optimum %lld, got %s cost %llu\n",
                   cli.expect, status_name(r.status),
                   static_cast<unsigned long long>(r.cost));
      return 1;
    }
  }
  switch (r.status) {
    case MaxSatStatus::kOptimal: return 30;
    case MaxSatStatus::kUnsat: return 20;
    case MaxSatStatus::kUnknown: return 0;
  }
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

int run_bench(const Cli& cli) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cli.bench_dir, ec)) {
    if (entry.path().extension() == ".wcnf") files.push_back(entry.path());
  }
  if (ec || files.empty()) {
    std::fprintf(stderr, "error: no .wcnf files under %s\n",
                 cli.bench_dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::string json = "{\n  \"benchmark\": \"maxsat\",\n  \"algo\": \"";
  json += cli.opts.algo == MaxSatAlgo::kOll ? "oll" : "fumalik";
  json += "\",\n  \"instances\": [\n";
  bool all_ok = true;
  for (std::size_t i = 0; i < files.size(); ++i) {
    WcnfFormula w;
    try {
      w = sateda::opt::read_wcnf_file(files[i].string());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    MaxSatResult r;
    const double ms = run_and_time(w, cli.opts, r);
    if (r.status == MaxSatStatus::kUnknown) all_ok = false;
    if (!cli.quiet) {
      std::fprintf(stderr, "c %-32s %s cost=%llu rounds=%lld %.1f ms\n",
                   files[i].filename().string().c_str(),
                   status_name(r.status),
                   static_cast<unsigned long long>(r.cost),
                   static_cast<long long>(r.stats.rounds), ms);
    }
    json += "    {\"file\": \"" + json_escape(files[i].filename().string()) +
            "\", \"vars\": " + std::to_string(w.num_vars()) +
            ", \"soft\": " + std::to_string(w.soft.size()) +
            ", \"status\": \"" +
            (r.status == MaxSatStatus::kOptimal
                 ? "optimal"
                 : r.status == MaxSatStatus::kUnsat ? "unsat" : "unknown") +
            "\", \"cost\": " + std::to_string(r.cost) +
            ", \"rounds\": " + std::to_string(r.stats.rounds) +
            ", \"core_literals\": " + std::to_string(r.stats.core_literals) +
            ", \"solve_calls\": " +
            std::to_string(r.stats.solver.solve_calls) +
            ", \"time_ms\": " + std::to_string(ms) + "}";
    json += i + 1 < files.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (cli.out_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::ofstream out(cli.out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", cli.out_path.c_str());
      return 2;
    }
    out << json;
    if (!cli.quiet) {
      std::fprintf(stderr, "c wrote %s\n", cli.out_path.c_str());
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  sateda::tools::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--algo") {
      const std::string name = next("--algo");
      if (name == "oll") {
        cli.opts.algo = MaxSatAlgo::kOll;
      } else if (name == "fumalik" || name == "fu-malik") {
        cli.opts.algo = MaxSatAlgo::kFuMalik;
      } else {
        std::fprintf(stderr, "error: unknown --algo %s\n", name.c_str());
        return 2;
      }
    } else if (arg == "--no-minimize") {
      cli.opts.minimize_cores = false;
    } else if (arg == "--expect") {
      cli.expect = std::atoll(next("--expect"));
      cli.have_expect = true;
    } else if (arg == "--bench") {
      cli.bench_dir = next("--bench");
    } else if (arg == "--out") {
      cli.out_path = next("--out");
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      if (!cli.path.empty()) return usage(argv[0]);
      cli.path = arg;
    }
  }
  cli.stats = common.stats;
  cli.quiet = common.quiet;
  common.apply(cli.opts.solver);
  if (common.engine_flag_seen) {
    try {
      cli.opts.engine = common.spec();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (!cli.bench_dir.empty()) return run_bench(cli);
  if (cli.path.empty()) return usage(argv[0]);
  return solve_one(cli);
}
