/// \file sateda_cube.cpp
/// \brief Cube-and-conquer front end: lookahead split + work-stealing
///        conquer, with iCNF cube interchange and certified proofs.
///
/// The pipeline has two halves that compose through cube files:
///
///   sateda-cube hard.cnf                      # split + conquer
///   sateda-cube hard.cnf --cube-out h.icnf    # split only
///   sateda-cube hard.cnf --cube-in h.icnf     # conquer only
///
/// On UNSAT, --proof emits one linear DRAT refutation (per-worker
/// traces stitched in ticket order, then the cube tree's closing
/// clauses) that sateda-check certifies with no knowledge of cubes or
/// workers.  --procs trades the in-process pool (shared clause pool,
/// one address space) for `sateda-solve --cube-worker` child
/// processes driven over the serve frame transport.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cnf/dimacs.hpp"
#include "common/cli.hpp"
#include "sat/cube/conquer.hpp"
#include "sat/cube/proc.hpp"
#include "sat/cube/splitter.hpp"
#include "sat/proof.hpp"

namespace {

void print_help(const char* argv0) {
  std::printf(
      "usage: %s [options] <file.cnf>\n"
      "\n"
      "Decides a DIMACS CNF file by cube-and-conquer: a lookahead\n"
      "splitter partitions the search space into cubes, then a\n"
      "work-stealing pool of diversified CDCL workers races through\n"
      "them (SAT anywhere wins; UNSAT needs every cube refuted).\n"
      "\n"
      "splitting:\n"
      "  --cutoff N           split-tree depth cutoff (default 10)\n"
      "  --refute-conflicts N conflict budget for the dynamic cutoff\n"
      "                       probe that retires easy branches early\n"
      "                       (default 200, 0 disables)\n"
      "  --cube-out FILE      write cubes as iCNF (`a ... 0` lines) and\n"
      "                       exit without conquering\n"
      "  --cube-in FILE       skip splitting, conquer the given iCNF\n"
      "                       cubes (must form a complete split tree)\n"
      "\n"
      "conquering:\n"
      "  --workers N          conquer workers (default: one per core)\n"
      "  --procs N            use N `sateda-solve --cube-worker` child\n"
      "                       processes instead of in-process threads\n"
      "  --solver PATH        sateda-solve binary for --procs (default:\n"
      "                       next to this executable)\n"
      "  --no-share           disable learnt-clause sharing (threads)\n"
      "  --proof FILE         write a certified DRAT refutation on UNSAT\n"
      "  --seed N             splitter + steal-order seed (default 1)\n"
      "\n"
      "budgets and reporting:\n"
      "  --max-conflicts N    per-cube conflict budget\n"
      "  --timeout SECONDS    wall-clock budget for the whole run\n"
      "  --stats              per-cube statistics and depth histogram\n"
      "  --quiet              suppress `c` comment lines\n"
      "  --help               this message\n"
      "\n"
      "output: SAT-competition format.  Exit code 10 = SAT, 20 = UNSAT,\n"
      "0 = UNKNOWN, 2 = usage or input error.\n",
      argv0);
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [options] <file.cnf>  (--help for details)\n",
               argv0);
  return 2;
}

/// Default --procs solver path: sateda-solve next to this binary.
std::string sibling_solver(const char* argv0) {
  std::string s = argv0;
  const std::size_t slash = s.rfind('/');
  if (slash == std::string::npos) return "sateda-solve";
  return s.substr(0, slash + 1) + "sateda-solve";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sateda;
  namespace cube = sat::cube;

  std::string path;
  std::string proof_path;
  std::string cube_out;
  std::string cube_in;
  std::string solver_path;
  cube::SplitOptions sopts;
  int workers = 0;
  int procs = 0;
  bool share_clauses = true;
  std::uint64_t seed = 1;
  tools::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--cutoff" && i + 1 < argc) {
      sopts.cutoff = std::atoi(argv[++i]);
    } else if (arg == "--refute-conflicts" && i + 1 < argc) {
      sopts.refute_conflicts = std::atoll(argv[++i]);
    } else if (arg == "--cube-out" && i + 1 < argc) {
      cube_out = argv[++i];
    } else if (arg == "--cube-in" && i + 1 < argc) {
      cube_in = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--procs" && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
    } else if (arg == "--solver" && i + 1 < argc) {
      solver_path = argv[++i];
    } else if (arg == "--no-share") {
      share_clauses = false;
    } else if (arg == "--proof" && i + 1 < argc) {
      proof_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (!cube_out.empty() && !cube_in.empty()) {
    std::fprintf(stderr, "error: --cube-out and --cube-in are exclusive\n");
    return 2;
  }
  const bool quiet = common.quiet;
  sat::SolverOptions base;
  common.apply(base);
  sopts.seed = seed;
  sopts.time_budget_ms = common.time_budget_ms;

  CnfFormula f;
  try {
    f = read_dimacs_file(path);
  } catch (const DimacsError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (!quiet) {
    std::printf("c sateda_cube: %d vars, %zu clauses\n", f.num_vars(),
                f.num_clauses());
  }

  const auto t_start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&t_start] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t_start)
        .count();
  };

  // --- split (or load) the cube set ---------------------------------
  std::vector<cube::Cube> cubes;
  cube::CubeStats split_stats;
  if (!cube_in.empty()) {
    try {
      cubes = cube::read_cubes_file(cube_in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    std::string why;
    if (!cube::CubeTree::build(cubes).complete(&why)) {
      // An incomplete cover leaves corners of the search space
      // unexamined: refuting every listed cube would not refute F.
      std::fprintf(stderr, "error: %s is not a complete split tree: %s\n",
                   cube_in.c_str(), why.c_str());
      return 2;
    }
    if (!quiet) {
      std::printf("c loaded %zu cubes from %s\n", cubes.size(),
                  cube_in.c_str());
    }
  } else {
    cube::SplitResult sr = cube::split_formula(f, sopts);
    split_stats = sr.stats;
    if (!quiet) {
      std::printf("c split: %lld cubes (%lld refuted at split), max depth %d "
                  "(%lld ms)\n",
                  static_cast<long long>(sr.stats.cubes_generated),
                  static_cast<long long>(sr.stats.cubes_refuted_split),
                  sr.stats.max_depth, static_cast<long long>(elapsed_ms()));
    }
    if (sr.status == sat::SolveResult::kSat) {
      std::printf("s SATISFIABLE\n");
      std::printf("v");
      for (Var v = 0; v < f.num_vars(); ++v) {
        const lbool val = static_cast<std::size_t>(v) < sr.model.size()
                              ? sr.model[v]
                              : l_undef;
        std::printf(" %d", val.is_false() ? -(v + 1) : (v + 1));
      }
      std::printf(" 0\n");
      return tools::kExitSat;
    }
    cubes = std::move(sr.cubes);
  }

  if (!cube_out.empty()) {
    try {
      cube::write_cubes_file(cube_out, cubes);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    if (!quiet) {
      std::printf("c %zu cubes written to %s\n", cubes.size(),
                  cube_out.c_str());
    }
    return 0;
  }

  // --- conquer ------------------------------------------------------
  std::int64_t conquer_budget_ms = -1;
  if (common.time_budget_ms >= 0) {
    conquer_budget_ms =
        std::max<std::int64_t>(0, common.time_budget_ms - elapsed_ms());
  }

  sat::SolveResult verdict = sat::SolveResult::kUnknown;
  sat::UnknownReason unknown_reason = sat::UnknownReason::kNone;
  std::vector<lbool> model;
  cube::CubeStats conquer_stats;
  std::string drat_text;          // --procs proof
  sat::Proof stitched;            // in-process proof
  bool have_stitched = false;

  if (procs > 0) {
    cube::ProcOptions popts;
    popts.solver_path = solver_path.empty() ? sibling_solver(argv[0])
                                            : solver_path;
    popts.cnf_path = path;
    popts.num_procs = procs;
    popts.cube_conflicts = common.max_conflicts;
    popts.time_budget_ms = conquer_budget_ms;
    popts.proof = !proof_path.empty();
    popts.steal_seed = seed;
    cube::ProcResult pr = cube::conquer_procs(cubes, popts);
    if (!pr.error.empty()) {
      std::fprintf(stderr, "error: %s\n", pr.error.c_str());
      return 2;
    }
    verdict = pr.result;
    unknown_reason = pr.unknown_reason;
    model = std::move(pr.model);
    conquer_stats = pr.cube_stats;
    drat_text = std::move(pr.drat_text);
  } else {
    cube::ConquerOptions qopts;
    qopts.num_workers = workers;
    qopts.base = base;
    qopts.share_clauses = share_clauses;
    qopts.cube_conflicts = common.max_conflicts;
    qopts.time_budget_ms = conquer_budget_ms;
    qopts.proof = !proof_path.empty();
    qopts.steal_seed = seed;
    cube::ConquerPool pool(f, std::move(cubes), qopts);
    const cube::ConquerResult cr = pool.run();
    verdict = cr.result;
    unknown_reason = cr.unknown_reason;
    model = cr.model;
    conquer_stats = cr.cube_stats;
    if (verdict == sat::SolveResult::kUnsat && !proof_path.empty()) {
      stitched = pool.certified_proof();
      have_stitched = true;
    }
    if (!quiet) {
      std::printf("c conquer: %d workers, %s\n", pool.num_workers(),
                  cr.solver_stats.summary().c_str());
    }
  }

  if (common.stats) {
    cube::CubeStats total = split_stats;
    total += conquer_stats;
    tools::print_comment_block(total.summary());
  }

  switch (verdict) {
    case sat::SolveResult::kUnknown:
      std::fprintf(stderr, "c unknown reason: %s\n",
                   sat::to_string(unknown_reason).c_str());
      std::printf("s UNKNOWN\n");
      return tools::kExitUnknown;
    case sat::SolveResult::kUnsat: {
      if (!proof_path.empty()) {
        std::ofstream out(proof_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "error: cannot open proof file %s\n",
                       proof_path.c_str());
          return 2;
        }
        std::size_t steps = 0;
        if (have_stitched) {
          stitched.write_drat(out);
          steps = stitched.steps().size();
        } else {
          out << drat_text;
          for (char c : drat_text) steps += c == '\n' ? 1 : 0;
        }
        if (!quiet) {
          std::printf("c DRAT proof (%zu steps) written to %s\n", steps,
                      proof_path.c_str());
        }
      }
      std::printf("s UNSATISFIABLE\n");
      return tools::kExitUnsat;
    }
    case sat::SolveResult::kSat: {
      std::printf("s SATISFIABLE\n");
      std::printf("v");
      for (Var v = 0; v < f.num_vars(); ++v) {
        const lbool val =
            static_cast<std::size_t>(v) < model.size() ? model[v] : l_undef;
        std::printf(" %d", val.is_false() ? -(v + 1) : (v + 1));
      }
      std::printf(" 0\n");
      std::vector<bool> bits(static_cast<std::size_t>(f.num_vars()));
      for (Var v = 0; v < f.num_vars(); ++v) {
        bits[static_cast<std::size_t>(v)] =
            static_cast<std::size_t>(v) < model.size() && model[v].is_true();
      }
      if (!f.is_satisfied_by(bits)) {
        std::fprintf(stderr, "internal error: model check failed\n");
        return 1;
      }
      return tools::kExitSat;
    }
  }
  return tools::kExitUnknown;
}
