/// \file rar.hpp
/// \brief Logic optimization by redundancy removal (paper §3,
///        ref. [12] Entrena & Cheng; ref. [17] RID-GRASP).
///
/// A wire whose stuck-at fault is untestable can be replaced by the
/// corresponding constant without changing the circuit's function —
/// untestability is exactly functional redundancy.  The optimizer
/// classifies pin faults with the SAT-based ATPG engine, applies one
/// proven redundancy, constant-folds (strash), and iterates until no
/// redundant wire remains.  Applying one redundancy at a time is
/// required for soundness: removing a wire can make previously
/// redundant wires testable.
#pragma once

#include <string>

#include "atpg/engine.hpp"
#include "circuit/netlist.hpp"

namespace sateda::synth {

struct RarStats {
  int rounds = 0;
  int pins_examined = 0;
  int redundancies_removed = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;

  std::string summary() const {
    return "rounds=" + std::to_string(rounds) +
           " pins=" + std::to_string(pins_examined) +
           " removed=" + std::to_string(redundancies_removed) + " gates " +
           std::to_string(gates_before) + " -> " +
           std::to_string(gates_after);
  }
};

struct RarOptions {
  int max_rounds = 64;  ///< safety bound on the fix-point iteration
  atpg::AtpgOptions atpg;
};

/// Returns a functionally equivalent circuit with every SAT-provably
/// redundant wire removed and constants folded through.
circuit::Circuit remove_redundancies(const circuit::Circuit& c,
                                     RarOptions opts = {},
                                     RarStats* stats = nullptr);

}  // namespace sateda::synth
