#include "synth/rar.hpp"

#include "circuit/miter.hpp"
#include "circuit/structural_hash.hpp"

namespace sateda::synth {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

namespace {

/// Rebuilds \p c with input pin \p pin of gate \p gate tied to the
/// constant \p value.
Circuit tie_pin_to_constant(const Circuit& c, NodeId gate, int pin,
                            bool value) {
  Circuit out(c.name());
  std::vector<NodeId> map(c.num_nodes(), circuit::kNullNode);
  NodeId konst = circuit::kNullNode;
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    switch (node.type) {
      case GateType::kInput:
        map[n] = out.add_input(node.name);
        continue;
      case GateType::kConst0:
      case GateType::kConst1:
        map[n] = out.add_const(node.type == GateType::kConst1);
        continue;
      default:
        break;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (int i = 0; i < static_cast<int>(node.fanins.size()); ++i) {
      if (n == gate && i == pin) {
        if (konst == circuit::kNullNode) konst = out.add_const(value);
        fanins.push_back(konst);
      } else {
        fanins.push_back(map[node.fanins[i]]);
      }
    }
    map[n] = out.add_gate(node.type, std::move(fanins));
  }
  for (std::size_t i = 0; i < c.outputs().size(); ++i) {
    out.mark_output(map[c.outputs()[i]], c.output_name(i));
  }
  return out;
}

}  // namespace

Circuit remove_redundancies(const Circuit& c, RarOptions opts,
                            RarStats* stats) {
  RarStats local;
  local.gates_before = c.num_gates();
  Circuit current = circuit::strash(c);
  for (int round = 0; round < opts.max_rounds; ++round) {
    ++local.rounds;
    bool removed = false;
    // Scan gate input pins for untestable (redundant) stuck-at faults.
    for (NodeId n = 0;
         !removed && n < static_cast<NodeId>(current.num_nodes()); ++n) {
      const circuit::Node& node = current.node(n);
      if (node.type == GateType::kInput ||
          node.type == GateType::kConst0 ||
          node.type == GateType::kConst1) {
        continue;
      }
      for (int pin = 0;
           !removed && pin < static_cast<int>(node.fanins.size()); ++pin) {
        for (bool value : {false, true}) {
          ++local.pins_examined;
          std::vector<lbool> unused;
          atpg::FaultStatus st = atpg::generate_test(
              current, atpg::Fault{n, pin, value}, unused, opts.atpg);
          if (st != atpg::FaultStatus::kRedundant) continue;
          // Untestable pin/sa-v ⇒ tying the pin to v preserves the
          // function; constant folding then removes logic.
          current = circuit::strash(tie_pin_to_constant(current, n, pin,
                                                        value));
          ++local.redundancies_removed;
          removed = true;
          break;
        }
      }
    }
    if (!removed) break;
  }
  local.gates_after = current.num_gates();
  if (stats) *stats = local;
  return current;
}

}  // namespace sateda::synth
