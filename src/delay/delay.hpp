/// \file delay.hpp
/// \brief SAT-based circuit delay computation (paper §3, refs
///        [28, 36]): the true (input-dependent) delay of a circuit is
///        the longest *sensitizable* path, which can be far below the
///        topological longest path when long paths are false.
///
/// Model: unit gate delays, static sensitization.  A path is
/// statically sensitized by input vector X if every off-path (side)
/// input of every gate along the path carries a non-controlling value
/// under X.  The SAT query "is the delay ≥ d?" is encoded with
/// per-node, per-time arrival variables P(n, t) — "some statically
/// sensitized path of length t ends at n" — alongside the circuit's
/// Table 1 value clauses, following the path-recursive-function idea
/// of [28].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::delay {

struct DelayOptions {
  std::int64_t conflict_budget = -1;
  sat::SolverOptions solver;
  sat::EngineSpec engine;  ///< SAT backend (empty: CDCL)
};

/// Longest topological path (unit delays) — the classic static timing
/// bound that ignores sensitizability.
int topological_delay(const circuit::Circuit& c);

/// Per-vector sensitized delay: the length of the longest statically
/// sensitized path under input vector \p inputs (simulation-based DP;
/// used to verify SAT witnesses).
int sensitized_delay(const circuit::Circuit& c,
                     const std::vector<bool>& inputs);

/// Decides whether some input vector statically sensitizes a path of
/// length ≥ d to a primary output.  Returns the witness vector, or
/// nullopt if none (or empty optional result if budget exhausted —
/// see compute_delay for the budgeted variant).
std::optional<std::vector<bool>> sensitize_delay(const circuit::Circuit& c,
                                                 int d,
                                                 DelayOptions opts = {});

struct DelayResult {
  int topological = 0;     ///< static bound
  int sensitizable = 0;    ///< true delay under the sensitization model
  std::vector<bool> critical_vector;  ///< witness achieving it
  int sat_queries = 0;
  std::int64_t conflicts = 0;
};

/// Computes the exact sensitizable delay by scanning d downward from
/// the topological bound (each step one SAT query, per [36]).
DelayResult compute_delay(const circuit::Circuit& c, DelayOptions opts = {});

// --- path-delay testing (paper §3, ref. [7]) -------------------------

/// A structural path: node sequence from a primary input to a primary
/// output, each consecutive pair connected by a fanin edge.
using Path = std::vector<circuit::NodeId>;

/// Enumerates up to \p limit longest structural paths (by unit delay).
std::vector<Path> longest_paths(const circuit::Circuit& c, std::size_t limit);

/// Finds an input vector that statically sensitizes the given path
/// (single-vector, non-robust path-delay test), or nullopt if the path
/// is false (untestable).
std::optional<std::vector<bool>> sensitize_path(const circuit::Circuit& c,
                                                const Path& path,
                                                DelayOptions opts = {});

}  // namespace sateda::delay
