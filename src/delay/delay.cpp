#include "delay/delay.hpp"

#include <algorithm>
#include <cassert>

#include "circuit/encoder.hpp"
#include "circuit/simulator.hpp"
#include "sat/engine.hpp"

namespace sateda::delay {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

namespace {

/// Non-controlling value for side inputs of \p type, or nullopt when
/// the gate imposes no side condition (XOR-like, single-input).
std::optional<bool> side_noncontrolling(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return true;
    case GateType::kOr:
    case GateType::kNor:
      return false;
    default:
      return std::nullopt;
  }
}

}  // namespace

int topological_delay(const Circuit& c) {
  std::vector<int> level = c.levels();
  int best = 0;
  for (NodeId o : c.outputs()) best = std::max(best, level[o]);
  return best;
}

int sensitized_delay(const Circuit& c, const std::vector<bool>& inputs) {
  std::vector<bool> value = circuit::simulate(c, inputs);
  // L[n] = longest statically sensitized input→n path, or -1 if none.
  std::vector<int> L(c.num_nodes(), -1);
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    if (node.type == GateType::kInput) {
      L[n] = 0;
      continue;
    }
    if (node.fanins.empty()) continue;  // constants: no path
    std::optional<bool> nc = side_noncontrolling(node.type);
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      NodeId w = node.fanins[i];
      if (L[w] < 0) continue;
      bool sides_ok = true;
      if (nc.has_value()) {
        for (std::size_t j = 0; j < node.fanins.size(); ++j) {
          if (j == i) continue;
          if (value[node.fanins[j]] != *nc) {
            sides_ok = false;
            break;
          }
        }
      }
      if (sides_ok) L[n] = std::max(L[n], L[w] + 1);
    }
  }
  int best = 0;
  for (NodeId o : c.outputs()) best = std::max(best, L[o]);
  return best;
}

std::optional<std::vector<bool>> sensitize_delay(const Circuit& c, int d,
                                                 DelayOptions opts) {
  std::vector<int> level = c.levels();
  const int max_level = topological_delay(c);
  if (d > max_level) return std::nullopt;
  if (d <= 0) {
    // Any vector works: length-0 "paths" end at inputs... interpret as
    // trivially satisfiable with the all-zero vector.
    return std::vector<bool>(c.inputs().size(), false);
  }

  sat::SolverOptions sopts = opts.solver;
  sopts.conflict_budget = opts.conflict_budget;
  std::unique_ptr<sat::SatEngine> solver =
      sat::make_engine(opts.engine, sopts);
  // A false add_clause means a trivial root conflict; the engine
  // remembers and solve() reports kUnsat, so the returns can be folded.
  bool ok = solver->add_formula(circuit::encode_circuit(c));

  // Arrival variables P[n][t] for 0 ≤ t ≤ level[n].
  std::vector<std::vector<Var>> P(c.num_nodes());
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    if (node.type == GateType::kInput) {
      P[n] = {solver->new_var()};
      ok = solver->add_clause({pos(P[n][0])}) && ok;
      continue;
    }
    if (node.fanins.empty()) continue;  // constants carry no paths
    P[n].assign(level[n] + 1, kNullVar);
    std::optional<bool> nc = side_noncontrolling(node.type);
    for (int t = 1; t <= level[n]; ++t) {
      // Edge variables: E(w) ⇒ P[w][t-1] ∧ side-inputs non-controlling.
      std::vector<Lit> support;
      for (std::size_t i = 0; i < node.fanins.size(); ++i) {
        NodeId w = node.fanins[i];
        if (t - 1 >= static_cast<int>(P[w].size())) continue;
        if (t - 1 > 0 && P[w].empty()) continue;
        Var pw = (t - 1 < static_cast<int>(P[w].size())) ? P[w][t - 1]
                                                         : kNullVar;
        if (pw == kNullVar) continue;
        Var e = solver->new_var();
        ok = solver->add_clause({neg(e), pos(pw)}) && ok;
        if (nc.has_value()) {
          for (std::size_t j = 0; j < node.fanins.size(); ++j) {
            if (j == i) continue;
            // Side input must sit at its non-controlling value.
            ok = solver->add_clause(
                     {neg(e), Lit(static_cast<Var>(node.fanins[j]), !*nc)}) &&
                 ok;
          }
        }
        support.push_back(pos(e));
      }
      if (support.empty()) continue;  // no path of this length reaches n
      Var p = solver->new_var();
      P[n][t] = p;
      std::vector<Lit> clause{neg(p)};
      for (Lit s : support) clause.push_back(s);
      ok = solver->add_clause(std::move(clause)) && ok;
    }
  }

  // goal ⇒ some output has a sensitized path of length ≥ d.
  Var goal = solver->new_var();
  std::vector<Lit> goal_clause{neg(goal)};
  for (NodeId o : c.outputs()) {
    for (int t = d; t < static_cast<int>(P[o].size()); ++t) {
      if (P[o][t] != kNullVar) goal_clause.push_back(pos(P[o][t]));
    }
  }
  if (goal_clause.size() == 1) return std::nullopt;  // structurally impossible
  ok = solver->add_clause(std::move(goal_clause)) && ok;

  if (!ok || solver->solve({pos(goal)}) != sat::SolveResult::kSat) {
    return std::nullopt;
  }
  std::vector<bool> witness;
  witness.reserve(c.inputs().size());
  for (NodeId i : c.inputs()) {
    witness.push_back(solver->model()[i].is_true());
  }
  return witness;
}

DelayResult compute_delay(const Circuit& c, DelayOptions opts) {
  DelayResult r;
  r.topological = topological_delay(c);
  r.critical_vector.assign(c.inputs().size(), false);
  for (int d = r.topological; d >= 1; --d) {
    ++r.sat_queries;
    auto witness = sensitize_delay(c, d, opts);
    if (witness.has_value()) {
      r.sensitizable = d;
      r.critical_vector = *witness;
      return r;
    }
  }
  r.sensitizable = 0;
  return r;
}

std::vector<Path> longest_paths(const Circuit& c, std::size_t limit) {
  std::vector<int> level = c.levels();
  const int target = topological_delay(c);
  std::vector<Path> paths;
  // DFS backwards from maximal-level outputs, following fanins that
  // realise level[n] - 1.
  Path current;
  auto dfs = [&](auto&& self, NodeId n) -> void {
    if (paths.size() >= limit) return;
    current.push_back(n);
    const circuit::Node& node = c.node(n);
    if (node.type == GateType::kInput) {
      Path p(current.rbegin(), current.rend());
      paths.push_back(std::move(p));
    } else {
      for (NodeId w : node.fanins) {
        if (level[w] == level[n] - 1) self(self, w);
        if (paths.size() >= limit) break;
      }
    }
    current.pop_back();
  };
  for (NodeId o : c.outputs()) {
    if (level[o] == target) dfs(dfs, o);
    if (paths.size() >= limit) break;
  }
  return paths;
}

std::optional<std::vector<bool>> sensitize_path(const Circuit& c,
                                                const Path& path,
                                                DelayOptions opts) {
  assert(path.size() >= 2);
  sat::SolverOptions sopts = opts.solver;
  sopts.conflict_budget = opts.conflict_budget;
  std::unique_ptr<sat::SatEngine> solver =
      sat::make_engine(opts.engine, sopts);
  if (!solver->add_formula(circuit::encode_circuit(c))) return std::nullopt;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    NodeId w = path[i];
    NodeId n = path[i + 1];
    const circuit::Node& node = c.node(n);
    std::optional<bool> nc = side_noncontrolling(node.type);
    if (!nc.has_value()) continue;
    for (NodeId s : node.fanins) {
      if (s == w) continue;
      if (!solver->add_clause({Lit(static_cast<Var>(s), !*nc)})) {
        return std::nullopt;
      }
    }
  }
  if (solver->solve() != sat::SolveResult::kSat) return std::nullopt;
  std::vector<bool> witness;
  witness.reserve(c.inputs().size());
  for (NodeId i : c.inputs()) {
    witness.push_back(solver->model()[i].is_true());
  }
  return witness;
}

}  // namespace sateda::delay
