/// \file drat_check.hpp
/// \brief Independent backward DRAT (RUP/RAT) proof checker.
///
/// This is the auditor for the solver's UNSAT certificates.  It is
/// deliberately written against its own data structures — its own
/// watched-literal propagation, trail and conflict analysis — and
/// shares no code with sat::Solver, so a bug in the solver cannot
/// silently excuse itself in the checker.
///
/// Algorithm (drat-trim style backward checking):
///  1. forward pass: attach each added clause, honour deletions, stop
///     at the first empty clause;
///  2. backward pass: walk the steps in reverse, re-attaching deleted
///     clauses and detaching additions; every addition *marked* as
///     used by a later conflict is verified — unit propagation on the
///     database plus the negated clause must conflict (RUP), falling
///     back to the RAT check on the first literal (resolve against
///     every clause containing its complement; each resolvent must be
///     RUP).  Clauses participating in a conflict are marked, so
///     additions no conflict ever used are skipped (steps_skipped).
///
/// Assumption-incremental runs are covered by passing the assumptions:
/// they are treated as additional root unit clauses, which matches the
/// solver logging the negated conflict core as its final derivation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::sat {

class Proof;  // proof.hpp; only used for the convenience converter

/// One parsed DRAT step.
struct DratStep {
  bool deletion = false;
  std::vector<Lit> lits;
};

/// A parsed DRAT proof, independent of the producer.
struct DratProof {
  std::vector<DratStep> steps;

  /// Converts an in-memory solver trace.
  static DratProof from_proof(const Proof& proof);
};

/// Wire format selection for parse_drat().
enum class DratParseFormat {
  kAuto,    ///< sniff: binary starts with 'a'/'d' followed by non-text bytes
  kText,
  kBinary,
};

/// Parses a DRAT proof (text or binary).  Throws std::runtime_error on
/// malformed input.
DratProof parse_drat(std::istream& in,
                     DratParseFormat format = DratParseFormat::kAuto);
DratProof parse_drat_file(const std::string& path,
                          DratParseFormat format = DratParseFormat::kAuto);

/// Writes \p proof in text DRAT format (one step per line, deletions
/// prefixed "d", clauses 0-terminated) — parse_drat round-trips it.
void write_drat_text(std::ostream& out, const DratProof& proof);

/// Knobs for check_drat().
struct DratCheckOptions {
  /// Treated as root-level unit clauses (incremental solving under
  /// assumptions: the proof refutes formula ∧ assumptions).
  std::vector<Lit> assumptions;
  /// When true (the default), a proof without a verified empty clause
  /// is rejected; when false, the additions are still all verified and
  /// `refutation` reports whether the empty clause was among them.
  bool require_refutation = true;
  /// When true, a successful check also reports *which* inputs the
  /// refutation used: the clausal core (formula clause indices and
  /// assumptions reachable from the conflicts) and the proof trimmed
  /// to the marked additions.  See DratCheckResult.
  bool collect_core = false;
};

/// Verdict of the checker.
struct DratCheckResult {
  bool ok = false;          ///< proof accepted
  bool refutation = false;  ///< a verified empty clause was derived
  std::size_t steps_checked = 0;  ///< additions verified RUP/RAT
  std::size_t steps_skipped = 0;  ///< additions never used by a conflict
  std::size_t failed_step = 0;    ///< index of the offending step when !ok
  std::string message;
  // Populated only when DratCheckOptions::collect_core and ok:
  /// Indices (into the formula's clause order) of the clauses the
  /// verified conflicts actually used — the clausal core.  The core
  /// formula together with `core_assumptions` is itself unsatisfiable,
  /// certified by `trimmed_proof`.
  std::vector<std::size_t> core_clauses;
  /// The assumptions the refutation used (subset of opts.assumptions).
  std::vector<Lit> core_assumptions;
  /// The proof restricted to marked additions and to deletions of
  /// marked clauses; re-checks against the core formula (drat-trim
  /// style trimming: every kept addition was verified against a
  /// database whose used clauses are all kept, so RUP/RAT replays).
  DratProof trimmed_proof;
};

/// Checks \p proof against \p formula.
DratCheckResult check_drat(const CnfFormula& formula, const DratProof& proof,
                           const DratCheckOptions& opts = {});

/// Convenience: checks an in-memory solver trace.
DratCheckResult check_drat(const CnfFormula& formula, const Proof& proof,
                           const DratCheckOptions& opts = {});

}  // namespace sateda::sat
