#include "sat/core/mus.hpp"

#include <algorithm>

namespace sateda::sat::core {

namespace {

/// One budget-aware solve.  Returns kUnknown without calling the
/// engine once the call cap is exhausted.
SolveResult budgeted_solve(SatEngine& engine, const std::vector<Lit>& assumps,
                           const CoreMinimizeOptions& opts,
                           CoreMinimizeStats& stats) {
  if (opts.max_solve_calls >= 0 && stats.solve_calls >= opts.max_solve_calls) {
    return SolveResult::kUnknown;
  }
  ++stats.solve_calls;
  return engine.solve(assumps);
}

/// Refinement: re-solve under the current core until it stops
/// shrinking.  Each UNSAT answer's conflict_core() is a subset of the
/// assumptions passed in, so the sequence is monotone.
void refine(SatEngine& engine, std::vector<Lit>& core,
            const CoreMinimizeOptions& opts, CoreMinimizeStats& stats) {
  for (int round = 0; round < opts.max_refine_rounds; ++round) {
    if (core.empty()) return;
    if (budgeted_solve(engine, core, opts, stats) != SolveResult::kUnsat) {
      return;  // budget struck (a sound core is already in hand)
    }
    const std::vector<Lit>& next = engine.conflict_core();
    if (next.size() >= core.size()) return;  // fixpoint
    core = next;
    ++stats.refine_rounds;
  }
}

/// Deletion-based MUS pass: test each literal's removal; a literal is
/// kept iff the rest is satisfiable.  On UNSAT the engine's (possibly
/// even smaller) returned core replaces the candidate — the classic
/// clause-set-refinement acceleration.  Returns true iff the pass ran
/// to completion (every survivor proven necessary).
bool delete_pass(SatEngine& engine, std::vector<Lit>& core,
                 const CoreMinimizeOptions& opts, CoreMinimizeStats& stats) {
  // Invariant: core[0..proven) are literals proven necessary for the
  // current working set; the unproven tail is tested from the back.
  std::size_t proven = 0;
  while (proven < core.size()) {
    // Candidate: everything except the literal under test (the last
    // unproven one — testing from the back keeps `proven` stable).
    const Lit candidate = core.back();
    std::vector<Lit> rest(core.begin(), core.end() - 1);
    ++stats.deletion_tests;
    switch (budgeted_solve(engine, rest, opts, stats)) {
      case SolveResult::kSat:
        // `candidate` is necessary: rotate it into the proven prefix.
        core.pop_back();
        core.insert(core.begin() + static_cast<std::ptrdiff_t>(proven),
                    candidate);
        ++proven;
        break;
      case SolveResult::kUnsat: {
        // Still UNSAT without it; adopt the engine's (possibly even
        // smaller) core as the new working set.  A literal proven
        // necessary for the old set stays necessary for any subset it
        // belongs to; proven literals absent from `next` are dropped —
        // `next` is UNSAT without them, so the MUS needn't keep them.
        const std::vector<Lit>& next = engine.conflict_core();
        std::vector<Lit> rebuilt;
        rebuilt.reserve(next.size());
        std::size_t still_proven = 0;
        for (std::size_t i = 0; i < proven; ++i) {
          if (std::find(next.begin(), next.end(), core[i]) != next.end()) {
            rebuilt.push_back(core[i]);
            ++still_proven;
          }
        }
        for (Lit l : next) {
          if (std::find(rebuilt.begin(), rebuilt.end(), l) == rebuilt.end()) {
            rebuilt.push_back(l);
          }
        }
        proven = still_proven;
        core = std::move(rebuilt);
        break;
      }
      case SolveResult::kUnknown:
        return false;  // budget: keep the sound core, not proven minimal
    }
  }
  return true;
}

CoreResult minimize_impl(SatEngine& engine, std::vector<Lit> core,
                         const CoreMinimizeOptions& opts,
                         CoreMinimizeStats stats) {
  CoreResult result;
  result.unsat = true;
  stats.initial_size = std::max(stats.initial_size, core.size());
  if (opts.refine) refine(engine, core, opts, stats);
  if (opts.deletion_pass && !core.empty()) {
    result.minimal = delete_pass(engine, core, opts, stats);
  } else {
    // An empty core (clause set itself UNSAT) is trivially minimal.
    result.minimal = core.empty();
  }
  stats.final_size = core.size();
  result.core = std::move(core);
  result.stats = stats;
  return result;
}

}  // namespace

CoreResult extract_core(SatEngine& engine, const std::vector<Lit>& assumptions,
                        const CoreMinimizeOptions& opts) {
  CoreResult result;
  CoreMinimizeStats stats;
  stats.initial_size = assumptions.size();
  // Extraction probes subsets of the assumptions across many solves;
  // an inprocessing engine must never eliminate or substitute them in
  // between, or a later subset query would answer a different formula.
  for (Lit a : assumptions) engine.freeze(a.var());
  if (budgeted_solve(engine, assumptions, opts, stats) !=
      SolveResult::kUnsat) {
    result.stats = stats;
    return result;  // SAT or undecided: no core
  }
  return minimize_impl(engine, engine.conflict_core(), opts, stats);
}

CoreResult minimize_core(SatEngine& engine, std::vector<Lit> core,
                         const CoreMinimizeOptions& opts) {
  CoreMinimizeStats stats;
  stats.initial_size = core.size();
  for (Lit a : core) engine.freeze(a.var());
  // Establish (and refine) UNSAT-ness with one solve even when the
  // caller disabled refinement — a satisfiable "core" must be caught.
  if (budgeted_solve(engine, core, opts, stats) != SolveResult::kUnsat) {
    CoreResult result;
    result.stats = stats;
    return result;
  }
  return minimize_impl(engine, engine.conflict_core(), opts, stats);
}

}  // namespace sateda::sat::core
