/// \file mus.hpp
/// \brief Assumption-core minimization: iterative refinement and
///        deletion-based MUS extraction over selector literals.
///
/// The paper's EDA optimization workloads (§3: covering, minimum test
/// sets, redundancy/untestability analysis) all reduce to the same
/// question the incremental interface of §6 already answers as a
/// side-effect: *which* assumptions were actually responsible for an
/// UNSAT answer.  SatEngine::conflict_core() returns *a* subset, but
/// the 1-UIP final-conflict analysis gives no minimality guarantee —
/// cores straight out of the solver are routinely several times larger
/// than necessary, and every downstream consumer (MaxSAT relaxation,
/// frame dropping in k-induction, untestable-fault grouping) pays for
/// the slack.  This module shrinks them:
///
///  * iterative refinement: re-solve under the current core; the new
///    core is a subset, repeat to a fixpoint (cheap, large wins first);
///  * deletion-based MUS extraction: drop one literal at a time and
///    re-solve; keep the literal iff the rest goes SAT.  With no
///    budget this yields a minimal unsatisfiable subset — every
///    remaining literal is necessary.
///
/// Both reuse the engine's incremental solve(assumptions) path, so all
/// learnt clauses accumulated while minimizing stay with the caller's
/// engine and speed up its next queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/engine.hpp"

namespace sateda::sat::core {

/// Tunables for extract_core()/minimize_core().
struct CoreMinimizeOptions {
  bool refine = true;        ///< iterative refinement to a fixpoint
  int max_refine_rounds = 8; ///< refinement fixpoint cutoff
  bool deletion_pass = true; ///< one-literal-at-a-time MUS extraction
  /// Cap on solve() calls across both phases (<0: unlimited).  When the
  /// cap strikes mid-way the current (sound, possibly non-minimal) core
  /// is returned with CoreResult::minimal == false.
  int max_solve_calls = -1;
};

/// Effort counters for one minimization run.
struct CoreMinimizeStats {
  int solve_calls = 0;       ///< solve() invocations issued here
  int refine_rounds = 0;     ///< refinement iterations that shrank the core
  int deletion_tests = 0;    ///< candidate-removal solves in the MUS pass
  std::size_t initial_size = 0;
  std::size_t final_size = 0;

  std::string summary() const {
    return "core " + std::to_string(initial_size) + "->" +
           std::to_string(final_size) +
           " solves=" + std::to_string(solve_calls) +
           " refines=" + std::to_string(refine_rounds) +
           " deletions=" + std::to_string(deletion_tests);
  }
};

/// Outcome of extract_core()/minimize_core().
struct CoreResult {
  /// True iff the engine is UNSAT under the given assumptions (only
  /// then is `core` meaningful).  False when the query is SAT or an
  /// engine budget left it undecided before any core was obtained.
  bool unsat = false;
  /// Subset of the assumptions whose conjunction is inconsistent with
  /// the clause set.  Empty when the clause set itself is UNSAT.
  std::vector<Lit> core;
  /// True iff the deletion pass completed undisturbed, i.e. `core` is a
  /// MUS: removing any single literal makes the query satisfiable.
  bool minimal = false;
  CoreMinimizeStats stats;
};

/// Solves under \p assumptions and minimizes the resulting conflict
/// core.  Every solve goes through \p engine, so its clause database
/// (and learnt clauses) persist; no clauses are ever added.
CoreResult extract_core(SatEngine& engine, const std::vector<Lit>& assumptions,
                        const CoreMinimizeOptions& opts = {});

/// Minimizes an already-known core (e.g. engine.conflict_core() after
/// an UNSAT solve) without re-deriving it first.  \p core must be
/// inconsistent with the engine's clause set; this is re-checked by the
/// first refinement solve, so a satisfiable input yields unsat=false.
CoreResult minimize_core(SatEngine& engine, std::vector<Lit> core,
                         const CoreMinimizeOptions& opts = {});

}  // namespace sateda::sat::core
