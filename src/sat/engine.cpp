#include "sat/engine.hpp"

#include <stdexcept>

#include "sat/dpll.hpp"
#include "sat/local_search.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace sateda::sat {

bool SatEngine::add_formula(const CnfFormula& f) {
  if (f.num_vars() > 0) ensure_var(f.num_vars() - 1);
  bool ok = true;
  for (const Clause& c : f) {
    if (!add_clause(std::vector<Lit>(c.begin(), c.end()))) ok = false;
  }
  return ok;
}

std::unique_ptr<SatEngine> make_engine(const EngineFactory& factory,
                                       const SolverOptions& opts) {
  if (factory) return factory(opts);
  return std::make_unique<Solver>(opts);
}

EngineFactory cdcl_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    return std::make_unique<Solver>(opts);
  };
}

EngineFactory dpll_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    return std::make_unique<DpllSolver>(opts);
  };
}

EngineFactory walksat_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    WalkSatOptions wopts;
    wopts.seed = opts.seed;
    // A conflict budget has no WalkSAT equivalent; reuse it as a flip
    // budget so callers' effort knobs stay meaningful.
    if (opts.conflict_budget >= 0) wopts.max_flips = opts.conflict_budget;
    return std::make_unique<WalkSatSolver>(wopts);
  };
}

EngineFactory portfolio_engine_factory(int num_workers, bool deterministic) {
  return [num_workers,
          deterministic](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    PortfolioOptions popts;
    popts.num_workers = num_workers;
    popts.deterministic = deterministic;
    return std::make_unique<PortfolioSolver>(opts, popts);
  };
}

EngineFactory engine_factory_by_name(const std::string& name,
                                     int num_workers) {
  if (name == "cdcl") return cdcl_engine_factory();
  if (name == "dpll") return dpll_engine_factory();
  if (name == "wsat" || name == "walksat") return walksat_engine_factory();
  if (name == "portfolio") return portfolio_engine_factory(num_workers);
  throw std::invalid_argument("unknown SAT engine: " + name);
}

}  // namespace sateda::sat
