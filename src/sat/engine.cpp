#include "sat/engine.hpp"

#include <stdexcept>

#include "sat/cube/cube_engine.hpp"
#include "sat/dpll.hpp"
#include "sat/local_search.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace sateda::sat {

bool SatEngine::add_formula(const CnfFormula& f) {
  if (f.num_vars() > 0) ensure_var(f.num_vars() - 1);
  bool ok = true;
  for (const Clause& c : f) {
    if (!add_clause(std::vector<Lit>(c.begin(), c.end()))) ok = false;
  }
  return ok;
}

std::unique_ptr<SatEngine> make_engine(const EngineFactory& factory,
                                       const SolverOptions& opts) {
  if (factory) return factory(opts);
  return std::make_unique<Solver>(opts);
}

std::unique_ptr<SatEngine> make_engine(const EngineSpec& spec,
                                       const SolverOptions& opts) {
  return spec.build(opts);
}

// --- EngineSpec ----------------------------------------------------

EngineSpec EngineSpec::parse(const std::string& text) {
  // Split on ':' — first token names the backend, the rest configure it.
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    tokens.push_back(text.substr(
        start, colon == std::string::npos ? std::string::npos : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }

  EngineSpec spec;
  const std::string& name = tokens.front();
  if (name == "cdcl") {
    spec.backend_ = Backend::kCdcl;
  } else if (name == "dpll") {
    spec.backend_ = Backend::kDpll;
  } else if (name == "wsat" || name == "walksat") {
    spec.backend_ = Backend::kWalkSat;
  } else if (name == "portfolio") {
    spec.backend_ = Backend::kPortfolio;
  } else if (name == "cube") {
    spec.backend_ = Backend::kCube;
  } else {
    throw std::invalid_argument("unknown SAT engine: \"" + name +
                                "\" (expected cdcl, dpll, walksat, "
                                "portfolio[:N][:det] or cube[:N])");
  }

  bool saw_workers = false;
  bool saw_mode = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& field = tokens[i];
    if (spec.backend_ != Backend::kPortfolio &&
        spec.backend_ != Backend::kCube) {
      throw std::invalid_argument("engine \"" + name +
                                  "\" takes no \":" + field + "\" field");
    }
    if (spec.backend_ == Backend::kCube &&
        !(!field.empty() &&
          field.find_first_not_of("0123456789") == std::string::npos)) {
      throw std::invalid_argument("bad engine spec field \":" + field +
                                  "\" in \"" + text +
                                  "\" (cube takes only a worker count)");
    }
    if (field == "det" || field == "deterministic") {
      if (saw_mode) {
        throw std::invalid_argument("duplicate mode field in engine spec \"" +
                                    text + "\"");
      }
      spec.deterministic_ = true;
      saw_mode = true;
    } else if (field == "race" || field == "racing") {
      if (saw_mode) {
        throw std::invalid_argument("duplicate mode field in engine spec \"" +
                                    text + "\"");
      }
      spec.deterministic_ = false;
      saw_mode = true;
    } else if (!field.empty() &&
               field.find_first_not_of("0123456789") == std::string::npos) {
      if (saw_workers) {
        throw std::invalid_argument(
            "duplicate worker count in engine spec \"" + text + "\"");
      }
      spec.num_workers_ = std::stoi(field);
      saw_workers = true;
    } else {
      throw std::invalid_argument("bad engine spec field \":" + field +
                                  "\" in \"" + text +
                                  "\" (expected a worker count, det or race)");
    }
  }
  return spec;
}

EngineSpec EngineSpec::portfolio(int num_workers, bool deterministic) {
  EngineSpec spec;
  spec.backend_ = Backend::kPortfolio;
  spec.num_workers_ = num_workers;
  spec.deterministic_ = deterministic;
  return spec;
}

EngineSpec EngineSpec::cube(int num_workers) {
  EngineSpec spec;
  spec.backend_ = Backend::kCube;
  spec.num_workers_ = num_workers;
  return spec;
}

std::string EngineSpec::to_string() const {
  switch (backend_) {
    case Backend::kCdcl: return "cdcl";
    case Backend::kDpll: return "dpll";
    case Backend::kWalkSat: return "walksat";
    case Backend::kCustom: return "custom";
    case Backend::kCube:
      return num_workers_ != 0 ? "cube:" + std::to_string(num_workers_)
                               : "cube";
    case Backend::kPortfolio: break;
  }
  std::string s = "portfolio";
  if (num_workers_ != 0 || deterministic_) {
    s += ":" + std::to_string(num_workers_);
  }
  if (deterministic_) s += ":det";
  return s;
}

std::unique_ptr<SatEngine> EngineSpec::build(const SolverOptions& opts) const {
  switch (backend_) {
    case Backend::kCdcl: return std::make_unique<Solver>(opts);
    case Backend::kDpll: return std::make_unique<DpllSolver>(opts);
    case Backend::kWalkSat: return walksat_engine_factory()(opts);
    case Backend::kPortfolio: {
      PortfolioOptions popts;
      popts.num_workers = num_workers_;
      popts.deterministic = deterministic_;
      return std::make_unique<PortfolioSolver>(opts, popts);
    }
    case Backend::kCube: {
      cube::CubeEngineOptions copts;
      copts.num_workers = num_workers_;
      return std::make_unique<cube::CubeSolver>(opts, copts);
    }
    case Backend::kCustom:
      // An empty wrapped factory means "the default engine", exactly
      // like make_engine() with an empty EngineFactory.
      return custom_ ? custom_(opts) : std::make_unique<Solver>(opts);
  }
  return std::make_unique<Solver>(opts);
}

EngineFactory EngineSpec::factory() const {
  EngineSpec copy = *this;
  return [copy](const SolverOptions& opts) { return copy.build(opts); };
}

EngineFactory cdcl_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    return std::make_unique<Solver>(opts);
  };
}

EngineFactory dpll_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    return std::make_unique<DpllSolver>(opts);
  };
}

EngineFactory walksat_engine_factory() {
  return [](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    WalkSatOptions wopts;
    wopts.seed = opts.seed;
    // A conflict budget has no WalkSAT equivalent; reuse it as a flip
    // budget so callers' effort knobs stay meaningful.
    if (opts.conflict_budget >= 0) wopts.max_flips = opts.conflict_budget;
    return std::make_unique<WalkSatSolver>(wopts);
  };
}

EngineFactory portfolio_engine_factory(int num_workers, bool deterministic) {
  return [num_workers,
          deterministic](const SolverOptions& opts) -> std::unique_ptr<SatEngine> {
    PortfolioOptions popts;
    popts.num_workers = num_workers;
    popts.deterministic = deterministic;
    return std::make_unique<PortfolioSolver>(opts, popts);
  };
}

EngineFactory engine_factory_by_name(const std::string& name,
                                     int num_workers) {
  // Deprecated shim: the spec grammar is a superset of the old names,
  // so parsing the name and overriding the worker count reproduces the
  // historical behaviour exactly (including the throw on unknowns).
  return EngineSpec::parse(name).with_workers(num_workers).factory();
}

}  // namespace sateda::sat
