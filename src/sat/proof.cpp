#include "sat/proof.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sateda::sat {

namespace {

/// drat-trim binary literal code: DIMACS literal i maps to 2i for
/// positive, -2i+1 for negative, emitted as 7-bit groups LSB-first
/// with the high bit marking continuation.
void write_binary_lit(std::ostream& out, Lit l) {
  const std::uint64_t dimacs = static_cast<std::uint64_t>(l.var()) + 1;
  std::uint64_t u = 2 * dimacs + (l.negative() ? 1 : 0);
  while (u >= 0x80) {
    out.put(static_cast<char>(0x80 | (u & 0x7f)));
    u >>= 7;
  }
  out.put(static_cast<char>(u));
}

}  // namespace

void write_drat_step(std::ostream& out, DratFormat format, bool deletion,
                     const std::vector<Lit>& lits) {
  if (format == DratFormat::kBinary) {
    out.put(deletion ? 'd' : 'a');
    for (Lit l : lits) write_binary_lit(out, l);
    out.put('\0');
    return;
  }
  if (deletion) out << "d ";
  for (Lit l : lits) {
    out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
  }
  out << "0\n";
}

bool Proof::derives_empty_clause() const {
  for (const Step& s : steps_) {
    if (!s.deletion && s.lits.empty()) return true;
  }
  return false;
}

void Proof::write_drat(std::ostream& out, DratFormat format) const {
  for (const Step& s : steps_) {
    write_drat_step(out, format, s.deletion, s.lits);
  }
}

std::string Proof::to_drat_string() const {
  std::ostringstream out;
  write_drat(out);
  return out.str();
}

Proof stitch_proofs(const std::vector<const SequencedProof*>& traces) {
  struct Ref {
    std::uint64_t ticket;
    const SequencedProof::Step* step;
  };
  std::vector<Ref> order;
  for (const SequencedProof* t : traces) {
    if (!t) continue;
    for (const SequencedProof::Step& s : t->steps()) {
      if (s.deletion) continue;  // per-worker deletions are dropped
      order.push_back({s.ticket, &s});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const Ref& a, const Ref& b) { return a.ticket < b.ticket; });
  Proof out;
  for (const Ref& r : order) {
    out.on_derive(r.step->lits);
    if (r.step->lits.empty()) break;  // refutation complete
  }
  return out;
}

namespace {

/// Minimal propagation engine for the checker: occurrence lists plus
/// counters, rebuilt per proof check (clarity over speed; the checker
/// audits, it does not race).
class CheckEngine {
 public:
  explicit CheckEngine(int num_vars) : assigns_(num_vars, l_undef) {
    occurs_.resize(2 * static_cast<std::size_t>(std::max(num_vars, 1)));
  }

  std::size_t add_clause(const std::vector<Lit>& lits) {
    std::size_t id = clauses_.size();
    clauses_.push_back(lits);
    live_.push_back(1);
    for (Lit l : lits) occurs_[l.index()].push_back(id);
    return id;
  }

  /// Marks the first live clause equal (as a multiset) to \p lits dead.
  bool remove_clause(const std::vector<Lit>& lits) {
    std::vector<Lit> sorted = lits;
    std::sort(sorted.begin(), sorted.end());
    if (lits.empty()) return false;
    for (std::size_t id : occurs_[lits[0].index()]) {
      if (!live_[id]) continue;
      std::vector<Lit> cand = clauses_[id];
      std::sort(cand.begin(), cand.end());
      if (cand == sorted) {
        live_[id] = 0;
        return true;
      }
    }
    return false;
  }

  /// RUP test: does asserting the complements of \p lits propagate to
  /// a conflict under the current live clause set?
  bool rup(const std::vector<Lit>& lits) {
    std::vector<Lit> trail;
    bool conflict = false;
    auto assign = [&](Lit l) {
      lbool v = value(l);
      if (v.is_false()) {
        conflict = true;
        return;
      }
      if (v.is_true()) return;
      assigns_[l.var()] = lbool(!l.negative());
      trail.push_back(l);
    };
    for (Lit l : lits) {
      assign(~l);
      if (conflict) break;
    }
    // Saturate unit propagation (fixpoint over live clauses touched by
    // trail growth; simple quadratic sweep is fine at checker scale).
    bool changed = !conflict;
    while (changed && !conflict) {
      changed = false;
      for (std::size_t id = 0; id < clauses_.size() && !conflict; ++id) {
        if (!live_[id]) continue;
        Lit unit = kUndefLit;
        bool satisfied = false;
        int unassigned = 0;
        for (Lit l : clauses_[id]) {
          lbool v = value(l);
          if (v.is_true()) {
            satisfied = true;
            break;
          }
          if (v.is_undef()) {
            ++unassigned;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) {
          conflict = true;
        } else if (unassigned == 1) {
          assign(unit);
          changed = true;
        }
      }
    }
    for (Lit l : trail) assigns_[l.var()] = l_undef;
    return conflict;
  }

 private:
  lbool value(Lit l) const { return assigns_[l.var()] ^ l.negative(); }

  std::vector<std::vector<Lit>> clauses_;
  std::vector<char> live_;
  std::vector<std::vector<std::size_t>> occurs_;
  std::vector<lbool> assigns_;
};

}  // namespace

ProofCheckResult check_rup_proof(const CnfFormula& formula,
                                 const Proof& proof) {
  ProofCheckResult result;
  int num_vars = formula.num_vars();
  for (const Proof::Step& s : proof.steps()) {
    for (Lit l : s.lits) num_vars = std::max(num_vars, l.var() + 1);
  }
  CheckEngine engine(num_vars);
  for (const Clause& c : formula) {
    engine.add_clause(std::vector<Lit>(c.begin(), c.end()));
  }
  for (std::size_t i = 0; i < proof.steps().size(); ++i) {
    const Proof::Step& s = proof.steps()[i];
    if (s.deletion) {
      // Deleting a clause can only weaken the database; a missing
      // clause is reported but does not invalidate the proof.
      engine.remove_clause(s.lits);
      continue;
    }
    if (!engine.rup(s.lits)) {
      result.failed_step = i;
      result.message = "step " + std::to_string(i) + " is not RUP";
      return result;
    }
    engine.add_clause(s.lits);
    if (s.lits.empty()) break;  // refutation complete
  }
  result.valid = true;
  result.refutation = proof.derives_empty_clause();
  result.message = result.refutation ? "verified refutation"
                                     : "valid derivation (no refutation)";
  return result;
}

}  // namespace sateda::sat
