#include "sat/preprocess.hpp"

#include <algorithm>
#include <cassert>

#include "sat/proof.hpp"

namespace sateda::sat {

namespace {

/// Working state for the preprocessing rounds.
struct Work {
  std::vector<std::vector<Lit>> clauses;  // live clauses (sorted literal sets)
  std::vector<char> dead;                 // per clause
  std::vector<lbool> fixed;               // per var
  std::vector<Lit> substituted;           // per var; kUndefLit if none
  std::vector<char> frozen;               // per var; exempt from elimination
  std::vector<ElimRecord> eliminated;     // BVE stack, chronological
  PreprocessStats stats;
  ProofTracer* proof = nullptr;           // not owned; may be null
  bool unsat = false;

  int num_vars() const { return static_cast<int>(fixed.size()); }

  void derive(const std::vector<Lit>& lits) {
    if (proof) proof->on_derive(lits);
  }
  void retire(const std::vector<Lit>& lits) {
    if (proof) proof->on_delete(lits);
  }

  /// Follows the substitution chain for a literal.
  Lit resolve(Lit l) const {
    while (substituted[l.var()].is_defined()) {
      l = substituted[l.var()] ^ l.negative();
    }
    return l;
  }

  void fix(Lit l) {
    l = resolve(l);
    Var v = l.var();
    lbool want = lbool(!l.negative());
    if (fixed[v].is_undef()) {
      fixed[v] = want;
      ++stats.units_fixed;
      // The unit followed from a live clause by propagation of earlier
      // fixed values through the substitution chains: RUP.
      derive({l});
    } else if (!(fixed[v] == want)) {
      derive({l});  // still RUP, and makes the contradiction explicit
      derive({});
      unsat = true;
    }
  }
};

/// Rewrites every live clause through substitutions and fixed values.
/// Returns true if anything changed.
bool apply_assignments(Work& w) {
  bool changed = false;
  for (std::size_t ci = 0; ci < w.clauses.size() && !w.unsat; ++ci) {
    if (w.dead[ci]) continue;
    auto& c = w.clauses[ci];
    std::vector<Lit> out;
    out.reserve(c.size());
    bool satisfied = false;
    for (Lit l : c) {
      Lit r = w.resolve(l);
      lbool v = w.fixed[r.var()];
      lbool lv = v ^ r.negative();
      if (lv.is_true()) {
        satisfied = true;
        break;
      }
      if (lv.is_false()) continue;
      out.push_back(r);
    }
    if (satisfied) {
      w.dead[ci] = 1;
      changed = true;
      continue;
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    bool tautology = false;
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      if (out[i].var() == out[i + 1].var()) {
        tautology = true;
        break;
      }
    }
    if (tautology) {
      w.dead[ci] = 1;
      changed = true;
      continue;
    }
    if (out.empty()) {
      w.derive({});
      w.unsat = true;
      return true;
    }
    if (out.size() == 1) {
      w.fix(out[0]);
      w.dead[ci] = 1;
      changed = true;
      continue;
    }
    if (out != c) {
      // The rewritten clause is RUP: negating it falsifies the source
      // clause through the logged units and the (still live) binary
      // equivalence chains.  The original is not deleted from the
      // trace; see PreprocessOptions::proof.
      w.derive(out);
      c = std::move(out);
      changed = true;
    }
  }
  return changed;
}

/// Pure-literal elimination: a variable occurring with a single
/// polarity can be fixed to that polarity.
bool eliminate_pure_literals(Work& w) {
  const int nv = w.num_vars();
  std::vector<int> pos_occ(nv, 0), neg_occ(nv, 0);
  for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
    if (w.dead[ci]) continue;
    for (Lit l : w.clauses[ci]) {
      (l.negative() ? neg_occ : pos_occ)[l.var()]++;
    }
  }
  bool changed = false;
  for (Var v = 0; v < nv; ++v) {
    if (!w.fixed[v].is_undef() || w.substituted[v].is_defined() || w.frozen[v])
      continue;
    if (pos_occ[v] + neg_occ[v] == 0) continue;
    // No proof step is emitted for a pure-literal fix.  The unit is
    // not RUP (nothing propagates it), and logging it as a RAT
    // addition is unsound in general: earlier passes may have deleted
    // a rewritten clause while the trace still holds a retired
    // original containing the complement, breaking the RAT side
    // condition.  Omitting it is safe — the fixed value only ever
    // *satisfies* clauses (its complement has no live occurrence and
    // no later pass can introduce one), so no subsequent derivation
    // depends on the unit being in the checker database.
    if (neg_occ[v] == 0) {
      w.fixed[v] = l_true;
      ++w.stats.pure_literals;
      changed = true;
    } else if (pos_occ[v] == 0) {
      w.fixed[v] = l_false;
      ++w.stats.pure_literals;
      changed = true;
    }
  }
  return changed;
}

/// Iterative Tarjan SCC over the binary implication graph; literals in
/// one SCC are pairwise equivalent (paper §6 equivalency reasoning).
bool equivalency_reasoning(Work& w) {
  const int nv = w.num_vars();
  const int n_nodes = 2 * nv;
  std::vector<std::vector<std::int32_t>> adj(n_nodes);
  for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
    if (w.dead[ci]) continue;
    const auto& c = w.clauses[ci];
    if (c.size() != 2) continue;
    // (a + b): ¬a → b and ¬b → a.
    adj[(~c[0]).index()].push_back(c[1].index());
    adj[(~c[1]).index()].push_back(c[0].index());
  }

  std::vector<std::int32_t> idx(n_nodes, -1), low(n_nodes, 0), comp(n_nodes, -1);
  std::vector<char> on_stack(n_nodes, 0);
  std::vector<std::int32_t> stack;
  std::int32_t counter = 0, n_comps = 0;

  struct Frame {
    std::int32_t node;
    std::size_t child;
  };
  std::vector<Frame> call;
  for (std::int32_t root = 0; root < n_nodes; ++root) {
    if (idx[root] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      std::int32_t u = f.node;
      if (f.child == 0) {
        idx[u] = low[u] = counter++;
        stack.push_back(u);
        on_stack[u] = 1;
      }
      bool descended = false;
      while (f.child < adj[u].size()) {
        std::int32_t v = adj[u][f.child++];
        if (idx[v] == -1) {
          call.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], idx[v]);
      }
      if (descended) continue;
      if (low[u] == idx[u]) {
        while (true) {
          std::int32_t v = stack.back();
          stack.pop_back();
          on_stack[v] = 0;
          comp[v] = n_comps;
          if (v == u) break;
        }
        ++n_comps;
      }
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        low[parent.node] = std::min(low[parent.node], low[u]);
      }
    }
  }

  // Representative per component: the literal with the smallest index.
  std::vector<std::int32_t> rep(n_comps, -1);
  for (std::int32_t node = 0; node < n_nodes; ++node) {
    std::int32_t c = comp[node];
    if (rep[c] == -1 || node < rep[c]) rep[c] = node;
  }

  bool changed = false;
  for (Var v = 0; v < nv; ++v) {
    if (!w.fixed[v].is_undef() || w.substituted[v].is_defined() || w.frozen[v])
      continue;
    Lit p = pos(v);
    Lit n = neg(v);
    if (comp[p.index()] == comp[n.index()]) {
      // p and ¬p imply each other through the binary implication
      // chains, so each unit is RUP on its own, and together they
      // refute the formula.
      w.derive({n});
      w.derive({p});
      w.derive({});
      w.unsat = true;
      return true;
    }
    Lit r = Lit::from_index(rep[comp[p.index()]]);
    if (r == p) continue;
    assert(r.index() < p.index());
    w.substituted[v] = r;
    ++w.stats.equivalent_vars_eliminated;
    changed = true;
  }
  return changed;
}

/// Subsumption and self-subsuming resolution.
bool subsume_pass(Work& w, bool do_subsumption, bool do_self_subsumption) {
  const int nv = w.num_vars();
  std::vector<std::vector<std::size_t>> occur(2 * static_cast<std::size_t>(nv));
  for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
    if (w.dead[ci]) continue;
    for (Lit l : w.clauses[ci]) occur[l.index()].push_back(ci);
  }
  std::vector<char> mark(2 * static_cast<std::size_t>(nv), 0);
  bool changed = false;
  constexpr std::size_t kMaxSubsumerSize = 24;

  for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
    if (w.dead[ci]) continue;
    const auto& c = w.clauses[ci];
    if (c.size() > kMaxSubsumerSize) continue;
    // Forward subsumption: find clauses d ⊇ c via c's least-occurring literal.
    if (do_subsumption) {
      Lit best = c[0];
      for (Lit l : c) {
        if (occur[l.index()].size() < occur[best.index()].size()) best = l;
      }
      for (Lit l : c) mark[l.index()] = 1;
      for (std::size_t di : occur[best.index()]) {
        if (di == ci || w.dead[di]) continue;
        const auto& d = w.clauses[di];
        if (d.size() < c.size()) continue;
        std::size_t hit = 0;
        for (Lit l : d) {
          if (mark[l.index()]) ++hit;
        }
        if (hit == c.size()) {
          w.dead[di] = 1;
          w.retire(d);  // the subsumer stays live: deletion is safe
          ++w.stats.clauses_subsumed;
          changed = true;
        }
      }
      for (Lit l : c) mark[l.index()] = 0;
    }
    // Self-subsuming resolution: if c with one literal flipped is a
    // subset of d, the flipped literal can be removed from d.
    if (do_self_subsumption) {
      for (std::size_t li = 0; li < c.size(); ++li) {
        Lit flip = c[li];
        for (Lit l : c) mark[l.index()] = 1;
        mark[flip.index()] = 0;
        mark[(~flip).index()] = 1;
        for (std::size_t di : occur[(~flip).index()]) {
          if (di == ci || w.dead[di]) continue;
          auto& d = w.clauses[di];
          if (d.size() < c.size()) continue;
          std::size_t hit = 0;
          bool has_flip = false;
          for (Lit l : d) {
            if (mark[l.index()]) ++hit;
            if (l == ~flip) has_flip = true;
          }
          if (has_flip && hit == c.size()) {
            std::vector<Lit> before;
            if (w.proof) before = d;
            d.erase(std::remove(d.begin(), d.end(), ~flip), d.end());
            // The strengthened clause is the resolvent of c and d on
            // `flip` (RUP from the two of them); only then may the
            // weaker original go.
            w.derive(d);
            w.retire(before);
            ++w.stats.literals_self_subsumed;
            changed = true;
            if (d.size() == 1) {
              w.fix(d[0]);
              w.dead[di] = 1;
              if (w.unsat) {
                for (Lit l : c) mark[l.index()] = 0;
                mark[(~flip).index()] = 0;
                return true;
              }
            }
          }
        }
        for (Lit l : c) mark[l.index()] = 0;
        mark[(~flip).index()] = 0;
      }
    }
  }
  return changed;
}

/// Bounded variable elimination by clause distribution (NiVER /
/// SatELite style): a pivot whose pairwise resolvents fit inside the
/// occurrence/size/growth cutoffs is removed, its occurrence clauses
/// replaced by the resolvents and saved for model extension.  The
/// resolvents are RUP from their parents, so they are logged *before*
/// the parents are retired from the trace.
bool bve_pass(Work& w, const PreprocessOptions& opts) {
  const int nv = w.num_vars();
  std::vector<std::vector<std::size_t>> occur(2 * static_cast<std::size_t>(nv));
  for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
    if (w.dead[ci]) continue;
    for (Lit l : w.clauses[ci]) occur[l.index()].push_back(ci);
  }
  // Cheapest pivots first: fewest occurrences resolve fastest and are
  // the least likely to blow the growth cutoff.
  std::vector<std::pair<int, Var>> order;
  for (Var v = 0; v < nv; ++v) {
    if (!w.fixed[v].is_undef() || w.substituted[v].is_defined() || w.frozen[v])
      continue;
    const int occ = static_cast<int>(occur[pos(v).index()].size() +
                                     occur[neg(v).index()].size());
    if (occ == 0 || occ > opts.bve_max_occurrences) continue;
    order.emplace_back(occ, v);
  }
  std::sort(order.begin(), order.end());

  bool changed = false;
  std::vector<Lit> resolvent;
  std::vector<std::size_t> pos_cls, neg_cls;
  for (const auto& [occ_hint, v] : order) {
    if (w.unsat) break;
    if (!w.fixed[v].is_undef()) continue;  // fixed by an earlier unit resolvent
    pos_cls.clear();
    neg_cls.clear();
    for (std::size_t ci : occur[pos(v).index()]) {
      if (!w.dead[ci]) pos_cls.push_back(ci);
    }
    for (std::size_t ci : occur[neg(v).index()]) {
      if (!w.dead[ci]) neg_cls.push_back(ci);
    }
    const std::size_t before = pos_cls.size() + neg_cls.size();
    if (before == 0 ||
        before > static_cast<std::size_t>(opts.bve_max_occurrences)) {
      continue;  // resolvents appended for earlier pivots changed the count
    }
    std::vector<std::vector<Lit>> resolvents;
    bool too_costly = false;
    for (std::size_t pi : pos_cls) {
      for (std::size_t ni : neg_cls) {
        if (!resolve_on(w.clauses[pi], w.clauses[ni], v, resolvent)) continue;
        if (static_cast<int>(resolvent.size()) > opts.bve_max_resolvent ||
            resolvents.size() >=
                before + static_cast<std::size_t>(opts.bve_max_growth)) {
          too_costly = true;
          break;
        }
        resolvents.push_back(resolvent);
      }
      if (too_costly) break;
    }
    if (too_costly) continue;

    // Commit.  Resolvents first (RUP while the parents are still in
    // the checker database), then stash and retire the originals.
    for (const auto& r : resolvents) w.derive(r);
    ElimRecord rec;
    rec.pivot = v;
    for (std::size_t ci : pos_cls) {
      rec.clauses.push_back(w.clauses[ci]);
      w.retire(w.clauses[ci]);
      w.dead[ci] = 1;
    }
    for (std::size_t ci : neg_cls) {
      rec.clauses.push_back(w.clauses[ci]);
      w.retire(w.clauses[ci]);
      w.dead[ci] = 1;
    }
    w.eliminated.push_back(std::move(rec));
    ++w.stats.bve_eliminated;
    w.stats.bve_resolvents += static_cast<int>(resolvents.size());
    changed = true;
    for (auto& r : resolvents) {
      // A unit resolvent becomes a fixed value (two opposing units
      // would make fix() log the contradiction); an empty resolvent is
      // impossible, since unit parents are always folded away before
      // this pass runs.
      if (r.size() == 1) {
        w.fix(r[0]);
        if (w.unsat) break;
        continue;
      }
      const std::size_t ni = w.clauses.size();
      for (Lit l : r) occur[l.index()].push_back(ni);
      w.clauses.push_back(std::move(r));
      w.dead.push_back(0);
    }
  }
  return changed;
}

}  // namespace

std::vector<lbool> PreprocessResult::reconstruct_model(
    const std::vector<lbool>& simplified_model) const {
  const std::size_t n = fixed.size();
  // Definite working values (undef maps to false throughout, so every
  // chain sees the same default its root would report).
  std::vector<char> val(n, 0);
  std::vector<char> is_pivot(n, 0);
  for (const ElimRecord& r : eliminated) is_pivot[r.pivot] = 1;

  // Phase 1: seed every surviving substitution root from its fixed or
  // searched value.  BVE pivots are skipped — the solver never saw
  // them, so whatever the model vector holds for them is noise.
  for (std::size_t v = 0; v < n; ++v) {
    if (substituted[v].is_defined() || is_pivot[v]) continue;
    lbool b = fixed[v];
    if (b.is_undef() && v < simplified_model.size()) b = simplified_model[v];
    val[v] = b.is_true() ? 1 : 0;
  }

  auto root = [&](Lit l) {
    while (substituted[l.var()].is_defined()) {
      l = substituted[l.var()] ^ l.negative();
    }
    return l;
  };

  // Phase 2: replay the elimination stack.  Saved clauses may mention
  // variables that were substituted in a *later* round, so literals
  // are folded onto their roots before evaluation; roots that are
  // themselves pivots were eliminated later and hence replayed first.
  extend_model(
      eliminated,
      [&](Lit l) {
        const Lit r = root(l);
        return static_cast<bool>(val[r.var()]) != r.negative();
      },
      [&](Var v, bool value) { val[v] = value ? 1 : 0; });

  // Phase 3: fold every variable onto its (now valued) root.
  std::vector<lbool> out(n, l_undef);
  for (std::size_t v = 0; v < n; ++v) {
    const Lit r = root(pos(static_cast<Var>(v)));
    out[v] = lbool(static_cast<bool>(val[r.var()]) != r.negative());
  }
  return out;
}

PreprocessResult preprocess(const CnfFormula& f, PreprocessOptions opts) {
  Work w;
  w.proof = opts.proof;
  w.fixed.assign(f.num_vars(), l_undef);
  w.substituted.assign(f.num_vars(), kUndefLit);
  w.frozen.assign(f.num_vars(), 0);
  for (Var v : opts.frozen) {
    if (v >= 0 && static_cast<std::size_t>(v) < w.frozen.size()) w.frozen[v] = 1;
  }
  w.clauses.reserve(f.num_clauses());
  w.dead.assign(f.num_clauses(), 0);
  for (const Clause& c : f) {
    w.clauses.emplace_back(c.begin(), c.end());
  }

  bool changed = true;
  while (changed && !w.unsat && w.stats.rounds < opts.max_rounds) {
    ++w.stats.rounds;
    changed = false;
    // Folding substitutions/fixed values into the clauses (which also
    // performs unit propagation) is mandatory for the soundness of the
    // later passes, so it runs regardless of opts.unit_propagation.
    changed |= apply_assignments(w);
    if (w.unsat) break;
    if (opts.pure_literals) {
      changed |= eliminate_pure_literals(w);
      if (changed) {
        apply_assignments(w);
        if (w.unsat) break;
      }
    }
    if (opts.equivalency_reasoning) {
      changed |= equivalency_reasoning(w);
      if (w.unsat) break;
      if (changed) {
        apply_assignments(w);
        if (w.unsat) break;
      }
    }
    if (opts.subsumption || opts.self_subsumption) {
      changed |= subsume_pass(w, opts.subsumption, opts.self_subsumption);
      if (w.unsat) break;
    }
    if (opts.bounded_variable_elimination) {
      changed |= bve_pass(w, opts);
      if (w.unsat) break;
    }
  }
  // max_rounds can exhaust with assignments still pending; fold them
  // so the output formula never mentions a fixed or substituted
  // variable (reconstruct_model's seeding relies on that).
  while (!w.unsat && apply_assignments(w)) {
  }

  PreprocessResult result;
  result.unsat = w.unsat;
  result.stats = w.stats;
  result.fixed = w.fixed;
  result.substituted = w.substituted;
  result.eliminated = std::move(w.eliminated);
  if (!w.unsat) {
    CnfFormula out(f.num_vars());
    for (std::size_t ci = 0; ci < w.clauses.size(); ++ci) {
      if (w.dead[ci]) continue;
      out.add_clause(Clause(w.clauses[ci]));
    }
    result.simplified = std::move(out);
  }
  return result;
}

}  // namespace sateda::sat
