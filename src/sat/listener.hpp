/// \file listener.hpp
/// \brief Hook interface through which a structural layer augments the
///        SAT engine (paper §5).
///
/// The paper's key architectural point in §5 is that "data structures
/// used for SAT need not be modified" — a circuit-aware layer attaches
/// to an unmodified SAT algorithm and (a) maintains justification
/// information as Deduce()/Diagnose() assign and erase variables, and
/// (b) replaces Decide()'s satisfaction test (all clauses satisfied)
/// with an empty-justification-frontier test, optionally steering
/// branching by fanin backtracing.  This interface is exactly that
/// layer boundary.
#pragma once

#include "cnf/literal.hpp"

namespace sateda::sat {

class Solver;

/// Observer/extension hooks invoked by the search.  All methods have
/// do-nothing defaults so a listener only overrides what it needs.
class SolverListener {
 public:
  virtual ~SolverListener() = default;

  /// Called after literal \p l becomes assigned (decision or
  /// implication) at decision level \p level.
  virtual void on_assign(Lit l, int level) {
    (void)l;
    (void)level;
  }

  /// Called when the assignment of \p l is erased on backtracking.
  virtual void on_unassign(Lit l) { (void)l; }

  /// Called before each decision.  Return a defined literal to force
  /// the branch (e.g. structural backtracing), or kUndefLit to let the
  /// solver's own heuristic choose.
  virtual Lit choose_branch(const Solver& solver) {
    (void)solver;
    return kUndefLit;
  }

  /// Called before each decision.  Returning true declares the
  /// instance satisfied even though some variables are unassigned
  /// (e.g. the justification frontier is empty); the solver stops with
  /// kSat and a partial model.  The default — full CNF satisfaction —
  /// is signalled by returning false always.
  virtual bool satisfied(const Solver& solver) {
    (void)solver;
    return false;
  }

  /// Called when the search restarts (all non-root levels erased).
  virtual void on_restart() {}
};

}  // namespace sateda::sat
