#include "sat/portfolio.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace sateda::sat {

// --- SharedClausePool ----------------------------------------------

SharedClausePool::SharedClausePool(int num_workers, std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)),
      cursors_(static_cast<std::size_t>(num_workers), 0) {}

void SharedClausePool::publish(int worker, const std::vector<Lit>& lits) {
  MutexLock lock(&mu_);
  Entry& e = ring_[next_seq_ % ring_.size()];
  e.worker = worker;
  e.lits = lits;
  ++next_seq_;
}

void SharedClausePool::collect(int worker,
                               std::vector<std::vector<Lit>>& out) {
  MutexLock lock(&mu_);
  std::uint64_t from = cursors_[static_cast<std::size_t>(worker)];
  // Entries older than one ring length have been overwritten.
  const std::uint64_t base =
      next_seq_ >= ring_.size() ? next_seq_ - ring_.size() : 0;
  if (from < base) from = base;
  for (std::uint64_t s = from; s < next_seq_; ++s) {
    const Entry& e = ring_[s % ring_.size()];
    if (e.worker != worker) out.push_back(e.lits);
  }
  cursors_[static_cast<std::size_t>(worker)] = next_seq_;
}

std::int64_t SharedClausePool::published() const {
  MutexLock lock(&mu_);
  return static_cast<std::int64_t>(next_seq_);
}

// --- PortfolioSolver -----------------------------------------------

PortfolioSolver::PortfolioSolver(SolverOptions base, PortfolioOptions popts)
    : popts_(popts), base_opts_(base) {
  int n = popts_.num_workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 2;
  popts_.num_workers = n;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Solver>(diversified_options(base, i)));
    workers_.back()->set_external_interrupt(&stop_all_);
  }
}

PortfolioSolver::~PortfolioSolver() = default;

SolverOptions PortfolioSolver::diversified_options(const SolverOptions& base,
                                                   int index) {
  SolverOptions o = base;
  if (index == 0) return o;  // worker 0 is the reference configuration
  o.seed = base.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index);
  o.default_polarity = (index % 2) != 0;
  switch (index % 4) {
    case 1:
      o.restart_base = 50;
      o.restart_inc = 1.5;
      break;
    case 2:
      o.restart_base = 200;
      o.random_var_freq = 0.0;
      break;
    case 3:
      o.restart_base = 400;
      o.restart_inc = 3.0;
      o.random_var_freq = 0.1;
      break;
    default:  // 4, 8, ...: base restarts with more randomization
      o.random_var_freq = 0.05;
      break;
  }
  switch (index % 3) {
    case 1:
      o.deletion = DeletionPolicy::kRelevance;
      break;
    case 2:
      o.deletion = DeletionPolicy::kSizeBounded;
      o.size_bound = 30;
      break;
    default:
      break;  // keep the base policy
  }
  return o;
}

void PortfolioSolver::enable_proof() {
  if (!traces_.empty()) return;
  traces_.reserve(workers_.size());
  for (auto& w : workers_) {
    traces_.push_back(std::make_unique<SequencedProof>(&proof_ticket_));
    w->set_proof_tracer(traces_.back().get());
  }
}

Proof PortfolioSolver::stitched_proof() const {
  std::vector<const SequencedProof*> ptrs;
  ptrs.reserve(traces_.size());
  for (const auto& t : traces_) ptrs.push_back(t.get());
  return stitch_proofs(ptrs);
}

Var PortfolioSolver::new_var() {
  Var v = workers_.front()->new_var();
  for (std::size_t i = 1; i < workers_.size(); ++i) workers_[i]->new_var();
  return v;
}

void PortfolioSolver::ensure_var(Var v) {
  for (auto& w : workers_) w->ensure_var(v);
}

bool PortfolioSolver::add_clause(std::vector<Lit> lits) {
  bool all_ok = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    std::vector<Lit> copy =
        (i + 1 == workers_.size()) ? std::move(lits) : lits;
    if (!workers_[i]->add_clause(std::move(copy))) all_ok = false;
  }
  if (!all_ok) ok_ = false;
  return all_ok;
}

void PortfolioSolver::interrupt() {
  user_interrupted_.store(true, std::memory_order_relaxed);
  stop_all_.store(true, std::memory_order_relaxed);
}

void PortfolioSolver::set_budgets(std::int64_t conflicts,
                                  std::int64_t time_ms) {
  // base_opts_ drives the deterministic round barrier; the workers'
  // own budgets bound each racing solve (and are saved/restored around
  // deterministic rounds, so setting both is safe in either mode).
  base_opts_.conflict_budget = conflicts;
  base_opts_.time_budget_ms = time_ms;
  for (auto& w : workers_) w->set_budgets(conflicts, time_ms);
}

SolverStats PortfolioSolver::stats() const {
  SolverStats s;
  for (const auto& w : workers_) s += w->stats();
  return s;
}

void PortfolioSolver::simplify_db() {
  for (auto& w : workers_) w->simplify_db();
}

void PortfolioSolver::set_polarity(Var v, bool value) {
  for (auto& w : workers_) w->set_polarity(v, value);
}

void PortfolioSolver::set_decision_var(Var v, bool is_decision) {
  for (auto& w : workers_) w->set_decision_var(v, is_decision);
}

void PortfolioSolver::bump_variable(Var v) {
  for (auto& w : workers_) w->bump_variable(v);
}

void PortfolioSolver::freeze(Var v) {
  for (auto& w : workers_) w->freeze(v);
}

void PortfolioSolver::thaw(Var v) {
  for (auto& w : workers_) w->thaw(v);
}

bool PortfolioSolver::is_frozen(Var v) const {
  return workers_.front()->is_frozen(v);
}

void PortfolioSolver::adopt_outcome(int winner, SolveResult result) {
  winner_ = winner;
  if (result == SolveResult::kSat) {
    model_ = workers_[static_cast<std::size_t>(winner)]->model();
  } else if (result == SolveResult::kUnsat) {
    conflict_core_ =
        workers_[static_cast<std::size_t>(winner)]->conflict_core();
  }
}

SolveResult PortfolioSolver::solve(const std::vector<Lit>& assumptions) {
  model_.clear();
  conflict_core_.clear();
  winner_ = -1;
  unknown_reason_ = UnknownReason::kNone;
  stop_all_.store(false, std::memory_order_relaxed);
  user_interrupted_.store(false, std::memory_order_relaxed);
  if (!ok_) return SolveResult::kUnsat;
  for (Lit l : assumptions) ensure_var(l.var());
  SolveResult r = popts_.deterministic ? solve_deterministic(assumptions)
                                       : solve_racing(assumptions);
  if (r == SolveResult::kUnsat && assumptions.empty()) ok_ = false;
  return r;
}

SolveResult PortfolioSolver::solve_racing(
    const std::vector<Lit>& assumptions) {
  const int n = num_workers();
  SharedClausePool pool(n, popts_.pool_capacity);
  const int max_lbd = popts_.max_shared_lbd;
  const std::size_t max_size =
      static_cast<std::size_t>(popts_.max_shared_size);
  for (int i = 0; i < n; ++i) {
    Solver* w = workers_[static_cast<std::size_t>(i)].get();
    w->set_clause_export(
        [&pool, i, max_lbd, max_size](const std::vector<Lit>& lits, int lbd) {
          if (lbd > max_lbd || lits.size() > max_size) return false;
          pool.publish(i, lits);
          return true;
        });
    w->set_clause_import([&pool, i](std::vector<std::vector<Lit>>& out) {
      pool.collect(i, out);
    });
  }

  std::atomic<int> winner{-1};
  std::vector<SolveResult> results(static_cast<std::size_t>(n),
                                   SolveResult::kUnknown);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([this, i, &assumptions, &results, &winner] {
      SolveResult r =
          workers_[static_cast<std::size_t>(i)]->solve(assumptions);
      results[static_cast<std::size_t>(i)] = r;
      if (r != SolveResult::kUnknown) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, i)) {
          // First decided worker cancels the rest; budget-exhausted
          // (kUnknown) workers never cancel anyone.
          stop_all_.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& w : workers_) {
    w->set_clause_export({});
    w->set_clause_import({});
  }

  const int win = winner.load();
  if (win >= 0) {
    SolveResult r = results[static_cast<std::size_t>(win)];
    adopt_outcome(win, r);
    return r;
  }
  unknown_reason_ = user_interrupted_.load(std::memory_order_relaxed)
                        ? UnknownReason::kInterrupted
                        : workers_.front()->unknown_reason();
  return SolveResult::kUnknown;
}

SolveResult PortfolioSolver::solve_deterministic(
    const std::vector<Lit>& assumptions) {
  const int n = num_workers();
  const int max_lbd = popts_.max_shared_lbd;
  const std::size_t max_size =
      static_cast<std::size_t>(popts_.max_shared_size);

  std::vector<std::int64_t> saved_budget(static_cast<std::size_t>(n));
  std::vector<std::vector<std::vector<Lit>>> exported(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Solver* w = workers_[static_cast<std::size_t>(i)].get();
    saved_budget[static_cast<std::size_t>(i)] = w->options().conflict_budget;
    auto* buf = &exported[static_cast<std::size_t>(i)];
    w->set_clause_export(
        [buf, max_lbd, max_size](const std::vector<Lit>& lits, int lbd) {
          if (lbd > max_lbd || lits.size() > max_size) return false;
          buf->push_back(lits);
          return true;
        });
  }

  const std::int64_t global_budget = base_opts_.conflict_budget;
  // Each worker re-arms its own wall-clock deadline per round, so the
  // overall budget must be enforced here, at the round barrier —
  // otherwise every round would get the full budget again and a
  // timing-out portfolio would loop forever.
  const bool has_deadline = base_opts_.time_budget_ms >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(has_deadline ? base_opts_.time_budget_ms : 0);
  std::int64_t used = 0;
  SolveResult final_result = SolveResult::kUnknown;
  int win = -1;

  while (true) {
    if (stop_all_.load(std::memory_order_relaxed)) {
      unknown_reason_ = UnknownReason::kInterrupted;
      break;
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      unknown_reason_ = UnknownReason::kTimeBudget;
      break;
    }
    std::int64_t slice = popts_.round_conflicts;
    if (global_budget >= 0) slice = std::min(slice, global_budget - used);
    if (slice <= 0) {
      unknown_reason_ = UnknownReason::kConflictBudget;
      break;
    }

    // One lockstep round: every worker searches for `slice` conflicts.
    std::vector<SolveResult> results(static_cast<std::size_t>(n),
                                     SolveResult::kUnknown);
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        workers_[static_cast<std::size_t>(i)]->options().conflict_budget =
            slice;
        threads.emplace_back([this, i, &assumptions, &results] {
          results[static_cast<std::size_t>(i)] =
              workers_[static_cast<std::size_t>(i)]->solve(assumptions);
        });
      }
      for (auto& t : threads) t.join();
    }
    used += slice;

    // The lowest-index decided worker wins, independent of scheduling.
    for (int i = 0; i < n && win < 0; ++i) {
      if (results[static_cast<std::size_t>(i)] != SolveResult::kUnknown) {
        win = i;
        final_result = results[static_cast<std::size_t>(i)];
      }
    }
    if (win >= 0) break;

    // Exchange clauses at the barrier, in worker-index order: every
    // worker sees the same imports in the same sequence every run.
    bool root_unsat = false;
    for (int i = 0; i < n; ++i) {
      for (const std::vector<Lit>& cl :
           exported[static_cast<std::size_t>(i)]) {
        for (int j = 0; j < n; ++j) {
          if (j == i) continue;
          if (!workers_[static_cast<std::size_t>(j)]->add_learnt_clause(cl)) {
            root_unsat = true;
          }
        }
      }
      exported[static_cast<std::size_t>(i)].clear();
    }
    if (root_unsat) {
      // Imported clauses are implied by the problem clauses alone, so a
      // root-level conflict proves the clause set UNSAT (empty core).
      final_result = SolveResult::kUnsat;
      break;
    }
  }

  for (int i = 0; i < n; ++i) {
    Solver* w = workers_[static_cast<std::size_t>(i)].get();
    w->options().conflict_budget = saved_budget[static_cast<std::size_t>(i)];
    w->set_clause_export({});
  }
  if (win >= 0) adopt_outcome(win, final_result);
  return final_result;
}

}  // namespace sateda::sat
