/// \file dpll.hpp
/// \brief Classic DPLL backtrack search (Davis/Logemann/Loveland 1962,
///        paper ref. [11]) — the baseline against which §4.1's modern
///        techniques (learning, non-chronological backtracking) are
///        measured.
///
/// Deliberately implements the *pre-GRASP* state of the art:
/// counter-based unit propagation over occurrence lists, chronological
/// backtracking by polarity flipping, no clause recording, optional
/// static most-occurrences decision ordering.
///
/// Implements SatEngine so application layers can swap it in for the
/// CDCL solver.  Incremental use rebuilds the occurrence index lazily
/// before each solve; assumptions are handled as pre-assignments, so a
/// kUnsat under assumptions reports *all* assumptions as the conflict
/// core (a sound over-approximation — DPLL has no conflict analysis to
/// narrow it).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::sat {

/// Counters for the DPLL baseline.
struct DpllStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t backtracks = 0;
};

/// A plain DPLL solver.
class DpllSolver : public SatEngine {
 public:
  /// Engine-style construction: start empty, add clauses incrementally.
  /// Honours \p opts.conflict_budget (counted in backtracks); the other
  /// CDCL knobs have no DPLL equivalent and are ignored.
  explicit DpllSolver(SolverOptions opts = {});

  /// Legacy construction over a fixed formula (copied).
  /// \param use_occurrence_heuristic if true, branch on the variable
  ///        with the highest static occurrence count; otherwise branch
  ///        in variable-index order.
  explicit DpllSolver(const CnfFormula& formula,
                      bool use_occurrence_heuristic = true);

  std::string name() const override { return "dpll"; }

  // --- problem construction ---------------------------------------
  Var new_var() override {
    dirty_ = true;
    return formula_.new_var();
  }
  void ensure_var(Var v) override {
    if (v >= formula_.num_vars()) {
      dirty_ = true;
      formula_.ensure_var(v);
    }
  }
  int num_vars() const override { return formula_.num_vars(); }
  [[nodiscard]] bool add_clause(std::vector<Lit> lits) override;
  using SatEngine::add_clause;
  bool okay() const override { return ok_; }
  std::size_t num_problem_clauses() const override {
    return formula_.num_clauses();
  }

  // --- solving ------------------------------------------------------
  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions) override;
  using SatEngine::solve;

  /// Legacy entry point with an explicit backtrack budget (< 0 means
  /// unlimited); overrides the options budget for this call.
  SolveResult solve(std::int64_t conflict_budget);

  /// After kSat: the satisfying assignment.
  const std::vector<lbool>& model() const override { return model_; }

  /// After kUnsat under assumptions: every assumption (DPLL cannot
  /// narrow the core).  Empty when the formula itself is UNSAT.
  const std::vector<Lit>& conflict_core() const override {
    return conflict_core_;
  }

  void interrupt() override {
    interrupt_flag_.store(true, std::memory_order_relaxed);
  }
  UnknownReason unknown_reason() const override { return unknown_reason_; }

  /// Budgets for subsequent solve() calls: conflicts are counted in
  /// backtracks here.
  void set_budgets(std::int64_t conflicts, std::int64_t time_ms) override {
    opts_.conflict_budget = conflicts;
    opts_.time_budget_ms = time_ms;
  }

  /// Native counters mapped onto the common fields: backtracks count as
  /// conflicts.
  SolverStats stats() const override;

  /// The raw DPLL counters.
  const DpllStats& dpll_stats() const { return stats_; }

 private:
  struct Frame {
    Var var;
    bool flipped;           ///< both polarities tried?
    std::size_t trail_size; ///< trail length before this decision
  };

  /// Rebuilds occurrence lists and per-clause counters from formula_.
  void rebuild_index();
  bool assign(Lit l);
  void unassign_to(std::size_t trail_size);
  /// Unit-propagates from trail position \p from; returns false on conflict.
  bool propagate(std::size_t from);
  Var pick_variable() const;
  SolveResult run(const std::vector<Lit>& assumptions,
                  std::int64_t conflict_budget);

  SolverOptions opts_;
  CnfFormula formula_;
  bool use_occurrence_heuristic_ = true;
  bool dirty_ = true;  ///< index stale (clauses/vars added since build)
  bool ok_ = true;     ///< no empty clause added

  std::vector<std::vector<std::size_t>> occurs_;  ///< lit index -> clause ids
  std::vector<int> unassigned_count_;             ///< per clause
  std::vector<int> satisfied_by_;                 ///< per clause: #true literals
  std::vector<lbool> assigns_;
  std::vector<Lit> trail_;
  std::vector<Var> static_order_;
  std::vector<lbool> model_;
  std::vector<Lit> conflict_core_;
  DpllStats stats_;
  std::int64_t solve_calls_ = 0;
  std::atomic<bool> interrupt_flag_{false};
  UnknownReason unknown_reason_ = UnknownReason::kNone;
};

}  // namespace sateda::sat
