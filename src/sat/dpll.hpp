/// \file dpll.hpp
/// \brief Classic DPLL backtrack search (Davis/Logemann/Loveland 1962,
///        paper ref. [11]) — the baseline against which §4.1's modern
///        techniques (learning, non-chronological backtracking) are
///        measured.
///
/// Deliberately implements the *pre-GRASP* state of the art:
/// counter-based unit propagation over occurrence lists, chronological
/// backtracking by polarity flipping, no clause recording, optional
/// static most-occurrences decision ordering.
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/options.hpp"

namespace sateda::sat {

/// Counters for the DPLL baseline.
struct DpllStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t backtracks = 0;
};

/// A plain DPLL solver over an immutable CNF formula.
class DpllSolver {
 public:
  /// \param use_occurrence_heuristic if true, branch on the variable
  ///        with the highest static occurrence count; otherwise branch
  ///        in variable-index order.
  explicit DpllSolver(const CnfFormula& formula,
                      bool use_occurrence_heuristic = true);

  /// Runs the search.  \p conflict_budget < 0 means unlimited;
  /// otherwise the solver gives up with kUnknown after that many
  /// backtracks.
  SolveResult solve(std::int64_t conflict_budget = -1);

  /// After kSat: the satisfying assignment.
  const std::vector<lbool>& model() const { return model_; }

  const DpllStats& stats() const { return stats_; }

 private:
  struct Frame {
    Var var;
    bool flipped;           ///< both polarities tried?
    std::size_t trail_size; ///< trail length before this decision
  };

  bool assign(Lit l);
  void unassign_to(std::size_t trail_size);
  /// Unit-propagates from trail position \p from; returns false on conflict.
  bool propagate(std::size_t from);
  Var pick_variable() const;

  const CnfFormula& formula_;
  std::vector<std::vector<std::size_t>> occurs_;  ///< lit index -> clause ids
  std::vector<int> unassigned_count_;             ///< per clause
  std::vector<int> satisfied_by_;                 ///< per clause: #true literals
  std::vector<lbool> assigns_;
  std::vector<Lit> trail_;
  std::vector<Var> static_order_;
  std::vector<lbool> model_;
  DpllStats stats_;
};

}  // namespace sateda::sat
