#include "sat/drat_check.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "sat/proof.hpp"

namespace sateda::sat {

namespace {

constexpr int kNoClause = -1;
constexpr int kAssumed = -2;  ///< trail literal with no antecedent

/// Hash of a clause as a literal multiset (order-independent).
std::uint64_t clause_hash(const std::vector<Lit>& sorted_lits) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (Lit l : sorted_lits) {
    h ^= static_cast<std::uint64_t>(l.index()) + 0x9e3779b9ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

/// The checker's own propagation engine: two watched literals, a trail
/// with antecedents, and conflict-side marking.  Written from scratch;
/// shares nothing with sat::Solver.
class BackwardChecker {
 public:
  BackwardChecker(const CnfFormula& formula, const DratProof& proof,
                  const DratCheckOptions& opts) {
    int nv = formula.num_vars();
    for (const DratStep& s : proof.steps) {
      for (Lit l : s.lits) nv = std::max(nv, l.var() + 1);
    }
    for (Lit l : opts.assumptions) nv = std::max(nv, l.var() + 1);
    assigns_.assign(static_cast<std::size_t>(nv), l_undef);
    reason_.assign(static_cast<std::size_t>(nv), kNoClause);
    seen_.assign(static_cast<std::size_t>(nv), 0);
    watch_.assign(2 * static_cast<std::size_t>(std::max(nv, 1)), {});

    for (const Clause& c : formula) {
      int id = new_clause(std::vector<Lit>(c.begin(), c.end()));
      formula_ids_.push_back(id);
      if (id >= 0) {
        if (clauses_[static_cast<std::size_t>(id)].lits.empty()) {
          formula_has_empty_ = true;
          empty_formula_index_ = formula_ids_.size() - 1;
        }
        attach(id);
      }
    }
    for (Lit a : opts.assumptions) {
      int id = new_clause({a});
      assumption_ids_.push_back(id);
      if (id >= 0) attach(id);
    }
    num_formula_clauses_ = static_cast<int>(clauses_.size());
  }

  /// Checker clause id per formula clause (kNoClause for tautologies),
  /// in formula order; used to report the clausal core.
  const std::vector<int>& formula_ids() const { return formula_ids_; }
  /// Checker clause id per assumption unit, in opts.assumptions order.
  const std::vector<int>& assumption_ids() const { return assumption_ids_; }
  /// Index of the empty formula clause when formula_has_empty().
  std::size_t empty_formula_index() const { return empty_formula_index_; }

  /// True iff the formula itself contains the empty clause.
  bool formula_has_empty() const { return formula_has_empty_; }

  /// Allocates a checker clause (deduplicated literals).  Returns
  /// kNoClause for tautologies — they carry no propagation power and
  /// are trivially redundant, so they are never attached or verified.
  /// An empty clause gets an id but is never attached.
  int new_clause(std::vector<Lit> lits) {
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
      if (lits[i].var() == lits[i + 1].var()) return kNoClause;  // tautology
    }
    CClause c;
    c.sorted = lits;
    c.lits = std::move(lits);
    clauses_.push_back(std::move(c));
    return static_cast<int>(clauses_.size()) - 1;
  }

  void attach(int id) {
    CClause& c = clauses_[static_cast<std::size_t>(id)];
    if (c.active) return;
    c.active = true;
    index_[clause_hash(c.sorted)].push_back(id);
    if (c.lits.size() >= 2) {
      watch_[c.lits[0].index()].push_back(id);
      watch_[c.lits[1].index()].push_back(id);
    } else if (c.lits.size() == 1) {
      units_.push_back(id);
    }
  }

  void detach(int id) {
    CClause& c = clauses_[static_cast<std::size_t>(id)];
    if (!c.active) return;
    c.active = false;
    auto& bucket = index_[clause_hash(c.sorted)];
    bucket.erase(std::remove(bucket.begin(), bucket.end(), id), bucket.end());
    if (c.lits.size() >= 2) {
      unwatch(c.lits[0], id);
      unwatch(c.lits[1], id);
    } else if (c.lits.size() == 1) {
      units_.erase(std::remove(units_.begin(), units_.end(), id),
                   units_.end());
    }
  }

  /// Finds an active clause with exactly \p lits (as a set), preferring
  /// non-formula clauses (a proof should not silently delete input).
  int find_active(std::vector<Lit> lits) const {
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    auto it = index_.find(clause_hash(lits));
    if (it == index_.end()) return kNoClause;
    int formula_match = kNoClause;
    for (int id : it->second) {
      const CClause& c = clauses_[static_cast<std::size_t>(id)];
      if (c.sorted != lits) continue;
      if (id >= num_formula_clauses_) return id;
      formula_match = id;
    }
    return formula_match;
  }

  void mark(int id) { clauses_[static_cast<std::size_t>(id)].marked = true; }
  bool is_marked(int id) const {
    return clauses_[static_cast<std::size_t>(id)].marked;
  }

  /// RUP test: negate \p lits, propagate; true iff a conflict arises.
  /// On success with \p mark_used, every clause on the conflict side is
  /// marked (backward-checking core extraction).
  bool rup(const std::vector<Lit>& lits, bool mark_used) {
    int confl = kNoClause;
    // Assume the negation of the candidate clause.
    for (Lit l : lits) {
      Lit a = ~l;
      lbool v = value(a);
      if (v.is_true()) continue;  // duplicate literal
      if (v.is_false()) {
        // `lits` is a tautology: trivially redundant, nothing to mark.
        undo();
        return true;
      }
      enqueue(a, kAssumed);
    }
    // Assert every active unit clause.
    for (std::size_t i = 0; i < units_.size() && confl == kNoClause; ++i) {
      int id = units_[i];
      const CClause& c = clauses_[static_cast<std::size_t>(id)];
      if (!c.active) continue;
      Lit u = c.lits[0];
      lbool v = value(u);
      if (v.is_false()) {
        confl = id;
      } else if (v.is_undef()) {
        enqueue(u, id);
      }
    }
    if (confl == kNoClause) confl = propagate();
    const bool found = confl != kNoClause;
    if (found && mark_used) mark_conflict(confl);
    undo();
    return found;
  }

  /// RAT test on pivot \p lits[0] after a failed RUP: every active
  /// clause containing the complement of the pivot must have a RUP
  /// resolvent.  RAT additions come from pure-literal elimination, so
  /// this path is rare; a linear database scan is fine.
  bool rat(const std::vector<Lit>& lits, bool mark_used) {
    if (lits.empty()) return false;
    const Lit pivot = lits[0];
    const Lit npivot = ~pivot;
    for (std::size_t id = 0; id < clauses_.size(); ++id) {
      const CClause& c = clauses_[id];
      if (!c.active) continue;
      if (std::find(c.lits.begin(), c.lits.end(), npivot) == c.lits.end()) {
        continue;
      }
      std::vector<Lit> resolvent;
      resolvent.reserve(lits.size() + c.lits.size() - 2);
      for (Lit l : lits) {
        if (l != pivot) resolvent.push_back(l);
      }
      for (Lit l : c.lits) {
        if (l != npivot) resolvent.push_back(l);
      }
      std::sort(resolvent.begin(), resolvent.end());
      resolvent.erase(std::unique(resolvent.begin(), resolvent.end()),
                      resolvent.end());
      bool tautology = false;
      for (std::size_t i = 0; i + 1 < resolvent.size(); ++i) {
        if (resolvent[i].var() == resolvent[i + 1].var()) {
          tautology = true;
          break;
        }
      }
      if (tautology) continue;
      if (!rup(resolvent, mark_used)) return false;
      if (mark_used) mark(static_cast<int>(id));
    }
    return true;
  }

 private:
  struct CClause {
    std::vector<Lit> lits;    ///< deduplicated; positions 0/1 are watched
    std::vector<Lit> sorted;  ///< canonical form for deletion matching
    bool active = false;
    bool marked = false;
  };

  lbool value(Lit l) const { return assigns_[l.var()] ^ l.negative(); }

  void enqueue(Lit l, int reason) {
    assigns_[l.var()] = lbool(!l.negative());
    reason_[l.var()] = reason;
    trail_.push_back(l);
  }

  void undo() {
    for (Lit l : trail_) {
      assigns_[l.var()] = l_undef;
      reason_[l.var()] = kNoClause;
    }
    trail_.clear();
    qhead_ = 0;
  }

  void unwatch(Lit l, int id) {
    auto& list = watch_[l.index()];
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }

  /// Two-watched-literal unit propagation.  Returns the id of a
  /// falsified clause, or kNoClause at fixpoint.
  int propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      const Lit fl = ~p;  // now false
      auto& list = watch_[fl.index()];
      std::size_t j = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        const int id = list[i];
        CClause& c = clauses_[static_cast<std::size_t>(id)];
        if (!c.active) {  // stale entry is impossible: detach unwatches
          list[j++] = id;
          continue;
        }
        if (c.lits[0] == fl) std::swap(c.lits[0], c.lits[1]);
        const Lit other = c.lits[0];
        if (value(other).is_true()) {
          list[j++] = id;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.lits.size(); ++k) {
          if (!value(c.lits[k]).is_false()) {
            std::swap(c.lits[1], c.lits[k]);
            watch_[c.lits[1].index()].push_back(id);
            moved = true;
            break;
          }
        }
        if (moved) continue;  // entry dropped from this list
        list[j++] = id;
        if (value(other).is_false()) {
          // Falsified clause: keep the remaining entries and report.
          for (++i; i < list.size(); ++i) list[j++] = list[i];
          list.resize(j);
          return id;
        }
        enqueue(other, id);
      }
      list.resize(j);
    }
    return kNoClause;
  }

  /// Marks every clause reachable from the conflict through trail
  /// antecedents — the clauses this conflict actually used.
  void mark_conflict(int confl) {
    mark(confl);
    std::vector<Var> stack;
    for (Lit l : clauses_[static_cast<std::size_t>(confl)].lits) {
      stack.push_back(l.var());
    }
    std::vector<Var> touched;
    while (!stack.empty()) {
      Var v = stack.back();
      stack.pop_back();
      if (seen_[v]) continue;
      seen_[v] = 1;
      touched.push_back(v);
      const int r = reason_[v];
      if (r < 0) continue;  // assumed literal: no antecedent
      mark(r);
      for (Lit l : clauses_[static_cast<std::size_t>(r)].lits) {
        stack.push_back(l.var());
      }
    }
    for (Var v : touched) seen_[v] = 0;
  }

  std::vector<CClause> clauses_;
  std::vector<int> formula_ids_;
  std::vector<int> assumption_ids_;
  int num_formula_clauses_ = 0;
  bool formula_has_empty_ = false;
  std::size_t empty_formula_index_ = 0;
  std::vector<std::vector<int>> watch_;  ///< by Lit::index()
  std::vector<int> units_;               ///< ids of active unit clauses
  std::unordered_map<std::uint64_t, std::vector<int>> index_;  ///< active ids

  std::vector<lbool> assigns_;
  std::vector<int> reason_;
  std::vector<char> seen_;
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
};

DratCheckResult fail_at(std::size_t step, const std::string& why) {
  DratCheckResult r;
  r.failed_step = step;
  r.message = "step " + std::to_string(step) + ": " + why;
  return r;
}

/// Fills the core/trim fields of \p result from the checker's marks.
/// Kept additions are exactly the marked ones; kept deletions are those
/// whose target is marked (unmarked clauses never feed a verified
/// conflict, so dropping them cannot weaken any replayed propagation).
void collect_core(const BackwardChecker& checker, const DratProof& proof,
                  const std::vector<int>& step_clause, std::size_t end,
                  bool have_empty, const DratCheckOptions& opts,
                  DratCheckResult& result) {
  const std::vector<int>& fids = checker.formula_ids();
  for (std::size_t i = 0; i < fids.size(); ++i) {
    if (fids[i] != kNoClause && checker.is_marked(fids[i])) {
      result.core_clauses.push_back(i);
    }
  }
  const std::vector<int>& aids = checker.assumption_ids();
  for (std::size_t i = 0; i < aids.size(); ++i) {
    if (aids[i] != kNoClause && checker.is_marked(aids[i])) {
      result.core_assumptions.push_back(opts.assumptions[i]);
    }
  }
  for (std::size_t i = 0; i < end; ++i) {
    const DratStep& s = proof.steps[i];
    if (!s.deletion && s.lits.empty()) {
      // The terminating empty clause: always part of the trim.
      if (have_empty) result.trimmed_proof.steps.push_back(s);
      continue;
    }
    const int id = step_clause[i];
    if (id == kNoClause || !checker.is_marked(id)) continue;
    result.trimmed_proof.steps.push_back(s);
  }
}

}  // namespace

DratProof DratProof::from_proof(const Proof& proof) {
  DratProof out;
  out.steps.reserve(proof.steps().size());
  for (const Proof::Step& s : proof.steps()) {
    out.steps.push_back({s.deletion, s.lits});
  }
  return out;
}

DratCheckResult check_drat(const CnfFormula& formula, const DratProof& proof,
                           const DratCheckOptions& opts) {
  DratCheckResult result;
  BackwardChecker checker(formula, proof, opts);
  if (checker.formula_has_empty()) {
    result.ok = true;
    result.refutation = true;
    result.message = "formula contains the empty clause";
    if (opts.collect_core) {
      result.core_clauses.push_back(checker.empty_formula_index());
    }
    return result;
  }

  // Forward pass: attach additions, honour deletions, stop at the
  // first empty clause.
  const std::size_t n = proof.steps.size();
  std::vector<int> step_clause(n, kNoClause);
  std::size_t end = n;  // one past the last step to consider
  bool have_empty = false;
  for (std::size_t i = 0; i < n; ++i) {
    const DratStep& s = proof.steps[i];
    if (s.deletion) {
      const int id = checker.find_active(s.lits);
      // An unmatched deletion is ignored (the database only stays
      // stronger); matched ones detach.
      if (id != kNoClause) {
        step_clause[i] = id;
        checker.detach(id);
      }
      continue;
    }
    if (s.lits.empty()) {
      have_empty = true;
      end = i + 1;
      break;
    }
    const int id = checker.new_clause(s.lits);
    step_clause[i] = id;
    if (id != kNoClause) checker.attach(id);
  }

  if (!have_empty && opts.require_refutation) {
    result.message = "proof does not derive the empty clause";
    result.failed_step = n;
    return result;
  }

  // Backward pass.  The empty clause (or, in derivation-only mode,
  // every addition) seeds the marking; a marked addition is verified
  // against exactly the database that existed when it was added.
  std::size_t i = end;
  if (have_empty) {
    --i;  // the empty-clause step itself
    if (!checker.rup({}, /*mark_used=*/true)) {
      return fail_at(i, "empty clause is not RUP");
    }
    ++result.steps_checked;
  }
  while (i-- > 0) {
    const DratStep& s = proof.steps[i];
    const int id = step_clause[i];
    if (s.deletion) {
      if (id != kNoClause) checker.attach(id);
      continue;
    }
    if (id == kNoClause) continue;  // tautology: trivially redundant
    checker.detach(id);
    if (!have_empty) checker.mark(id);  // derivation-only: verify all
    if (!checker.is_marked(id)) {
      ++result.steps_skipped;
      continue;
    }
    if (!checker.rup(s.lits, /*mark_used=*/true) &&
        !checker.rat(s.lits, /*mark_used=*/true)) {
      return fail_at(i, "clause is neither RUP nor RAT");
    }
    ++result.steps_checked;
  }

  result.ok = true;
  result.refutation = have_empty;
  result.message = have_empty
                       ? "verified refutation"
                       : "valid derivation (no refutation)";
  if (opts.collect_core) {
    collect_core(checker, proof, step_clause, end, have_empty, opts, result);
  }
  return result;
}

DratCheckResult check_drat(const CnfFormula& formula, const Proof& proof,
                           const DratCheckOptions& opts) {
  return check_drat(formula, DratProof::from_proof(proof), opts);
}

namespace {

DratProof parse_text_drat(const std::string& text) {
  DratProof out;
  std::istringstream in(text);
  std::string tok;
  std::vector<Lit> current;
  bool in_deletion = false;
  bool in_clause = false;
  while (in >> tok) {
    if (tok == "c") {  // comment: skip to end of line
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "d") {
      if (in_clause) {
        throw std::runtime_error("DRAT text: 'd' inside a clause");
      }
      in_deletion = true;
      in_clause = true;
      continue;
    }
    long long code = 0;
    std::size_t used = 0;
    try {
      code = std::stoll(tok, &used);
    } catch (const std::exception&) {
      throw std::runtime_error("DRAT text: bad token '" + tok + "'");
    }
    if (used != tok.size()) {
      throw std::runtime_error("DRAT text: bad token '" + tok + "'");
    }
    if (code == 0) {
      out.steps.push_back({in_deletion, current});
      current.clear();
      in_deletion = false;
      in_clause = false;
      continue;
    }
    in_clause = true;
    const long long mag = code < 0 ? -code : code;
    if (mag > (1LL << 30)) {
      throw std::runtime_error("DRAT text: literal out of range: " + tok);
    }
    current.push_back(Lit(static_cast<Var>(mag - 1), code < 0));
  }
  if (in_clause || !current.empty()) {
    throw std::runtime_error("DRAT text: trailing clause without 0");
  }
  return out;
}

DratProof parse_binary_drat(const std::string& bytes) {
  DratProof out;
  std::size_t i = 0;
  const std::size_t n = bytes.size();
  while (i < n) {
    const unsigned char tag = static_cast<unsigned char>(bytes[i++]);
    bool deletion = false;
    if (tag == 'd') {
      deletion = true;
    } else if (tag != 'a') {
      throw std::runtime_error("DRAT binary: bad step tag at byte " +
                               std::to_string(i - 1));
    }
    std::vector<Lit> lits;
    while (true) {
      if (i >= n) throw std::runtime_error("DRAT binary: truncated clause");
      std::uint64_t u = 0;
      int shift = 0;
      while (true) {
        if (i >= n) {
          throw std::runtime_error("DRAT binary: truncated literal");
        }
        const unsigned char b = static_cast<unsigned char>(bytes[i++]);
        if (shift >= 63) {
          throw std::runtime_error("DRAT binary: literal overflow");
        }
        u |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
        if ((b & 0x80) == 0) break;
      }
      if (u == 0) break;  // clause terminator
      const std::uint64_t dimacs = u >> 1;
      if (dimacs == 0 || dimacs > (1ULL << 30)) {
        throw std::runtime_error("DRAT binary: variable out of range");
      }
      lits.push_back(Lit(static_cast<Var>(dimacs - 1), (u & 1) != 0));
    }
    out.steps.push_back({deletion, std::move(lits)});
  }
  return out;
}

}  // namespace

DratProof parse_drat(std::istream& in, DratParseFormat format) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  if (format == DratParseFormat::kAuto) {
    // Every nonempty binary step ends with a 0x00 terminator and text
    // proofs never contain one, so NUL is a perfect discriminator.
    format = content.find('\0') != std::string::npos
                 ? DratParseFormat::kBinary
                 : DratParseFormat::kText;
  }
  return format == DratParseFormat::kBinary ? parse_binary_drat(content)
                                            : parse_text_drat(content);
}

DratProof parse_drat_file(const std::string& path, DratParseFormat format) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open proof file: " + path);
  return parse_drat(in, format);
}

void write_drat_text(std::ostream& out, const DratProof& proof) {
  for (const DratStep& s : proof.steps) {
    if (s.deletion) out << "d ";
    for (Lit l : s.lits) {
      out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

}  // namespace sateda::sat
