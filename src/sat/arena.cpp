#include "sat/arena.hpp"

namespace sateda::sat {

CRef ClauseArena::alloc(const std::vector<Lit>& lits, bool learnt) {
  assert(lits.size() >= 2);
  // Cache-line packing: the propagation loop's first touch reads words
  // ref..ref+4 (header + two watched literals); keep them inside one
  // 64-byte (16-word) line by padding past a boundary the five words
  // would otherwise straddle.
  constexpr std::size_t kLineWords = 64 / sizeof(std::uint32_t);
  constexpr std::size_t kHotWords = ArenaClause::kHeaderWords + 2;
  const std::size_t phase = mem_.size() % kLineWords;
  if (phase > kLineWords - kHotWords) {
    const std::size_t pad = kLineWords - phase;
    mem_.resize(mem_.size() + pad, kPadWord);
    padding_ += pad;
  }
  const CRef ref = static_cast<CRef>(mem_.size());
  // Reason encodings pack a CRef into 31 bits; 2^31 words = 8 GiB of
  // clauses, far beyond any in-memory instance we serve.
  assert(mem_.size() + ArenaClause::kHeaderWords + lits.size() <
         (std::size_t{1} << 31));
  mem_.resize(mem_.size() + ArenaClause::kHeaderWords + lits.size());
  std::uint32_t* base = mem_.data() + ref;
  base[0] =
      (static_cast<std::uint32_t>(lits.size()) << 6) | (learnt ? 1u : 0u);
  base[1] = static_cast<std::uint32_t>(lits.size());  // default LBD
  base[2] = std::bit_cast<std::uint32_t>(0.0f);
  for (std::size_t i = 0; i < lits.size(); ++i) {
    base[ArenaClause::kHeaderWords + i] =
        static_cast<std::uint32_t>(lits[i].index());
  }
  return ref;
}

CRef ClauseArena::reloc(CRef ref, ClauseArena& to) {
  ArenaClause c = (*this)[ref];
  assert(!c.deleted());
  if (c.relocated()) return c.forward();
  const std::vector<Lit> lits = c.lits();
  CRef nr = to.alloc(lits, c.learnt());
  ArenaClause nc = to[nr];
  nc.set_lbd(c.lbd());
  nc.set_activity(c.activity());
  nc.set_tier(c.tier());
  if (c.used()) nc.set_used();
  c.set_forward(nr);
  return nr;
}

}  // namespace sateda::sat
