/// \file solver.hpp
/// \brief CDCL backtrack-search SAT solver in the GRASP mould
///        (paper §4.1, Figure 2).
///
/// The public surface mirrors the paper's generic algorithm: the
/// search loop is organised around Decide / Deduce / Diagnose / Erase,
/// and each of the techniques §4.1 and §6 enumerate is implemented and
/// independently switchable (see SolverOptions):
///
///  * conflict analysis with 1-UIP clause recording,
///  * non-chronological backtracking,
///  * clause deletion with activity-, size-, relevance- and tiered
///    LBD-based policies,
///  * VSIDS decisions with optional randomization,
///  * restarts on a Luby schedule,
///  * incremental solving under assumptions with final-conflict
///    extraction (for the iterative/incremental EDA use of §6).
///
/// Storage: all clauses of three or more literals live in a flat
/// ClauseArena (arena.hpp); binary clauses are implicit — each lives
/// only as two entries in per-literal binary watch lists, propagated in
/// a tight first pass of deduce() with no clause dereference at all.
/// Watch lists themselves live in flat per-literal slabs inside one
/// contiguous pool (watch.hpp), rebuilt in watch order at arena GC so
/// the propagation loop streams through memory sequentially.
///
/// A SolverListener (paper §5) can observe assignments and override
/// the decision procedure without any change to these data structures.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "cnf/formula.hpp"
#include "cnf/literal.hpp"
#include "sat/arena.hpp"
#include "sat/engine.hpp"
#include "sat/heap.hpp"
#include "sat/inprocess/elim.hpp"
#include "sat/inprocess/schedule.hpp"
#include "sat/listener.hpp"
#include "sat/options.hpp"
#include "sat/proof.hpp"
#include "sat/watch.hpp"

namespace sateda::sat {

class SolverAuditor;  // audit.hpp
class Inprocessor;    // inprocess/inprocess.hpp
namespace cube {
class LookaheadSplitter;  // cube/splitter.cpp
}  // namespace cube

/// Conflict-driven clause-learning SAT solver.
class Solver : public SatEngine {
 public:
  explicit Solver(SolverOptions opts = {});

  std::string name() const override { return "cdcl"; }

  // --- problem construction ---------------------------------------

  /// Allocates a fresh variable.
  Var new_var() override;

  /// Ensures variables 0..v exist.
  void ensure_var(Var v) override;

  int num_vars() const override { return static_cast<int>(assigns_.size()); }

  /// Adds a clause.  Returns false if the solver becomes trivially
  /// unsatisfiable (empty clause, or a unit contradicting level-0
  /// implications).  May be called between solve() calls (incremental
  /// interface, paper §6).
  [[nodiscard]] bool add_clause(std::vector<Lit> lits) override;
  using SatEngine::add_clause;

  /// Adds every clause of \p f.
  [[nodiscard]] bool add_formula(const CnfFormula& f) override;

  /// False once the clause set has been proven unsatisfiable at the
  /// root level; subsequent solve() calls return kUnsat immediately.
  bool okay() const override { return ok_; }

  // --- solving ------------------------------------------------------

  /// Decides satisfiability under the given assumption literals
  /// (each treated as a pseudo-decision; paper §6 incremental SAT).
  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions) override;
  using SatEngine::solve;

  /// After kSat: the satisfying assignment, indexed by variable.
  /// Entries are l_undef only if a listener declared early
  /// satisfaction (paper §5 — de-overspecified patterns).
  const std::vector<lbool>& model() const override { return model_; }

  /// After kUnsat under assumptions: a subset of the assumptions whose
  /// conjunction is already inconsistent with the clause set.
  const std::vector<Lit>& conflict_core() const override {
    return conflict_core_;
  }

  /// Requests cooperative termination (callable from other threads):
  /// the in-flight solve() unwinds to the root and returns kUnknown
  /// with unknown_reason() == kInterrupted.  Cleared on solve() entry.
  void interrupt() override {
    interrupt_flag_.store(true, std::memory_order_relaxed);
  }

  /// Why the last solve() returned kUnknown.
  UnknownReason unknown_reason() const override { return unknown_reason_; }

  /// Re-arms the conflict/wall-clock budgets for subsequent solve()
  /// calls (negative: unlimited).
  void set_budgets(std::int64_t conflicts, std::int64_t time_ms) override {
    opts_.conflict_budget = conflicts;
    opts_.time_budget_ms = time_ms;
  }

  /// Additionally polls \p flag (not owned, may be null) for
  /// termination requests.  Unlike interrupt(), the external flag is
  /// never cleared by solve(), so a request can never be lost to the
  /// entry reset — the portfolio uses this to cancel losers.
  void set_external_interrupt(const std::atomic<bool>* flag) {
    external_interrupt_ = flag;
  }

  // --- parallel clause sharing (portfolio backend) ------------------

  /// Called on every recorded conflict clause (literals + LBD); return
  /// true to count the clause as exported.  Invoked from the solving
  /// thread — the callback must do its own synchronization.
  using ClauseExportFn =
      std::function<bool(const std::vector<Lit>&, int lbd)>;

  /// Drains foreign learnt clauses into the output batch.  Invoked at
  /// restart boundaries (root level) from the solving thread.
  using ClauseImportFn = std::function<void(std::vector<std::vector<Lit>>&)>;

  void set_clause_export(ClauseExportFn fn) { export_fn_ = std::move(fn); }
  void set_clause_import(ClauseImportFn fn) { import_fn_ = std::move(fn); }

  /// Attaches a clause that is logically implied by the problem
  /// clauses (e.g. learnt by a portfolio peer) as a learnt clause.
  /// Must be called at decision level 0, between solve() calls or from
  /// a ClauseImportFn.  Returns false if the clause set becomes
  /// root-level unsatisfiable.  The clause itself is not proof-logged
  /// (in the portfolio the exporter's trace already derived it; the
  /// stitched proof orders that derivation first), but a root conflict
  /// it causes ends the attached trace with the empty clause.
  [[nodiscard]] bool add_learnt_clause(std::vector<Lit> lits);

  // --- current (in-search / root-level) state -----------------------

  /// Current value of a variable/literal in the solver's trail.
  lbool value(Var v) const { return assigns_[v]; }
  lbool value(Lit l) const { return assigns_[l.var()] ^ l.negative(); }

  /// Decision level at which \p v was assigned (meaningful only while
  /// assigned).
  int level(Var v) const { return level_[v]; }

  /// Current decision level.
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  /// Number of assigned variables.
  int num_assigned() const { return static_cast<int>(trail_.size()); }

  // --- instrumentation ----------------------------------------------

  SolverStats stats() const override {
    SolverStats s = stats_;
    s.watch_slab_relocs =
        watches_.slab_relocations() + bin_watches_.slab_relocations();
    return s;
  }
  SolverOptions& options() { return opts_; }
  const SolverOptions& options() const { return opts_; }

  /// Attaches a structural layer (paper §5); pass nullptr to detach.
  /// The listener is not owned.
  void set_listener(SolverListener* listener) { listener_ = listener; }

  /// Attaches a proof tracer (not owned): every conflict-derived
  /// clause, root-level strengthening and learnt-clause deletion is
  /// reported, yielding a DRAT-checkable trace; a refutation ends with
  /// the empty clause (for UNSAT under assumptions, the negated
  /// conflict core is derived instead).  Attach before adding clauses.
  void set_proof_tracer(ProofTracer* proof) { proof_ = proof; }

  /// Legacy name for set_proof_tracer().
  void set_proof_logger(ProofLogger* proof) { proof_ = proof; }

  /// Attaches an invariant auditor (not owned, debug tooling; see
  /// audit.hpp): the solver reports quiescent checkpoints — BCP
  /// fixpoints, restarts and solve() exit — and the auditor validates
  /// watcher/trail/learnt invariants every Nth one.  Pass nullptr to
  /// detach; detached cost is a single pointer test per checkpoint.
  void set_auditor(SolverAuditor* auditor) { auditor_ = auditor; }

  /// Activity bump so applications can steer the heuristic toward
  /// interesting variables (e.g. fault-cone variables in ATPG).
  void bump_variable(Var v) override { bump_var_activity(v); }

  /// Sets the preferred first polarity for \p v (overrides saved phase
  /// until the variable is next assigned): branch v=value first.
  /// (Internally polarity_[v]==1 means "branch negative".)
  void set_polarity(Var v, bool value) override {
    polarity_[v] = value ? 0 : 1;
  }

  /// Excludes \p v from branching when \p is_decision is false.
  /// Soundness caveat: a non-decision variable must not occur in any
  /// live clause the model is expected to satisfy (intended for
  /// variables of retired clause groups in incremental flows); the
  /// solver may leave it unassigned in models.
  void set_decision_var(Var v, bool is_decision) override {
    decision_[v] = is_decision ? 1 : 0;
    if (is_decision && value(v).is_undef() && !order_.contains(v)) {
      order_.insert(v);
    }
  }

  /// Protects \p v from elimination by inprocessing (see SatEngine).
  /// Assumption variables are frozen automatically — and reintroduced
  /// first if an earlier run already eliminated them — at every
  /// solve() entry, so freeze-less legacy callers stay sound; explicit
  /// freezing avoids the (more expensive) reintroduction path.
  void freeze(Var v) override {
    ensure_var(v);
    frozen_[v] = 1;
  }
  void thaw(Var v) override {
    ensure_var(v);
    frozen_[v] = 0;
  }
  bool is_frozen(Var v) const override {
    return static_cast<std::size_t>(v) < frozen_.size() && frozen_[v] != 0;
  }

  /// Whether inprocessing has eliminated \p v (no live clause mentions
  /// it; models are reconstructed over it).  Cleared by reintroduction
  /// when a new clause or assumption mentions the variable.
  bool is_eliminated(Var v) const {
    return static_cast<std::size_t>(v) < eliminated_.size() &&
           eliminated_[v] != 0;
  }

  /// Number of original (non-learnt, non-deleted) problem clauses
  /// (implicit binaries included).
  std::size_t num_problem_clauses() const override {
    return num_problem_clauses_;
  }
  std::size_t num_learnt_clauses() const {
    return learnts_.size() + num_learnt_binaries_;
  }

  /// Removes every clause already satisfied at the root level (e.g.
  /// clause groups retired by an activation literal in incremental
  /// flows).  Must be called between solve() calls.  Semantics are
  /// unchanged; watch lists shrink accordingly.
  void simplify_db() override;

 private:
  friend class SolverAuditor;  // read-only introspection of internals
  friend class Inprocessor;    // in-search simplification passes
  friend class cube::LookaheadSplitter;  // lookahead probing for splits

  // --- Figure 2 phases ---------------------------------------------
  enum class DecideStatus {
    kDecision,            ///< a new decision level was opened
    kSatisfied,           ///< nothing left to assign (or listener says done)
    kAssumptionConflict,  ///< an assumption is already falsified
  };

  /// Decide(): picks and enqueues the next branching assignment,
  /// drawing pending assumptions first (paper Fig. 2 Decide()).
  DecideStatus decide();

  /// Deduce(): Boolean constraint propagation — a binary-implication
  /// pass per trail literal, then the two-watched-literal loop over the
  /// arena.  Returns the conflicting antecedent (kNoReason if none; a
  /// binary conflict's literals are latched in bin_conflict_).
  Reason deduce();

  /// Diagnose(): 1-UIP conflict analysis.  Fills \p out_learnt with
  /// the conflict-induced clause (out_learnt[0] is the asserting
  /// literal) and \p out_btlevel with the backtrack level.
  void diagnose(Reason confl, std::vector<Lit>& out_learnt,
                int& out_btlevel);

  /// Erase(): undoes all assignments above \p level.
  void erase_until(int level);

  // --- helpers -------------------------------------------------------
  SolveResult search();
  /// Pulls foreign clauses via import_fn_ and attaches them; returns
  /// false on a root-level conflict.  Called at restart boundaries.
  bool import_shared_clauses();
  /// True when the conflict count has reached the next inprocessing
  /// trigger.  Under self-throttling the first round additionally waits
  /// for entry_conflicts, so propagation-only solves skip it entirely.
  bool inprocess_due() const;
  /// True when the entry-round database-shape gate
  /// (entry_max_binary_fraction) would skip every entry pass: the
  /// database is binary-heavy, i.e. circuit-shaped.  search() then
  /// skips the *forced* entry restart too — on instances that solve in
  /// a few dozen conflicts without restarting (small CEC miters), the
  /// restart plus a fully-gated no-op round were pure overhead.
  bool entry_inprocess_gated() const;
  /// Runs one inprocessing pass (probing/vivification/BVE) and
  /// reschedules the next one.  Returns false iff the clause set was
  /// refuted (ok_ cleared, proof closed).  Root level only.
  bool run_inprocess();
  /// Undoes the BVE elimination of \p v: restores its saved clauses
  /// (recursively reintroducing any variable eliminated later that
  /// they mention) and makes it a decision variable again.  Returns
  /// false on a root conflict while re-adding.
  bool reintroduce(Var v);
  bool enqueue(Lit p, Reason reason);
  CRef attach_new_clause(const std::vector<Lit>& lits, bool learnt);
  void attach_binary(Lit a, Lit b, bool learnt);
  void attach_watches(CRef cref);
  void detach_watches(CRef cref);
  bool locked(CRef cref) const;
  void remove_clause(CRef cref);
  void reduce_db();
  void reduce_db_tiered();
  void reduce_db_size_bounded();
  void reduce_db_legacy();
  /// Compacts the arena when the wasted fraction passes opts_.gc_frac.
  void check_garbage();
  void garbage_collect();
  /// Compacts both watch pools (slabs re-laid in literal-index order),
  /// remapping clause refs through \p remap.  Invalidates every
  /// outstanding WatchRef/Entry* — treated like a GC point by the
  /// sateda-cref-held-across-gc check.
  void rebuild_watches(const std::function<void(CRef&)>& remap);
  ClauseTier tier_for_lbd(int lbd) const;
  Lit pick_branch_lit();
  void bump_var_activity(Var v);
  void decay_var_activity();
  void bump_clause_activity(ArenaClause c);
  void decay_clause_activity();
  void minimize_learnt(std::vector<Lit>& learnt);
  bool literal_redundant(Lit p);
  void analyze_final(Lit p);
  int unbound_literals(ArenaClause c) const;
  int compute_lbd(const std::vector<Lit>& lits);
  int compute_lbd_clause(ArenaClause c);
  static double luby(double y, int i);

  SolverOptions opts_;
  SolverStats stats_;
  bool ok_ = true;

  ClauseArena arena_;                ///< all clauses with ≥ 3 literals
  std::vector<CRef> clauses_;        ///< live problem clauses (≥ 3 lits)
  std::vector<CRef> learnts_;        ///< live learnt clauses (≥ 3 lits)
  std::size_t num_problem_clauses_ = 0;   ///< incl. implicit binaries
  std::size_t num_learnt_binaries_ = 0;
  FlatWatchArena<Watcher> watches_;        ///< slabs indexed by Lit::index()
  FlatWatchArena<BinWatcher> bin_watches_; ///< ditto
  Lit bin_conflict_[2] = {kUndefLit, kUndefLit};  ///< last binary conflict

  std::vector<lbool> assigns_;     ///< per variable
  std::vector<int> level_;         ///< per variable
  std::vector<Reason> reason_;     ///< per variable antecedent
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;     ///< trail index at each decision level
  std::size_t qhead_ = 0;          ///< propagation queue head into trail_

  std::vector<double> activity_;   ///< VSIDS score per variable
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  VarOrderHeap order_;
  std::vector<char> polarity_;     ///< saved phase per variable
  std::vector<char> decision_;     ///< eligible for branching
  std::vector<char> frozen_;       ///< exempt from inprocessing elimination
  std::vector<char> eliminated_;   ///< removed by BVE, no live occurrences
  std::vector<ElimRecord> elim_stack_;  ///< chronological; model extension

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_core_;
  std::vector<lbool> model_;

  std::vector<char> seen_;         ///< scratch for diagnose/minimize
  std::vector<Lit> analyze_stack_; ///< scratch for minimization
  std::vector<Lit> analyze_clear_;
  std::vector<std::uint64_t> level_stamp_;  ///< scratch for LBD counting
  std::uint64_t lbd_stamp_ = 0;

  std::mt19937_64 rng_;
  SolverListener* listener_ = nullptr;
  ProofTracer* proof_ = nullptr;
  SolverAuditor* auditor_ = nullptr;

  std::atomic<bool> interrupt_flag_{false};
  const std::atomic<bool>* external_interrupt_ = nullptr;
  UnknownReason unknown_reason_ = UnknownReason::kNone;
  ClauseExportFn export_fn_;
  ClauseImportFn import_fn_;
  std::vector<std::vector<Lit>> import_buf_;  ///< scratch for imports

  double max_learnts_ = 0;                ///< legacy policies' DB cap
  std::int64_t next_reduce_ = -1;         ///< kTiered: conflict count trigger
  std::int64_t reduce_interval_ = 0;
  std::int64_t next_aggr_reduce_ = -1;    ///< size-bounded/no-learning trigger
  std::int64_t aggr_interval_ = 64;
  std::int64_t conflicts_at_start_ = 0;
  std::int64_t propagations_at_start_ = 0;
  std::int64_t next_inprocess_ = 0;       ///< conflict count trigger
  std::int64_t inprocess_interval_ = -1;  ///< current (growing) interval
  InprocessScheduler ip_sched_;           ///< per-pass budgets + ledger
  std::chrono::steady_clock::time_point deadline_;  ///< wall-clock budget
  bool has_deadline_ = false;
  int time_poll_counter_ = 0;  ///< clock polled once per 64 loop rounds
};

}  // namespace sateda::sat
