#include "sat/audit.hpp"

#include <algorithm>
#include <cstddef>

namespace sateda::sat {

namespace {

std::string clause_tag(ClauseRef cref, const Clause& c) {
  return std::string(c.learnt() ? "learnt" : "problem") + " clause #" +
         std::to_string(cref) + " " + to_string(c);
}

}  // namespace

void SolverAuditor::audit(const Solver& s) {
  ++report_.audits_run;
  if (opts_.check_watchers) check_watchers(s);
  if (opts_.check_trail) check_trail(s);
  if (opts_.check_learnts) check_learnts(s);
}

void SolverAuditor::check_watchers(const Solver& s) {
  const std::size_t pool_size = s.clause_pool_.size();
  std::vector<int> seen0(pool_size, 0);
  std::vector<int> seen1(pool_size, 0);
  for (std::size_t idx = 0; idx < s.watches_.size(); ++idx) {
    // watches_[(~w).index()] holds clauses watching w, so the literal
    // a list at index `idx` watches is the complement.
    const Lit watched = ~Lit::from_index(static_cast<std::int32_t>(idx));
    for (const Solver::Watcher& w : s.watches_[idx]) {
      if (w.cref < 0 || static_cast<std::size_t>(w.cref) >= pool_size) {
        violation("watcher with out-of-range clause ref " +
                  std::to_string(w.cref));
        continue;
      }
      const Clause& c = s.clause_pool_[w.cref];
      if (c.deleted()) {
        violation("watch list of " + to_string(watched) +
                  " references deleted clause #" + std::to_string(w.cref));
        continue;
      }
      if (c.size() < 2) {
        violation("watched clause #" + std::to_string(w.cref) +
                  " has fewer than two literals");
        continue;
      }
      if (c[0] == watched) {
        ++seen0[static_cast<std::size_t>(w.cref)];
      } else if (c[1] == watched) {
        ++seen1[static_cast<std::size_t>(w.cref)];
      } else {
        violation("watch list of " + to_string(watched) + " holds " +
                  clause_tag(w.cref, c) +
                  " but that literal is not in a watched position");
      }
      if (!c.contains(w.blocker)) {
        violation("blocker " + to_string(w.blocker) + " of " +
                  clause_tag(w.cref, c) + " is not a clause literal");
      }
    }
  }
  for (std::size_t cref = 0; cref < pool_size; ++cref) {
    const Clause& c = s.clause_pool_[cref];
    if (c.deleted() || c.size() < 2) continue;
    if (seen0[cref] != 1 || seen1[cref] != 1) {
      violation(clause_tag(static_cast<ClauseRef>(cref), c) +
                " is watched " + std::to_string(seen0[cref]) + "/" +
                std::to_string(seen1[cref]) +
                " times (expected exactly 1/1)");
    }
  }
}

void SolverAuditor::check_trail(const Solver& s) {
  const std::size_t trail_size = s.trail_.size();
  if (s.qhead_ > trail_size) {
    violation("qhead past the end of the trail");
  }
  // trail_lim_ must be a monotone segmentation of the trail.
  int prev = 0;
  for (std::size_t d = 0; d < s.trail_lim_.size(); ++d) {
    const int lim = s.trail_lim_[d];
    if (lim < prev || static_cast<std::size_t>(lim) > trail_size) {
      violation("trail_lim[" + std::to_string(d) +
                "] does not segment the trail");
      return;  // later indexing below would be meaningless
    }
    prev = lim;
  }

  std::vector<char> on_trail(s.assigns_.size(), 0);
  std::size_t next_level = 0;
  int level_of_pos = 0;
  for (std::size_t i = 0; i < trail_size; ++i) {
    while (next_level < s.trail_lim_.size() &&
           static_cast<std::size_t>(s.trail_lim_[next_level]) <= i) {
      ++next_level;
      level_of_pos = static_cast<int>(next_level);
    }
    const Lit p = s.trail_[i];
    const Var v = p.var();
    if (v < 0 || static_cast<std::size_t>(v) >= s.assigns_.size()) {
      violation("trail literal " + to_string(p) + " names an unknown variable");
      continue;
    }
    if (on_trail[static_cast<std::size_t>(v)]) {
      violation("variable " + std::to_string(v + 1) + " appears twice on the trail");
    }
    on_trail[static_cast<std::size_t>(v)] = 1;
    if (!s.value(p).is_true()) {
      violation("trail literal " + to_string(p) + " is not assigned true");
    }
    if (s.level_[static_cast<std::size_t>(v)] != level_of_pos) {
      violation("trail literal " + to_string(p) + " recorded at level " +
                std::to_string(s.level_[static_cast<std::size_t>(v)]) +
                " but sits in the level-" + std::to_string(level_of_pos) +
                " trail segment");
    }
    const ClauseRef r = s.reason_[static_cast<std::size_t>(v)];
    if (r != kNullClause) {
      if (r < 0 || static_cast<std::size_t>(r) >= s.clause_pool_.size()) {
        violation("reason of " + to_string(p) + " is out of range");
        continue;
      }
      const Clause& c = s.clause_pool_[r];
      if (c.deleted()) {
        violation("reason of " + to_string(p) + " is a deleted clause");
        continue;
      }
      if (c.size() < 1 || c[0] != p) {
        violation("reason " + clause_tag(r, c) + " does not assert " +
                  to_string(p) + " in position 0");
        continue;
      }
      for (std::size_t j = 1; j < c.size(); ++j) {
        if (!s.value(c[j]).is_false() ||
            s.level_[static_cast<std::size_t>(c[j].var())] > level_of_pos) {
          violation("reason " + clause_tag(r, c) + " of " + to_string(p) +
                    " is not asserting: literal " + to_string(c[j]) +
                    " is not false at or below its level");
          break;
        }
      }
    }
  }
  // Every assigned variable must be on the trail (and vice versa).
  for (std::size_t v = 0; v < s.assigns_.size(); ++v) {
    if (!s.assigns_[v].is_undef() && !on_trail[v]) {
      violation("variable " + std::to_string(v + 1) +
                " is assigned but missing from the trail");
    }
  }
  // At a propagation fixpoint no live clause may be unit or falsified.
  if (s.qhead_ == trail_size) {
    for (std::size_t cref = 0; cref < s.clause_pool_.size(); ++cref) {
      const Clause& c = s.clause_pool_[cref];
      if (c.deleted()) continue;
      bool satisfied = false;
      int non_false = 0;
      for (Lit l : c) {
        const lbool v = s.value(l);
        if (v.is_true()) {
          satisfied = true;
          break;
        }
        if (!v.is_false()) ++non_false;
      }
      if (!satisfied && non_false < 2) {
        violation(clause_tag(static_cast<ClauseRef>(cref), c) +
                  (non_false == 0 ? " is falsified" : " is unit") +
                  " at a propagation fixpoint");
      }
    }
  }
}

void SolverAuditor::check_learnts(const Solver& s) {
  // Most recent learnt clauses first: those exercise the newest code
  // paths and their antecedents are most likely still present.
  std::size_t checked = 0;
  for (std::size_t i = s.learnts_.size();
       i-- > 0 && checked < opts_.max_learnts_checked;) {
    const ClauseRef cref = s.learnts_[i];
    if (cref < 0 || static_cast<std::size_t>(cref) >= s.clause_pool_.size()) {
      violation("learnt list entry " + std::to_string(cref) +
                " is out of range");
      continue;
    }
    const Clause& c = s.clause_pool_[cref];
    if (c.deleted()) continue;  // stale refs are purged lazily elsewhere
    ++checked;
    ++report_.learnts_checked;
    const lbool verdict =
        learnt_is_rup(s, cref, std::vector<Lit>(c.begin(), c.end()));
    if (verdict.is_true()) continue;
    if (verdict.is_undef() || !opts_.strict_learnt_rup) {
      ++report_.learnts_inconclusive;
      continue;
    }
    violation(clause_tag(cref, c) +
              " is not a unit-propagation consequence of the database");
  }
}

lbool SolverAuditor::learnt_is_rup(const Solver& s, ClauseRef self,
                                   const std::vector<Lit>& lits) {
  // Independent counter-based propagation over the solver's live
  // clauses (minus the audited clause), from an empty assignment — the
  // solver's own trail and watches are deliberately not consulted.
  std::vector<lbool> assigns(s.assigns_.size(), l_undef);
  auto value = [&](Lit l) { return assigns[static_cast<std::size_t>(l.var())] ^ l.negative(); };
  bool conflict = false;
  auto assign = [&](Lit l) {
    const lbool v = value(l);
    if (v.is_false()) {
      conflict = true;
    } else if (v.is_undef()) {
      assigns[static_cast<std::size_t>(l.var())] = lbool(!l.negative());
    }
  };
  for (Lit l : lits) {
    assign(~l);
    if (conflict) return l_true;  // duplicate-polarity clause
  }
  // Unit clauses never enter the clause pool — the solver enqueues
  // them straight onto the root trail — so seed the propagation with
  // the level-0 prefix.  A conflict here means the clause contains a
  // root-entailed literal and is redundant outright.
  const std::size_t root_end =
      s.trail_lim_.empty() ? s.trail_.size()
                           : static_cast<std::size_t>(s.trail_lim_[0]);
  for (std::size_t i = 0; i < root_end && i < s.trail_.size(); ++i) {
    assign(s.trail_[i]);
    if (conflict) return l_true;
  }
  std::size_t budget = opts_.learnt_check_budget;
  bool changed = true;
  while (changed && !conflict) {
    changed = false;
    for (std::size_t cref = 0; cref < s.clause_pool_.size() && !conflict;
         ++cref) {
      if (static_cast<ClauseRef>(cref) == self) continue;
      const Clause& c = s.clause_pool_[cref];
      if (c.deleted()) continue;
      if (budget-- == 0) return l_undef;
      Lit unit = kUndefLit;
      bool satisfied = false;
      int unassigned = 0;
      for (Lit l : c) {
        const lbool v = value(l);
        if (v.is_true()) {
          satisfied = true;
          break;
        }
        if (v.is_undef()) {
          ++unassigned;
          unit = l;
          if (unassigned > 1) break;
        }
      }
      if (satisfied || unassigned > 1) continue;
      if (unassigned == 0) {
        conflict = true;
      } else {
        assign(unit);
        changed = true;
      }
    }
  }
  return lbool(conflict);
}

void SolverAuditor::corrupt_watcher_for_test(Solver& s) {
  for (auto& list : s.watches_) {
    if (!list.empty()) {
      list.pop_back();  // a live clause is now watched only once
      return;
    }
  }
}

void SolverAuditor::corrupt_trail_for_test(Solver& s) {
  if (!s.trail_.empty()) {
    s.level_[static_cast<std::size_t>(s.trail_.front().var())] += 1;
  }
}

void SolverAuditor::corrupt_learnt_for_test(Solver& s) {
  for (ClauseRef cref : s.learnts_) {
    Clause& c = s.clause_pool_[cref];
    if (!c.deleted() && c.size() >= 2 && !s.locked(cref)) {
      // Flip a non-watched literal's polarity: the clause shape stays
      // legal for the watch checks but it is no longer a consequence.
      std::size_t pos = c.size() - 1;
      c.mutable_literals()[pos] = ~c[pos];
      return;
    }
  }
}

}  // namespace sateda::sat
