#include "sat/audit.hpp"

#include <algorithm>
#include <cstddef>

namespace sateda::sat {

namespace {

std::string lits_string(const std::vector<Lit>& lits) {
  std::string s = "(";
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i) s += " + ";
    s += to_string(lits[i]);
  }
  return s + ")";
}

std::string clause_tag(CRef cref, ArenaClause c) {
  return std::string(c.learnt() ? "learnt" : "problem") + " clause @" +
         std::to_string(cref) + " " + lits_string(c.lits());
}

/// Structural invariants of a flat watch arena: every slab's occupancy
/// fits its capacity, every slab lies inside the pool, and no two
/// slabs' capacity ranges overlap (holes from relocation are fine;
/// sharing slots is corruption).
template <typename Entry, typename Report>
void check_slab_structure(const FlatWatchArena<Entry>& a, const char* name,
                          Report&& report) {
  struct Span {
    std::size_t off, cap, idx;
  };
  std::vector<Span> spans;
  for (std::size_t i = 0; i < a.num_lits(); ++i) {
    if (a.count(i) > a.cap(i)) {
      report(std::string(name) + " slab " + std::to_string(i) +
             " occupancy " + std::to_string(a.count(i)) +
             " exceeds capacity " + std::to_string(a.cap(i)));
    }
    if (a.slab(i) + a.cap(i) > a.pool_slots()) {
      report(std::string(name) + " slab " + std::to_string(i) +
             " extends past the pool end");
    }
    if (a.cap(i) > 0) spans.push_back({a.slab(i), a.cap(i), i});
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& x, const Span& y) { return x.off < y.off; });
  for (std::size_t k = 1; k < spans.size(); ++k) {
    if (spans[k - 1].off + spans[k - 1].cap > spans[k].off) {
      report(std::string(name) + " slabs " +
             std::to_string(spans[k - 1].idx) + " and " +
             std::to_string(spans[k].idx) + " overlap in the pool");
    }
  }
}

}  // namespace

void SolverAuditor::audit(const Solver& s) {
  ++report_.audits_run;
  if (opts_.check_watchers) {
    check_watchers(s);
    check_binaries(s);
  }
  if (opts_.check_trail) check_trail(s);
  if (opts_.check_learnts) check_learnts(s);
}

void SolverAuditor::check_watchers(const Solver& s) {
  check_slab_structure(s.watches_, "watch",
                       [this](const std::string& v) { violation(v); });
  check_slab_structure(s.bin_watches_, "binary watch",
                       [this](const std::string& v) { violation(v); });
  const std::size_t arena_words = s.arena_.size_words();
  // Watch counts per clause, indexed by the clause's arena offset.
  std::vector<int> seen0(arena_words, 0);
  std::vector<int> seen1(arena_words, 0);
  for (std::size_t idx = 0; idx < s.watches_.num_lits(); ++idx) {
    // The slab at (~w).index() holds clauses watching w, so the literal
    // a slab at index `idx` watches is the complement.
    const Lit watched = ~Lit::from_index(static_cast<std::int32_t>(idx));
    const std::uint32_t wn = s.watches_.count(idx);
    for (std::uint32_t wi = 0; wi < wn; ++wi) {
      const Watcher& w = s.watches_.at(idx, wi);
      if (w.cref >= arena_words) {
        violation("watcher with out-of-range clause ref " +
                  std::to_string(w.cref));
        continue;
      }
      ArenaClause c = s.arena_[w.cref];
      if (c.deleted()) {
        violation("watch list of " + to_string(watched) +
                  " references deleted clause @" + std::to_string(w.cref));
        continue;
      }
      if (c.size() < 3) {
        violation("watched clause @" + std::to_string(w.cref) +
                  " has fewer than three literals (binaries must be "
                  "implicit)");
        continue;
      }
      if (c[0] == watched) {
        ++seen0[w.cref];
      } else if (c[1] == watched) {
        ++seen1[w.cref];
      } else {
        violation("watch list of " + to_string(watched) + " holds " +
                  clause_tag(w.cref, c) +
                  " but that literal is not in a watched position");
      }
      if (!c.contains(w.blocker)) {
        violation("blocker " + to_string(w.blocker) + " of " +
                  clause_tag(w.cref, c) + " is not a clause literal");
      }
    }
  }
  for (CRef cref = s.arena_.first(); cref < s.arena_.end_ref();
       cref = s.arena_.next(cref)) {
    ArenaClause c = s.arena_[cref];
    if (c.deleted()) continue;
    if (seen0[cref] != 1 || seen1[cref] != 1) {
      violation(clause_tag(cref, c) + " is watched " +
                std::to_string(seen0[cref]) + "/" +
                std::to_string(seen1[cref]) + " times (expected exactly 1/1)");
    }
  }
}

void SolverAuditor::check_binaries(const Solver& s) {
  // Every implicit binary clause (x ∨ y) must appear as {y} in the
  // slab visited when x falsifies and as {x} in the slab visited when
  // y falsifies, with matching learnt flags.
  for (std::size_t idx = 0; idx < s.bin_watches_.num_lits(); ++idx) {
    const Lit x = ~Lit::from_index(static_cast<std::int32_t>(idx));
    const std::uint32_t bn = s.bin_watches_.count(idx);
    for (std::uint32_t bi = 0; bi < bn; ++bi) {
      const BinWatcher& bw = s.bin_watches_.at(idx, bi);
      if (bw.other.var() < 0 || bw.other.var() >= s.num_vars()) {
        violation("binary watch of " + to_string(x) +
                  " names unknown literal " + to_string(bw.other));
        continue;
      }
      const std::size_t midx =
          static_cast<std::size_t>((~bw.other).index());
      const BinWatcher* mbegin = s.bin_watches_.begin(midx);
      const BinWatcher* mend = mbegin + s.bin_watches_.count(midx);
      const bool mirrored =
          std::any_of(mbegin, mend, [&](const BinWatcher& m) {
            return m.other == x && m.learnt == bw.learnt;
          });
      if (!mirrored) {
        violation("binary clause " + lits_string({x, bw.other}) +
                  " has no mirror entry in the watch list of " +
                  to_string(~bw.other));
      }
    }
  }
}

void SolverAuditor::check_trail(const Solver& s) {
  const std::size_t trail_size = s.trail_.size();
  if (s.qhead_ > trail_size) {
    violation("qhead past the end of the trail");
  }
  // trail_lim_ must be a monotone segmentation of the trail.
  int prev = 0;
  for (std::size_t d = 0; d < s.trail_lim_.size(); ++d) {
    const int lim = s.trail_lim_[d];
    if (lim < prev || static_cast<std::size_t>(lim) > trail_size) {
      violation("trail_lim[" + std::to_string(d) +
                "] does not segment the trail");
      return;  // later indexing below would be meaningless
    }
    prev = lim;
  }

  std::vector<char> on_trail(s.assigns_.size(), 0);
  std::size_t next_level = 0;
  int level_of_pos = 0;
  for (std::size_t i = 0; i < trail_size; ++i) {
    while (next_level < s.trail_lim_.size() &&
           static_cast<std::size_t>(s.trail_lim_[next_level]) <= i) {
      ++next_level;
      level_of_pos = static_cast<int>(next_level);
    }
    const Lit p = s.trail_[i];
    const Var v = p.var();
    if (v < 0 || static_cast<std::size_t>(v) >= s.assigns_.size()) {
      violation("trail literal " + to_string(p) + " names an unknown variable");
      continue;
    }
    if (on_trail[static_cast<std::size_t>(v)]) {
      violation("variable " + std::to_string(v + 1) +
                " appears twice on the trail");
    }
    on_trail[static_cast<std::size_t>(v)] = 1;
    if (!s.value(p).is_true()) {
      violation("trail literal " + to_string(p) + " is not assigned true");
    }
    if (s.level_[static_cast<std::size_t>(v)] != level_of_pos) {
      violation("trail literal " + to_string(p) + " recorded at level " +
                std::to_string(s.level_[static_cast<std::size_t>(v)]) +
                " but sits in the level-" + std::to_string(level_of_pos) +
                " trail segment");
    }
    const Reason r = s.reason_[static_cast<std::size_t>(v)];
    if (r.is_binary()) {
      const Lit other = r.other();
      if (other.var() < 0 || other.var() >= s.num_vars()) {
        violation("binary reason of " + to_string(p) +
                  " names unknown literal " + to_string(other));
        continue;
      }
      if (!s.value(other).is_false() ||
          s.level_[static_cast<std::size_t>(other.var())] > level_of_pos) {
        violation("binary reason " + lits_string({p, other}) + " of " +
                  to_string(p) + " is not asserting: " + to_string(other) +
                  " is not false at or below its level");
      }
      const std::size_t lidx = static_cast<std::size_t>((~other).index());
      const BinWatcher* lbegin = s.bin_watches_.begin(lidx);
      const BinWatcher* lend = lbegin + s.bin_watches_.count(lidx);
      if (std::none_of(lbegin, lend,
                       [&](const BinWatcher& bw) { return bw.other == p; })) {
        violation("binary reason " + lits_string({p, other}) + " of " +
                  to_string(p) + " is not present in the binary watch lists");
      }
    } else if (r.is_clause()) {
      if (r.cref() >= s.arena_.size_words()) {
        violation("reason of " + to_string(p) + " is out of range");
        continue;
      }
      ArenaClause c = s.arena_[r.cref()];
      if (c.deleted()) {
        violation("reason of " + to_string(p) + " is a deleted clause");
        continue;
      }
      if (c.size() < 1 || c[0] != p) {
        violation("reason " + clause_tag(r.cref(), c) + " does not assert " +
                  to_string(p) + " in position 0");
        continue;
      }
      const std::uint32_t size = c.size();
      for (std::uint32_t j = 1; j < size; ++j) {
        if (!s.value(c[j]).is_false() ||
            s.level_[static_cast<std::size_t>(c[j].var())] > level_of_pos) {
          violation("reason " + clause_tag(r.cref(), c) + " of " +
                    to_string(p) + " is not asserting: literal " +
                    to_string(c[j]) +
                    " is not false at or below its level");
          break;
        }
      }
    }
  }
  // Every assigned variable must be on the trail (and vice versa).
  for (std::size_t v = 0; v < s.assigns_.size(); ++v) {
    if (!s.assigns_[v].is_undef() && !on_trail[v]) {
      violation("variable " + std::to_string(v + 1) +
                " is assigned but missing from the trail");
    }
  }
  // At a propagation fixpoint no live clause may be unit or falsified.
  if (s.qhead_ == trail_size) {
    auto fixpoint_check = [&](const std::vector<Lit>& lits,
                              const std::string& tag) {
      bool satisfied = false;
      int non_false = 0;
      for (Lit l : lits) {
        const lbool v = s.value(l);
        if (v.is_true()) {
          satisfied = true;
          break;
        }
        if (!v.is_false()) ++non_false;
      }
      if (!satisfied && non_false < 2) {
        violation(tag + (non_false == 0 ? " is falsified" : " is unit") +
                  " at a propagation fixpoint");
      }
    };
    for (CRef cref = s.arena_.first(); cref < s.arena_.end_ref();
         cref = s.arena_.next(cref)) {
      ArenaClause c = s.arena_[cref];
      if (c.deleted()) continue;
      fixpoint_check(c.lits(), clause_tag(cref, c));
    }
    for (std::size_t idx = 0; idx < s.bin_watches_.num_lits(); ++idx) {
      const Lit x = ~Lit::from_index(static_cast<std::int32_t>(idx));
      const std::uint32_t bn = s.bin_watches_.count(idx);
      for (std::uint32_t bi = 0; bi < bn; ++bi) {
        const BinWatcher& bw = s.bin_watches_.at(idx, bi);
        if (x.index() >= bw.other.index()) continue;  // canonical half only
        fixpoint_check({x, bw.other},
                       "binary clause " + lits_string({x, bw.other}));
      }
    }
  }
}

void SolverAuditor::check_learnts(const Solver& s) {
  // Most recent learnt clauses first: those exercise the newest code
  // paths and their antecedents are most likely still present.
  std::size_t checked = 0;
  for (std::size_t i = s.learnts_.size();
       i-- > 0 && checked < opts_.max_learnts_checked;) {
    const CRef cref = s.learnts_[i];
    if (cref >= s.arena_.size_words()) {
      violation("learnt list entry " + std::to_string(cref) +
                " is out of range");
      continue;
    }
    ArenaClause c = s.arena_[cref];
    if (c.deleted()) continue;  // stale refs are purged lazily elsewhere
    ++checked;
    ++report_.learnts_checked;
    const lbool verdict = learnt_is_rup(s, cref, c.lits());
    if (verdict.is_true()) continue;
    if (verdict.is_undef() || !opts_.strict_learnt_rup) {
      ++report_.learnts_inconclusive;
      continue;
    }
    violation(clause_tag(cref, c) +
              " is not a unit-propagation consequence of the database");
  }
}

lbool SolverAuditor::learnt_is_rup(const Solver& s, CRef self,
                                   const std::vector<Lit>& lits) {
  // Independent counter-based propagation over the solver's live
  // clauses (minus the audited clause), from an empty assignment — the
  // solver's own trail and watches are deliberately not consulted.
  std::vector<lbool> assigns(s.assigns_.size(), l_undef);
  auto value = [&](Lit l) {
    return assigns[static_cast<std::size_t>(l.var())] ^ l.negative();
  };
  bool conflict = false;
  auto assign = [&](Lit l) {
    const lbool v = value(l);
    if (v.is_false()) {
      conflict = true;
    } else if (v.is_undef()) {
      assigns[static_cast<std::size_t>(l.var())] = lbool(!l.negative());
    }
  };
  for (Lit l : lits) {
    assign(~l);
    if (conflict) return l_true;  // duplicate-polarity clause
  }
  // Unit clauses never enter the clause database — the solver enqueues
  // them straight onto the root trail — so seed the propagation with
  // the level-0 prefix.  A conflict here means the clause contains a
  // root-entailed literal and is redundant outright.
  const std::size_t root_end =
      s.trail_lim_.empty() ? s.trail_.size()
                           : static_cast<std::size_t>(s.trail_lim_[0]);
  for (std::size_t i = 0; i < root_end && i < s.trail_.size(); ++i) {
    assign(s.trail_[i]);
    if (conflict) return l_true;
  }
  std::size_t budget = opts_.learnt_check_budget;
  bool changed = false;
  // One propagation step over a clause given as literals; returns
  // false when the budget is exhausted.
  auto step = [&](const std::vector<Lit>& cl) {
    if (budget == 0) return false;
    --budget;
    Lit unit = kUndefLit;
    bool satisfied = false;
    int unassigned = 0;
    for (Lit l : cl) {
      const lbool v = value(l);
      if (v.is_true()) {
        satisfied = true;
        break;
      }
      if (v.is_undef()) {
        ++unassigned;
        unit = l;
        if (unassigned > 1) break;
      }
    }
    if (satisfied || unassigned > 1) return true;
    if (unassigned == 0) {
      conflict = true;
    } else {
      assign(unit);
      changed = true;
    }
    return true;
  };
  while (!conflict) {
    changed = false;
    for (CRef cref = s.arena_.first();
         cref < s.arena_.end_ref() && !conflict; cref = s.arena_.next(cref)) {
      if (cref == self) continue;
      ArenaClause c = s.arena_[cref];
      if (c.deleted()) continue;
      if (!step(c.lits())) return l_undef;
    }
    for (std::size_t idx = 0; idx < s.bin_watches_.num_lits() && !conflict;
         ++idx) {
      const Lit x = ~Lit::from_index(static_cast<std::int32_t>(idx));
      const std::uint32_t bn = s.bin_watches_.count(idx);
      for (std::uint32_t bi = 0; bi < bn; ++bi) {
        const BinWatcher& bw = s.bin_watches_.at(idx, bi);
        if (x.index() >= bw.other.index()) continue;  // canonical half only
        if (!step({x, bw.other})) return l_undef;
        if (conflict) break;
      }
    }
    if (!changed) break;
  }
  return lbool(conflict);
}

void SolverAuditor::corrupt_watcher_for_test(Solver& s) {
  for (std::size_t idx = 0; idx < s.watches_.num_lits(); ++idx) {
    const std::uint32_t n = s.watches_.count(idx);
    if (n > 0) {
      // A live clause is now watched only once.
      s.watches_.truncate(idx, n - 1);
      return;
    }
  }
}

void SolverAuditor::corrupt_trail_for_test(Solver& s) {
  if (!s.trail_.empty()) {
    s.level_[static_cast<std::size_t>(s.trail_.front().var())] += 1;
  }
}

void SolverAuditor::corrupt_learnt_for_test(Solver& s) {
  for (CRef cref : s.learnts_) {
    ArenaClause c = s.arena_[cref];
    if (!c.deleted() && c.size() >= 3 && !s.locked(cref)) {
      // Flip a non-watched literal's polarity: the clause shape stays
      // legal for the watch checks but it is no longer a consequence.
      const std::size_t pos = c.size() - 1;
      c.set_lit(pos, ~c[pos]);
      return;
    }
  }
}

}  // namespace sateda::sat
