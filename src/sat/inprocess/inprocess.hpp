/// \file inprocess.hpp
/// \brief In-search simplification (inprocessing) for the CDCL solver.
///
/// Runs three passes over the solver's live clause database at root
/// level — a place the paper's preprocessing discussion (§4.1) stops
/// short of, but that the same techniques extend to naturally once the
/// solver is incremental (§6):
///
///  * failed-literal probing over the binary implication graph: assume
///    a literal with binary occurrences, propagate, and learn the
///    negation as a root unit when propagation conflicts (RUP);
///  * vivification of core/tier-2 learnt clauses: assume the negation
///    of a clause prefix and shorten the clause when propagation
///    decides the remainder (each shortened clause is RUP);
///  * bounded variable elimination by clause distribution, with the
///    replaced clauses saved on the solver's elimination stack for
///    model extension and reintroduction (see elim.hpp).
///
/// Proof policy: every derived clause (units, vivified clauses, BVE
/// resolvents) is RUP and logged before anything it depends on is
/// deleted.  Deletions are logged only for learnt clauses — eliminated
/// *problem* clauses stay in the checker's database, which keeps
/// portfolio proof stitching and clause reintroduction sound and only
/// strengthens the checker.
///
/// All passes run with the trail at decision level 0 and leave the
/// solver at a BCP fixpoint; frozen variables are never eliminated.
///
/// Scheduling: each pass asks the solver's InprocessScheduler
/// (inprocess/schedule.hpp) whether to run and with what tick budget —
/// propagations for probing/vivification, materialization words plus
/// resolution literals for BVE.  Ticks spent, work produced and rounds
/// skipped land in the SolverStats per-pass ledger.
#pragma once

#include <cstdint>

namespace sateda::sat {

class Solver;

/// One inprocessing run over a Solver's database.  Construct and call
/// run() at decision level 0; the object holds only scratch state and
/// is cheap to create per run.
class Inprocessor {
 public:
  explicit Inprocessor(Solver& s) : s_(s) {}

  /// Runs the passes enabled in SolverOptions::inprocess, each gated
  /// and budgeted by the solver's scheduler.  Returns false iff the
  /// clause set was refuted: the solver is marked dead (okay() ==
  /// false) and the proof, if any, ends with the empty clause.
  [[nodiscard]] bool run();

 private:
  [[nodiscard]] bool settle();  ///< propagate to fixpoint; false on root conflict
  /// Each pass stops once \p budget ticks are spent (<0: unlimited) and
  /// reports ticks consumed and reductions derived through the
  /// out-params (meaningful even when the return value is false).
  [[nodiscard]] bool probe_failed_literals(std::int64_t budget,
                                           std::int64_t& ticks,
                                           std::int64_t& reductions);
  [[nodiscard]] bool vivify_learnts(std::int64_t budget, std::int64_t& ticks,
                                    std::int64_t& reductions);
  [[nodiscard]] bool eliminate_variables(std::int64_t budget,
                                         std::int64_t& ticks,
                                         std::int64_t& reductions);

  Solver& s_;
};

}  // namespace sateda::sat
