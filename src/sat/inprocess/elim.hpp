/// \file elim.hpp
/// \brief Variable-elimination bookkeeping shared by the standalone
///        preprocessor and the in-search inprocessor.
///
/// Bounded variable elimination (Eén/Biere-style clause distribution)
/// removes a pivot variable v by replacing every clause containing v
/// with the pairwise resolvents of its positive and negative
/// occurrences.  The transformation is equisatisfiable but not
/// equivalent: a model of the reduced formula says nothing about v, so
/// the original occurrence clauses are saved on a chronological
/// ElimStack and replayed in reverse to extend a model — the pivot is
/// set to satisfy every saved clause (at most one polarity can ever be
/// demanded, because the opposing pair would imply a falsified
/// resolvent that the reduced formula's model must satisfy).
#pragma once

#include <functional>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda::sat {

/// One eliminated variable: the pivot and every clause that contained
/// it at elimination time (each saved clause mentions the pivot in
/// exactly one polarity; tautologies are never stored).
struct ElimRecord {
  Var pivot = kNullVar;
  std::vector<std::vector<Lit>> clauses;
};

/// Resolves \p c and \p d on \p pivot (c contains the pivot in one
/// polarity, d in the other) into \p out: all non-pivot literals of
/// both, sorted and deduplicated.  Returns false when the resolvent is
/// a tautology (some variable occurs in both polarities), in which
/// case \p out is meaningless.
bool resolve_on(const std::vector<Lit>& c, const std::vector<Lit>& d,
                Var pivot, std::vector<Lit>& out);

/// Extends a model of the reduced formula over the eliminated
/// variables by replaying \p stack newest-first.  \p lit_true must
/// return the definite truth value of a literal in the model built so
/// far (callers map unassigned variables to false); \p set_var records
/// the chosen pivot value.  Replay order guarantees every non-pivot
/// literal of a saved clause is already valued when it is evaluated: a
/// saved clause only mentions variables live at its elimination time,
/// and those are either never eliminated or eliminated later (hence
/// replayed earlier).
void extend_model(const std::vector<ElimRecord>& stack,
                  const std::function<bool(Lit)>& lit_true,
                  const std::function<void(Var, bool)>& set_var);

}  // namespace sateda::sat
