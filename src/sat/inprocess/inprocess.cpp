#include "sat/inprocess/inprocess.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sat/inprocess/elim.hpp"
#include "sat/solver.hpp"

namespace sateda::sat {

namespace {

/// Removes the watch entry implementing clause (a ∨ b) from a's side
/// (the slab at (~a).index() holds {other = b}).  One entry per call,
/// so duplicate binaries stay balanced.
void remove_bin_half(FlatWatchArena<BinWatcher>& bins, std::size_t idx, Lit b,
                     bool learnt) {
  const std::uint32_t n = bins.count(idx);
  for (std::uint32_t i = 0; i < n; ++i) {
    const BinWatcher& bw = bins.at(idx, i);
    if (bw.other == b && (bw.learnt != 0) == learnt) {
      bins.pop_swap(idx, i);
      return;
    }
  }
  assert(false && "binary watch half not found");
}

}  // namespace

bool Inprocessor::settle() {
  if (!s_.deduce().is_none()) {
    s_.ok_ = false;
    if (s_.proof_) s_.proof_->on_derive({});
    return false;
  }
  return true;
}

bool Inprocessor::run() {
  Solver& s = s_;
  assert(s.decision_level() == 0);
  if (!s.ok_) return false;
  if (!settle()) return false;
  // Root-level antecedents are never revisited by conflict analysis
  // (diagnose/minimize stop at level 0), so release them up front:
  // nothing in the database is locked during the passes.
  for (Lit l : s.trail_) s.reason_[l.var()] = kNoReason;
  const InprocessOptions& o = s.opts_.inprocess;
  InprocessScheduler& sched = s.ip_sched_;
  const std::size_t ncls = s.num_problem_clauses_;
  // Database shape for the entry gate: problem clauses of >= 3 literals
  // live in clauses_, so the rest are implicit binaries.
  const std::size_t nbin = ncls - std::min(ncls, s.clauses_.size());
  const double bin_frac =
      ncls > 0 ? static_cast<double>(nbin) / static_cast<double>(ncls) : 0.0;

  if (o.probing) {
    const PassPlan plan = sched.plan(InprocessPass::kProbe, s.stats_, ncls, bin_frac, o);
    if (plan.run) {
      std::int64_t ticks = 0, red = 0;
      const bool keep = probe_failed_literals(plan.ticks, ticks, red);
      ++s.stats_.probe_runs;
      s.stats_.probe_ticks += ticks;
      sched.record(InprocessPass::kProbe, s.stats_, ticks, red);
      if (!keep) return false;
    }
  }
  if (o.vivify) {
    const PassPlan plan = sched.plan(InprocessPass::kVivify, s.stats_, ncls, bin_frac, o);
    if (plan.run) {
      std::int64_t ticks = 0, red = 0;
      const bool keep = vivify_learnts(plan.ticks, ticks, red);
      ++s.stats_.vivify_runs;
      s.stats_.vivify_ticks += ticks;
      sched.record(InprocessPass::kVivify, s.stats_, ticks, red);
      if (!keep) return false;
    }
  }
  if (o.bve) {
    const PassPlan plan = sched.plan(InprocessPass::kBve, s.stats_, ncls, bin_frac, o);
    if (plan.run) {
      std::int64_t ticks = 0, red = 0;
      const bool keep = eliminate_variables(plan.ticks, ticks, red);
      ++s.stats_.bve_runs;
      s.stats_.bve_ticks += ticks;
      sched.record(InprocessPass::kBve, s.stats_, ticks, red);
      if (!keep) return false;
    }
  }
  s.check_garbage();
  return true;
}

bool Inprocessor::probe_failed_literals(std::int64_t budget,
                                        std::int64_t& ticks,
                                        std::int64_t& reductions) {
  Solver& s = s_;
  const std::int64_t start = s.stats_.propagations;
  const std::int32_t n = 2 * s.num_vars();
  for (std::int32_t idx = 0; idx < n; ++idx) {
    ticks = s.stats_.propagations - start;
    if (budget >= 0 && ticks > budget) break;
    const Lit l = Lit::from_index(idx);
    if (!s.value(l).is_undef()) continue;
    // Only literals with binary implications are worth assuming: for
    // anything else one probe costs a full watch sweep and almost
    // never fails.
    if (s.bin_watches_.empty(static_cast<std::size_t>(l.index()))) continue;
    s.trail_lim_.push_back(static_cast<int>(s.trail_.size()));
    [[maybe_unused]] const bool enq = s.enqueue(l, kNoReason);
    assert(enq);
    const Reason confl = s.deduce();
    s.erase_until(0);
    if (confl.is_none()) continue;
    // Assuming l conflicts under unit propagation, so {~l} is RUP.
    ++s.stats_.failed_literals;
    ++reductions;
    if (s.proof_) s.proof_->on_derive({~l});
    if (!s.enqueue(~l, kNoReason) || !s.deduce().is_none()) {
      s.ok_ = false;
      if (s.proof_) s.proof_->on_derive({});
      ticks = s.stats_.propagations - start;
      return false;
    }
  }
  ticks = s.stats_.propagations - start;
  return true;
}

bool Inprocessor::vivify_learnts(std::int64_t budget, std::int64_t& ticks,
                                 std::int64_t& reductions) {
  Solver& s = s_;
  const InprocessOptions& o = s.opts_.inprocess;
  std::vector<CRef> cands;
  for (CRef cr : s.learnts_) {
    ArenaClause c = s.arena_[cr];
    if (c.deleted()) continue;
    // Local-tier clauses churn too fast to be worth the propagation.
    if (c.tier() == ClauseTier::kLocal) continue;
    if (static_cast<int>(c.size()) > o.vivify_max_size) continue;
    cands.push_back(cr);
  }

  const std::int64_t start = s.stats_.propagations;
  std::vector<Lit> lits, out;
  std::vector<CRef> added;
  for (CRef cr : cands) {
    ticks = s.stats_.propagations - start;
    if (budget >= 0 && ticks > budget) break;
    ArenaClause c = s.arena_[cr];
    if (c.deleted()) continue;
    const std::uint32_t old_size = c.size();
    const int old_lbd = c.lbd();
    lits.clear();
    bool sat_root = false;
    for (Lit l : c) {
      if (s.value(l).is_true()) {  // all root level here
        sat_root = true;
        break;
      }
      lits.push_back(l);
    }
    if (sat_root) continue;

    // Assume the negation of the clause literal by literal.  A literal
    // already decided by the prefix either closes the clause early
    // (true: the prefix plus it is itself a clause) or is redundant
    // (false: unit propagation from the others refutes it); an
    // undecided literal is assumed false and propagated — a conflict
    // again closes the clause at a shorter prefix.  Every shortened
    // clause is RUP by exactly the propagation that was just run.
    out.clear();
    s.trail_lim_.push_back(static_cast<int>(s.trail_.size()));
    for (Lit li : lits) {
      const lbool v = s.value(li);
      if (v.is_true()) {
        out.push_back(li);
        break;
      }
      if (v.is_false()) continue;
      out.push_back(li);
      [[maybe_unused]] const bool enq = s.enqueue(~li, kNoReason);
      assert(enq);
      if (!s.deduce().is_none()) break;
    }
    s.erase_until(0);
    if (out.size() >= old_size) continue;
    assert(!out.empty());

    ++s.stats_.vivified_clauses;
    ++reductions;
    s.stats_.vivified_literals +=
        static_cast<std::int64_t>(old_size - out.size());
    if (s.proof_) s.proof_->on_derive(out);
    s.remove_clause(cr);  // learnt: logs the deletion, after the derive
    if (out.size() == 1) {
      if (!s.enqueue(out[0], kNoReason) || !s.deduce().is_none()) {
        s.ok_ = false;
        if (s.proof_) s.proof_->on_derive({});
        ticks = s.stats_.propagations - start;
        return false;
      }
    } else if (out.size() == 2) {
      s.attach_binary(out[0], out[1], /*learnt=*/true);
    } else {
      const CRef nc = s.attach_new_clause(out, /*learnt=*/true);
      ArenaClause c2 = s.arena_[nc];
      const int lbd =
          std::min(old_lbd, static_cast<int>(out.size()) - 1);
      c2.set_lbd(lbd);
      c2.set_tier(s.tier_for_lbd(lbd));
      c2.set_used();
      added.push_back(nc);
    }
  }

  std::size_t j = 0;
  for (CRef cr : s.learnts_) {
    if (!s.arena_[cr].deleted()) s.learnts_[j++] = cr;
  }
  s.learnts_.resize(j);
  s.learnts_.insert(s.learnts_.end(), added.begin(), added.end());
  ticks = s.stats_.propagations - start;
  return true;
}

bool Inprocessor::eliminate_variables(std::int64_t budget,
                                      std::int64_t& ticks,
                                      std::int64_t& reductions) {
  Solver& s = s_;
  // Structural listeners (paper §5) own variables the solver cannot
  // see through — branching overrides and early-satisfaction tests may
  // inspect any variable, so no variable is safe to remove.
  if (s.listener_) return true;
  const InprocessOptions& o = s.opts_.inprocess;

  // Materialize the live problem clauses once: arena clauses keep
  // their CRef, implicit binaries their literal pair (captured at the
  // canonical half).  Resolvents appended during the pass join the
  // same list so later pivots see them.  Materialization is the bulk
  // of BVE's cost on instances where nothing eliminates, so it is
  // ticked (one tick per literal copied) and aborts under budget —
  // nothing has been modified yet at that point.
  struct WorkClause {
    std::vector<Lit> lits;
    CRef cref = kCRefUndef;  // kCRefUndef → implicit binary
    bool alive = true;
  };
  std::vector<WorkClause> db;
  db.reserve(s.clauses_.size());
  for (CRef cr : s.clauses_) {
    ArenaClause c = s.arena_[cr];
    if (c.deleted()) continue;
    ticks += c.size();
    if (budget >= 0 && ticks > budget) return true;
    db.push_back({c.lits(), cr, true});
  }
  for (std::size_t idx = 0; idx < s.bin_watches_.num_lits(); ++idx) {
    const Lit a = ~Lit::from_index(static_cast<std::int32_t>(idx));
    const std::uint32_t bn = s.bin_watches_.count(idx);
    ticks += bn;
    if (budget >= 0 && ticks > budget) return true;
    for (std::uint32_t bi = 0; bi < bn; ++bi) {
      const BinWatcher bw = s.bin_watches_.at(idx, bi);
      if (bw.learnt) continue;
      if (a.index() < bw.other.index()) {
        db.push_back({{a, bw.other}, kCRefUndef, true});
      }
    }
  }
  std::vector<std::vector<std::size_t>> occ(2 *
                                            static_cast<std::size_t>(s.num_vars()));
  for (std::size_t ci = 0; ci < db.size(); ++ci) {
    ticks += static_cast<std::int64_t>(db[ci].lits.size());
    for (Lit l : db[ci].lits) occ[l.index()].push_back(ci);
  }
  if (budget >= 0 && ticks > budget) return true;

  auto kill = [&](std::size_t ci) {
    WorkClause& wc = db[ci];
    wc.alive = false;
    if (wc.cref != kCRefUndef) {
      // Unit resolvents propagated mid-pass can have recorded this
      // clause as a root antecedent; release it so remove_clause()'s
      // lock check holds (root reasons are never revisited).
      ArenaClause c = s.arena_[wc.cref];
      const Var v0 = c[0].var();
      if (s.reason_[v0].is_clause() && s.reason_[v0].cref() == wc.cref) {
        s.reason_[v0] = kNoReason;
      }
      s.remove_clause(wc.cref);  // problem clause: no proof deletion
    } else {
      remove_bin_half(s.bin_watches_,
                      static_cast<std::size_t>((~wc.lits[0]).index()),
                      wc.lits[1], /*learnt=*/false);
      remove_bin_half(s.bin_watches_,
                      static_cast<std::size_t>((~wc.lits[1]).index()),
                      wc.lits[0], /*learnt=*/false);
      ++s.stats_.deleted_clauses;
    }
    if (s.num_problem_clauses_ > 0) --s.num_problem_clauses_;
  };

  // Cheapest pivots first.
  std::vector<std::pair<int, Var>> order;
  for (Var v = 0; v < s.num_vars(); ++v) {
    if (s.frozen_[v] || s.eliminated_[v] || !s.value(v).is_undef()) continue;
    const int cnt = static_cast<int>(occ[pos(v).index()].size() +
                                     occ[neg(v).index()].size());
    if (cnt == 0 || cnt > o.bve_max_occurrences) continue;
    order.emplace_back(cnt, v);
  }
  std::sort(order.begin(), order.end());

  bool any_eliminated = false;
  std::vector<Lit> resolvent;
  std::vector<std::size_t> pos_cls, neg_cls;
  for (const auto& [cnt_hint, v] : order) {
    if (budget >= 0 && ticks > budget) break;
    if (s.frozen_[v] || s.eliminated_[v] || !s.value(v).is_undef()) continue;
    pos_cls.clear();
    neg_cls.clear();
    for (std::size_t ci : occ[pos(v).index()]) {
      if (db[ci].alive) pos_cls.push_back(ci);
    }
    for (std::size_t ci : occ[neg(v).index()]) {
      if (db[ci].alive) neg_cls.push_back(ci);
    }
    const std::size_t before = pos_cls.size() + neg_cls.size();
    if (before == 0 ||
        before > static_cast<std::size_t>(o.bve_max_occurrences)) {
      continue;
    }

    // Distribute.  Resolvents are normalized against the root trail:
    // a root-satisfied resolvent is dropped, root-false literals are
    // removed — the normalized clause is still RUP (the dropped
    // literals fall to the logged root units under propagation).
    std::vector<std::vector<Lit>> kept;
    bool too_costly = false;
    bool refuted = false;
    for (std::size_t pi : pos_cls) {
      for (std::size_t ni : neg_cls) {
        ticks += static_cast<std::int64_t>(db[pi].lits.size() +
                                           db[ni].lits.size());
        if (!resolve_on(db[pi].lits, db[ni].lits, v, resolvent)) continue;
        bool satisfied = false;
        std::size_t w = 0;
        for (Lit l : resolvent) {
          const lbool lv = s.value(l);
          if (lv.is_true()) {
            satisfied = true;
            break;
          }
          if (!lv.is_false()) resolvent[w++] = l;
        }
        if (satisfied) continue;
        resolvent.resize(w);
        if (resolvent.empty()) {
          // Both parents collapse onto the pivot under the root trail:
          // unit propagation alone refutes the database.
          refuted = true;
          break;
        }
        if (static_cast<int>(resolvent.size()) > o.bve_max_resolvent ||
            kept.size() >=
                before + static_cast<std::size_t>(o.bve_max_growth)) {
          too_costly = true;
          break;
        }
        kept.push_back(resolvent);
      }
      if (too_costly || refuted) break;
    }
    if (refuted) {
      s.ok_ = false;
      if (s.proof_) s.proof_->on_derive({});
      return false;
    }
    if (too_costly) continue;

    // Commit.  Resolvents are logged while the parents are still in
    // the checker database, then the occurrence clauses move onto the
    // elimination stack and out of the watch lists.
    for (const auto& r : kept) {
      if (s.proof_) s.proof_->on_derive(r);
    }
    ElimRecord rec;
    rec.pivot = v;
    rec.clauses.reserve(before);
    for (std::size_t ci : pos_cls) {
      rec.clauses.push_back(db[ci].lits);
      kill(ci);
    }
    for (std::size_t ci : neg_cls) {
      rec.clauses.push_back(db[ci].lits);
      kill(ci);
    }
    s.elim_stack_.push_back(std::move(rec));
    s.eliminated_[v] = 1;
    s.decision_[v] = 0;
    ++s.stats_.eliminated_vars;
    ++reductions;
    s.stats_.bve_resolvents += static_cast<std::int64_t>(kept.size());
    any_eliminated = true;

    for (auto& r : kept) {
      if (r.size() == 1) {
        if (!s.enqueue(r[0], kNoReason) || !s.deduce().is_none()) {
          s.ok_ = false;
          if (s.proof_) s.proof_->on_derive({});
          return false;
        }
        continue;
      }
      const std::size_t ni = db.size();
      for (Lit l : r) occ[l.index()].push_back(ni);
      if (r.size() == 2) {
        s.attach_binary(r[0], r[1], /*learnt=*/false);
        db.push_back({std::move(r), kCRefUndef, true});
      } else {
        const CRef nc = s.attach_new_clause(r, /*learnt=*/false);
        s.clauses_.push_back(nc);
        db.push_back({std::move(r), nc, true});
      }
      ++s.num_problem_clauses_;
    }
  }

  if (any_eliminated) {
    // Learnt clauses mentioning an eliminated variable are not implied
    // by the reduced set; retire them (deletions are always safe for
    // the checker, and these are logged like any learnt deletion).
    std::size_t j = 0;
    for (CRef cr : s.learnts_) {
      ArenaClause c = s.arena_[cr];
      if (c.deleted()) continue;
      bool has_elim = false;
      for (Lit l : c) {
        if (s.eliminated_[l.var()]) {
          has_elim = true;
          break;
        }
      }
      if (has_elim) {
        s.remove_clause(cr);
      } else {
        s.learnts_[j++] = cr;
      }
    }
    s.learnts_.resize(j);
    for (std::size_t idx = 0; idx < s.bin_watches_.num_lits(); ++idx) {
      const Lit a = ~Lit::from_index(static_cast<std::int32_t>(idx));
      const std::uint32_t bn = s.bin_watches_.count(idx);
      std::uint32_t k = 0;
      for (std::uint32_t bi = 0; bi < bn; ++bi) {
        const BinWatcher bw = s.bin_watches_.at(idx, bi);
        if (!s.eliminated_[a.var()] && !s.eliminated_[bw.other.var()]) {
          s.bin_watches_.at(idx, k++) = bw;
          continue;
        }
        assert(bw.learnt && "problem binaries are removed at commit");
        if (a.index() < bw.other.index()) {  // canonical half
          if (s.proof_) s.proof_->on_delete({a, bw.other});
          ++s.stats_.deleted_clauses;
          if (s.num_learnt_binaries_ > 0) --s.num_learnt_binaries_;
        }
      }
      s.bin_watches_.truncate(idx, k);
    }
  }
  // Drop the CRefs remove_clause() freed so check_garbage() can
  // relocate safely.
  std::size_t j = 0;
  for (CRef cr : s.clauses_) {
    if (!s.arena_[cr].deleted()) s.clauses_[j++] = cr;
  }
  s.clauses_.resize(j);
  return true;
}

}  // namespace sateda::sat
