#include "sat/inprocess/elim.hpp"

#include <algorithm>

namespace sateda::sat {

bool resolve_on(const std::vector<Lit>& c, const std::vector<Lit>& d,
                Var pivot, std::vector<Lit>& out) {
  out.clear();
  out.reserve(c.size() + d.size() - 2);
  for (Lit l : c) {
    if (l.var() != pivot) out.push_back(l);
  }
  for (Lit l : d) {
    if (l.var() != pivot) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i].var() == out[i + 1].var()) return false;  // tautology
  }
  return true;
}

void extend_model(const std::vector<ElimRecord>& stack,
                  const std::function<bool(Lit)>& lit_true,
                  const std::function<void(Var, bool)>& set_var) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    const Var v = it->pivot;
    bool value = false;  // free pivots default to false
    for (const std::vector<Lit>& cl : it->clauses) {
      Lit pivot_lit = kUndefLit;
      bool satisfied = false;
      for (Lit l : cl) {
        if (l.var() == v) {
          pivot_lit = l;
        } else if (lit_true(l)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      // Every other literal is false, so the pivot must carry the
      // clause.  No two saved clauses can demand opposite polarities:
      // their resolvent would be falsified, yet it is implied by the
      // reduced formula the model satisfies.
      value = !pivot_lit.negative();
    }
    set_var(v, value);
  }
}

}  // namespace sateda::sat
