/// \file schedule.hpp
/// \brief Self-throttling scheduler for the inprocessing passes.
///
/// BENCH_solver.json showed the fixed schedule of PR 5 making the
/// solver 2-6x *slower* on exactly the instances that matter (php8
/// 0.37x, parity200 0.15x): every pass re-ran at every boundary with a
/// flat propagation budget far above what the search in between had
/// spent, so inprocessing cost dwarfed search progress.  The scheduler
/// fixes both halves of that, in the style of CaDiCaL-lineage tick
/// budgets:
///
///  * Tick budgets proportional to search effort.  A pass may spend at
///    most `tick_share` of the propagations the search performed since
///    the pass last ran (floored at `min_ticks`, capped at the pass's
///    option budget).  The first run doubles as preprocessing and is
///    instead scaled to the formula (`entry_ticks_per_clause`).  Ticks
///    are propagations for probing/vivification and
///    materialization+resolution work for BVE.
///
///  * A per-pass utility ledger.  After a pass runs, the following
///    solve interval is measured: the pass's score is its
///    conflicts-per-propagation delta versus the interval before the
///    run, minus the fraction of the window it spent on its own ticks,
///    plus a small work-product term (a run that derived nothing is
///    penalized outright).  An exponentially-weighted utility below
///    `utility_threshold` doubles the pass's backoff — it is skipped
///    for 1, 2, 4, ... rounds (capped at `max_backoff`) and re-probed
///    rarely; a recovering utility halves the backoff again.
///
/// The ledger is exported through SolverStats (probe/vivify/bve
/// runs/ticks/skips/utility) so `sateda-solve --stats` and
/// `sateda-bench` can show where inprocessing time went.
#pragma once

#include <cstdint>

#include "sat/options.hpp"

namespace sateda::sat {

/// The three inprocessing passes, in the order they run.
enum class InprocessPass : int { kProbe = 0, kVivify = 1, kBve = 2 };
inline constexpr int kNumInprocessPasses = 3;

inline const char* to_string(InprocessPass p) {
  switch (p) {
    case InprocessPass::kProbe: return "probe";
    case InprocessPass::kVivify: return "vivify";
    case InprocessPass::kBve: return "bve";
  }
  return "?";
}

/// Decision for one pass at one inprocessing boundary.
struct PassPlan {
  bool run = false;
  std::int64_t ticks = 0;  ///< tick budget when run (<0: unlimited)
};

/// Per-pass tick budgets and utility ledger.  One instance lives in
/// each Solver; all methods are called at root-level inprocessing
/// boundaries only.
class InprocessScheduler {
 public:
  /// Settles the measurement windows opened by the previous round
  /// against the search interval that just ended.  Call once per
  /// boundary, before any plan()/record().
  void observe(const SolverStats& stats, const InprocessOptions& opts);

  /// Whether (and with what tick budget) pass \p p should run now.
  /// \p binary_fraction is the share of problem clauses that are
  /// implicit binaries — the cheap database-shape reading that gates
  /// the formula-scaled entry round on circuit-shaped (binary-heavy)
  /// databases, where it historically cost more than it earned
  /// (cec_adder4_miter: 0.30x on entry BVE).  A gated pass keeps
  /// runs==0 but its eventual first run drops to the steady-state
  /// search-share budget.
  PassPlan plan(InprocessPass p, const SolverStats& stats,
                std::size_t num_problem_clauses, double binary_fraction,
                const InprocessOptions& opts);

  /// Reports a completed run of \p p: \p ticks spent, \p reductions
  /// derived (units/strengthened clauses/eliminated variables).  Opens
  /// the pass's measurement window for the next observe().
  void record(InprocessPass p, const SolverStats& stats, std::int64_t ticks,
              std::int64_t reductions);

  double utility(InprocessPass p) const {
    return state_[static_cast<int>(p)].utility;
  }
  std::int64_t skips(InprocessPass p) const {
    return state_[static_cast<int>(p)].skips;
  }
  std::int64_t backoff(InprocessPass p) const {
    return state_[static_cast<int>(p)].backoff;
  }

 private:
  struct PassState {
    std::int64_t runs = 0;
    std::int64_t skips = 0;
    double utility = 0.0;        ///< EWMA of per-run scores
    std::int64_t backoff = 0;    ///< rounds skipped after each run
    std::int64_t cooldown = 0;   ///< rounds left in the current backoff
    std::int64_t last_run_props = 0;  ///< search props marker at last run end
    bool entry_gated = false;  ///< entry round skipped by the shape gate
    // Open measurement window (armed by record, settled by observe).
    bool window_open = false;
    std::int64_t ticks_last = 0;
    std::int64_t reductions_last = 0;
    double eff_before = 0.0;     ///< conflicts per kiloprop before the run
  };

  /// Budget cap from the pass's InprocessOptions field.
  static std::int64_t option_budget(InprocessPass p,
                                    const InprocessOptions& opts);

  PassState state_[kNumInprocessPasses];
  std::int64_t round_ = 0;
  // End-of-previous-interval markers for efficiency measurement.
  std::int64_t prev_props_ = 0;
  std::int64_t prev_conflicts_ = 0;
  /// Propagations the passes themselves consumed last round, excluded
  /// from the next interval's efficiency reading.
  std::int64_t pass_props_last_round_ = 0;
  double interval_eff_ = 0.0;  ///< conflicts per kiloprop, last interval
};

}  // namespace sateda::sat
