#include "sat/inprocess/schedule.hpp"

#include <algorithm>

namespace sateda::sat {

namespace {
constexpr double kEps = 1e-9;

double clamp1(double x) { return std::clamp(x, -1.0, 1.0); }
}  // namespace

std::int64_t InprocessScheduler::option_budget(InprocessPass p,
                                               const InprocessOptions& opts) {
  switch (p) {
    case InprocessPass::kProbe: return opts.probe_budget;
    case InprocessPass::kVivify: return opts.vivify_budget;
    case InprocessPass::kBve: return opts.bve_budget;
  }
  return -1;
}

void InprocessScheduler::observe(const SolverStats& stats,
                                 const InprocessOptions& opts) {
  ++round_;
  // The interval's search effort excludes the propagations the passes
  // themselves performed last round — otherwise a pass would dilute the
  // very efficiency reading that judges it.
  const std::int64_t dprops = std::max<std::int64_t>(
      0, stats.propagations - prev_props_ - pass_props_last_round_);
  const std::int64_t dconfl =
      std::max<std::int64_t>(0, stats.conflicts - prev_conflicts_);
  const bool measurable = dprops >= 1000;
  if (measurable) {
    interval_eff_ =
        1000.0 * static_cast<double>(dconfl) / static_cast<double>(dprops);
  }

  for (PassState& st : state_) {
    if (st.window_open) {
      if (!measurable) continue;  // keep the window armed one more round
      st.window_open = false;
      // Did the interval after the run produce conflicts at a better
      // rate than the interval before it?
      double improvement = 0.0;
      if (st.eff_before > kEps) {
        improvement =
            clamp1((interval_eff_ - st.eff_before) / st.eff_before);
      }
      // What fraction of the window did the pass itself consume?
      const double tick_cost = std::min(
          1.0, static_cast<double>(st.ticks_last) /
                   static_cast<double>(std::max<std::int64_t>(1, dprops)));
      // Work product: a run that derived nothing was pure overhead.
      const double work =
          st.reductions_last > 0
              ? std::min(0.15, 0.015 * static_cast<double>(st.reductions_last))
              : -0.25;
      const double score = clamp1(0.5 * improvement + work - tick_cost);
      st.utility = 0.7 * st.utility + 0.3 * score;
      if (st.utility < opts.utility_threshold) {
        st.backoff = std::min<std::int64_t>(
            st.backoff == 0 ? 1 : st.backoff * 2, opts.max_backoff);
        st.cooldown = st.backoff;
      } else if (st.utility > 0.0) {
        st.backoff /= 2;
      }
    }
  }

  if (measurable) {
    prev_props_ = stats.propagations;
    prev_conflicts_ = stats.conflicts;
    pass_props_last_round_ = 0;
  }
}

PassPlan InprocessScheduler::plan(InprocessPass p, const SolverStats& stats,
                                  std::size_t num_problem_clauses,
                                  double binary_fraction,
                                  const InprocessOptions& opts) {
  PassState& st = state_[static_cast<int>(p)];
  if (!opts.self_throttle) {
    return {true, option_budget(p, opts)};
  }
  if (st.cooldown > 0) {
    --st.cooldown;
    ++st.skips;
    return {false, 0};
  }
  if (st.runs == 0 && round_ <= 1 && opts.entry_max_binary_fraction >= 0.0 &&
      binary_fraction > opts.entry_max_binary_fraction) {
    // Shape gate: a binary-heavy (circuit-shaped) database makes the
    // formula-scaled entry budget a bad bet.  Skip the entry round
    // entirely and downgrade this pass's eventual first run to the
    // steady-state budget.
    st.entry_gated = true;
    ++st.skips;
    return {false, 0};
  }
  const std::int64_t cap = option_budget(p, opts);
  std::int64_t ticks;
  if (st.runs == 0 && !st.entry_gated) {
    // Entry round: little search history yet, so scale to the formula —
    // this doubles as preprocessing without letting a flat budget dwarf
    // a small instance's entire search.
    const std::int64_t formula = opts.entry_ticks_per_clause *
                                 static_cast<std::int64_t>(num_problem_clauses);
    if (p == InprocessPass::kBve) {
      // BVE ticks are clause words touched, orders of magnitude cheaper
      // than a propagation — and a completed elimination round is what
      // collapses chain instances (dubois), so let it finish.
      ticks = 8 * formula;
    } else {
      // Probe/vivify ticks ARE propagations.  Cap the entry round by
      // the search effort the instance has demonstrated so far, or the
      // passes dwarf an almost-free solve.  The entry floor is a
      // quarter of the steady-state one for the same reason.
      const std::int64_t share = static_cast<std::int64_t>(
          opts.tick_share * static_cast<double>(stats.propagations));
      ticks = std::min(formula, std::max(share, opts.min_ticks / 4));
    }
  } else {
    const std::int64_t since =
        std::max<std::int64_t>(0, stats.propagations - st.last_run_props);
    ticks = static_cast<std::int64_t>(opts.tick_share *
                                      static_cast<double>(since));
    ticks = std::max(ticks, opts.min_ticks);
  }
  if (cap >= 0) ticks = std::min(ticks, cap);
  return {true, ticks};
}

void InprocessScheduler::record(InprocessPass p, const SolverStats& stats,
                                std::int64_t ticks, std::int64_t reductions) {
  PassState& st = state_[static_cast<int>(p)];
  ++st.runs;
  st.last_run_props = stats.propagations;
  st.window_open = true;
  st.ticks_last = ticks;
  st.reductions_last = reductions;
  st.eff_before = interval_eff_;
  // Probe/vivify ticks are propagations and land in stats.propagations;
  // BVE ticks are resolution work, invisible to the propagation counter.
  if (p != InprocessPass::kBve) pass_props_last_round_ += ticks;
}

}  // namespace sateda::sat
