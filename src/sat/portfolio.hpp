/// \file portfolio.hpp
/// \brief Parallel clause-sharing portfolio of CDCL workers.
///
/// The paper's §4.1/§6 observation that no single solver configuration
/// dominates on EDA workloads (GRASP-style relevance learning vs
/// Chaff-style VSIDS/restarts vs randomization) motivates the standard
/// industrial response: run N diversified configurations in parallel
/// and let them race, exchanging short/low-LBD learnt clauses.  A
/// learnt clause is derived by resolution from the clause database
/// alone (assumptions enter only as pseudo-decisions), so sharing is
/// sound even for incremental solving under assumptions.
///
/// Two execution modes:
///  * racing (default): workers run freely on std::thread; exported
///    clauses go through a mutex-guarded SharedClausePool and are
///    imported at restart boundaries; the first worker to decide wins
///    and cancels the rest.
///  * deterministic: workers advance in lockstep rounds of a fixed
///    conflict budget (spawn/join barrier per round), clauses are
///    exchanged between rounds in worker-index order, and the
///    lowest-index decided worker wins — bit-identical across runs,
///    regardless of thread scheduling.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/engine.hpp"
#include "sat/options.hpp"
#include "sat/solver.hpp"
#include "support/mutex.hpp"

namespace sateda::sat {

/// Tunables for PortfolioSolver.
struct PortfolioOptions {
  int num_workers = 0;        ///< 0: one per hardware thread
  bool deterministic = false; ///< lockstep rounds, reproducible winner
  int max_shared_lbd = 8;     ///< share learnt clauses with LBD ≤ this
  int max_shared_size = 30;   ///< ... and at most this many literals
  std::int64_t round_conflicts = 2000;  ///< deterministic round length
  std::size_t pool_capacity = 1 << 14;  ///< shared-pool ring size
};

/// Mutex-guarded exchange buffer for learnt clauses.  Entries carry a
/// monotone sequence number; each worker keeps a cursor and collects
/// only clauses published after it (and not by itself).  The ring keeps
/// the most recent pool_capacity entries — slow importers simply miss
/// older clauses, which is harmless (sharing is best-effort).
class SharedClausePool {
 public:
  SharedClausePool(int num_workers, std::size_t capacity);

  /// Publishes \p lits on behalf of \p worker.  Thread-safe.
  void publish(int worker, const std::vector<Lit>& lits) EXCLUDES(mu_);

  /// Appends every clause published since \p worker's last collect
  /// (excluding its own) to \p out and advances the cursor.
  void collect(int worker, std::vector<std::vector<Lit>>& out) EXCLUDES(mu_);

  /// Total clauses ever published.
  std::int64_t published() const EXCLUDES(mu_);

 private:
  struct Entry {
    int worker = -1;
    std::vector<Lit> lits;
  };

  /// Leaf lock of the solving path: taken by workers mid-search (from
  /// the clause export/import hooks) with no other lock held — the
  /// serve scheduler's locks are always released before a query runs.
  mutable Mutex mu_;
  std::vector<Entry> ring_ GUARDED_BY(mu_);  ///< slot i: sequence base_+i
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;  ///< next publish sequence
  std::vector<std::uint64_t> cursors_ GUARDED_BY(mu_);  ///< per worker
};

/// A SatEngine running N diversified CDCL workers in parallel.
class PortfolioSolver : public SatEngine {
 public:
  explicit PortfolioSolver(SolverOptions base = {}, PortfolioOptions popts = {});
  ~PortfolioSolver() override;

  std::string name() const override { return "portfolio"; }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const PortfolioOptions& portfolio_options() const { return popts_; }

  /// Worker \p i's configuration after diversification (for tests and
  /// bench reporting).
  const SolverOptions& worker_options(int i) const {
    return workers_[static_cast<std::size_t>(i)]->options();
  }

  // --- problem construction (mirrored into every worker) ------------
  Var new_var() override;
  void ensure_var(Var v) override;
  int num_vars() const override { return workers_.front()->num_vars(); }
  [[nodiscard]] bool add_clause(std::vector<Lit> lits) override;
  using SatEngine::add_clause;
  bool okay() const override { return ok_; }
  std::size_t num_problem_clauses() const override {
    return workers_.front()->num_problem_clauses();
  }

  // --- solving ------------------------------------------------------
  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions) override;
  using SatEngine::solve;
  const std::vector<lbool>& model() const override { return model_; }
  const std::vector<Lit>& conflict_core() const override {
    return conflict_core_;
  }

  /// Cancels every worker; the in-flight solve() returns kUnknown with
  /// unknown_reason() == kInterrupted.  Callable from any thread.
  void interrupt() override;
  UnknownReason unknown_reason() const override { return unknown_reason_; }

  /// Budgets for subsequent solve() calls.  In racing mode every
  /// worker gets the full budgets (first to exhaust reports kUnknown);
  /// in deterministic mode they bound the whole portfolio at the round
  /// barrier, exactly like the construction-time options.
  void set_budgets(std::int64_t conflicts, std::int64_t time_ms) override;

  /// Index of the worker that decided the last solve(), or -1.
  int winner() const { return winner_; }

  // --- proof logging ------------------------------------------------

  /// Enables DRAT tracing: every worker logs into a per-worker
  /// SequencedProof whose steps draw tickets from one shared counter,
  /// so an exported clause always precedes its importers' uses of it.
  /// Call before adding clauses.  Works in both execution modes.
  void enable_proof();
  bool proof_enabled() const { return !traces_.empty(); }

  /// Merges the per-worker traces into one linear proof (ordered by
  /// ticket, per-worker deletions dropped, truncated at the first
  /// empty clause).  Meaningful after solve() returned kUnsat; for
  /// UNSAT under assumptions the winner's negated conflict core is the
  /// final derivation and the checker closes the refutation.
  Proof stitched_proof() const;

  /// Counters summed over all workers.
  SolverStats stats() const override;

  // --- hints: forwarded to every worker -----------------------------
  void simplify_db() override;
  void set_polarity(Var v, bool value) override;
  void set_decision_var(Var v, bool is_decision) override;
  void bump_variable(Var v) override;
  void freeze(Var v) override;
  void thaw(Var v) override;
  /// True iff frozen in every worker (freezes are only ever applied
  /// portfolio-wide, so any worker is representative).
  bool is_frozen(Var v) const override;

  /// Diversifies \p base for worker \p index (index 0 keeps the base
  /// configuration).  Public so other worker pools (the cube-and-
  /// conquer layer) diversify identically.
  static SolverOptions diversified_options(const SolverOptions& base,
                                           int index);

 private:
  SolveResult solve_racing(const std::vector<Lit>& assumptions);
  SolveResult solve_deterministic(const std::vector<Lit>& assumptions);
  void adopt_outcome(int winner, SolveResult result);

  PortfolioOptions popts_;
  SolverOptions base_opts_;
  std::vector<std::unique_ptr<Solver>> workers_;
  bool ok_ = true;

  std::atomic<std::uint64_t> proof_ticket_{0};  ///< shared by all traces
  std::vector<std::unique_ptr<SequencedProof>> traces_;  ///< per worker

  std::atomic<bool> stop_all_{false};       ///< polled by every worker
  std::atomic<bool> user_interrupted_{false};
  std::vector<lbool> model_;
  std::vector<Lit> conflict_core_;
  UnknownReason unknown_reason_ = UnknownReason::kNone;
  int winner_ = -1;
};

}  // namespace sateda::sat
