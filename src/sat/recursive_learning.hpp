/// \file recursive_learning.hpp
/// \brief Recursive learning on CNF formulas (paper §4.2, Figure 4).
///
/// For a clause ω to be satisfied, one of its unassigned literals must
/// become true.  Recursive learning branches on each way of satisfying
/// ω, collects the implied assignments of every (non-conflicting)
/// branch, and asserts the assignments *common* to all branches as
/// necessary.  Each necessary assignment is explained by a recorded
/// implicate: (common literal + ¬a₁ + … + ¬aₖ) for context assumptions
/// a₁…aₖ — exactly Figure 4's derivation of (¬z + u + x) from
/// {z=1, u=0}.  Unlike the original circuit-based procedure [19],
/// recording implicates prevents re-deriving the same assignments
/// later in the search (§4.2, last paragraph).
///
/// A branch that immediately conflicts proves the complement of its
/// branch literal necessary (failed-literal case).  If every branch of
/// some clause conflicts, the formula is unsatisfiable under the
/// context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::sat {

struct RecursiveLearningOptions {
  int depth = 1;              ///< recursion depth (≥1); Fig. 4 uses 1
  int max_rounds = 4;         ///< fixpoint iterations per level
  std::size_t max_clause_width = 4;  ///< only branch on clauses this narrow
  std::int64_t probe_budget = 2'000'000;  ///< total branch probes before bailing
};

struct RecursiveLearningStats {
  std::int64_t clauses_examined = 0;
  std::int64_t branches = 0;
  std::int64_t necessary_assignments = 0;
  std::int64_t implicates_recorded = 0;

  std::string summary() const {
    return "examined=" + std::to_string(clauses_examined) +
           " branches=" + std::to_string(branches) +
           " necessary=" + std::to_string(necessary_assignments) +
           " implicates=" + std::to_string(implicates_recorded);
  }
};

struct RecursiveLearningResult {
  bool unsat = false;            ///< formula refuted under the context
  std::vector<Lit> necessary;    ///< assignments implied by formula + context
  std::vector<Clause> implicates;///< recorded explanations (implicates of f)
  RecursiveLearningStats stats;
};

/// Runs recursive learning over \p f under the (possibly empty)
/// assumption context \p context.  With an empty context the recorded
/// implicates are unit clauses — usable as a preprocessing step.
RecursiveLearningResult recursive_learn(
    const CnfFormula& f, const std::vector<Lit>& context = {},
    RecursiveLearningOptions opts = {});

/// Convenience: appends the recorded implicates of a top-level
/// recursive-learning pass to a copy of \p f and returns it
/// (the preprocessing usage benchmarked in E4).
CnfFormula strengthen_with_recursive_learning(
    const CnfFormula& f, RecursiveLearningOptions opts = {});

}  // namespace sateda::sat
