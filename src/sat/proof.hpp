/// \file proof.hpp
/// \brief DRUP/DRAT-style proof logging and checking.
///
/// The paper's EDA use cases lean heavily on *unsatisfiability*
/// (equivalence proofs, redundancy identification, false-path
/// proofs).  A modern solver makes those answers auditable by
/// emitting a clausal proof: every learnt clause is a reverse-unit-
/// propagation (RUP) consequence of the formula plus earlier learnt
/// clauses, and an UNSAT run ends with the empty clause.  This module
/// provides the solver-side logger and an independent RUP checker so
/// the test suite can verify the engine's refutations end to end.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::sat {

/// Hook the solver calls as it derives/deletes clauses.
class ProofLogger {
 public:
  virtual ~ProofLogger() = default;
  /// A clause derived by conflict analysis (RUP w.r.t. the current
  /// database).  An empty vector is the final refutation.
  virtual void on_derive(const std::vector<Lit>& lits) = 0;
  /// A learnt clause retired by the deletion policy.
  virtual void on_delete(const std::vector<Lit>& lits) = 0;
};

/// In-memory proof: the sequence of derivations/deletions.
class Proof : public ProofLogger {
 public:
  struct Step {
    bool deletion = false;
    std::vector<Lit> lits;
  };

  void on_derive(const std::vector<Lit>& lits) override {
    steps_.push_back({false, lits});
  }
  void on_delete(const std::vector<Lit>& lits) override {
    steps_.push_back({true, lits});
  }

  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// True iff the proof ends (somewhere) with the empty clause.
  bool derives_empty_clause() const;

  /// Serializes in the standard DRAT text format ("d" lines for
  /// deletions, DIMACS literals, 0 terminators).
  void write_drat(std::ostream& out) const;
  std::string to_drat_string() const;

 private:
  std::vector<Step> steps_;
};

/// Result of checking a proof against a formula.
struct ProofCheckResult {
  bool valid = false;       ///< every derivation is RUP
  bool refutation = false;  ///< valid AND derives the empty clause
  std::size_t failed_step = 0;  ///< first non-RUP step when !valid
  std::string message;
};

/// Independent RUP check: for each derived clause C, unit propagation
/// on (formula ∪ earlier derivations \ deletions) ∪ ¬C must reach a
/// conflict.  Deliberately written against its own little propagation
/// engine — it shares no code with the solver it audits.
ProofCheckResult check_rup_proof(const CnfFormula& formula,
                                 const Proof& proof);

}  // namespace sateda::sat
