/// \file proof.hpp
/// \brief DRAT proof logging: tracer interface, in-memory traces, and
///        text/binary DRAT serialization.
///
/// The paper's EDA use cases lean heavily on *unsatisfiability*
/// (equivalence proofs, redundancy identification, false-path
/// proofs).  A GRASP-style solver derives every learnt clause by
/// resolution, so each UNSAT answer admits a machine-checkable
/// clausal certificate: every addition is a reverse-unit-propagation
/// (RUP/RAT) consequence of the formula plus earlier additions, and a
/// refutation ends with the empty clause.  Three producers drive the
/// ProofTracer interface:
///
///  * the CDCL solver, on clause learning, minimization and deletion;
///  * the preprocessor, on subsumption, self-subsuming resolution and
///    equivalence substitution (pure-literal units are RAT, not RUP);
///  * each portfolio worker, into a per-worker SequencedProof whose
///    globally ticketed steps are stitched into one linear proof for
///    the winning UNSAT worker (imports need no replay: the exporter's
///    derivation always carries an earlier ticket, and redundant
///    re-derivations are RUP anyway).
///
/// The independent checker lives in drat_check.hpp and deliberately
/// shares no code with the solver it audits; check_rup_proof() below
/// is a small forward RUP check kept for in-process sanity tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::sat {

/// Hook the solving pipeline drives as it derives/deletes clauses.
class ProofTracer {
 public:
  virtual ~ProofTracer() = default;

  /// A clause derived from the current database (RUP, or RAT on its
  /// first literal).  An empty vector is the final refutation.
  virtual void on_derive(const std::vector<Lit>& lits) = 0;

  /// A clause retired from the database (learnt-clause deletion,
  /// subsumption).  Deletions may only weaken the database.
  virtual void on_delete(const std::vector<Lit>& lits) = 0;

  /// Observation hook: conflict-clause minimization shrank \p before
  /// to \p after.  Only \p after enters the proof (via on_derive);
  /// tracers may use this for diagnostics.  Default: ignore.
  virtual void on_minimize(const std::vector<Lit>& before,
                           const std::vector<Lit>& after) {
    (void)before;
    (void)after;
  }
};

/// Legacy name, kept for call sites predating the tracer redesign.
using ProofLogger = ProofTracer;

/// DRAT serialization format.
enum class DratFormat {
  kText,    ///< one clause per line, "d" prefix for deletions
  kBinary,  ///< 'a'/'d' byte + 7-bit variable-length literal encoding
};

/// Writes one DRAT step.  Shared by Proof and DratWriter so the two
/// emitters cannot drift apart.
void write_drat_step(std::ostream& out, DratFormat format, bool deletion,
                     const std::vector<Lit>& lits);

/// In-memory proof: the sequence of derivations/deletions.
class Proof : public ProofTracer {
 public:
  struct Step {
    bool deletion = false;
    std::vector<Lit> lits;
  };

  void on_derive(const std::vector<Lit>& lits) override {
    steps_.push_back({false, lits});
  }
  void on_delete(const std::vector<Lit>& lits) override {
    steps_.push_back({true, lits});
  }

  const std::vector<Step>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  /// True iff the proof ends (somewhere) with the empty clause.
  bool derives_empty_clause() const;

  /// Serializes in DRAT ("d" lines for deletions, DIMACS literals,
  /// 0 terminators for text; the drat-trim byte encoding for binary).
  void write_drat(std::ostream& out, DratFormat format = DratFormat::kText) const;
  std::string to_drat_string() const;

 private:
  std::vector<Step> steps_;
};

/// Streams DRAT steps to an output stream as they happen, instead of
/// buffering them in memory — the right tracer for long CLI runs.
class DratWriter : public ProofTracer {
 public:
  explicit DratWriter(std::ostream& out, DratFormat format = DratFormat::kText)
      : out_(&out), format_(format) {}

  void on_derive(const std::vector<Lit>& lits) override {
    write_drat_step(*out_, format_, /*deletion=*/false, lits);
  }
  void on_delete(const std::vector<Lit>& lits) override {
    write_drat_step(*out_, format_, /*deletion=*/true, lits);
  }

 private:
  std::ostream* out_;
  DratFormat format_;
};

/// Per-worker proof trace for the portfolio: every step draws a ticket
/// from a counter shared by all workers, so the per-worker traces can
/// be merged into one linear proof afterwards.  The counter is the
/// only cross-thread state; each trace itself is single-threaded.
class SequencedProof : public ProofTracer {
 public:
  struct Step {
    std::uint64_t ticket = 0;
    bool deletion = false;
    std::vector<Lit> lits;
  };

  explicit SequencedProof(std::atomic<std::uint64_t>* ticket_counter)
      : ticket_counter_(ticket_counter) {}

  void on_derive(const std::vector<Lit>& lits) override {
    steps_.push_back(
        {ticket_counter_->fetch_add(1, std::memory_order_relaxed), false,
         lits});
  }
  void on_delete(const std::vector<Lit>& lits) override {
    steps_.push_back(
        {ticket_counter_->fetch_add(1, std::memory_order_relaxed), true,
         lits});
  }

  const std::vector<Step>& steps() const { return steps_; }
  void clear() { steps_.clear(); }

 private:
  std::atomic<std::uint64_t>* ticket_counter_;  ///< not owned
  std::vector<Step> steps_;
};

/// Merges per-worker traces into one proof, ordered by ticket.
///
/// Soundness of the stitched proof: a worker's learnt clause is a
/// resolution consequence of its clause database at learning time —
/// problem clauses plus its own earlier derivations plus imports.  An
/// imported clause was published by its exporter only *after* the
/// exporter's on_derive drew a ticket, so in ticket order every
/// antecedent precedes its consumer.  Per-worker deletions are dropped
/// (worker A's deletion must not remove a clause worker B still
/// resolves on); a growing database only strengthens RUP.  The merge
/// is truncated at the first empty clause.
Proof stitch_proofs(const std::vector<const SequencedProof*>& traces);

/// Result of checking a proof against a formula.
struct ProofCheckResult {
  bool valid = false;       ///< every derivation is RUP
  bool refutation = false;  ///< valid AND derives the empty clause
  std::size_t failed_step = 0;  ///< first non-RUP step when !valid
  std::string message;
};

/// Forward RUP check: for each derived clause C, unit propagation on
/// (formula ∪ earlier derivations \ deletions) ∪ ¬C must reach a
/// conflict.  A small counting-based sanity checker for in-process
/// tests; the production auditor is the watched-literal backward
/// RUP/RAT checker in drat_check.hpp.  Note this check has no RAT
/// fallback, so proofs containing pure-literal (RAT-only) additions
/// from the preprocessor need check_drat() instead.
ProofCheckResult check_rup_proof(const CnfFormula& formula,
                                 const Proof& proof);

}  // namespace sateda::sat
