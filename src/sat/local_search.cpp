#include "sat/local_search.hpp"

#include <cassert>

namespace sateda::sat {

WalkSatSolver::WalkSatSolver(const CnfFormula& f, WalkSatOptions opts)
    : formula_(f), opts_(opts), rng_(opts.seed) {
  const int nv = std::max(f.num_vars(), 1);
  assign_.assign(nv, 0);
  occurs_.resize(2 * static_cast<std::size_t>(nv));
  true_count_.assign(f.num_clauses(), 0);
  unsat_pos_.assign(f.num_clauses(), -1);
  for (std::size_t ci = 0; ci < f.num_clauses(); ++ci) {
    for (Lit l : f.clause(ci)) occurs_[l.index()].push_back(ci);
  }
}

void WalkSatSolver::random_assignment() {
  std::bernoulli_distribution coin(0.5);
  for (std::size_t v = 0; v < assign_.size(); ++v) assign_[v] = coin(rng_);
  // Recompute clause satisfaction from scratch.
  unsat_clauses_.clear();
  std::fill(unsat_pos_.begin(), unsat_pos_.end(), -1);
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    int tc = 0;
    for (Lit l : formula_.clause(ci)) {
      if (assign_[l.var()] != l.negative()) ++tc;
    }
    true_count_[ci] = tc;
    if (tc == 0) {
      unsat_pos_[ci] = static_cast<std::ptrdiff_t>(unsat_clauses_.size());
      unsat_clauses_.push_back(ci);
    }
  }
}

std::int64_t WalkSatSolver::break_count(Var v) const {
  // Clauses that become unsatisfied if v flips: those where v's
  // current polarity is the only true literal.
  const Lit current(v, assign_[v] == 0);  // literal currently true
  std::int64_t breaks = 0;
  for (std::size_t ci : occurs_[current.index()]) {
    if (true_count_[ci] == 1) ++breaks;
  }
  return breaks;
}

void WalkSatSolver::flip(Var v) {
  const Lit was_true(v, assign_[v] == 0);
  const Lit now_true = ~was_true;
  assign_[v] = assign_[v] ? 0 : 1;
  for (std::size_t ci : occurs_[was_true.index()]) {
    if (--true_count_[ci] == 0) {
      unsat_pos_[ci] = static_cast<std::ptrdiff_t>(unsat_clauses_.size());
      unsat_clauses_.push_back(ci);
    }
  }
  for (std::size_t ci : occurs_[now_true.index()]) {
    if (true_count_[ci]++ == 0) {
      // Remove from the unsat set (swap with the back).
      std::ptrdiff_t pos = unsat_pos_[ci];
      assert(pos >= 0);
      std::size_t back = unsat_clauses_.back();
      unsat_clauses_[static_cast<std::size_t>(pos)] = back;
      unsat_pos_[back] = pos;
      unsat_clauses_.pop_back();
      unsat_pos_[ci] = -1;
    }
  }
}

SolveResult WalkSatSolver::solve() {
  for (const Clause& c : formula_) {
    if (c.empty()) return SolveResult::kUnknown;  // cannot refute
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int attempt = 0; attempt < opts_.max_tries; ++attempt) {
    ++stats_.tries;
    random_assignment();
    for (std::int64_t flip_no = 0; flip_no < opts_.max_flips; ++flip_no) {
      if (unsat_clauses_.empty()) {
        model_.resize(assign_.size());
        for (std::size_t v = 0; v < assign_.size(); ++v) {
          model_[v] = lbool(assign_[v] != 0);
        }
        return SolveResult::kSat;
      }
      ++stats_.flips;
      std::uniform_int_distribution<std::size_t> pick_clause(
          0, unsat_clauses_.size() - 1);
      const Clause& c = formula_.clause(unsat_clauses_[pick_clause(rng_)]);
      Var chosen = kNullVar;
      // Freebie move: a variable with break-count 0 is always taken.
      bool freebie = false;
      std::int64_t best_break = -1;
      for (Lit l : c) {
        std::int64_t b = break_count(l.var());
        if (b == 0) {
          chosen = l.var();
          freebie = true;
          break;
        }
        if (best_break < 0 || b < best_break) {
          best_break = b;
          chosen = l.var();
        }
      }
      if (!freebie && coin(rng_) < opts_.noise) {
        std::uniform_int_distribution<std::size_t> pick_lit(0, c.size() - 1);
        chosen = c[pick_lit(rng_)].var();
      }
      flip(chosen);
    }
  }
  return SolveResult::kUnknown;
}

}  // namespace sateda::sat
