#include "sat/local_search.hpp"

#include <algorithm>
#include <cassert>

namespace sateda::sat {

WalkSatSolver::WalkSatSolver(WalkSatOptions opts)
    : opts_(opts), default_max_flips_(opts.max_flips), rng_(opts.seed) {}

WalkSatSolver::WalkSatSolver(const CnfFormula& f, WalkSatOptions opts)
    : formula_(f), opts_(opts), default_max_flips_(opts.max_flips),
      rng_(opts.seed) {
  for (const Clause& c : formula_) {
    if (c.empty()) ok_ = false;
  }
}

bool WalkSatSolver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  dirty_ = true;
  if (lits.empty()) {
    ok_ = false;
    formula_.add_clause(std::move(lits));
    return false;
  }
  formula_.add_clause(std::move(lits));
  return true;
}

void WalkSatSolver::rebuild_index() {
  const int nv = std::max(formula_.num_vars(), 1);
  assign_.assign(nv, 0);
  occurs_.assign(2 * static_cast<std::size_t>(nv), {});
  true_count_.assign(formula_.num_clauses(), 0);
  unsat_pos_.assign(formula_.num_clauses(), -1);
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    for (Lit l : formula_.clause(ci)) occurs_[l.index()].push_back(ci);
  }
  dirty_ = false;
}

void WalkSatSolver::random_assignment() {
  std::bernoulli_distribution coin(0.5);
  for (std::size_t v = 0; v < assign_.size(); ++v) {
    if (!frozen_[v]) assign_[v] = coin(rng_);
  }
  // Recompute clause satisfaction from scratch.
  unsat_clauses_.clear();
  std::fill(unsat_pos_.begin(), unsat_pos_.end(), -1);
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    int tc = 0;
    for (Lit l : formula_.clause(ci)) {
      if (assign_[l.var()] != l.negative()) ++tc;
    }
    true_count_[ci] = tc;
    if (tc == 0) {
      unsat_pos_[ci] = static_cast<std::ptrdiff_t>(unsat_clauses_.size());
      unsat_clauses_.push_back(ci);
    }
  }
}

std::int64_t WalkSatSolver::break_count(Var v) const {
  // Clauses that become unsatisfied if v flips: those where v's
  // current polarity is the only true literal.
  const Lit current(v, assign_[v] == 0);  // literal currently true
  std::int64_t breaks = 0;
  for (std::size_t ci : occurs_[current.index()]) {
    if (true_count_[ci] == 1) ++breaks;
  }
  return breaks;
}

void WalkSatSolver::flip(Var v) {
  const Lit was_true(v, assign_[v] == 0);
  const Lit now_true = ~was_true;
  assign_[v] = assign_[v] ? 0 : 1;
  for (std::size_t ci : occurs_[was_true.index()]) {
    if (--true_count_[ci] == 0) {
      unsat_pos_[ci] = static_cast<std::ptrdiff_t>(unsat_clauses_.size());
      unsat_clauses_.push_back(ci);
    }
  }
  for (std::size_t ci : occurs_[now_true.index()]) {
    if (true_count_[ci]++ == 0) {
      // Remove from the unsat set (swap with the back).
      std::ptrdiff_t pos = unsat_pos_[ci];
      assert(pos >= 0);
      std::size_t back = unsat_clauses_.back();
      unsat_clauses_[static_cast<std::size_t>(pos)] = back;
      unsat_pos_[back] = pos;
      unsat_clauses_.pop_back();
      unsat_pos_[ci] = -1;
    }
  }
}

SolveResult WalkSatSolver::solve(const std::vector<Lit>& assumptions) {
  ++solve_calls_;
  model_.clear();
  conflict_core_.clear();
  interrupt_flag_.store(false, std::memory_order_relaxed);
  unknown_reason_ = UnknownReason::kNone;
  for (Lit l : assumptions) ensure_var(l.var());
  if (!ok_) return SolveResult::kUnsat;  // trivial: an empty clause exists
  if (dirty_) rebuild_index();

  // Freeze assumed variables at their assumed values; contradictory
  // assumptions make a clause permanently unsatisfied, which local
  // search can only report as kUnknown.
  frozen_.assign(assign_.size(), 0);
  for (Lit a : assumptions) {
    frozen_[a.var()] = 1;
    assign_[a.var()] = a.negative() ? 0 : 1;
  }

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int attempt = 0; attempt < opts_.max_tries; ++attempt) {
    ++stats_.tries;
    random_assignment();
    for (std::int64_t flip_no = 0; flip_no < opts_.max_flips; ++flip_no) {
      if (interrupt_flag_.load(std::memory_order_relaxed)) {
        unknown_reason_ = UnknownReason::kInterrupted;
        return SolveResult::kUnknown;
      }
      if (unsat_clauses_.empty()) {
        model_.resize(assign_.size());
        for (std::size_t v = 0; v < assign_.size(); ++v) {
          model_[v] = lbool(assign_[v] != 0);
        }
        return SolveResult::kSat;
      }
      ++stats_.flips;
      std::uniform_int_distribution<std::size_t> pick_clause(
          0, unsat_clauses_.size() - 1);
      const Clause& c = formula_.clause(unsat_clauses_[pick_clause(rng_)]);
      Var chosen = kNullVar;
      // Freebie move: a variable with break-count 0 is always taken.
      bool freebie = false;
      std::int64_t best_break = -1;
      for (Lit l : c) {
        if (frozen_[l.var()]) continue;
        std::int64_t b = break_count(l.var());
        if (b == 0) {
          chosen = l.var();
          freebie = true;
          break;
        }
        if (best_break < 0 || b < best_break) {
          best_break = b;
          chosen = l.var();
        }
      }
      if (!freebie && coin(rng_) < opts_.noise) {
        std::uniform_int_distribution<std::size_t> pick_lit(0, c.size() - 1);
        Var noisy = c[pick_lit(rng_)].var();
        if (!frozen_[noisy]) chosen = noisy;
      }
      // All variables of the clause frozen: the flip is wasted, but the
      // budget still drains, so the loop terminates.
      if (chosen != kNullVar) flip(chosen);
    }
  }
  unknown_reason_ = UnknownReason::kFlipBudget;
  return SolveResult::kUnknown;
}

SolverStats WalkSatSolver::stats() const {
  SolverStats s;
  s.propagations = stats_.flips;
  s.restarts = stats_.tries;
  s.solve_calls = solve_calls_;
  return s;
}

}  // namespace sateda::sat
