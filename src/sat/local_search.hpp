/// \file local_search.hpp
/// \brief WalkSAT-style stochastic local search (paper §4, ref. [32]).
///
/// The paper surveys local search among the approaches to SAT and
/// concludes that "only backtrack search has proven useful for solving
/// instances of SAT from EDA applications, in particular for
/// applications where the objective is to prove unsatisfiability".
/// This implementation exists to *reproduce that claim* (bench E14):
/// local search is competitive on satisfiable random instances but is
/// constitutionally unable to return UNSAT, and flounders on the
/// structured, mostly-UNSAT instances EDA generates.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/options.hpp"

namespace sateda::sat {

struct WalkSatOptions {
  std::int64_t max_flips = 100000;  ///< flips per try
  int max_tries = 10;               ///< random restarts
  double noise = 0.5;               ///< random-walk probability
  std::uint64_t seed = 12345;
};

struct WalkSatStats {
  std::int64_t flips = 0;
  int tries = 0;
  std::string summary() const {
    return "flips=" + std::to_string(flips) +
           " tries=" + std::to_string(tries);
  }
};

/// Runs WalkSAT on \p f.  Returns kSat with a model, or kUnknown when
/// the flip budget is exhausted — never kUnsat.
class WalkSatSolver {
 public:
  explicit WalkSatSolver(const CnfFormula& f, WalkSatOptions opts = {});

  SolveResult solve();

  const std::vector<lbool>& model() const { return model_; }
  const WalkSatStats& stats() const { return stats_; }

 private:
  std::int64_t break_count(Var v) const;
  void flip(Var v);
  void random_assignment();

  const CnfFormula& formula_;
  WalkSatOptions opts_;
  WalkSatStats stats_;
  std::vector<char> assign_;                       ///< current assignment
  std::vector<int> true_count_;                    ///< per clause
  std::vector<std::vector<std::size_t>> occurs_;   ///< per literal index
  std::vector<std::size_t> unsat_clauses_;         ///< ids, unordered
  std::vector<std::ptrdiff_t> unsat_pos_;          ///< clause -> index or -1
  std::vector<lbool> model_;
  std::mt19937_64 rng_{0};
};

}  // namespace sateda::sat
