/// \file local_search.hpp
/// \brief WalkSAT-style stochastic local search (paper §4, ref. [32]).
///
/// The paper surveys local search among the approaches to SAT and
/// concludes that "only backtrack search has proven useful for solving
/// instances of SAT from EDA applications, in particular for
/// applications where the objective is to prove unsatisfiability".
/// This implementation exists to *reproduce that claim* (bench E14):
/// local search is competitive on satisfiable random instances but is
/// constitutionally unable to return UNSAT, and flounders on the
/// structured, mostly-UNSAT instances EDA generates.
///
/// Implements SatEngine.  solve() returns kSat or — when the flip
/// budget runs out — kUnknown with unknown_reason() == kFlipBudget; the
/// only kUnsat it can ever report is the trivial one (an empty clause
/// was added).  Assumptions are handled by freezing the assumed
/// variables at their assumed values: they are never flipped, so any
/// model found satisfies them.
#pragma once

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::sat {

struct WalkSatOptions {
  std::int64_t max_flips = 100000;  ///< flips per try
  int max_tries = 10;               ///< random restarts
  double noise = 0.5;               ///< random-walk probability
  std::uint64_t seed = 12345;
};

struct WalkSatStats {
  std::int64_t flips = 0;
  int tries = 0;
  std::string summary() const {
    return "flips=" + std::to_string(flips) +
           " tries=" + std::to_string(tries);
  }
};

/// WalkSAT.  Returns kSat with a model, or kUnknown when the flip
/// budget is exhausted — never a non-trivial kUnsat.
class WalkSatSolver : public SatEngine {
 public:
  /// Engine-style construction: start empty, add clauses incrementally.
  explicit WalkSatSolver(WalkSatOptions opts = {});

  /// Legacy construction over a fixed formula (copied).
  explicit WalkSatSolver(const CnfFormula& f, WalkSatOptions opts = {});

  std::string name() const override { return "walksat"; }

  // --- problem construction ---------------------------------------
  Var new_var() override {
    dirty_ = true;
    return formula_.new_var();
  }
  void ensure_var(Var v) override {
    if (v >= formula_.num_vars()) {
      dirty_ = true;
      formula_.ensure_var(v);
    }
  }
  int num_vars() const override { return formula_.num_vars(); }
  [[nodiscard]] bool add_clause(std::vector<Lit> lits) override;
  using SatEngine::add_clause;
  bool okay() const override { return ok_; }
  std::size_t num_problem_clauses() const override {
    return formula_.num_clauses();
  }

  // --- solving ------------------------------------------------------
  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions) override;
  using SatEngine::solve;

  const std::vector<lbool>& model() const override { return model_; }

  /// Local search cannot derive conflict cores; always empty.
  const std::vector<Lit>& conflict_core() const override {
    return conflict_core_;
  }

  void interrupt() override {
    interrupt_flag_.store(true, std::memory_order_relaxed);
  }
  UnknownReason unknown_reason() const override { return unknown_reason_; }

  /// Budgets for subsequent solve() calls: the conflict budget maps to
  /// the flip budget (local search has no conflicts); WalkSAT does not
  /// poll a clock, so \p time_ms is ignored.  A negative conflict
  /// budget restores the construction-time flip budget.
  void set_budgets(std::int64_t conflicts, std::int64_t time_ms) override {
    (void)time_ms;
    opts_.max_flips = conflicts >= 0 ? conflicts : default_max_flips_;
  }

  /// Native counters mapped onto the common fields: flips count as
  /// propagations, tries as restarts.
  SolverStats stats() const override;

  /// The raw WalkSAT counters.
  const WalkSatStats& walksat_stats() const { return stats_; }

 private:
  void rebuild_index();
  std::int64_t break_count(Var v) const;
  void flip(Var v);
  void random_assignment();

  CnfFormula formula_;
  WalkSatOptions opts_;
  std::int64_t default_max_flips_ = 0;  ///< construction-time flip budget
  WalkSatStats stats_;
  bool dirty_ = true;   ///< index stale (clauses/vars added since build)
  bool ok_ = true;      ///< no empty clause added
  std::vector<char> assign_;                       ///< current assignment
  std::vector<char> frozen_;                       ///< assumption-pinned vars
  std::vector<int> true_count_;                    ///< per clause
  std::vector<std::vector<std::size_t>> occurs_;   ///< per literal index
  std::vector<std::size_t> unsat_clauses_;         ///< ids, unordered
  std::vector<std::ptrdiff_t> unsat_pos_;          ///< clause -> index or -1
  std::vector<lbool> model_;
  std::vector<Lit> conflict_core_;
  std::int64_t solve_calls_ = 0;
  std::mt19937_64 rng_{0};
  std::atomic<bool> interrupt_flag_{false};
  UnknownReason unknown_reason_ = UnknownReason::kNone;
};

}  // namespace sateda::sat
