#include "sat/recursive_learning.hpp"

#include <algorithm>
#include <cassert>

namespace sateda::sat {

namespace {

/// Trail-based propagation engine with counter-based BCP, shared by
/// all recursion levels.
class Engine {
 public:
  Engine(const CnfFormula& f, RecursiveLearningOptions opts)
      : formula_(f), opts_(opts) {
    const int nv = f.num_vars();
    assigns_.assign(nv, l_undef);
    occurs_.resize(2 * static_cast<std::size_t>(std::max(nv, 1)));
    unassigned_.resize(f.num_clauses());
    true_count_.assign(f.num_clauses(), 0);
    for (std::size_t ci = 0; ci < f.num_clauses(); ++ci) {
      const Clause& c = f.clause(ci);
      unassigned_[ci] = static_cast<int>(c.size());
      for (Lit l : c) occurs_[l.index()].push_back(ci);
    }
  }

  lbool value(Lit l) const { return assigns_[l.var()] ^ l.negative(); }

  std::size_t trail_size() const { return trail_.size(); }
  Lit trail_at(std::size_t i) const { return trail_[i]; }

  /// Assigns + propagates; returns false on conflict (state remains
  /// consistent for undo_to()).
  bool assign_and_propagate(Lit l) {
    std::size_t from = trail_.size();
    if (!assign(l)) {
      return false;
    }
    return propagate(from);
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      Lit l = trail_.back();
      trail_.pop_back();
      assigns_[l.var()] = l_undef;
      for (std::size_t ci : occurs_[l.index()]) {
        --true_count_[ci];
        ++unassigned_[ci];
      }
      for (std::size_t ci : occurs_[(~l).index()]) ++unassigned_[ci];
    }
  }

  /// Recursive-learning pass at \p depth over the current state.
  /// Appends to result_ when \p record is true (top level only).
  /// Returns false if the current state is refuted.
  bool learn(int depth, bool record, RecursiveLearningResult& result,
             const std::vector<Lit>& context) {
    for (int round = 0; round < opts_.max_rounds; ++round) {
      bool changed = false;
      for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
        if (budget_exhausted()) return true;  // give up quietly
        if (true_count_[ci] > 0) continue;
        const Clause& c = formula_.clause(ci);
        if (c.size() > opts_.max_clause_width) continue;
        if (unassigned_[ci] < 2) continue;  // units handled by BCP
        ++result.stats.clauses_examined;

        // Branch on every way of satisfying ω (Fig. 4).
        std::vector<Lit> branch_lits;
        for (Lit l : c) {
          if (value(l).is_undef()) branch_lits.push_back(l);
        }
        std::vector<Lit> common;
        bool first_branch = true;
        bool all_conflict = true;
        std::vector<Lit> failed;  // branch literals that conflict
        for (Lit bl : branch_lits) {
          ++result.stats.branches;
          ++probes_;
          const std::size_t mark = trail_.size();
          bool ok = assign_and_propagate(bl);
          if (ok && depth > 1) {
            ok = learn(depth - 1, /*record=*/false, result, context);
          }
          if (!ok) {
            undo_to(mark);
            failed.push_back(bl);
            continue;
          }
          all_conflict = false;
          if (first_branch) {
            common.assign(trail_.begin() + static_cast<std::ptrdiff_t>(mark),
                          trail_.end());
            first_branch = false;
          } else {
            // Intersect: keep literals implied in this branch too.
            std::vector<Lit> kept;
            for (Lit l : common) {
              if (value(l).is_true()) kept.push_back(l);
            }
            common = std::move(kept);
          }
          undo_to(mark);
          if (common.empty() && !first_branch) {
            // Intersection already empty; only failed-literal facts
            // can still come from later branches, so keep going.
          }
        }
        if (all_conflict) return false;

        // Complements of failed branch literals are necessary.
        for (Lit fl : failed) {
          if (!assert_necessary(~fl, record, result, context)) return false;
          changed = true;
        }
        // Common implied assignments are necessary (Fig. 4).
        for (Lit l : common) {
          if (value(l).is_true()) continue;  // may have been asserted above
          if (!assert_necessary(l, record, result, context)) return false;
          changed = true;
        }
      }
      if (!changed) break;
    }
    return true;
  }

  bool budget_exhausted() const { return probes_ >= opts_.probe_budget; }

 private:
  bool assign(Lit l) {
    lbool v = value(l);
    if (v.is_true()) return true;
    if (v.is_false()) return false;
    assigns_[l.var()] = lbool(!l.negative());
    trail_.push_back(l);
    for (std::size_t ci : occurs_[l.index()]) {
      ++true_count_[ci];
      --unassigned_[ci];
    }
    bool ok = true;
    for (std::size_t ci : occurs_[(~l).index()]) {
      if (--unassigned_[ci] == 0 && true_count_[ci] == 0) ok = false;
    }
    return ok;
  }

  bool propagate(std::size_t from) {
    for (std::size_t i = from; i < trail_.size(); ++i) {
      Lit assigned = trail_[i];
      for (std::size_t ci : occurs_[(~assigned).index()]) {
        if (true_count_[ci] > 0) continue;
        if (unassigned_[ci] == 0) return false;
        if (unassigned_[ci] == 1) {
          Lit unit = kUndefLit;
          for (Lit l : formula_.clause(ci)) {
            if (value(l).is_undef()) {
              unit = l;
              break;
            }
          }
          assert(unit.is_defined());
          if (!assign(unit)) return false;
        }
      }
    }
    return true;
  }

  bool assert_necessary(Lit l, bool record, RecursiveLearningResult& result,
                        const std::vector<Lit>& context) {
    lbool v = value(l);
    if (v.is_true()) return true;
    // A necessary literal that is currently false refutes the context
    // (BCP missed the conflict; the intersection argument still holds).
    if (v.is_false()) return false;
    if (record) {
      result.necessary.push_back(l);
      ++result.stats.necessary_assignments;
      // Explanation implicate: l is implied whenever the context holds
      // (Fig. 4: (z=1)∧(u=0) ⇒ (x=1) recorded as (¬z + u + x)).
      std::vector<Lit> expl;
      expl.reserve(context.size() + 1);
      for (Lit a : context) expl.push_back(~a);
      expl.push_back(l);
      result.implicates.emplace_back(std::move(expl));
      ++result.stats.implicates_recorded;
    }
    return assign_and_propagate(l);
  }

  const CnfFormula& formula_;
  RecursiveLearningOptions opts_;
  std::vector<lbool> assigns_;
  std::vector<std::vector<std::size_t>> occurs_;
  std::vector<int> unassigned_;
  std::vector<int> true_count_;
  std::vector<Lit> trail_;
  std::int64_t probes_ = 0;
};

}  // namespace

RecursiveLearningResult recursive_learn(const CnfFormula& f,
                                        const std::vector<Lit>& context,
                                        RecursiveLearningOptions opts) {
  RecursiveLearningResult result;
  for (const Clause& c : f) {
    if (c.empty()) {
      result.unsat = true;
      return result;
    }
  }
  Engine engine(f, opts);
  // Establish the context plus existing unit clauses.
  for (Lit a : context) {
    if (!engine.assign_and_propagate(a)) {
      result.unsat = true;
      return result;
    }
  }
  for (const Clause& c : f) {
    if (c.size() == 1 && engine.value(c[0]).is_undef()) {
      if (!engine.assign_and_propagate(c[0])) {
        result.unsat = true;
        return result;
      }
    } else if (c.size() == 1 && engine.value(c[0]).is_false()) {
      result.unsat = true;
      return result;
    }
  }
  if (!engine.learn(opts.depth, /*record=*/true, result, context)) {
    result.unsat = true;
  }
  return result;
}

CnfFormula strengthen_with_recursive_learning(const CnfFormula& f,
                                              RecursiveLearningOptions opts) {
  RecursiveLearningResult r = recursive_learn(f, {}, opts);
  CnfFormula out = f;
  if (r.unsat) {
    out.add_clause(Clause(std::vector<Lit>{}));  // empty clause: refuted
    return out;
  }
  for (const Clause& c : r.implicates) out.add_clause(c);
  return out;
}

}  // namespace sateda::sat
