/// \file session.hpp
/// \brief SolverSession: the incremental-query facade over SatEngine.
///
/// The paper's §6 observation — EDA flows issue thousands of closely
/// related queries per circuit — makes the *session*, not the single
/// solve() call, the natural unit of engine state.  A SolverSession
/// pins a sequence of related queries to one warm engine so learnt
/// clauses, VSIDS activity and saved phases survive across queries,
/// and adds the bookkeeping a long-lived engine needs:
///
///  * clause epochs: push() opens a group of clauses that pop()
///    retires soundly (activation-literal technique — each epoch
///    clause is guarded by a fresh frozen selector variable that is
///    assumed true while the epoch is open and fixed false when it
///    closes, after which simplify_db() reclaims the storage);
///  * query identity and accounting: every query() gets a
///    monotonically increasing id, its own wall-clock measurement and
///    a SolverStats delta covering exactly that query;
///  * per-query budgets: conflict and wall-clock limits applied to one
///    query without disturbing the session defaults;
///  * cancellation: cancel() interrupts the in-flight query from any
///    thread; the *next* query runs normally (the engine contract
///    clears the interrupt flag on solve() entry);
///  * certification snapshots: active_formula() reproduces the exact
///    clause set a query saw, so an UNSAT answer can be re-solved with
///    a DRAT trace and checked by sateda-check.
///
/// The sateda-serve daemon routes each protocol session onto one
/// SolverSession; the facade is equally usable in-process (see
/// atpg::IncrementalAtpg, which runs one epoch per fault).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/engine.hpp"

namespace sateda::sat {

/// Resource limits for a single query (negative: unlimited).
struct QueryBudget {
  std::int64_t conflicts = -1;
  std::int64_t time_ms = -1;
};

/// Everything a caller learns from one query.
struct QueryResult {
  std::uint64_t id = 0;            ///< session-unique, monotone
  SolveResult result = SolveResult::kUnknown;
  UnknownReason reason = UnknownReason::kNone;  ///< why kUnknown
  std::vector<lbool> model;        ///< on kSat (indexed by variable)
  std::vector<Lit> core;           ///< on kUnsat: failed user assumptions
  SolverStats stats;               ///< this query's counters only
  double wall_ms = 0.0;            ///< measured around solve()
};

/// Configuration for a session.
struct SessionOptions {
  EngineSpec engine;               ///< backend (default: cdcl)
  SolverOptions solver;            ///< handed to the engine
  QueryBudget default_budget;      ///< applied when a query names none
};

/// A long-lived incremental solving session over one warm engine.
///
/// Threading: construction, clause addition, push/pop and query() must
/// be externally serialized (the serve scheduler runs a session's
/// requests in order on one worker at a time); cancel() alone is safe
/// to call concurrently with an in-flight query().
class SolverSession {
 public:
  explicit SolverSession(SessionOptions opts = {});
  ~SolverSession();

  // --- problem construction (current epoch) -------------------------

  /// Allocates a fresh variable visible to the caller.
  Var new_var();
  void ensure_var(Var v);
  int num_vars() const;

  /// Adds a clause to the current epoch: permanent at depth 0,
  /// retired by the matching pop() otherwise.  Returns false iff the
  /// engine detected trivial root unsatisfiability.
  [[nodiscard]] bool add_clause(std::vector<Lit> lits);
  [[nodiscard]] bool add_formula(const CnfFormula& f);

  /// False once the *root* clause set is unsatisfiable.
  [[nodiscard]] bool okay() const;

  // --- clause epochs ------------------------------------------------

  /// Opens a new epoch.  Guarantee relied on by recorded protocol
  /// traces: push() allocates exactly one fresh engine variable (the
  /// epoch selector) at call time, so a client that mirrors the
  /// session's monotone variable allocation can predict free ids.
  /// Returns the new depth (1-based).
  int push();

  /// Retires every clause added since the matching push() and reclaims
  /// their storage.  Returns the new depth, or -1 at depth 0.
  [[nodiscard]] int pop();

  int depth() const { return static_cast<int>(epochs_.size()); }

  /// First variable index never handed to the caller nor referenced by
  /// a caller clause — where a protocol client should allocate query
  /// variables (selectors occupy ids between user allocations).
  Var next_free_var() const;

  // --- queries ------------------------------------------------------

  /// Solves under \p assumptions plus the selectors of every open
  /// epoch.  Budgets: a non-negative field of \p budget wins, else the
  /// session default.  The returned core contains user assumptions
  /// only (selector literals are filtered out).
  [[nodiscard]] QueryResult query(const std::vector<Lit>& assumptions,
                                  const QueryBudget& budget = {});

  /// Interrupts the in-flight query (thread-safe); it returns kUnknown
  /// with reason kInterrupted.  The next query is unaffected.
  void cancel();

  /// The id the next query() will be given (first query: 1).
  std::uint64_t next_query_id() const { return queries_run_ + 1; }
  std::uint64_t queries_run() const { return queries_run_; }

  // --- introspection ------------------------------------------------

  /// The exact clause set the next query would see: root clauses plus
  /// the clauses of every open epoch, unguarded, over user variables.
  /// Re-solving this under the same assumptions reproduces the
  /// verdict, which is how serve answers are certified.
  [[nodiscard]] CnfFormula active_formula() const;

  /// Engine counters accumulated over the whole session.
  SolverStats cumulative_stats() const { return engine_->stats(); }

  SatEngine& engine() { return *engine_; }
  const SatEngine& engine() const { return *engine_; }
  const EngineSpec& spec() const { return spec_; }

 private:
  struct Epoch {
    Lit selector;                         ///< assumed while open
    std::vector<std::vector<Lit>> clauses;  ///< original, unguarded
  };

  /// Re-enables branching on \p v if a pop() had retired it (a client
  /// re-referencing an old epoch's variable makes it live again).
  void revive(Var v);

  EngineSpec spec_;
  QueryBudget default_budget_;
  std::unique_ptr<SatEngine> engine_;
  std::vector<std::vector<Lit>> root_clauses_;
  std::vector<Epoch> epochs_;
  std::vector<char> retired_;  ///< per-var: branching disabled by pop()
  Var max_user_var_ = -1;   ///< highest caller-visible variable
  std::uint64_t queries_run_ = 0;
};

}  // namespace sateda::sat
