/// \file preprocess.hpp
/// \brief CNF preprocessing (paper §4.1 "Preprocess()" and §6
///        "equivalency reasoning").
///
/// Implements the simplifications the paper highlights as profitable
/// before search:
///  * unit propagation and pure-literal elimination to fixpoint,
///  * clause subsumption and self-subsuming resolution,
///  * equivalency reasoning: equivalence clauses (x + ¬y)·(¬x + y)
///    indicate x ≡ y, so y is replaced by x and one variable is
///    eliminated (§6).  Detected as strongly connected components of
///    the binary implication graph, so chains and derived
///    equivalences are found too.
///
/// The variable space is preserved (no renumbering); eliminated
/// variables simply stop occurring.  reconstruct_model() lifts a model
/// of the simplified formula back to the original variables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/formula.hpp"

namespace sateda::sat {

class ProofTracer;  // proof.hpp

/// Which preprocessing passes to run.
struct PreprocessOptions {
  // Unit propagation always runs: it is required for the soundness of
  // the optional passes below.
  bool pure_literals = true;
  bool equivalency_reasoning = true;  ///< §6
  bool subsumption = true;
  bool self_subsumption = true;
  int max_rounds = 10;  ///< fixpoint iteration bound

  /// Optional DRAT tracer (not owned).  Every simplification is logged
  /// so a downstream solver can keep appending to the same trace:
  /// derived units, clause rewrites and self-subsumption resolvents as
  /// additions (pure-literal units are RAT on the literal, everything
  /// else is RUP), subsumed clauses as deletions.  Rewritten originals
  /// are deliberately *not* deleted — a stronger checker database
  /// keeps the RAT side conditions provable.
  ProofTracer* proof = nullptr;
};

/// Counters for reporting (bench E3).
struct PreprocessStats {
  int units_fixed = 0;
  int pure_literals = 0;
  int equivalent_vars_eliminated = 0;
  int clauses_subsumed = 0;
  int literals_self_subsumed = 0;
  int rounds = 0;

  std::string summary() const {
    return "units=" + std::to_string(units_fixed) +
           " pures=" + std::to_string(pure_literals) +
           " equiv_elim=" + std::to_string(equivalent_vars_eliminated) +
           " subsumed=" + std::to_string(clauses_subsumed) +
           " self_subsumed=" + std::to_string(literals_self_subsumed);
  }
};

/// Result of preprocessing.  If unsat is true the original formula is
/// unsatisfiable and `simplified` is meaningless.
class PreprocessResult {
 public:
  bool unsat = false;
  CnfFormula simplified;
  PreprocessStats stats;

  /// Lifts a model of `simplified` (indexed over the original variable
  /// space; entries for eliminated variables may be anything) to a
  /// model of the original formula.  Unconstrained variables default
  /// to false.
  std::vector<lbool> reconstruct_model(
      const std::vector<lbool>& simplified_model) const;

  // Internal reconstruction data (public for tests).
  std::vector<lbool> fixed;      ///< root-level forced values (l_undef if free)
  std::vector<Lit> substituted;  ///< var -> representative literal (or kUndefLit)
};

/// Runs preprocessing on \p f.
PreprocessResult preprocess(const CnfFormula& f, PreprocessOptions opts = {});

}  // namespace sateda::sat
