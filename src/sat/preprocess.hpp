/// \file preprocess.hpp
/// \brief CNF preprocessing (paper §4.1 "Preprocess()" and §6
///        "equivalency reasoning").
///
/// Implements the simplifications the paper highlights as profitable
/// before search:
///  * unit propagation and pure-literal elimination to fixpoint,
///  * clause subsumption and self-subsuming resolution,
///  * equivalency reasoning: equivalence clauses (x + ¬y)·(¬x + y)
///    indicate x ≡ y, so y is replaced by x and one variable is
///    eliminated (§6).  Detected as strongly connected components of
///    the binary implication graph, so chains and derived
///    equivalences are found too,
///  * bounded variable elimination by clause distribution
///    (NiVER/SatELite-style), with occurrence/size/growth cutoffs and
///    a saved-clause elimination stack for model extension.
///
/// The variable space is preserved (no renumbering); eliminated
/// variables simply stop occurring.  reconstruct_model() lifts a model
/// of the simplified formula back to the original variables.
///
/// Variables named in PreprocessOptions::frozen are never fixed as
/// pure literals, substituted, or BVE-eliminated, so they can safely
/// be used as assumptions against the simplified formula.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/inprocess/elim.hpp"

namespace sateda::sat {

class ProofTracer;  // proof.hpp

/// Which preprocessing passes to run.
struct PreprocessOptions {
  // Unit propagation always runs: it is required for the soundness of
  // the optional passes below.
  bool pure_literals = true;
  bool equivalency_reasoning = true;  ///< §6
  bool subsumption = true;
  bool self_subsumption = true;
  bool bounded_variable_elimination = true;
  int max_rounds = 10;  ///< fixpoint iteration bound

  // BVE cutoffs (see InprocessOptions for the in-search counterparts).
  int bve_max_occurrences = 16;  ///< skip pivots occurring more often
  int bve_max_growth = 0;        ///< net extra clauses allowed per pivot
  int bve_max_resolvent = 24;    ///< skip pivots producing longer resolvents

  /// Variables exempt from pure-literal fixing, equivalence
  /// substitution and BVE (assumption/selector variables).
  std::vector<Var> frozen;

  /// Optional DRAT tracer (not owned).  Every simplification is logged
  /// so a downstream solver can keep appending to the same trace:
  /// derived units, clause rewrites, self-subsumption resolvents and
  /// BVE resolvents as additions — all of them RUP — and subsumed or
  /// BVE-eliminated clauses as deletions.  Pure-literal fixes emit
  /// *nothing*: the fixed value only satisfies clauses (the complement
  /// has no live occurrence and later passes cannot create one), so no
  /// later derivation depends on it, and emitting the unit as a RAT
  /// addition is unsound once earlier passes have deleted rewritten
  /// copies of retired complement clauses.  Rewritten originals are
  /// deliberately *not* deleted — a stronger checker database costs
  /// nothing and keeps every later step RUP.
  ProofTracer* proof = nullptr;
};

/// Counters for reporting (bench E3).
struct PreprocessStats {
  int units_fixed = 0;
  int pure_literals = 0;
  int equivalent_vars_eliminated = 0;
  int clauses_subsumed = 0;
  int literals_self_subsumed = 0;
  int bve_eliminated = 0;   ///< variables removed by clause distribution
  int bve_resolvents = 0;   ///< resolvent clauses added in their place
  int rounds = 0;

  std::string summary() const {
    return "units=" + std::to_string(units_fixed) +
           " pures=" + std::to_string(pure_literals) +
           " equiv_elim=" + std::to_string(equivalent_vars_eliminated) +
           " subsumed=" + std::to_string(clauses_subsumed) +
           " self_subsumed=" + std::to_string(literals_self_subsumed) +
           " bve_elim=" + std::to_string(bve_eliminated) +
           " bve_resolvents=" + std::to_string(bve_resolvents);
  }
};

/// Result of preprocessing.  If unsat is true the original formula is
/// unsatisfiable and `simplified` is meaningless.
class PreprocessResult {
 public:
  bool unsat = false;
  CnfFormula simplified;
  PreprocessStats stats;

  /// Lifts a model of `simplified` (indexed over the original variable
  /// space; entries for eliminated variables may be anything) to a
  /// model of the original formula.  Unconstrained variables default
  /// to false.  Values are reconstructed in three phases: substitution
  /// roots that survived simplification are seeded from fixed/searched
  /// values, the BVE elimination stack is replayed newest-first, and
  /// finally every substitution chain is folded onto its root — so a
  /// chain ending at a BVE pivot or an unconstrained root stays
  /// consistent across the whole equivalence class.
  [[nodiscard]] std::vector<lbool> reconstruct_model(
      const std::vector<lbool>& simplified_model) const;

  // Internal reconstruction data (public for tests).
  std::vector<lbool> fixed;      ///< root-level forced values (l_undef if free)
  std::vector<Lit> substituted;  ///< var -> representative literal (or kUndefLit)
  std::vector<ElimRecord> eliminated;  ///< BVE stack, chronological order
};

/// Runs preprocessing on \p f.
[[nodiscard]] PreprocessResult preprocess(const CnfFormula& f,
                                          PreprocessOptions opts = {});

}  // namespace sateda::sat
