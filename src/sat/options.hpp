/// \file options.hpp
/// \brief Configuration knobs and counters for the CDCL engine.
///
/// Every technique the paper identifies as characterizing "modern
/// backtrack search SAT algorithms" (§4.1, §6) is an independent
/// switch here so the benchmark harnesses can ablate them:
/// non-chronological backtracking, clause recording, relevance-based
/// learning, restarts and randomization.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace sateda::sat {

/// How learnt clauses are retired from the database (paper §4.1,
/// property 2-3: "in most cases large recorded clauses are eventually
/// deleted"; relevance-based learning "extends the life-span of large
/// recorded clauses").
enum class DeletionPolicy {
  kNever,          ///< keep every learnt clause (unbounded growth)
  kActivity,       ///< MiniSat-style: halve DB by activity when full
  kRelevance,      ///< rel_sat-style: also keep clauses with few unbound literals
  kSizeBounded,    ///< GRASP-style: immediately drop clauses larger than a bound
  kTiered,         ///< three-tier LBD database (core/tier2/local), Chanseok-Oh-style
};

/// Backtracking discipline on conflicts (paper §4.1 property 1).
enum class BacktrackMode {
  kNonChronological,  ///< backjump to the assertion level of the learnt clause
  kChronological,     ///< undo only the most recent decision level
};

/// Inprocessing knobs: bounded variable elimination, learnt-clause
/// vivification and failed-literal probing, run at root-level quiescent
/// points (solve() entry and restart boundaries).  See
/// inprocess/inprocess.hpp for pass semantics and proof emission.
struct InprocessOptions {
  bool enabled = false;          ///< master switch (off: zero overhead)
  std::int64_t interval = 8000;  ///< conflicts between runs (0: every boundary)
  double interval_growth = 2.0;  ///< interval multiplier after each run

  // --- bounded variable elimination (occurrence/size cutoffs) -------
  bool bve = true;
  int bve_max_occurrences = 16;  ///< skip pivots occurring more often
  int bve_max_growth = 0;        ///< net extra clauses allowed per pivot
  int bve_max_resolvent = 24;    ///< skip pivots producing longer resolvents

  // --- failed-literal probing over the binary implication graph -----
  bool probing = true;
  std::int64_t probe_budget = 200000;  ///< propagations per probing pass

  // --- vivification of core/tier2 learnt clauses --------------------
  bool vivify = true;
  std::int64_t vivify_budget = 200000;  ///< propagations per vivify pass
  int vivify_max_size = 30;             ///< skip longer clauses

  // --- bounded variable elimination tick cap ------------------------
  /// BVE ticks (clause words materialized + resolution literals) per
  /// pass; <0: unlimited.  The self-throttling scheduler shrinks this
  /// further on instances where BVE is not earning its keep.
  std::int64_t bve_budget = 2000000;

  // --- self-throttling scheduler (inprocess/schedule.hpp) -----------
  /// Master switch for CaDiCaL-style tick budgets: each pass may spend
  /// at most tick_share of the search propagations since its last run,
  /// and passes whose measured utility stays negative are geometrically
  /// backed off (skipped for 1, 2, 4, ... rounds, re-probed rarely).
  bool self_throttle = true;
  double tick_share = 0.05;        ///< per-round tick cap as a search fraction
  std::int64_t min_ticks = 2000;   ///< floor budget when a pass does run
  /// First run doubles as preprocessing: its budget scales with the
  /// formula (ticks per problem clause) instead of prior search effort.
  std::int64_t entry_ticks_per_clause = 32;
  /// Conflicts the search must produce before the entry round fires
  /// (the solver forces a restart the moment it is reached, so the
  /// round still sees a near-clean database).  Instances that solve by
  /// propagation alone — parity chains, easy SAT — never pay for
  /// inprocessing at all.
  std::int64_t entry_conflicts = 1;
  /// Database-shape gate for the entry round: skip it when more than
  /// this fraction of the problem clauses are implicit binaries.
  /// Binary-heavy databases are circuit-shaped (Tseitin gate encodings
  /// put AND/NOT gates at 2 literals; the bundled miters sit at
  /// 0.31–0.37), where the formula-scaled entry budget buys BVE/probing
  /// work the search never amortizes — the cec_adder4_miter entry-BVE
  /// cliff.  Uniform-random and dubois chains, where the entry round
  /// pays for itself, have no implicit binaries at all, so 0.3 cleanly
  /// separates the two shapes.  A gated pass still runs later, but on
  /// the steady-state search-share budget.  Negative disables the gate.
  double entry_max_binary_fraction = 0.3;
  double utility_threshold = 0.0;  ///< back off passes scoring below this
  int max_backoff = 32;              ///< cap on rounds skipped in a row
};

/// Tunables for sat::Solver.  Defaults reproduce a GRASP/Chaff-flavoured
/// modern solver; benches flip individual switches.
struct SolverOptions {
  // --- conflict analysis / learning -------------------------------
  bool clause_learning = true;       ///< record conflict-induced clauses (§4.1 prop. 2)
  BacktrackMode backtrack = BacktrackMode::kNonChronological;
  bool minimize_learnt = true;       ///< self-subsumption minimization of learnt clauses
  DeletionPolicy deletion = DeletionPolicy::kTiered;
  int size_bound = 20;               ///< for kSizeBounded: max kept learnt size
  int relevance_bound = 4;           ///< for kRelevance: keep if ≤ r unbound literals
  double max_learnts_frac = 0.33;    ///< DB cap as a fraction of problem clauses
  double learnts_growth = 1.1;       ///< cap growth factor per reduction

  // --- tiered database (kTiered) -----------------------------------
  int core_lbd_cut = 3;              ///< LBD ≤ cut → core tier, kept forever
  int tier2_lbd_cut = 6;             ///< LBD ≤ cut → tier2 (demoted when unused)
  int reduce_base = 2000;            ///< conflicts before the first reduction
  int reduce_inc = 300;              ///< added to the interval per reduction

  // --- clause arena -------------------------------------------------
  double gc_frac = 0.25;             ///< compact when wasted/total exceeds this

  // --- decisions ---------------------------------------------------
  double var_decay = 0.95;           ///< VSIDS activity decay
  double clause_decay = 0.999;       ///< clause activity decay
  double random_var_freq = 0.02;     ///< probability of a random branch (§6 randomization)
  bool phase_saving = true;          ///< reuse last polarity of a variable
  bool default_polarity = false;     ///< polarity when no saved phase exists
  std::uint64_t seed = 91648253;     ///< RNG seed for randomized decisions

  // --- restarts (§6: randomization with restarts) ------------------
  bool restarts = true;
  int restart_base = 100;            ///< conflicts before first restart (Luby unit)
  double restart_inc = 2.0;          ///< Luby sequence multiplier base

  // --- inprocessing -------------------------------------------------
  InprocessOptions inprocess;

  // --- resource budgets --------------------------------------------
  std::int64_t conflict_budget = -1;    ///< stop with kUnknown after this many conflicts (<0: off)
  std::int64_t propagation_budget = -1; ///< likewise for propagations
  /// Wall-clock budget per solve() call in milliseconds (<0: off).  The
  /// clock is polled only when set, so the default costs nothing.
  std::int64_t time_budget_ms = -1;
};

/// Counters reported by the solver; every bench prints these so the
/// reproduction tables can show decisions/conflicts alongside time.
/// Engines other than the CDCL solver map their native counters onto
/// the closest fields (see SatEngine::stats()); a parallel portfolio
/// reports the sum over its workers.
struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learnt_clauses = 0;
  std::int64_t learnt_literals = 0;
  std::int64_t deleted_clauses = 0;
  std::int64_t minimized_literals = 0;
  std::int64_t max_decision_level = 0;
  std::int64_t solve_calls = 0;
  std::int64_t exported_clauses = 0;  ///< learnt clauses shared with peers
  std::int64_t imported_clauses = 0;  ///< learnt clauses adopted from peers
  std::int64_t binary_propagations = 0;  ///< implications from implicit binaries
  std::int64_t arena_gc_runs = 0;        ///< compacting collections performed
  std::int64_t arena_bytes_reclaimed = 0;
  // Watch-efficiency observability (watch.hpp flat watch arena): how
  // much of the propagation loop's watcher traffic the blocker test
  // absorbs without touching clause memory, and how often the arena
  // needed maintenance.
  std::int64_t watch_visits = 0;      ///< watcher entries examined in deduce()
  std::int64_t blocker_hits = 0;      ///< visits resolved by the blocker alone
  std::int64_t watch_slab_relocs = 0; ///< slab relocations (pool holes made)
  std::int64_t watch_rebuilds = 0;    ///< watch-arena compactions
  // UNSAT-core / core-guided optimization observability (sat/core,
  // opt/maxsat): the engine counts every failed-assumption core it
  // hands out; the consumers add minimization and relaxation effort.
  std::int64_t cores_extracted = 0;   ///< UNSAT-under-assumption cores returned
  std::int64_t core_literals = 0;     ///< summed size of those cores
  std::int64_t core_min_calls = 0;    ///< solve() calls spent minimizing cores
  std::int64_t relaxation_rounds = 0; ///< core-guided relaxations (MaxSAT)
  // Inprocessing observability (sat/inprocess).
  std::int64_t inprocess_runs = 0;    ///< inprocessing rounds executed
  std::int64_t eliminated_vars = 0;   ///< variables removed by BVE
  std::int64_t bve_resolvents = 0;    ///< resolvent clauses BVE added
  std::int64_t failed_literals = 0;   ///< units derived by probing
  std::int64_t vivified_clauses = 0;  ///< learnt clauses strengthened
  std::int64_t vivified_literals = 0; ///< literals removed by vivification
  // Per-pass inprocessing ledger (inprocess/schedule.hpp): ticks spent
  // vs. runs executed vs. rounds skipped by the self-throttling
  // scheduler, plus the last measured utility (EWMA of the pass's
  // conflict-efficiency delta net of its tick cost; negative = the
  // pass was not earning its keep and is being backed off).
  std::int64_t probe_runs = 0;
  std::int64_t probe_ticks = 0;       ///< propagations spent probing
  std::int64_t probe_skips = 0;
  std::int64_t vivify_runs = 0;
  std::int64_t vivify_ticks = 0;      ///< propagations spent vivifying
  std::int64_t vivify_skips = 0;
  std::int64_t bve_runs = 0;
  std::int64_t bve_ticks = 0;         ///< BVE materialization+resolution work
  std::int64_t bve_skips = 0;
  // Cube-and-conquer observability (sat/cube): splitter leaves and the
  // conquer pool's work-stealing traffic.
  std::int64_t cubes_generated = 0;     ///< split-tree leaves emitted
  std::int64_t cubes_refuted_split = 0; ///< leaves refuted during splitting
  std::int64_t cubes_solved = 0;        ///< cubes decided by conquer workers
  std::int64_t cubes_stolen = 0;        ///< cubes taken from another deque
  double probe_utility = 0.0;
  double vivify_utility = 0.0;
  double bve_utility = 0.0;
  double solve_time_sec = 0.0;        ///< wall time spent inside solve()

  /// Propagation throughput over the time spent in solve(); the key
  /// hot-path figure tracked by BENCH_solver.json.
  double propagations_per_sec() const {
    return solve_time_sec > 0.0
               ? static_cast<double>(propagations) / solve_time_sec
               : 0.0;
  }
  /// Fraction of watcher visits the blocker test resolved without a
  /// clause dereference — the watch layout's cache-efficiency figure.
  double blocker_hit_rate() const {
    return watch_visits > 0
               ? static_cast<double>(blocker_hits) /
                     static_cast<double>(watch_visits)
               : 0.0;
  }
  double conflicts_per_sec() const {
    return solve_time_sec > 0.0
               ? static_cast<double>(conflicts) / solve_time_sec
               : 0.0;
  }

  SolverStats& operator+=(const SolverStats& o) {
    decisions += o.decisions;
    propagations += o.propagations;
    conflicts += o.conflicts;
    restarts += o.restarts;
    learnt_clauses += o.learnt_clauses;
    learnt_literals += o.learnt_literals;
    deleted_clauses += o.deleted_clauses;
    minimized_literals += o.minimized_literals;
    max_decision_level = std::max(max_decision_level, o.max_decision_level);
    solve_calls += o.solve_calls;
    exported_clauses += o.exported_clauses;
    imported_clauses += o.imported_clauses;
    binary_propagations += o.binary_propagations;
    arena_gc_runs += o.arena_gc_runs;
    arena_bytes_reclaimed += o.arena_bytes_reclaimed;
    watch_visits += o.watch_visits;
    blocker_hits += o.blocker_hits;
    watch_slab_relocs += o.watch_slab_relocs;
    watch_rebuilds += o.watch_rebuilds;
    cores_extracted += o.cores_extracted;
    core_literals += o.core_literals;
    core_min_calls += o.core_min_calls;
    relaxation_rounds += o.relaxation_rounds;
    inprocess_runs += o.inprocess_runs;
    eliminated_vars += o.eliminated_vars;
    bve_resolvents += o.bve_resolvents;
    failed_literals += o.failed_literals;
    vivified_clauses += o.vivified_clauses;
    vivified_literals += o.vivified_literals;
    probe_runs += o.probe_runs;
    probe_ticks += o.probe_ticks;
    probe_skips += o.probe_skips;
    vivify_runs += o.vivify_runs;
    vivify_ticks += o.vivify_ticks;
    vivify_skips += o.vivify_skips;
    bve_runs += o.bve_runs;
    bve_ticks += o.bve_ticks;
    bve_skips += o.bve_skips;
    cubes_generated += o.cubes_generated;
    cubes_refuted_split += o.cubes_refuted_split;
    cubes_solved += o.cubes_solved;
    cubes_stolen += o.cubes_stolen;
    // Utilities are per-engine gauges, not counters; keep the reading
    // from the side that did more inprocessing work.
    if (o.inprocess_runs > inprocess_runs - o.inprocess_runs) {
      probe_utility = o.probe_utility;
      vivify_utility = o.vivify_utility;
      bve_utility = o.bve_utility;
    }
    // Workers run concurrently; the wall-clock max is the meaningful
    // aggregate for a portfolio.
    solve_time_sec = std::max(solve_time_sec, o.solve_time_sec);
    return *this;
  }

  std::string summary() const {
    std::string s = "decisions=" + std::to_string(decisions) +
                    " propagations=" + std::to_string(propagations) +
                    " conflicts=" + std::to_string(conflicts) +
                    " restarts=" + std::to_string(restarts) +
                    " learnt=" + std::to_string(learnt_clauses) +
                    " deleted=" + std::to_string(deleted_clauses);
    if (exported_clauses || imported_clauses) {
      s += " exported=" + std::to_string(exported_clauses) +
           " imported=" + std::to_string(imported_clauses);
    }
    if (cores_extracted) {
      s += " cores=" + std::to_string(cores_extracted) +
           " core_lits=" + std::to_string(core_literals);
    }
    if (relaxation_rounds) {
      s += " relax_rounds=" + std::to_string(relaxation_rounds);
    }
    if (inprocess_runs) {
      s += " inprocess=" + std::to_string(inprocess_runs) +
           " elim_vars=" + std::to_string(eliminated_vars) +
           " failed_lits=" + std::to_string(failed_literals) +
           " vivified=" + std::to_string(vivified_clauses);
    }
    return s;
  }

  /// Multi-line breakdown for `sateda-solve --stats` (one counter per
  /// line, DIMACS-comment friendly).
  std::string detailed() const {
    auto rate = [](double r) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", r);
      return std::string(buf);
    };
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "%.3f", solve_time_sec);
    std::string s;
    s += "decisions            : " + std::to_string(decisions) + "\n";
    s += "propagations         : " + std::to_string(propagations) + "\n";
    s += "binary propagations  : " + std::to_string(binary_propagations) + "\n";
    s += "conflicts            : " + std::to_string(conflicts) + "\n";
    s += "restarts             : " + std::to_string(restarts) + "\n";
    s += "learnt clauses       : " + std::to_string(learnt_clauses) + "\n";
    s += "learnt literals      : " + std::to_string(learnt_literals) + "\n";
    s += "deleted clauses      : " + std::to_string(deleted_clauses) + "\n";
    s += "minimized literals   : " + std::to_string(minimized_literals) + "\n";
    s += "max decision level   : " + std::to_string(max_decision_level) + "\n";
    s += "arena GC runs        : " + std::to_string(arena_gc_runs) + "\n";
    s += "arena bytes reclaimed: " + std::to_string(arena_bytes_reclaimed) +
         "\n";
    char rate_buf[32];
    std::snprintf(rate_buf, sizeof(rate_buf), "%.3f", blocker_hit_rate());
    s += "watch visits         : " + std::to_string(watch_visits) + "\n";
    s += "blocker hits         : " + std::to_string(blocker_hits) + "\n";
    s += "blocker hit rate     : " + std::string(rate_buf) + "\n";
    s += "watch slab relocs    : " + std::to_string(watch_slab_relocs) + "\n";
    s += "watch rebuilds       : " + std::to_string(watch_rebuilds) + "\n";
    s += "cores extracted      : " + std::to_string(cores_extracted) + "\n";
    s += "core literals        : " + std::to_string(core_literals) + "\n";
    s += "core minimize calls  : " + std::to_string(core_min_calls) + "\n";
    s += "relaxation rounds    : " + std::to_string(relaxation_rounds) + "\n";
    s += "inprocess runs       : " + std::to_string(inprocess_runs) + "\n";
    s += "eliminated variables : " + std::to_string(eliminated_vars) + "\n";
    s += "BVE resolvents       : " + std::to_string(bve_resolvents) + "\n";
    s += "failed literals      : " + std::to_string(failed_literals) + "\n";
    s += "vivified clauses     : " + std::to_string(vivified_clauses) + "\n";
    s += "vivified literals    : " + std::to_string(vivified_literals) + "\n";
    auto ledger_line = [](const char* pass, std::int64_t runs,
                          std::int64_t ticks, std::int64_t skips,
                          double utility) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "%-21s: runs=%lld ticks=%lld skips=%lld utility=%.3f\n",
                    pass, static_cast<long long>(runs),
                    static_cast<long long>(ticks),
                    static_cast<long long>(skips), utility);
      return std::string(buf);
    };
    s += ledger_line("probe ledger", probe_runs, probe_ticks, probe_skips,
                     probe_utility);
    s += ledger_line("vivify ledger", vivify_runs, vivify_ticks, vivify_skips,
                     vivify_utility);
    s += ledger_line("BVE ledger", bve_runs, bve_ticks, bve_skips,
                     bve_utility);
    if (cubes_generated) {
      s += "cubes generated      : " + std::to_string(cubes_generated) + "\n";
      s += "cubes refuted (split): " + std::to_string(cubes_refuted_split) +
           "\n";
      s += "cubes solved         : " + std::to_string(cubes_solved) + "\n";
      s += "cubes stolen         : " + std::to_string(cubes_stolen) + "\n";
    }
    s += "solve time (s)       : " + std::string(time_buf) + "\n";
    s += "propagations/sec     : " + rate(propagations_per_sec()) + "\n";
    s += "conflicts/sec        : " + rate(conflicts_per_sec());
    return s;
  }
};

/// Outcome of a solve() call.
enum class SolveResult {
  kSat,      ///< a satisfying assignment was found (see Solver::model())
  kUnsat,    ///< the formula (under the given assumptions) is unsatisfiable
  kUnknown,  ///< a resource budget was exhausted or the run was interrupted
};

/// Why a solve() call ended with SolveResult::kUnknown.  kNone after a
/// decided (kSat/kUnsat) call.
enum class UnknownReason {
  kNone,               ///< the last solve was decided
  kConflictBudget,     ///< SolverOptions::conflict_budget exhausted
  kPropagationBudget,  ///< SolverOptions::propagation_budget exhausted
  kFlipBudget,         ///< local search ran out of flips/tries
  kTimeBudget,         ///< SolverOptions::time_budget_ms exhausted
  kInterrupted,        ///< SatEngine::interrupt() was called
};

inline std::string to_string(SolveResult r) {
  switch (r) {
    case SolveResult::kSat: return "SATISFIABLE";
    case SolveResult::kUnsat: return "UNSATISFIABLE";
    case SolveResult::kUnknown: return "UNKNOWN";
  }
  return "?";
}

inline std::string to_string(UnknownReason r) {
  switch (r) {
    case UnknownReason::kNone: return "none";
    case UnknownReason::kConflictBudget: return "conflict-budget";
    case UnknownReason::kPropagationBudget: return "propagation-budget";
    case UnknownReason::kFlipBudget: return "flip-budget";
    case UnknownReason::kTimeBudget: return "time-budget";
    case UnknownReason::kInterrupted: return "interrupted";
  }
  return "?";
}

}  // namespace sateda::sat
