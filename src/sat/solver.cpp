#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "sat/audit.hpp"
#include "sat/inprocess/inprocess.hpp"

namespace sateda::sat {

Solver::Solver(SolverOptions opts)
    : opts_(opts), order_(activity_), rng_(opts.seed) {}

Var Solver::new_var() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(l_undef);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  // polarity_[v]==1 means "branch negative first".
  polarity_.push_back(opts_.default_polarity ? 0 : 1);
  decision_.push_back(1);
  frozen_.push_back(0);
  eliminated_.push_back(0);
  seen_.push_back(0);
  level_stamp_.push_back(0);
  watches_.ensure_lits(2 * (static_cast<std::size_t>(v) + 1));
  bin_watches_.ensure_lits(2 * (static_cast<std::size_t>(v) + 1));
  order_.insert(v);
  return v;
}

void Solver::ensure_var(Var v) {
  while (num_vars() <= v) new_var();
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  for (Lit l : lits) {
    assert(l.is_defined());
    ensure_var(l.var());
  }
  // A new clause may mention a variable inprocessing eliminated; the
  // elimination was only equisatisfiable, so the variable's saved
  // clauses must come back before the new constraint on it is sound.
  for (Lit l : lits) {
    if (eliminated_[l.var()] && !reintroduce(l.var())) return false;
  }
  // Normalize: sort, dedupe, drop tautologies and falsified literals.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kUndefLit;
  bool strengthened = false;  // dropped a root-falsified literal
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev.is_defined() && l.var() == prev.var()) return true;  // tautology
    if (value(l).is_true()) return true;  // already satisfied at root
    if (!value(l).is_false()) {
      out.push_back(l);
    } else {
      strengthened = true;
    }
    prev = l;
  }
  // A strengthened clause is a unit-propagation consequence of the
  // input clause plus earlier root facts, so it is RUP-derivable.
  if (proof_ && strengthened) proof_->on_derive(out);
  if (out.empty()) {
    ok_ = false;
    if (proof_ && !strengthened) proof_->on_derive({});
    return false;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], kNoReason)) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    if (!deduce().is_none()) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    return true;
  }
  if (out.size() == 2) {
    attach_binary(out[0], out[1], /*learnt=*/false);
  } else {
    CRef cref = attach_new_clause(out, /*learnt=*/false);
    clauses_.push_back(cref);
  }
  ++num_problem_clauses_;
  return true;
}

bool Solver::add_formula(const CnfFormula& f) {
  ensure_var(f.num_vars() - 1);
  for (const Clause& c : f) {
    if (!add_clause(std::vector<Lit>(c.begin(), c.end()))) return false;
  }
  return true;
}

CRef Solver::attach_new_clause(const std::vector<Lit>& lits, bool learnt) {
  assert(lits.size() >= 3);
  CRef cref = arena_.alloc(lits, learnt);
  attach_watches(cref);
  return cref;
}

void Solver::attach_binary(Lit a, Lit b, bool learnt) {
  // The clause (a ∨ b): when ~a becomes true, b is implied, and
  // symmetrically — each direction is one entry in the other watch
  // list, and the clause exists nowhere else.
  bin_watches_.push((~a).index(), {b, learnt ? std::uint8_t{1}
                                             : std::uint8_t{0}});
  bin_watches_.push((~b).index(), {a, learnt ? std::uint8_t{1}
                                             : std::uint8_t{0}});
  if (learnt) ++num_learnt_binaries_;
}

void Solver::attach_watches(CRef cref) {
  ArenaClause c = arena_[cref];
  watches_.push((~c[0]).index(), {cref, c[1]});
  watches_.push((~c[1]).index(), {cref, c[0]});
}

void Solver::detach_watches(CRef cref) {
  ArenaClause c = arena_[cref];
  for (Lit w : {c[0], c[1]}) {
    const std::size_t idx = static_cast<std::size_t>((~w).index());
    const std::uint32_t n = watches_.count(idx);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (watches_.at(idx, i).cref == cref) {
        watches_.pop_swap(idx, i);
        break;
      }
    }
  }
}

bool Solver::locked(CRef cref) const {
  ArenaClause c = arena_[cref];
  const Lit first = c[0];
  if (!value(first).is_true()) return false;
  const Reason r = reason_[first.var()];
  return r.is_clause() && r.cref() == cref;
}

void Solver::remove_clause(CRef cref) {
  assert(!locked(cref));
  detach_watches(cref);
  ArenaClause c = arena_[cref];
  if (proof_ && c.learnt()) proof_->on_delete(c.lits());
  arena_.free_clause(cref);
  ++stats_.deleted_clauses;
}

void Solver::simplify_db() {
  assert(decision_level() == 0);
  if (!ok_) return;
  // Root-level reasons are never revisited by conflict analysis
  // (diagnose/minimize stop at level 0), so all root antecedents can be
  // released up front; nothing in the database is locked afterwards.
  for (Lit l : trail_) reason_[l.var()] = kNoReason;

  auto root_satisfied_arena = [this](ArenaClause c) {
    for (Lit l : c) {
      if (value(l).is_true() && level_[l.var()] == 0) return true;
    }
    return false;
  };
  auto sweep = [&](std::vector<CRef>& list, bool learnt_list) {
    std::size_t j = 0;
    for (CRef cref : list) {
      ArenaClause c = arena_[cref];
      if (c.deleted()) continue;
      if (root_satisfied_arena(c)) {
        // Deliberately skip proof deletion logging for problem clauses:
        // keeping them in the checker's database only strengthens it.
        remove_clause(cref);
        if (!learnt_list && num_problem_clauses_ > 0) --num_problem_clauses_;
      } else {
        list[j++] = cref;
      }
    }
    list.resize(j);
  };
  sweep(clauses_, /*learnt_list=*/false);
  sweep(learnts_, /*learnt_list=*/true);

  // Implicit binaries: the clause (~w ∨ other) sits in the list of w
  // (visited when w becomes true) and mirrored in the list of ~other.
  // Drop both halves of each root-satisfied clause, but account for
  // the clause — proof line, counters — only at its canonical half so
  // it is counted once.
  for (std::size_t idx = 0; idx < bin_watches_.num_lits(); ++idx) {
    const Lit w = Lit::from_index(static_cast<std::int32_t>(idx));
    const Lit x = ~w;  // the clause literal this list watches for
    const std::uint32_t n = bin_watches_.count(idx);
    std::uint32_t j = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const BinWatcher bw = bin_watches_.at(idx, i);
      const bool satisfied =
          (value(x).is_true() && level_[x.var()] == 0) ||
          (value(bw.other).is_true() && level_[bw.other.var()] == 0);
      if (!satisfied) {
        bin_watches_.at(idx, j++) = bw;
        continue;
      }
      if (x.index() < bw.other.index()) {  // canonical half
        if (proof_ && bw.learnt) proof_->on_delete({x, bw.other});
        ++stats_.deleted_clauses;
        if (bw.learnt) {
          if (num_learnt_binaries_ > 0) --num_learnt_binaries_;
        } else if (num_problem_clauses_ > 0) {
          --num_problem_clauses_;
        }
      }
    }
    bin_watches_.truncate(idx, j);
  }
  check_garbage();
}

bool Solver::enqueue(Lit p, Reason reason) {
  lbool v = value(p);
  if (v.is_false()) return false;
  if (v.is_true()) return true;
  assigns_[p.var()] = lbool(!p.negative());
  level_[p.var()] = decision_level();
  reason_[p.var()] = reason;
  trail_.push_back(p);
  if (listener_) listener_->on_assign(p, decision_level());
  return true;
}

Reason Solver::deduce() {
  Reason confl = kNoReason;
  std::int64_t visits = 0;
  std::int64_t bhits = 0;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    const std::size_t pidx = static_cast<std::size_t>(p.index());
    // Hint p's main watch slab into cache while the binary pass runs.
    watches_.prefetch(pidx);

    // Binary pass: every clause (~p ∨ other) implies `other` directly —
    // one contiguous scan, no clause memory touched.
    {
      const std::uint32_t bn = bin_watches_.count(pidx);
      const BinWatcher* bws = bin_watches_.begin(pidx);
      for (std::uint32_t bi = 0; bi < bn; ++bi) {
        const BinWatcher bw = bws[bi];
        const lbool v = value(bw.other);
        if (v.is_true()) continue;
        if (v.is_false()) {
          bin_conflict_[0] = ~p;
          bin_conflict_[1] = bw.other;
          confl = Reason::binary(bw.other);
          qhead_ = trail_.size();
          break;
        }
        enqueue(bw.other, Reason::binary(~p));
        ++stats_.binary_propagations;
      }
      if (!confl.is_none()) break;
    }

    // Watcher pass over p's slab, compacted in place.  Pushing a new
    // watch may reallocate the pool, so the base pointer is re-fetched
    // after every push; the *target* slab is never p's own (the new
    // watch literal ~c[1] is non-false while ~p is false), so the i/j
    // scan positions stay valid across the re-fetch.
    Watcher* ws = watches_.begin(pidx);
    const std::uint32_t n = watches_.count(pidx);
    std::uint32_t i = 0, j = 0;
    while (i < n) {
      ++visits;
      const Watcher w = ws[i];
      // Pull the next watcher's clause words toward cache while this
      // one is processed — the slab is contiguous, so ws[i+1] is
      // already (or about to be) resident.
      if (i + 1 < n) arena_.prefetch(ws[i + 1].cref);
      // Cheap test first: if the blocker is already true, skip.
      if (value(w.blocker).is_true()) {
        ++bhits;
        ws[j++] = ws[i++];
        continue;
      }
      ArenaClause c = arena_[w.cref];
      const Lit false_lit = ~p;
      if (c[0] == false_lit) c.swap_lits(0, 1);
      assert(c[1] == false_lit);
      ++i;
      const Lit first = c[0];
      if (first != w.blocker && value(first).is_true()) {
        ws[j++] = {w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (!value(c[k]).is_false()) {
          c.swap_lits(1, k);
          watches_.push((~c[1]).index(), {w.cref, first});
          ws = watches_.begin(pidx);  // pool may have moved
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = {w.cref, first};
      if (value(first).is_false()) {
        confl = Reason::clause(w.cref);
        qhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
        break;
      }
      enqueue(first, Reason::clause(w.cref));
    }
    watches_.truncate(pidx, j);
    if (!confl.is_none()) break;
  }
  stats_.watch_visits += visits;
  stats_.blocker_hits += bhits;
  return confl;
}

ClauseTier Solver::tier_for_lbd(int lbd) const {
  if (lbd <= opts_.core_lbd_cut) return ClauseTier::kCore;
  if (lbd <= opts_.tier2_lbd_cut) return ClauseTier::kTier2;
  return ClauseTier::kLocal;
}

void Solver::diagnose(Reason confl, std::vector<Lit>& out_learnt,
                      int& out_btlevel) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  std::size_t index = trail_.size();

  auto visit = [&](Lit q) {
    if (!seen_[q.var()] && level_[q.var()] > 0) {
      bump_var_activity(q.var());
      seen_[q.var()] = 1;
      if (level_[q.var()] >= decision_level()) {
        ++path_count;
      } else {
        out_learnt.push_back(q);
      }
    }
  };

  // Resolve backwards along the trail until the first unique
  // implication point of the current decision level.
  do {
    assert(!confl.is_none());
    if (confl.is_binary()) {
      if (!p.is_defined()) {
        // Conflicting binary clause, latched by deduce().
        visit(bin_conflict_[0]);
        visit(bin_conflict_[1]);
      } else {
        // Reason of p: the binary clause (p ∨ other).
        visit(confl.other());
      }
    } else {
      ArenaClause c = arena_[confl.cref()];
      if (c.learnt()) {
        bump_clause_activity(c);
        c.set_used();
        // Glucose-style dynamic LBD: a clause that keeps appearing in
        // conflicts at fewer levels than recorded is better than its
        // tier says — promote it before the next reduction.
        if (c.lbd() > opts_.core_lbd_cut) {
          const int lbd = compute_lbd_clause(c);
          if (lbd < c.lbd()) {
            c.set_lbd(lbd);
            const ClauseTier t = tier_for_lbd(lbd);
            if (t < c.tier()) c.set_tier(t);
          }
        }
      }
      const std::uint32_t size = c.size();
      for (std::uint32_t j = (p.is_defined() ? 1 : 0); j < size; ++j) {
        visit(c[j]);
      }
    }
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  if (opts_.minimize_learnt) {
    if (proof_) {
      // Report the shrink to the tracer; only the minimized clause
      // enters the proof (it subsumes the 1-UIP clause and is itself
      // RUP, so nothing else needs logging).
      std::vector<Lit> before = out_learnt;
      minimize_learnt(out_learnt);
      if (out_learnt.size() != before.size()) {
        proof_->on_minimize(before, out_learnt);
      }
    } else {
      minimize_learnt(out_learnt);
    }
  }

  // Backtrack level: the second-highest decision level in the clause.
  out_btlevel = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  for (Lit l : out_learnt) seen_[l.var()] = 0;
  for (Lit l : analyze_clear_) seen_[l.var()] = 0;
  analyze_clear_.clear();
}

void Solver::minimize_learnt(std::vector<Lit>& learnt) {
  // Self-subsumption: a literal is redundant if its reason clause is
  // covered by the remaining learnt literals (recursively).
  for (Lit l : learnt) seen_[l.var()] = 1;
  std::size_t j = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()].is_none() ||
        !literal_redundant(learnt[i])) {
      learnt[j++] = learnt[i];
    } else {
      // Removed literals keep their seen_ flag until diagnose() clears
      // analyze_clear_ — record them there.
      analyze_clear_.push_back(learnt[i]);
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(j);
  // seen_ flags for kept literals are cleared by the caller.
}

bool Solver::literal_redundant(Lit p) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_clear_.size();
  auto examine = [&](Lit l) {
    // Returns false when l is a decision not already in the clause.
    if (seen_[l.var()] || level_[l.var()] == 0) return true;
    if (reason_[l.var()].is_none()) return false;
    seen_[l.var()] = 1;
    analyze_clear_.push_back(l);
    analyze_stack_.push_back(l);
    return true;
  };
  while (!analyze_stack_.empty()) {
    Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Reason r = reason_[q.var()];
    assert(!r.is_none());
    bool hit_decision = false;
    if (r.is_binary()) {
      hit_decision = !examine(r.other());
    } else {
      ArenaClause c = arena_[r.cref()];
      const std::uint32_t size = c.size();
      for (std::uint32_t i = 1; i < size; ++i) {
        if (!examine(c[i])) {
          hit_decision = true;
          break;
        }
      }
    }
    if (hit_decision) {
      for (std::size_t k = top; k < analyze_clear_.size(); ++k) {
        seen_[analyze_clear_[k].var()] = 0;
      }
      analyze_clear_.resize(top);
      return false;
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  conflict_core_.clear();
  conflict_core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    Var x = trail_[i].var();
    if (!seen_[x]) continue;
    const Reason r = reason_[x];
    if (r.is_none()) {
      assert(level_[x] > 0);
      conflict_core_.push_back(trail_[i]);
    } else if (r.is_binary()) {
      const Lit other = r.other();
      if (level_[other.var()] > 0) seen_[other.var()] = 1;
    } else {
      ArenaClause c = arena_[r.cref()];
      const std::uint32_t size = c.size();
      for (std::uint32_t jj = 1; jj < size; ++jj) {
        if (level_[c[jj].var()] > 0) seen_[c[jj].var()] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::erase_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    Lit l = trail_[i];
    Var v = l.var();
    if (opts_.phase_saving) polarity_[v] = l.negative() ? 1 : 0;
    assigns_[v] = l_undef;
    reason_[v] = kNoReason;
    if (decision_[v] && !order_.contains(v)) order_.insert(v);
    if (listener_) listener_->on_unassign(l);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

void Solver::bump_var_activity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    order_.rebuild();
  }
  order_.increased(v);
}

void Solver::decay_var_activity() { var_inc_ /= opts_.var_decay; }

void Solver::bump_clause_activity(ArenaClause c) {
  c.set_activity(c.activity() + static_cast<float>(clause_inc_));
  if (c.activity() > 1e20f) {
    for (CRef cr : learnts_) {
      ArenaClause lc = arena_[cr];
      lc.set_activity(lc.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_clause_activity() { clause_inc_ /= opts_.clause_decay; }

int Solver::unbound_literals(ArenaClause c) const {
  int n = 0;
  for (Lit l : c) {
    if (value(l).is_undef()) ++n;
  }
  return n;
}

int Solver::compute_lbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels, a quality proxy; counted with
  // a stamp array so the hot path never sorts or allocates.
  ++lbd_stamp_;
  int lbd = 0;
  for (Lit l : lits) {
    const int lvl = level_[l.var()];
    if (level_stamp_[static_cast<std::size_t>(lvl) % level_stamp_.size()] !=
        lbd_stamp_) {
      level_stamp_[static_cast<std::size_t>(lvl) % level_stamp_.size()] =
          lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

int Solver::compute_lbd_clause(ArenaClause c) {
  ++lbd_stamp_;
  int lbd = 0;
  for (Lit l : c) {
    const int lvl = level_[l.var()];
    if (level_stamp_[static_cast<std::size_t>(lvl) % level_stamp_.size()] !=
        lbd_stamp_) {
      level_stamp_[static_cast<std::size_t>(lvl) % level_stamp_.size()] =
          lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::reduce_db() {
  switch (opts_.deletion) {
    case DeletionPolicy::kNever:
      return;
    case DeletionPolicy::kTiered:
      reduce_db_tiered();
      return;
    case DeletionPolicy::kSizeBounded:
      reduce_db_size_bounded();
      return;
    case DeletionPolicy::kActivity:
    case DeletionPolicy::kRelevance:
      reduce_db_legacy();
      return;
  }
}

void Solver::reduce_db_tiered() {
  // Chanseok-Oh-style three-tier reduction: core clauses are kept
  // unconditionally, tier-2 clauses must have been used (appeared in a
  // conflict) since the last reduction or they demote to local, and
  // the local tier is halved by activity.  Only the local tier is ever
  // sorted, so reduction cost tracks the churny part of the database
  // instead of the whole of it.
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  std::vector<CRef> local;
  local.reserve(learnts_.size());
  for (CRef cr : learnts_) {
    ArenaClause c = arena_[cr];
    switch (c.tier()) {
      case ClauseTier::kCore:
        kept.push_back(cr);
        break;
      case ClauseTier::kTier2:
        if (c.used()) {
          c.clear_used();
          kept.push_back(cr);
        } else {
          c.set_tier(ClauseTier::kLocal);
          local.push_back(cr);
        }
        break;
      case ClauseTier::kLocal:
        local.push_back(cr);
        break;
    }
  }
  std::sort(local.begin(), local.end(), [this](CRef a, CRef b) {
    return arena_[a].activity() < arena_[b].activity();
  });
  const std::size_t half = local.size() / 2;
  for (std::size_t i = 0; i < local.size(); ++i) {
    const CRef cr = local[i];
    if (i < half && !locked(cr)) {
      remove_clause(cr);
    } else {
      arena_[cr].clear_used();
      kept.push_back(cr);
    }
  }
  learnts_ = std::move(kept);
}

void Solver::reduce_db_size_bounded() {
  // GRASP-style: drop every unlocked learnt clause above the size
  // bound.  A pure filter — no ordering is needed.
  std::size_t j = 0;
  for (CRef cr : learnts_) {
    ArenaClause c = arena_[cr];
    if (static_cast<int>(c.size()) > opts_.size_bound && !locked(cr)) {
      remove_clause(cr);
    } else {
      learnts_[j++] = cr;
    }
  }
  learnts_.resize(j);
}

void Solver::reduce_db_legacy() {
  // MiniSat-style halving by activity (kActivity), optionally keeping
  // clauses with few unbound literals (kRelevance, paper §4.1).
  std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
    return arena_[a].activity() < arena_[b].activity();
  });
  const float median_activity =
      learnts_.empty() ? 0.0f
                       : arena_[learnts_[learnts_.size() / 2]].activity();
  std::vector<CRef> kept;
  kept.reserve(learnts_.size());
  const std::size_t half = learnts_.size() / 2;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    CRef cr = learnts_[i];
    ArenaClause c = arena_[cr];
    bool keep = locked(cr);
    if (!keep) {
      keep = i >= half && c.activity() >= median_activity;
      if (!keep && opts_.deletion == DeletionPolicy::kRelevance) {
        keep = unbound_literals(c) <= opts_.relevance_bound;
      }
    }
    if (keep) {
      kept.push_back(cr);
    } else {
      remove_clause(cr);
    }
  }
  learnts_ = std::move(kept);
}

void Solver::check_garbage() {
  if (arena_.size_words() > 0 &&
      static_cast<double>(arena_.wasted_words()) >
          static_cast<double>(arena_.size_words()) * opts_.gc_frac) {
    garbage_collect();
    return;
  }
  // Even without clause garbage, slab-relocation holes can come to
  // dominate the watch pool — compact it alone when they do.
  if (watches_.fragmented() || bin_watches_.fragmented()) {
    rebuild_watches({});
  }
}

void Solver::rebuild_watches(const std::function<void(CRef&)>& remap) {
  if (remap) {
    watches_.rebuild([&remap](Watcher& w) { remap(w.cref); });
  } else {
    watches_.rebuild();
  }
  bin_watches_.rebuild();
  ++stats_.watch_rebuilds;
}

void Solver::garbage_collect() {
  ClauseArena to;
  to.reserve_words(arena_.size_words() - arena_.wasted_words());
  // Relocate in watch-list order so clauses watched by the same literal
  // stay adjacent — the propagation loop then streams through them.
  // The watch pool is compacted in the same sweep (its slabs are being
  // rewritten anyway), so both memory streams come out hole-free and
  // laid out in exactly the order deduce() visits them.
  rebuild_watches([this, &to](CRef& cr) { cr = arena_.reloc(cr, to); });
  for (Lit l : trail_) {
    const Var v = l.var();
    if (reason_[v].is_clause()) {
      reason_[v] = Reason::clause(arena_.reloc(reason_[v].cref(), to));
    }
  }
  for (CRef& cr : clauses_) cr = arena_.reloc(cr, to);
  for (CRef& cr : learnts_) cr = arena_.reloc(cr, to);
  const std::size_t freed = arena_.size_words() - to.size_words();
  ++stats_.arena_gc_runs;
  stats_.arena_bytes_reclaimed +=
      static_cast<std::int64_t>(freed) *
      static_cast<std::int64_t>(sizeof(std::uint32_t));
  arena_.swap(to);
}

Lit Solver::pick_branch_lit() {
  if (listener_) {
    Lit forced = listener_->choose_branch(*this);
    if (forced.is_defined() && value(forced).is_undef()) return forced;
  }
  // Randomized decision (paper §6: randomization).
  if (opts_.random_var_freq > 0 && !order_.empty()) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < opts_.random_var_freq) {
      std::uniform_int_distribution<Var> pick(0, num_vars() - 1);
      for (int tries = 0; tries < 8; ++tries) {
        Var v = pick(rng_);
        if (value(v).is_undef() && decision_[v]) {
          return Lit(v, polarity_[v] != 0);
        }
      }
    }
  }
  while (!order_.empty()) {
    Var v = order_.pop();
    if (value(v).is_undef() && decision_[v]) {
      // polarity_[v]==1 means "was last false" → branch negative.
      return Lit(v, polarity_[v] != 0);
    }
  }
  return kUndefLit;
}

Solver::DecideStatus Solver::decide() {
  // Pending assumptions are consumed first (paper §6 incremental SAT).
  Lit next = kUndefLit;
  while (decision_level() < static_cast<int>(assumptions_.size())) {
    Lit p = assumptions_[decision_level()];
    if (value(p).is_true()) {
      trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
    } else if (value(p).is_false()) {
      analyze_final(~p);
      return DecideStatus::kAssumptionConflict;
    } else {
      next = p;
      break;
    }
  }
  if (!next.is_defined()) {
    if (listener_ && listener_->satisfied(*this)) {
      return DecideStatus::kSatisfied;
    }
    next = pick_branch_lit();
    if (!next.is_defined()) return DecideStatus::kSatisfied;
    ++stats_.decisions;
  }
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  stats_.max_decision_level =
      std::max<std::int64_t>(stats_.max_decision_level, decision_level());
  [[maybe_unused]] bool enq = enqueue(next, kNoReason);
  assert(enq);
  return DecideStatus::kDecision;
}

double Solver::luby(double y, int i) {
  // Find the finite subsequence containing index i and its position.
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

SolveResult Solver::search() {
  int restart_count = 0;
  std::int64_t restart_budget =
      opts_.restarts
          ? static_cast<std::int64_t>(
                luby(opts_.restart_inc, restart_count) * opts_.restart_base)
          : -1;
  std::int64_t conflicts_this_restart = 0;
  std::vector<Lit> learnt;
  // Database shape is fixed for the entry decision; evaluate once so
  // the quiescent-point check below is a couple of flag tests.
  const bool entry_gated =
      opts_.inprocess.enabled && entry_inprocess_gated();

  while (true) {
    if (interrupt_flag_.load(std::memory_order_relaxed) ||
        (external_interrupt_ &&
         external_interrupt_->load(std::memory_order_relaxed))) {
      erase_until(0);
      unknown_reason_ = UnknownReason::kInterrupted;
      return SolveResult::kUnknown;
    }
    // The wall clock is polled only when a budget is armed, and then
    // only once every 64 loop rounds — the syscall never enters the
    // default hot path.
    if (has_deadline_ && ++time_poll_counter_ >= 64) {
      time_poll_counter_ = 0;
      if (std::chrono::steady_clock::now() >= deadline_) {
        erase_until(0);
        unknown_reason_ = UnknownReason::kTimeBudget;
        return SolveResult::kUnknown;
      }
    }
    Reason confl = deduce();
    if (!confl.is_none()) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        // A root-level conflict refutes the clause set itself, even
        // under assumptions (those sit above the root as
        // pseudo-decisions): mark the solver dead so later calls do
        // not trust the now-stale watch state.
        ok_ = false;
        if (proof_) proof_->on_derive({});
        return SolveResult::kUnsat;
      }

      int bt_level = 0;
      diagnose(confl, learnt, bt_level);
      if (proof_) proof_->on_derive(learnt);
      const int lbd = learnt.size() == 1 ? 1 : compute_lbd(learnt);
      if (export_fn_ && export_fn_(learnt, lbd)) ++stats_.exported_clauses;
      if (opts_.backtrack == BacktrackMode::kChronological &&
          learnt.size() > 1) {
        // Undo only the most recent level; the 1-UIP clause is still
        // asserting there because all non-UIP literals sit strictly
        // below the conflict level.
        bt_level = decision_level() - 1;
      }
      erase_until(bt_level);

      if (learnt.size() == 1) {
        erase_until(0);
        [[maybe_unused]] bool enq = enqueue(learnt[0], kNoReason);
        assert(enq);
      } else if (learnt.size() == 2) {
        attach_binary(learnt[0], learnt[1], /*learnt=*/true);
        ++stats_.learnt_clauses;
        stats_.learnt_literals += 2;
        [[maybe_unused]] bool enq = enqueue(learnt[0],
                                            Reason::binary(learnt[1]));
        assert(enq);
      } else {
        CRef cref = attach_new_clause(learnt, /*learnt=*/true);
        ArenaClause c = arena_[cref];
        c.set_lbd(lbd);
        c.set_tier(tier_for_lbd(lbd));
        c.set_used();
        learnts_.push_back(cref);
        ++stats_.learnt_clauses;
        stats_.learnt_literals += static_cast<std::int64_t>(learnt.size());
        bump_clause_activity(c);
        [[maybe_unused]] bool enq = enqueue(learnt[0], Reason::clause(cref));
        assert(enq);
      }
      decay_var_activity();
      decay_clause_activity();

      // Budgets.
      if (opts_.conflict_budget >= 0 &&
          stats_.conflicts - conflicts_at_start_ >= opts_.conflict_budget) {
        erase_until(0);
        unknown_reason_ = UnknownReason::kConflictBudget;
        return SolveResult::kUnknown;
      }
      if (opts_.propagation_budget >= 0 &&
          stats_.propagations - propagations_at_start_ >=
              opts_.propagation_budget) {
        erase_until(0);
        unknown_reason_ = UnknownReason::kPropagationBudget;
        return SolveResult::kUnknown;
      }

      // Clause-database maintenance.  All schedules are geometric —
      // reduction frequency decays as the search matures, so reduce
      // cost amortises instead of recurring every fixed 64 conflicts.
      const bool aggressive = !opts_.clause_learning ||
                              opts_.deletion == DeletionPolicy::kSizeBounded;
      if (opts_.deletion != DeletionPolicy::kNever) {
        if (aggressive) {
          if (stats_.conflicts >= next_aggr_reduce_) {
            reduce_db();
            check_garbage();
            aggr_interval_ = std::min<std::int64_t>(aggr_interval_ * 2, 4096);
            next_aggr_reduce_ = stats_.conflicts + aggr_interval_;
          }
        } else if (opts_.deletion == DeletionPolicy::kTiered) {
          if (stats_.conflicts >= next_reduce_) {
            reduce_db();
            check_garbage();
            reduce_interval_ += opts_.reduce_inc;
            next_reduce_ = stats_.conflicts + reduce_interval_;
          }
        } else if (static_cast<double>(learnts_.size()) >=
                   max_learnts_ + num_assigned()) {
          reduce_db();
          check_garbage();
          max_learnts_ *= opts_.learnts_growth;
        }
      }
      continue;
    }

    // No conflict: the trail is at a BCP fixpoint — a quiescent point
    // where the auditor's invariants are all expected to hold.
    if (auditor_) auditor_->maybe_checkpoint(*this);

    // Restart?  The entry inprocessing round forces one the moment it
    // becomes due: entry BVE is worth far more on a near-clean clause
    // database than a hundred conflicts later at the natural restart.
    const bool entry_inprocess_due = opts_.inprocess.enabled &&
                                     stats_.inprocess_runs == 0 &&
                                     !entry_gated && inprocess_due();
    if ((restart_budget >= 0 && conflicts_this_restart >= restart_budget) ||
        entry_inprocess_due) {
      erase_until(0);
      ++stats_.restarts;
      ++restart_count;
      conflicts_this_restart = 0;
      restart_budget = static_cast<std::int64_t>(
          luby(opts_.restart_inc, restart_count) * opts_.restart_base);
      if (listener_) listener_->on_restart();
      // Restart boundaries are the import points for clauses learnt by
      // portfolio peers: the trail is at the root, so attaching (and
      // propagating asserting imports) is safe.
      if (!import_shared_clauses()) {
        if (proof_) proof_->on_derive({});
        return SolveResult::kUnsat;
      }
      // ... and the inprocessing points, for the same reason (a
      // refutation inside the run closes the proof itself).
      if (opts_.inprocess.enabled && inprocess_due() && !run_inprocess()) {
        return SolveResult::kUnsat;
      }
      continue;
    }

    switch (decide()) {
      case DecideStatus::kDecision:
        break;
      case DecideStatus::kSatisfied: {
        model_.assign(assigns_.begin(), assigns_.end());
        return SolveResult::kSat;
      }
      case DecideStatus::kAssumptionConflict: {
        // UNSAT under assumptions: the database refutes the conflict
        // core, so its negation is RUP — derive it so the trace can be
        // checked (the checker treats assumptions as unit clauses and
        // closes the refutation).
        if (proof_) {
          std::vector<Lit> neg_core;
          neg_core.reserve(conflict_core_.size());
          for (Lit l : conflict_core_) neg_core.push_back(~l);
          proof_->on_derive(neg_core);
        }
        return SolveResult::kUnsat;
      }
    }
  }
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  model_.clear();
  conflict_core_.clear();
  interrupt_flag_.store(false, std::memory_order_relaxed);
  unknown_reason_ = UnknownReason::kNone;
  if (ok_ && !import_shared_clauses()) ok_ = false;
  for (Lit l : assumptions) ensure_var(l.var());
  if (ok_) {
    for (Lit l : assumptions) {
      // Sticky auto-freeze: an assumption variable an earlier
      // inprocessing run eliminated is reintroduced, and from here on
      // no run may eliminate it — callers that never heard of freeze()
      // stay sound, at the cost of one reintroduction.
      if (eliminated_[l.var()] && !reintroduce(l.var())) {
        ok_ = false;
        break;
      }
      frozen_[l.var()] = 1;
    }
  }
  if (!ok_) return SolveResult::kUnsat;
  assumptions_ = assumptions;
  conflicts_at_start_ = stats_.conflicts;
  propagations_at_start_ = stats_.propagations;
  if (max_learnts_ <= 0) {
    max_learnts_ =
        std::max(1000.0, static_cast<double>(num_problem_clauses_) *
                             opts_.max_learnts_frac);
  }
  // When clause learning is ablated, keep only clauses needed as
  // reasons: size-bounded policy with bound 0 drops everything at the
  // next maintenance pass.
  if (!opts_.clause_learning &&
      (opts_.deletion == DeletionPolicy::kActivity ||
       opts_.deletion == DeletionPolicy::kTiered)) {
    opts_.deletion = DeletionPolicy::kSizeBounded;
    opts_.size_bound = 0;
  }
  if (next_reduce_ < 0) {
    // Small formulas drown in learnts long before a fixed 2000-conflict
    // window elapses, so the first window scales with the formula
    // (MiniSat sizes its learnt cap the same way); large formulas keep
    // the configured base.
    const std::int64_t scaled =
        3 * static_cast<std::int64_t>(num_problem_clauses_) / 2;
    reduce_interval_ = std::clamp<std::int64_t>(
        scaled, std::min<std::int64_t>(300, opts_.reduce_base),
        opts_.reduce_base);
    next_reduce_ = stats_.conflicts + reduce_interval_;
  }
  if (next_aggr_reduce_ < 0) {
    next_aggr_reduce_ = stats_.conflicts + aggr_interval_;
  }
  const auto t0 = std::chrono::steady_clock::now();
  has_deadline_ = opts_.time_budget_ms >= 0;
  if (has_deadline_) {
    deadline_ = t0 + std::chrono::milliseconds(opts_.time_budget_ms);
    time_poll_counter_ = 0;
  }
  // Entry inprocessing doubles as preprocessing on the first call and
  // catches up after incremental clause additions on later ones.  Under
  // self-throttling the first round waits for entry_conflicts, so it
  // fires from the search loop once the instance has proven nontrivial.
  if (opts_.inprocess.enabled && inprocess_due()) {
    run_inprocess();
  }
  SolveResult result = ok_ ? search() : SolveResult::kUnsat;
  stats_.solve_time_sec +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  erase_until(0);
  if (result == SolveResult::kSat && !elim_stack_.empty()) {
    // Extend the model over BVE-eliminated variables (their entries
    // are l_undef: elimination cleared the decision flag, so search
    // never assigned them).
    extend_model(
        elim_stack_,
        [this](Lit l) { return model_[l.var()].is_true() != l.negative(); },
        [this](Var v, bool value) { model_[v] = lbool(value); });
  }
  if (auditor_ && ok_) auditor_->maybe_checkpoint(*this);
  if (result == SolveResult::kUnsat && assumptions_.empty()) ok_ = false;
  if (result == SolveResult::kUnsat && !assumptions_.empty()) {
    ++stats_.cores_extracted;
    stats_.core_literals += static_cast<std::int64_t>(conflict_core_.size());
  }
  assumptions_.clear();
  return result;
}

bool Solver::add_learnt_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  for (Lit l : lits) {
    assert(l.is_defined());
    ensure_var(l.var());
  }
  // Same normalization as add_clause(), but the result is attached as
  // a learnt clause (eligible for deletion).  The clause itself is not
  // logged — in the portfolio the exporter's trace already carries its
  // derivation with an earlier ticket — but a root conflict it exposes
  // must still close this worker's trace with the empty clause.
  // Imports are advisory: a clause over a variable this worker has
  // eliminated cannot be attached (the variable has no clauses left
  // and models are reconstructed over it), so it is simply dropped.
  for (Lit l : lits) {
    if (eliminated_[l.var()]) return true;
  }
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kUndefLit;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev.is_defined() && l.var() == prev.var()) return true;  // tautology
    if (value(l).is_true()) return true;  // already satisfied at root
    if (!value(l).is_false()) out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    if (proof_) proof_->on_derive({});
    return false;
  }
  ++stats_.imported_clauses;
  if (out.size() == 1) {
    if (!enqueue(out[0], kNoReason) || !deduce().is_none()) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    return true;
  }
  if (out.size() == 2) {
    attach_binary(out[0], out[1], /*learnt=*/true);
    return true;
  }
  CRef cref = attach_new_clause(out, /*learnt=*/true);
  ArenaClause c = arena_[cref];
  const int lbd = static_cast<int>(c.size());
  c.set_lbd(lbd);
  c.set_tier(tier_for_lbd(lbd));
  c.set_used();
  learnts_.push_back(cref);
  return true;
}

bool Solver::import_shared_clauses() {
  if (!import_fn_) return true;
  assert(decision_level() == 0);
  import_buf_.clear();
  import_fn_(import_buf_);
  for (std::vector<Lit>& lits : import_buf_) {
    if (!add_learnt_clause(std::move(lits))) return false;
  }
  return true;
}

bool Solver::inprocess_due() const {
  std::int64_t trigger = next_inprocess_;
  if (stats_.inprocess_runs == 0 && opts_.inprocess.self_throttle) {
    trigger = std::max(trigger, opts_.inprocess.entry_conflicts);
  }
  return stats_.conflicts >= trigger;
}

bool Solver::entry_inprocess_gated() const {
  if (!opts_.inprocess.self_throttle) return false;
  if (opts_.inprocess.entry_max_binary_fraction < 0.0) return false;
  const std::size_t ncls = num_problem_clauses_;
  if (ncls == 0) return false;
  // Problem clauses of >= 3 literals live in clauses_; the rest are
  // implicit binaries (same shape reading the scheduler uses).
  const std::size_t nbin = ncls - std::min(ncls, clauses_.size());
  return static_cast<double>(nbin) / static_cast<double>(ncls) >
         opts_.inprocess.entry_max_binary_fraction;
}

bool Solver::run_inprocess() {
  assert(decision_level() == 0);
  if (inprocess_interval_ < 0) {
    inprocess_interval_ = std::max<std::int64_t>(opts_.inprocess.interval, 0);
  }
  ++stats_.inprocess_runs;
  // Settle the utility windows the previous round armed, then let the
  // Inprocessor consult the scheduler pass by pass.
  ip_sched_.observe(stats_, opts_.inprocess);
  Inprocessor ip(*this);
  const bool keep = ip.run();
  stats_.probe_skips = ip_sched_.skips(InprocessPass::kProbe);
  stats_.vivify_skips = ip_sched_.skips(InprocessPass::kVivify);
  stats_.bve_skips = ip_sched_.skips(InprocessPass::kBve);
  stats_.probe_utility = ip_sched_.utility(InprocessPass::kProbe);
  stats_.vivify_utility = ip_sched_.utility(InprocessPass::kVivify);
  stats_.bve_utility = ip_sched_.utility(InprocessPass::kBve);
  // Reschedule: the interval grows geometrically so inprocessing cost
  // amortises as the search matures (interval 0 = every boundary).
  next_inprocess_ =
      stats_.conflicts + std::max<std::int64_t>(inprocess_interval_, 1);
  inprocess_interval_ = static_cast<std::int64_t>(
      static_cast<double>(inprocess_interval_) *
      std::max(1.0, opts_.inprocess.interval_growth));
  return keep;
}

bool Solver::reintroduce(Var v) {
  assert(decision_level() == 0);
  if (static_cast<std::size_t>(v) >= eliminated_.size() || !eliminated_[v]) {
    return true;
  }
  // Each pivot has exactly one record; newest-first search is cheap
  // because reintroduction chains only ever reach later records.
  ElimRecord rec;
  for (std::size_t i = elim_stack_.size(); i-- > 0;) {
    if (elim_stack_[i].pivot == v) {
      rec = std::move(elim_stack_[i]);
      elim_stack_.erase(elim_stack_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  eliminated_[v] = 0;
  set_decision_var(v, true);
  // Restoring the saved occurrence clauses undoes the existential
  // elimination (the resolvents they imply may stay — they are
  // redundant once the sources are back).  A saved clause can mention
  // a variable eliminated *after* v; it must come back first, and the
  // recursion terminates because such records are strictly younger.
  // add_clause() re-derives only strengthened forms, which are RUP:
  // the originals were never proof-deleted.
  for (std::vector<Lit>& cl : rec.clauses) {
    for (Lit l : cl) {
      if (!reintroduce(l.var())) return false;
    }
    if (!add_clause(std::move(cl))) return false;
  }
  return true;
}

}  // namespace sateda::sat
