#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sat/audit.hpp"

namespace sateda::sat {

Solver::Solver(SolverOptions opts)
    : opts_(opts), order_(activity_), rng_(opts.seed) {}

Var Solver::new_var() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(l_undef);
  level_.push_back(0);
  reason_.push_back(kNullClause);
  activity_.push_back(0.0);
  // polarity_[v]==1 means "branch negative first".
  polarity_.push_back(opts_.default_polarity ? 0 : 1);
  decision_.push_back(1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  order_.insert(v);
  return v;
}

void Solver::ensure_var(Var v) {
  while (num_vars() <= v) new_var();
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  for (Lit l : lits) {
    assert(l.is_defined());
    ensure_var(l.var());
  }
  // Normalize: sort, dedupe, drop tautologies and falsified literals.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kUndefLit;
  bool strengthened = false;  // dropped a root-falsified literal
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev.is_defined() && l.var() == prev.var()) return true;  // tautology
    if (value(l).is_true()) return true;  // already satisfied at root
    if (!value(l).is_false()) {
      out.push_back(l);
    } else {
      strengthened = true;
    }
    prev = l;
  }
  // A strengthened clause is a unit-propagation consequence of the
  // input clause plus earlier root facts, so it is RUP-derivable.
  if (proof_ && strengthened) proof_->on_derive(out);
  if (out.empty()) {
    ok_ = false;
    if (proof_ && !strengthened) proof_->on_derive({});
    return false;
  }
  if (out.size() == 1) {
    if (!enqueue(out[0], kNullClause)) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    if (deduce() != kNullClause) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    return true;
  }
  attach_new_clause(Clause(std::move(out), /*learnt=*/false));
  ++num_problem_clauses_;
  return true;
}

bool Solver::add_formula(const CnfFormula& f) {
  ensure_var(f.num_vars() - 1);
  for (const Clause& c : f) {
    if (!add_clause(std::vector<Lit>(c.begin(), c.end()))) return false;
  }
  return true;
}

ClauseRef Solver::attach_new_clause(Clause c) {
  assert(c.size() >= 2);
  ClauseRef cref = static_cast<ClauseRef>(clause_pool_.size());
  clause_pool_.push_back(std::move(c));
  attach_watches(cref);
  return cref;
}

void Solver::attach_watches(ClauseRef cref) {
  const Clause& c = clause_pool_[cref];
  watches_[(~c[0]).index()].push_back({cref, c[1]});
  watches_[(~c[1]).index()].push_back({cref, c[0]});
}

void Solver::detach_watches(ClauseRef cref) {
  const Clause& c = clause_pool_[cref];
  for (Lit w : {c[0], c[1]}) {
    auto& list = watches_[(~w).index()];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].cref == cref) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::locked(ClauseRef cref) const {
  const Clause& c = clause_pool_[cref];
  return value(c[0]).is_true() && reason_[c[0].var()] == cref;
}

void Solver::remove_clause(ClauseRef cref) {
  assert(!locked(cref));
  detach_watches(cref);
  Clause& c = clause_pool_[cref];
  if (proof_ && c.learnt()) {
    proof_->on_delete(std::vector<Lit>(c.begin(), c.end()));
  }
  c.mark_deleted();
  ++stats_.deleted_clauses;
}

void Solver::simplify_db() {
  assert(decision_level() == 0);
  if (!ok_) return;
  std::vector<ClauseRef> kept_learnts;
  kept_learnts.reserve(learnts_.size());
  for (ClauseRef cref = 0; cref < static_cast<ClauseRef>(clause_pool_.size());
       ++cref) {
    Clause& c = clause_pool_[cref];
    if (c.deleted()) continue;
    bool satisfied = false;
    for (Lit l : c) {
      if (value(l).is_true() && level_[l.var()] == 0) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) continue;
    // Root-level reasons are never revisited by conflict analysis, so
    // a satisfied reason clause can be released before removal.
    if (locked(cref)) reason_[c[0].var()] = kNullClause;
    // Deliberately skip proof deletion logging for problem clauses:
    // keeping them in the checker's database only strengthens it.
    detach_watches(cref);
    if (proof_ && c.learnt()) {
      proof_->on_delete(std::vector<Lit>(c.begin(), c.end()));
    }
    c.mark_deleted();
    ++stats_.deleted_clauses;
    if (!c.learnt() && num_problem_clauses_ > 0) --num_problem_clauses_;
  }
  for (ClauseRef cr : learnts_) {
    if (!clause_pool_[cr].deleted()) kept_learnts.push_back(cr);
  }
  learnts_ = std::move(kept_learnts);
}

bool Solver::enqueue(Lit p, ClauseRef reason) {
  lbool v = value(p);
  if (v.is_false()) return false;
  if (v.is_true()) return true;
  assigns_[p.var()] = lbool(!p.negative());
  level_[p.var()] = decision_level();
  reason_[p.var()] = reason;
  trail_.push_back(p);
  if (listener_) listener_->on_assign(p, decision_level());
  return true;
}

ClauseRef Solver::deduce() {
  ClauseRef confl = kNullClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      Watcher w = ws[i];
      // Cheap test first: if the blocker is already true, skip.
      if (value(w.blocker).is_true()) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clause_pool_[w.cref];
      const Lit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c.mutable_literals()[0],
                                       c.mutable_literals()[1]);
      assert(c[1] == false_lit);
      ++i;
      const Lit first = c[0];
      if (first != w.blocker && value(first).is_true()) {
        ws[j++] = {w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (!value(c[k]).is_false()) {
          std::swap(c.mutable_literals()[1], c.mutable_literals()[k]);
          watches_[(~c[1]).index()].push_back({w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = {w.cref, first};
      if (value(first).is_false()) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
        break;
      }
      enqueue(first, w.cref);
    }
    ws.resize(j);
    if (confl != kNullClause) break;
  }
  return confl;
}

void Solver::diagnose(ClauseRef confl, std::vector<Lit>& out_learnt,
                      int& out_btlevel) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // placeholder for the asserting literal
  std::size_t index = trail_.size();

  // Resolve backwards along the trail until the first unique
  // implication point of the current decision level.
  do {
    assert(confl != kNullClause);
    Clause& c = clause_pool_[confl];
    if (c.learnt()) bump_clause_activity(c);
    for (std::size_t j = (p.is_defined() ? 1 : 0); j < c.size(); ++j) {
      Lit q = c[j];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        bump_var_activity(q.var());
        seen_[q.var()] = 1;
        if (level_[q.var()] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  if (opts_.minimize_learnt) {
    if (proof_) {
      // Report the shrink to the tracer; only the minimized clause
      // enters the proof (it subsumes the 1-UIP clause and is itself
      // RUP, so nothing else needs logging).
      std::vector<Lit> before = out_learnt;
      minimize_learnt(out_learnt);
      if (out_learnt.size() != before.size()) {
        proof_->on_minimize(before, out_learnt);
      }
    } else {
      minimize_learnt(out_learnt);
    }
  }

  // Backtrack level: the second-highest decision level in the clause.
  out_btlevel = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  for (Lit l : out_learnt) seen_[l.var()] = 0;
  for (Lit l : analyze_clear_) seen_[l.var()] = 0;
  analyze_clear_.clear();
}

void Solver::minimize_learnt(std::vector<Lit>& learnt) {
  // Self-subsumption: a literal is redundant if its reason clause is
  // covered by the remaining learnt literals (recursively).
  for (Lit l : learnt) seen_[l.var()] = 1;
  std::size_t j = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (reason_[learnt[i].var()] == kNullClause ||
        !literal_redundant(learnt[i])) {
      learnt[j++] = learnt[i];
    } else {
      // Removed literals keep their seen_ flag until diagnose() clears
      // analyze_clear_ — record them there.
      analyze_clear_.push_back(learnt[i]);
      ++stats_.minimized_literals;
    }
  }
  learnt.resize(j);
  // seen_ flags for kept literals are cleared by the caller.
}

bool Solver::literal_redundant(Lit p) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[q.var()] != kNullClause);
    const Clause& c = clause_pool_[reason_[q.var()]];
    for (std::size_t i = 1; i < c.size(); ++i) {
      Lit l = c[i];
      if (seen_[l.var()] || level_[l.var()] == 0) continue;
      if (reason_[l.var()] == kNullClause) {
        // Hit a decision not already in the learnt clause: not redundant.
        for (std::size_t k = top; k < analyze_clear_.size(); ++k) {
          seen_[analyze_clear_[k].var()] = 0;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[l.var()] = 1;
      analyze_clear_.push_back(l);
      analyze_stack_.push_back(l);
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  conflict_core_.clear();
  conflict_core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    Var x = trail_[i].var();
    if (!seen_[x]) continue;
    if (reason_[x] == kNullClause) {
      assert(level_[x] > 0);
      conflict_core_.push_back(trail_[i]);
    } else {
      const Clause& c = clause_pool_[reason_[x]];
      for (std::size_t jj = 1; jj < c.size(); ++jj) {
        if (level_[c[jj].var()] > 0) seen_[c[jj].var()] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.var()] = 0;
}

void Solver::erase_until(int target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    Lit l = trail_[i];
    Var v = l.var();
    if (opts_.phase_saving) polarity_[v] = l.negative() ? 1 : 0;
    assigns_[v] = l_undef;
    reason_[v] = kNullClause;
    if (decision_[v] && !order_.contains(v)) order_.insert(v);
    if (listener_) listener_->on_unassign(l);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

void Solver::bump_var_activity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    order_.rebuild();
  }
  order_.increased(v);
}

void Solver::decay_var_activity() { var_inc_ /= opts_.var_decay; }

void Solver::bump_clause_activity(Clause& c) {
  c.set_activity(c.activity() + clause_inc_);
  if (c.activity() > 1e20) {
    for (ClauseRef cr : learnts_) {
      Clause& lc = clause_pool_[cr];
      lc.set_activity(lc.activity() * 1e-20);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_clause_activity() { clause_inc_ /= opts_.clause_decay; }

int Solver::unbound_literals(const Clause& c) const {
  int n = 0;
  for (Lit l : c) {
    if (value(l).is_undef()) ++n;
  }
  return n;
}

int Solver::compute_lbd(const std::vector<Lit>& lits) {
  // Number of distinct decision levels, a quality proxy.
  std::vector<int> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) levels.push_back(level_[l.var()]);
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return static_cast<int>(levels.size());
}

void Solver::reduce_db() {
  // Retire roughly half of the learnt clauses, keeping locked clauses,
  // binary clauses and — under relevance-based learning (§4.1) —
  // clauses with few unbound literals.
  std::sort(learnts_.begin(), learnts_.end(), [this](ClauseRef a, ClauseRef b) {
    const Clause& ca = clause_pool_[a];
    const Clause& cb = clause_pool_[b];
    if ((ca.size() > 2) != (cb.size() > 2)) return ca.size() > 2;
    return ca.activity() < cb.activity();
  });
  const double median_activity =
      learnts_.empty()
          ? 0.0
          : clause_pool_[learnts_[learnts_.size() / 2]].activity();
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  std::size_t removed = 0;
  const std::size_t half = learnts_.size() / 2;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    ClauseRef cr = learnts_[i];
    const Clause& c = clause_pool_[cr];
    bool keep = locked(cr) ||
                (c.size() <= 2 && !(opts_.deletion == DeletionPolicy::kSizeBounded &&
                                    opts_.size_bound < 2));
    if (!keep) {
      switch (opts_.deletion) {
        case DeletionPolicy::kNever:
          keep = true;
          break;
        case DeletionPolicy::kActivity:
          keep = i >= half && c.activity() >= median_activity;
          break;
        case DeletionPolicy::kRelevance:
          keep = (i >= half && c.activity() >= median_activity) ||
                 unbound_literals(c) <= opts_.relevance_bound;
          break;
        case DeletionPolicy::kSizeBounded:
          keep = static_cast<int>(c.size()) <= opts_.size_bound;
          break;
      }
    }
    if (keep) {
      kept.push_back(cr);
    } else {
      remove_clause(cr);
      ++removed;
    }
  }
  learnts_ = std::move(kept);
  (void)removed;
}

Lit Solver::pick_branch_lit() {
  if (listener_) {
    Lit forced = listener_->choose_branch(*this);
    if (forced.is_defined() && value(forced).is_undef()) return forced;
  }
  // Randomized decision (paper §6: randomization).
  if (opts_.random_var_freq > 0 && !order_.empty()) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < opts_.random_var_freq) {
      std::uniform_int_distribution<Var> pick(0, num_vars() - 1);
      for (int tries = 0; tries < 8; ++tries) {
        Var v = pick(rng_);
        if (value(v).is_undef() && decision_[v]) {
          return Lit(v, polarity_[v] != 0);
        }
      }
    }
  }
  while (!order_.empty()) {
    Var v = order_.pop();
    if (value(v).is_undef() && decision_[v]) {
      // polarity_[v]==1 means "was last false" → branch negative.
      return Lit(v, polarity_[v] != 0);
    }
  }
  return kUndefLit;
}

Solver::DecideStatus Solver::decide() {
  // Pending assumptions are consumed first (paper §6 incremental SAT).
  Lit next = kUndefLit;
  while (decision_level() < static_cast<int>(assumptions_.size())) {
    Lit p = assumptions_[decision_level()];
    if (value(p).is_true()) {
      trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
    } else if (value(p).is_false()) {
      analyze_final(~p);
      return DecideStatus::kAssumptionConflict;
    } else {
      next = p;
      break;
    }
  }
  if (!next.is_defined()) {
    if (listener_ && listener_->satisfied(*this)) {
      return DecideStatus::kSatisfied;
    }
    next = pick_branch_lit();
    if (!next.is_defined()) return DecideStatus::kSatisfied;
    ++stats_.decisions;
  }
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  stats_.max_decision_level =
      std::max<std::int64_t>(stats_.max_decision_level, decision_level());
  [[maybe_unused]] bool enq = enqueue(next, kNullClause);
  assert(enq);
  return DecideStatus::kDecision;
}

double Solver::luby(double y, int i) {
  // Find the finite subsequence containing index i and its position.
  int size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

SolveResult Solver::search() {
  int restart_count = 0;
  std::int64_t restart_budget =
      opts_.restarts
          ? static_cast<std::int64_t>(
                luby(opts_.restart_inc, restart_count) * opts_.restart_base)
          : -1;
  std::int64_t conflicts_this_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    if (interrupt_flag_.load(std::memory_order_relaxed) ||
        (external_interrupt_ &&
         external_interrupt_->load(std::memory_order_relaxed))) {
      erase_until(0);
      unknown_reason_ = UnknownReason::kInterrupted;
      return SolveResult::kUnknown;
    }
    ClauseRef confl = deduce();
    if (confl != kNullClause) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        // A root-level conflict refutes the clause set itself, even
        // under assumptions (those sit above the root as
        // pseudo-decisions): mark the solver dead so later calls do
        // not trust the now-stale watch state.
        ok_ = false;
        if (proof_) proof_->on_derive({});
        return SolveResult::kUnsat;
      }

      int bt_level = 0;
      diagnose(confl, learnt, bt_level);
      if (proof_) proof_->on_derive(learnt);
      const int lbd = learnt.size() == 1 ? 1 : compute_lbd(learnt);
      if (export_fn_ && export_fn_(learnt, lbd)) ++stats_.exported_clauses;
      if (opts_.backtrack == BacktrackMode::kChronological &&
          learnt.size() > 1) {
        // Undo only the most recent level; the 1-UIP clause is still
        // asserting there because all non-UIP literals sit strictly
        // below the conflict level.
        bt_level = decision_level() - 1;
      }
      erase_until(bt_level);

      if (learnt.size() == 1) {
        erase_until(0);
        [[maybe_unused]] bool enq = enqueue(learnt[0], kNullClause);
        assert(enq);
      } else {
        Clause c(learnt, /*learnt=*/true);
        c.set_lbd(lbd);
        ClauseRef cref = attach_new_clause(std::move(c));
        learnts_.push_back(cref);
        ++stats_.learnt_clauses;
        stats_.learnt_literals += static_cast<std::int64_t>(learnt.size());
        bump_clause_activity(clause_pool_[cref]);
        [[maybe_unused]] bool enq = enqueue(learnt[0], cref);
        assert(enq);
      }
      decay_var_activity();
      decay_clause_activity();

      // Budgets.
      if (opts_.conflict_budget >= 0 &&
          stats_.conflicts - conflicts_at_start_ >= opts_.conflict_budget) {
        erase_until(0);
        unknown_reason_ = UnknownReason::kConflictBudget;
        return SolveResult::kUnknown;
      }
      if (opts_.propagation_budget >= 0 &&
          stats_.propagations - propagations_at_start_ >=
              opts_.propagation_budget) {
        erase_until(0);
        unknown_reason_ = UnknownReason::kPropagationBudget;
        return SolveResult::kUnknown;
      }

      // Clause-database maintenance.
      const bool aggressive =
          !opts_.clause_learning || opts_.deletion == DeletionPolicy::kSizeBounded;
      if (opts_.deletion != DeletionPolicy::kNever) {
        if (aggressive) {
          if (stats_.conflicts % 64 == 0) reduce_db();
        } else if (static_cast<double>(learnts_.size()) >=
                   max_learnts_ + num_assigned()) {
          reduce_db();
          max_learnts_ *= opts_.learnts_growth;
        }
      }
      continue;
    }

    // No conflict: the trail is at a BCP fixpoint — a quiescent point
    // where the auditor's invariants are all expected to hold.
    if (auditor_) auditor_->maybe_checkpoint(*this);

    // Restart?
    if (restart_budget >= 0 && conflicts_this_restart >= restart_budget) {
      erase_until(0);
      ++stats_.restarts;
      ++restart_count;
      conflicts_this_restart = 0;
      restart_budget = static_cast<std::int64_t>(
          luby(opts_.restart_inc, restart_count) * opts_.restart_base);
      if (listener_) listener_->on_restart();
      // Restart boundaries are the import points for clauses learnt by
      // portfolio peers: the trail is at the root, so attaching (and
      // propagating asserting imports) is safe.
      if (!import_shared_clauses()) {
        if (proof_) proof_->on_derive({});
        return SolveResult::kUnsat;
      }
      continue;
    }

    switch (decide()) {
      case DecideStatus::kDecision:
        break;
      case DecideStatus::kSatisfied: {
        model_.assign(assigns_.begin(), assigns_.end());
        return SolveResult::kSat;
      }
      case DecideStatus::kAssumptionConflict: {
        // UNSAT under assumptions: the database refutes the conflict
        // core, so its negation is RUP — derive it so the trace can be
        // checked (the checker treats assumptions as unit clauses and
        // closes the refutation).
        if (proof_) {
          std::vector<Lit> neg_core;
          neg_core.reserve(conflict_core_.size());
          for (Lit l : conflict_core_) neg_core.push_back(~l);
          proof_->on_derive(neg_core);
        }
        return SolveResult::kUnsat;
      }
    }
  }
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  model_.clear();
  conflict_core_.clear();
  interrupt_flag_.store(false, std::memory_order_relaxed);
  unknown_reason_ = UnknownReason::kNone;
  if (ok_ && !import_shared_clauses()) ok_ = false;
  if (!ok_) return SolveResult::kUnsat;
  for (Lit l : assumptions) ensure_var(l.var());
  assumptions_ = assumptions;
  conflicts_at_start_ = stats_.conflicts;
  propagations_at_start_ = stats_.propagations;
  if (max_learnts_ <= 0) {
    max_learnts_ =
        std::max(1000.0, static_cast<double>(num_problem_clauses_) *
                             opts_.max_learnts_frac);
  }
  // When clause learning is ablated, keep only clauses needed as
  // reasons: size-bounded policy with bound 0 drops everything at the
  // next maintenance pass.
  if (!opts_.clause_learning &&
      opts_.deletion == DeletionPolicy::kActivity) {
    opts_.deletion = DeletionPolicy::kSizeBounded;
    opts_.size_bound = 0;
  }
  SolveResult result = search();
  erase_until(0);
  if (auditor_ && ok_) auditor_->maybe_checkpoint(*this);
  if (result == SolveResult::kUnsat && assumptions_.empty()) ok_ = false;
  assumptions_.clear();
  return result;
}

bool Solver::add_learnt_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  for (Lit l : lits) {
    assert(l.is_defined());
    ensure_var(l.var());
  }
  // Same normalization as add_clause(), but the result is attached as
  // a learnt clause (eligible for deletion).  The clause itself is not
  // logged — in the portfolio the exporter's trace already carries its
  // derivation with an earlier ticket — but a root conflict it exposes
  // must still close this worker's trace with the empty clause.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = kUndefLit;
  for (Lit l : lits) {
    if (l == prev) continue;
    if (prev.is_defined() && l.var() == prev.var()) return true;  // tautology
    if (value(l).is_true()) return true;  // already satisfied at root
    if (!value(l).is_false()) out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    if (proof_) proof_->on_derive({});
    return false;
  }
  ++stats_.imported_clauses;
  if (out.size() == 1) {
    if (!enqueue(out[0], kNullClause) || deduce() != kNullClause) {
      ok_ = false;
      if (proof_) proof_->on_derive({});
      return false;
    }
    return true;
  }
  Clause c(std::move(out), /*learnt=*/true);
  c.set_lbd(static_cast<int>(c.size()));
  ClauseRef cref = attach_new_clause(std::move(c));
  learnts_.push_back(cref);
  return true;
}

bool Solver::import_shared_clauses() {
  if (!import_fn_) return true;
  assert(decision_level() == 0);
  import_buf_.clear();
  import_fn_(import_buf_);
  for (std::vector<Lit>& lits : import_buf_) {
    if (!add_learnt_clause(std::move(lits))) return false;
  }
  return true;
}

}  // namespace sateda::sat
