/// \file heap.hpp
/// \brief Indexed binary max-heap over variables, ordered by VSIDS
///        activity.  Supports decrease/increase-key by variable id.
#pragma once

#include <cassert>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda::sat {

/// Max-heap of variables keyed by an external activity array.
/// All operations are O(log n); membership test is O(1).
class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(Var v) const {
    return static_cast<std::size_t>(v) < pos_.size() && pos_[v] >= 0;
  }

  /// Inserts \p v (must not already be present).
  void insert(Var v) {
    grow(v);
    assert(!contains(v));
    pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    sift_up(pos_[v]);
  }

  /// Removes and returns the variable with maximal activity.
  Var pop() {
    assert(!heap_.empty());
    Var top = heap_[0];
    heap_[0] = heap_.back();
    pos_[heap_[0]] = 0;
    heap_.pop_back();
    pos_[top] = -1;
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Restores heap order after activity_[v] increased.
  void increased(Var v) {
    if (contains(v)) sift_up(pos_[v]);
  }

  /// Rebuilds the heap (e.g. after a global activity rescale).
  void rebuild() {
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

 private:
  void grow(Var v) {
    if (static_cast<std::size_t>(v) >= pos_.size()) {
      pos_.resize(v + 1, -1);
    }
  }

  bool lt(Var a, Var b) const { return activity_[a] < activity_[b]; }

  void sift_up(std::size_t i) {
    Var v = heap_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!lt(heap_[parent], v)) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = static_cast<int>(i);
      i = parent;
    }
    heap_[i] = v;
    pos_[v] = static_cast<int>(i);
  }

  void sift_down(std::size_t i) {
    Var v = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && lt(heap_[child], heap_[child + 1])) ++child;
      if (!lt(v, heap_[child])) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = static_cast<int>(i);
      i = child;
    }
    heap_[i] = v;
    pos_[v] = static_cast<int>(i);
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<int> pos_;
};

}  // namespace sateda::sat
