/// \file arena.hpp
/// \brief Flat clause arena for the CDCL hot path.
///
/// The propagation inner loop is bound by memory traffic, not
/// arithmetic: with one heap-allocated std::vector<Lit> per clause,
/// every watcher visit costs two dependent cache misses (clause object,
/// then its literal buffer) and deleted clauses are never reclaimed.
/// The ClauseArena stores every clause in a single contiguous
/// std::uint32_t buffer — a small inline header followed by the
/// literals — so a watcher visit is one predictable load stream, and a
/// ClauseRef is simply the word offset of the header.
///
/// Layout per clause (all little-endian words):
///
///   word 0: [31..6] size | [5] relocated | [4] used | [3..2] tier
///           | [1] deleted | [0] learnt
///   word 1: LBD (or the forwarding ref while `relocated` during GC)
///   word 2: activity (IEEE float bits)
///   word 3..3+size: literal codes (Lit::index())
///
/// Clauses are bump-allocated; remove_clause() marks them deleted and
/// counts the words as wasted.  When the wasted fraction passes the
/// solver's threshold the solver runs a compacting collection: live
/// clauses are copied into a fresh arena in watch-list order and every
/// external reference (watches, reasons, clause lists) is remapped
/// through the forwarding word.  Binary clauses never enter the arena
/// at all — they live directly in the solver's binary watch lists
/// (see solver.hpp).
///
/// Cache-line packing: the propagation loop's first touch of a clause
/// reads words 0..4 (header plus the two watched literals).  alloc()
/// pads so those five words never straddle a 64-byte line — when the
/// next free word is too close to a line boundary it emits pad words
/// (kPadWord) up to the boundary.  Pads are skipped transparently by
/// the first()/next() traversal and are never counted as reclaimable
/// waste (compaction re-emits them as needed).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda::sat {

/// Word offset of a clause header inside the arena.
using CRef = std::uint32_t;
inline constexpr CRef kCRefUndef = 0xFFFFFFFFu;

/// Filler word between clauses (cache-line packing).  Never a legal
/// header: a real word 0 has the relocated bit clear or a size, and
/// all-ones would be a deleted+relocated clause of impossible size.
inline constexpr std::uint32_t kPadWord = 0xFFFFFFFFu;

/// Learnt-clause tier (Chanseok-Oh-style three-tier database).
enum class ClauseTier : std::uint32_t {
  kCore = 0,   ///< LBD ≤ core cut: kept forever
  kTier2 = 1,  ///< mid-quality: kept while recently used
  kLocal = 2,  ///< the rest: activity-sorted, worst half retired
};

/// Non-owning proxy for one clause inside a ClauseArena.  Cheap to
/// copy; valid until the arena reallocates or compacts.
class ArenaClause {
 public:
  explicit ArenaClause(std::uint32_t* base) : base_(base) {}

  std::uint32_t size() const { return base_[0] >> kSizeShift; }
  bool learnt() const { return (base_[0] & kLearntBit) != 0; }
  bool deleted() const { return (base_[0] & kDeletedBit) != 0; }
  void mark_deleted() { base_[0] |= kDeletedBit; }

  ClauseTier tier() const {
    return static_cast<ClauseTier>((base_[0] >> kTierShift) & 3u);
  }
  void set_tier(ClauseTier t) {
    base_[0] = (base_[0] & ~(3u << kTierShift)) |
               (static_cast<std::uint32_t>(t) << kTierShift);
  }

  /// "Touched since the last reduction" flag driving tier-2 demotion.
  bool used() const { return (base_[0] & kUsedBit) != 0; }
  void set_used() { base_[0] |= kUsedBit; }
  void clear_used() { base_[0] &= ~kUsedBit; }

  int lbd() const { return static_cast<int>(base_[1]); }
  void set_lbd(int lbd) { base_[1] = static_cast<std::uint32_t>(lbd); }

  float activity() const { return std::bit_cast<float>(base_[2]); }
  void set_activity(float a) { base_[2] = std::bit_cast<std::uint32_t>(a); }

  Lit operator[](std::size_t i) const {
    return Lit::from_index(static_cast<std::int32_t>(base_[kHeaderWords + i]));
  }
  void set_lit(std::size_t i, Lit l) {
    base_[kHeaderWords + i] = static_cast<std::uint32_t>(l.index());
  }
  void swap_lits(std::size_t i, std::size_t j) {
    std::uint32_t tmp = base_[kHeaderWords + i];
    base_[kHeaderWords + i] = base_[kHeaderWords + j];
    base_[kHeaderWords + j] = tmp;
  }

  bool contains(Lit l) const {
    for (std::uint32_t i = 0; i < size(); ++i) {
      if ((*this)[i] == l) return true;
    }
    return false;
  }

  std::vector<Lit> lits() const {
    std::vector<Lit> out;
    out.reserve(size());
    for (std::uint32_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
    return out;
  }

  /// Value-yielding literal iterator (no Lit* aliasing of the word
  /// buffer, so strict aliasing holds).
  class const_iterator {
   public:
    const_iterator(const std::uint32_t* p) : p_(p) {}
    Lit operator*() const {
      return Lit::from_index(static_cast<std::int32_t>(*p_));
    }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    const std::uint32_t* p_;
  };
  const_iterator begin() const { return const_iterator(base_ + kHeaderWords); }
  const_iterator end() const {
    return const_iterator(base_ + kHeaderWords + size());
  }

  // --- GC forwarding (used only by ClauseArena::reloc) --------------
  bool relocated() const { return (base_[0] & kRelocBit) != 0; }
  CRef forward() const { return base_[1]; }
  void set_forward(CRef target) {
    base_[0] |= kRelocBit;
    base_[1] = target;
  }

  static constexpr std::uint32_t kHeaderWords = 3;

 private:
  static constexpr std::uint32_t kLearntBit = 1u << 0;
  static constexpr std::uint32_t kDeletedBit = 1u << 1;
  static constexpr std::uint32_t kTierShift = 2;
  static constexpr std::uint32_t kUsedBit = 1u << 4;
  static constexpr std::uint32_t kRelocBit = 1u << 5;
  static constexpr std::uint32_t kSizeShift = 6;

  friend class ClauseArena;
  std::uint32_t* base_;
};

/// Bump allocator + mark-compact collector over one flat word buffer.
class ClauseArena {
 public:
  /// Allocates a clause of \p lits; returns its header offset.
  CRef alloc(const std::vector<Lit>& lits, bool learnt);

  ArenaClause operator[](CRef ref) {
    assert(ref < mem_.size());
    return ArenaClause(mem_.data() + ref);
  }
  ArenaClause operator[](CRef ref) const {
    assert(ref < mem_.size());
    // Proxies are value-like; const callers (the auditor) only read.
    return ArenaClause(const_cast<std::uint32_t*>(mem_.data()) + ref);
  }

  /// Marks the clause deleted and counts its words as reclaimable.
  void free_clause(CRef ref) {
    ArenaClause c = (*this)[ref];
    assert(!c.deleted());
    c.mark_deleted();
    wasted_ += ArenaClause::kHeaderWords + c.size();
  }

  std::size_t size_words() const { return mem_.size(); }
  std::size_t wasted_words() const { return wasted_; }
  std::size_t padding_words() const { return padding_; }
  void reserve_words(std::size_t words) { mem_.reserve(words); }

  /// Hints the clause's header and first literals into cache (one
  /// 64-byte line, which alloc()'s packing guarantees covers words
  /// 0..4) without dereferencing anything.
  void prefetch(CRef ref) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(mem_.data() + ref);
#else
    (void)ref;
#endif
  }

  /// Sequential iteration over all clauses (live and deleted) in
  /// allocation order: first() .. next() until end_ref().  Pad words
  /// between clauses are skipped transparently.
  CRef first() const { return skip_pads(0); }
  CRef end_ref() const { return static_cast<CRef>(mem_.size()); }
  CRef next(CRef ref) const {
    ArenaClause c = (*this)[ref];
    // A clause being relocated reuses word 1 as the forwarding ref, but
    // word 0 keeps the size, so traversal stays well-defined mid-GC.
    return skip_pads(ref + ArenaClause::kHeaderWords + c.size());
  }

  /// Copies the clause into \p to (once; later calls return the same
  /// forwarding target) and returns its new offset.
  CRef reloc(CRef ref, ClauseArena& to);

  void swap(ClauseArena& other) {
    mem_.swap(other.mem_);
    std::swap(wasted_, other.wasted_);
    std::swap(padding_, other.padding_);
  }

 private:
  CRef skip_pads(CRef ref) const {
    while (ref < mem_.size() && mem_[ref] == kPadWord) ++ref;
    return ref;
  }

  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
  std::size_t padding_ = 0;  ///< pad words emitted for line alignment
};

/// Antecedent of an assignment — none (decision / root fact), a clause
/// in the arena, or the *other* literal of an implicit binary clause.
/// Packed into one word: CRef<<1 for clauses, (lit.index()<<1)|1 for
/// binaries, all-ones for none.
class Reason {
 public:
  constexpr Reason() : code_(kNoneCode) {}

  static Reason clause(CRef ref) {
    assert(ref < (1u << 31));
    return Reason(ref << 1);
  }
  static Reason binary(Lit other) {
    return Reason((static_cast<std::uint32_t>(other.index()) << 1) | 1u);
  }

  bool is_none() const { return code_ == kNoneCode; }
  bool is_binary() const { return code_ != kNoneCode && (code_ & 1u) != 0; }
  bool is_clause() const { return code_ != kNoneCode && (code_ & 1u) == 0; }

  CRef cref() const {
    assert(is_clause());
    return code_ >> 1;
  }
  /// For binary reasons: the clause's other (false) literal.
  Lit other() const {
    assert(is_binary());
    return Lit::from_index(static_cast<std::int32_t>(code_ >> 1));
  }

  friend constexpr bool operator==(Reason a, Reason b) = default;

 private:
  explicit constexpr Reason(std::uint32_t code) : code_(code) {}
  static constexpr std::uint32_t kNoneCode = 0xFFFFFFFFu;
  std::uint32_t code_;
};

inline constexpr Reason kNoReason{};

}  // namespace sateda::sat
