/// \file cube.hpp
/// \brief Cube-and-conquer core types: cubes, the split tree, iCNF
///        cube files and the proof-closing clause generator.
///
/// A *cube* is a conjunction of literals fixing a corner of the search
/// space; a lookahead splitter (splitter.hpp) partitions a hard
/// instance F into cubes c1..cn such that F is satisfiable iff some
/// F ∧ ci is, and the cubes form the leaves of a binary *split tree*:
/// each internal node splits on one variable, its children extending
/// the node's cube with the two polarities.  Conquer workers
/// (conquer.hpp) then solve the cubes independently — the paper's EDA
/// whale instances (CEC miters, hard ATPG, BMC) are exactly the
/// workloads where one CDCL trajectory stalls but thousands of
/// sub-problems race through a pool.
///
/// UNSAT certification: a worker refuting F ∧ ci derives the negated
/// failed-assumption core ¬core_i ⊆ ¬ci as its final proof step, a
/// clause implied by F alone (assumptions are pseudo-decisions, so
/// conflict analysis resolves only clause antecedents).  With every
/// leaf's clause in the database, the split tree closes by resolution:
/// bottom-up, each internal node's ¬cube is RUP from its two
/// children's clauses (negating it asserts the node's cube; each
/// child's clause then propagates one polarity of the split variable —
/// or conflicts outright when the child's core skipped it), and the
/// root's ¬cube is the empty clause.  closing_clauses() emits exactly
/// that postorder sequence, generalizing the SequencedProof ticket
/// stitching of the portfolio to cube proofs plus the cube tree.
///
/// Cube files use the iCNF assumption-line convention — one
/// `a <lit>.. 0` line per cube, `c` comments — so cubes interchange
/// with other cube-and-conquer tooling; the tree is reconstructed from
/// the literal prefixes (read_cubes + CubeTree::build), which is why
/// split-only (--cube-out) and conquer-only (--cube-in) runs compose.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda::sat::cube {

/// A conjunction of literals (a corner of the search space).  The
/// order is the split order: cube[i] was assumed at depth i+1.
using Cube = std::vector<Lit>;

/// Writes cubes in iCNF form: one "a l1 l2 ... 0" line per cube
/// (DIMACS literal codes), preceded by a comment header.
void write_cubes(std::ostream& out, const std::vector<Cube>& cubes);
void write_cubes_file(const std::string& path, const std::vector<Cube>& cubes);

/// Parses iCNF cube lines ("a ... 0"; "c"/"p" lines ignored).  Throws
/// std::runtime_error on malformed input (missing terminator, zero
/// literal mid-line, literal codes that are not integers).
std::vector<Cube> read_cubes(std::istream& in);
std::vector<Cube> read_cubes_file(const std::string& path);

/// The split tree reconstructed from a set of cubes (a binary trie
/// over the cubes' literal prefixes).  Proof stitching needs the tree:
/// the closing clauses resolve leaves back up to the empty clause.
class CubeTree {
 public:
  /// Builds the trie.  Every cube becomes a leaf; shared prefixes
  /// share internal nodes.  The empty cube set yields a single leaf
  /// root (the degenerate "one cube covering everything" tree).
  static CubeTree build(const std::vector<Cube>& cubes);

  /// True iff the tree is a *complete* binary split tree: every
  /// internal node has exactly two children whose edge literals are
  /// complements of one variable, and every cube is a leaf (no cube is
  /// a strict prefix of another).  Only complete trees close into a
  /// refutation — an incomplete cover leaves corners of the search
  /// space unaccounted for.  On failure, \p why (when non-null)
  /// receives a diagnostic naming the offending prefix.
  bool complete(std::string* why = nullptr) const;

  /// Postorder closing-clause sequence for a complete tree: for each
  /// internal node (children first) the clause ¬cube(node), ending
  /// with the root's clause — the empty clause.  Each is RUP given the
  /// leaf clauses ¬core_i (any subsets of the leaf ¬cubes) plus the
  /// earlier closing clauses; see the file comment.  Precondition:
  /// complete().  Leaves contribute nothing (their clauses come from
  /// the conquer workers' traces).
  std::vector<std::vector<Lit>> closing_clauses() const;

  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Depth of the deepest leaf (root = depth 0).
  int max_depth() const;

  /// Leaf-depth histogram: histogram[d] = number of leaves at depth d.
  std::vector<std::int64_t> depth_histogram() const;

 private:
  struct Node {
    Lit lit = kUndefLit;  ///< edge literal from the parent (undef at root)
    int parent = -1;
    int left = -1;   ///< child index, -1 = absent
    int right = -1;  ///< child index, -1 = absent
    bool is_leaf = false;  ///< a cube ends here
    int depth = 0;
  };

  std::vector<Node> nodes_;  ///< nodes_[0] is the root
  std::size_t num_leaves_ = 0;
};

/// Per-run cube statistics, aggregated by the splitter and the
/// conquer pool and surfaced through `sateda-cube --stats` and
/// `sateda-bench --cube`.
struct CubeStats {
  std::int64_t cubes_generated = 0;     ///< leaves emitted by the splitter
  std::int64_t cubes_refuted_split = 0; ///< leaves refuted during splitting
  std::int64_t cubes_solved = 0;        ///< cubes decided by conquer workers
  std::int64_t cubes_stolen = 0;        ///< cubes taken from another worker's deque
  std::int64_t lookahead_probes = 0;    ///< candidate polarity probes scored
  std::int64_t failed_lookaheads = 0;   ///< probes that conflicted (failed literals)
  int max_depth = 0;                    ///< deepest leaf in the split tree
  std::vector<std::int64_t> depth_histogram;  ///< leaves per depth

  CubeStats& operator+=(const CubeStats& o);
  std::string summary() const;
};

}  // namespace sateda::sat::cube
