/// \file cube_engine.hpp
/// \brief SatEngine adapter for cube-and-conquer: the `cube[:N]`
///        EngineSpec backend.
///
/// Wraps the splitter + conquer pool behind the engine seam so all
/// nine application layers and sateda-serve can route whale queries to
/// cube-and-conquer with an engine string — `--engine cube:8` — the
/// same way they select the portfolio.  Each solve() splits afresh
/// (the cube tree depends on the clause set, which is incremental),
/// treating assumptions by conjoining them as unit clauses into the
/// split formula; on UNSAT under assumptions the reported core is the
/// full assumption set (a sound over-approximation — the cube layer
/// proves F ∧ A unsatisfiable without attributing blame to individual
/// assumptions).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/cube/conquer.hpp"
#include "sat/cube/splitter.hpp"
#include "sat/engine.hpp"
#include "support/mutex.hpp"

namespace sateda::sat::cube {

/// Engine-level tunables (the CLI maps its flags here).
struct CubeEngineOptions {
  int num_workers = 0;  ///< conquer workers (0: one per hardware thread)
  SplitOptions split;
  bool share_clauses = true;
};

/// Cube-and-conquer as an incremental SatEngine.
class CubeSolver : public SatEngine {
 public:
  explicit CubeSolver(SolverOptions base = {}, CubeEngineOptions copts = {});
  ~CubeSolver() override;

  std::string name() const override { return "cube"; }

  Var new_var() override;
  void ensure_var(Var v) override;
  int num_vars() const override { return f_.num_vars(); }
  [[nodiscard]] bool add_clause(std::vector<Lit> lits) override;
  using SatEngine::add_clause;
  bool okay() const override { return ok_; }
  std::size_t num_problem_clauses() const override {
    return f_.clauses().size();
  }

  [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions) override;
  using SatEngine::solve;
  const std::vector<lbool>& model() const override { return model_; }
  const std::vector<Lit>& conflict_core() const override {
    return conflict_core_;
  }

  void interrupt() override;
  UnknownReason unknown_reason() const override { return unknown_reason_; }
  void set_budgets(std::int64_t conflicts, std::int64_t time_ms) override {
    conflict_budget_ = conflicts;
    time_budget_ms_ = time_ms;
  }

  SolverStats stats() const override;

  /// Cube counters accumulated over every solve() (also folded into
  /// stats(): cubes_generated/refuted/solved/stolen).
  const CubeStats& cube_stats() const { return cube_stats_; }

 private:
  SolverOptions base_;
  CubeEngineOptions copts_;
  CnfFormula f_;
  bool ok_ = true;

  std::vector<lbool> model_;
  std::vector<Lit> conflict_core_;
  UnknownReason unknown_reason_ = UnknownReason::kNone;
  std::int64_t conflict_budget_ = -1;
  std::int64_t time_budget_ms_ = -1;

  SolverStats stats_;      ///< summed over conquer workers, all solves
  CubeStats cube_stats_;   ///< ditto
  std::int64_t solve_calls_ = 0;

  std::atomic<bool> interrupt_flag_{false};
  Mutex pool_mu_;
  ConquerPool* active_pool_ GUARDED_BY(pool_mu_) = nullptr;
};

}  // namespace sateda::sat::cube
