/// \file conquer.hpp
/// \brief The conquer half of cube-and-conquer: a work-stealing pool
///        of diversified CDCL workers over a fixed cube set, with
///        clause sharing and certified stitched proofs.
///
/// Scheduling: the cube set is dealt round-robin onto per-worker
/// deques.  A worker pops from the *front* of its own deque (cubes in
/// splitter DFS order — neighbouring subtrees share structure, so the
/// incremental solver's learnt clauses stay relevant) and, when its
/// deque drains, steals from the *back* of a victim's (the victim's
/// coldest work).  The steal order is seeded (ConquerOptions::
/// steal_seed) so tests can exercise arbitrary interleavings; the
/// verdict is independent of steal order because every cube's verdict
/// is its own (SAT anywhere wins; UNSAT needs all).
///
/// Sharing and budgets reuse the portfolio plumbing: a
/// SharedClausePool with the same LBD/size filters (a learnt clause is
/// implied by F alone even when derived under cube assumptions, so
/// cross-cube sharing is sound), PortfolioSolver::diversified_options
/// for per-worker configurations, and the same external-interrupt
/// cancellation.
///
/// Proofs generalize the PR 2 SequencedProof mechanism: every worker
/// logs into a per-worker SequencedProof drawing tickets from one
/// shared counter (so an exported clause's derivation precedes every
/// import), each cube refutation ends with the negated assumption
/// core, and certified_proof() appends the cube tree's closing
/// clauses (cube.hpp) to the ticket-stitched merge — one linear DRAT
/// refutation of F that sateda-check certifies with no knowledge of
/// cubes, workers, or stealing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/cube/cube.hpp"
#include "sat/options.hpp"
#include "sat/proof.hpp"
#include "support/mutex.hpp"

namespace sateda::sat {
class Solver;
}  // namespace sateda::sat

namespace sateda::sat::cube {

/// Work-stealing deques over item indices, shared by the in-process
/// conquer pool and the multi-process driver (proc.hpp).  One lock for
/// all deques: a pop costs nanoseconds against a cube solve's
/// milliseconds, so a finer per-deque protocol would buy contention
/// relief nobody measures.
class StealQueue {
 public:
  /// Deals item indices 0..num_items-1 round-robin across
  /// \p num_workers deques, replacing any previous contents.  \p seed
  /// perturbs each worker's victim scan order.
  void deal(int num_workers, std::size_t num_items, std::uint64_t seed);

  /// Pops the next item for \p worker: its own deque's front (items in
  /// deal order — splitter DFS order, so neighbouring subtrees keep an
  /// incremental solver's learnt clauses relevant), else the *back* of
  /// a victim's deque (the victim's coldest work) scanning victims in
  /// the seeded rotation.  Returns -1 when no work is left anywhere;
  /// sets \p *stolen (when non-null) on a steal.
  int next(int worker, bool* stolen) EXCLUDES(mu_);

 private:
  struct Slot {
    std::vector<int> items;
    std::size_t head = 0;  ///< own pops advance head; steals pop the back
  };

  std::uint64_t seed_ = 0;
  Mutex mu_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
};

/// Conquer-pool tunables.
struct ConquerOptions {
  int num_workers = 0;  ///< 0: one per hardware thread
  SolverOptions base;   ///< diversified per worker (portfolio scheme)

  bool share_clauses = true;
  int max_shared_lbd = 8;       ///< as PortfolioOptions
  int max_shared_size = 30;
  std::size_t pool_capacity = 1 << 14;

  std::int64_t cube_conflicts = -1;   ///< per-cube conflict budget
  std::int64_t time_budget_ms = -1;   ///< whole-conquer wall clock

  bool proof = false;  ///< log per-worker SequencedProofs

  /// Perturbs each worker's victim scan order; the verdict must be
  /// invariant under it (the determinism test sweeps seeds).
  std::uint64_t steal_seed = 0;
};

/// Outcome of a conquer run.
struct ConquerResult {
  SolveResult result = SolveResult::kUnknown;
  UnknownReason unknown_reason = UnknownReason::kNone;
  std::vector<lbool> model;  ///< on kSat
  int sat_cube = -1;         ///< index of the satisfiable cube, on kSat
  CubeStats cube_stats;      ///< solved/stolen counters
  SolverStats solver_stats;  ///< summed over workers
};

/// Work-stealing pool solving F ∧ cube_i for a fixed cube set.
class ConquerPool {
 public:
  /// \p extra_assumptions are prepended to every cube (the engine
  /// backend routes solve(assumptions) through here).
  ConquerPool(const CnfFormula& f, std::vector<Cube> cubes,
              const ConquerOptions& opts,
              std::vector<Lit> extra_assumptions = {});
  ~ConquerPool();

  ConquerPool(const ConquerPool&) = delete;
  ConquerPool& operator=(const ConquerPool&) = delete;

  /// Runs the pool to completion (all cubes refuted → kUnsat; any cube
  /// satisfied → kSat; interrupt/budget → kUnknown).  One-shot.
  ConquerResult run();

  /// Cancels an in-flight run() from another thread.
  void interrupt();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// After run() == kUnsat with opts.proof: the full stitched
  /// refutation — ticket-ordered worker steps, then the cube tree's
  /// closing clauses, ending with the empty clause.  (If a worker
  /// refuted F outright — empty core — the merge already ends with the
  /// empty clause and no closing clauses are appended.)
  Proof certified_proof() const;

 private:
  void worker_loop(int worker);

  const ConquerOptions opts_;
  std::vector<Cube> cubes_;
  std::vector<Lit> extras_;  ///< prepended to every cube's assumptions
  std::vector<std::unique_ptr<Solver>> workers_;

  std::atomic<std::uint64_t> proof_ticket_{0};
  std::vector<std::unique_ptr<SequencedProof>> traces_;  ///< per worker

  StealQueue queue_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> user_interrupted_{false};
  std::atomic<int> sat_cube_{-1};
  std::atomic<bool> root_refuted_{false};  ///< a worker derived core = {}
  std::atomic<bool> budget_exhausted_{false};

  Mutex result_mu_;
  std::vector<lbool> model_ GUARDED_BY(result_mu_);
  UnknownReason unknown_reason_ GUARDED_BY(result_mu_) = UnknownReason::kNone;
  std::vector<CubeStats> worker_stats_;  ///< per worker, joined after run

  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
  bool ran_ = false;
};

}  // namespace sateda::sat::cube
