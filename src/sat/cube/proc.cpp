#include "sat/cube/proc.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>

#include "sat/cube/conquer.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "serve/framing.hpp"
#include "support/mutex.hpp"

namespace sateda::sat::cube {

namespace {

int dimacs_code(Lit l) { return l.negative() ? -(l.var() + 1) : (l.var() + 1); }

// --- raw-fd frame IO (driver side; children use the iostream codec) --

bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// 0 = ok, 1 = clean EOF, 2 = error/truncated.
int read_all(int fd, char* p, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return 2;
    }
    if (r == 0) return got == 0 && eof_ok ? 1 : 2;
    got += static_cast<std::size_t>(r);
  }
  return 0;
}

bool fd_write_frame(int fd, const std::string& payload) {
  if (payload.size() > serve::kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  return write_all(fd, reinterpret_cast<const char*>(prefix), 4) &&
         write_all(fd, payload.data(), payload.size());
}

int fd_read_frame(int fd, std::string& payload) {
  unsigned char prefix[4];
  const int st =
      read_all(fd, reinterpret_cast<char*>(prefix), 4, /*eof_ok=*/true);
  if (st != 0) return st;
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > serve::kMaxFrameBytes) return 2;
  payload.resize(len);
  if (len == 0) return 0;
  return read_all(fd, payload.data(), len, /*eof_ok=*/false);
}

struct Child {
  pid_t pid = -1;
  int in_fd = -1;   ///< driver writes requests here (child stdin)
  int out_fd = -1;  ///< driver reads responses here (child stdout)
};

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// fork/exec one worker with stdin/stdout piped to the driver.  All
/// children are spawned before any driver thread starts, so fork never
/// runs in a multithreaded parent.  The pipes are close-on-exec: the
/// child's dup2 onto stdin/stdout clears the flag for the two ends it
/// needs, while every *other* child's inherited copies vanish at exec —
/// otherwise a sibling would hold a stray write end and the EOF-based
/// shutdown (driver closes in_fd -> child's read_frame sees EOF) would
/// never fire, wedging waitpid.
bool spawn_child(const ProcOptions& opts, Child& child, std::string& error) {
  int to_child[2];
  int from_child[2];
  auto cloexec_pair = [](int fds[2]) {
    return ::fcntl(fds[0], F_SETFD, FD_CLOEXEC) == 0 &&
           ::fcntl(fds[1], F_SETFD, FD_CLOEXEC) == 0;
  };
  if (::pipe(to_child) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (::pipe(from_child) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    return false;
  }
  if (!cloexec_pair(to_child) || !cloexec_pair(from_child)) {
    error = std::string("fcntl: ") + std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    error = std::string("fork: ") + std::strerror(errno);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<const char*> argv;
    argv.push_back(opts.solver_path.c_str());
    argv.push_back(opts.cnf_path.c_str());
    argv.push_back("--cube-worker");
    if (opts.proof) {
      argv.push_back("--proof");
      argv.push_back("-");
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], const_cast<char* const*>(argv.data()));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  child.pid = pid;
  child.in_fd = to_child[1];
  child.out_fd = from_child[0];
  return true;
}

}  // namespace

ProcResult conquer_procs(const std::vector<Cube>& in_cubes,
                         const ProcOptions& opts) {
  ProcResult res;
  std::vector<Cube> cubes = in_cubes;
  if (cubes.empty()) cubes.emplace_back();

  int n = std::max(1, opts.num_procs);
  n = std::min<int>(n, static_cast<int>(cubes.size()));

  std::vector<Child> children(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!spawn_child(opts, children[static_cast<std::size_t>(i)], res.error)) {
      for (Child& c : children) {
        if (c.pid > 0) {
          ::kill(c.pid, SIGKILL);
          ::waitpid(c.pid, nullptr, 0);
        }
        close_fd(c.in_fd);
        close_fd(c.out_fd);
      }
      return res;
    }
  }

  StealQueue queue;
  queue.deal(n, cubes.size(), opts.steal_seed);

  std::chrono::steady_clock::time_point deadline;
  const bool has_deadline = opts.time_budget_ms >= 0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(opts.time_budget_ms);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> sat_cube{-1};
  std::atomic<bool> root_refuted{false};
  std::atomic<bool> budget_exhausted{false};
  std::atomic<bool> failed{false};
  Mutex result_mu;
  std::vector<lbool> model;
  UnknownReason unknown_reason = UnknownReason::kNone;
  std::string error;
  std::vector<CubeStats> stats(static_cast<std::size_t>(n));
  std::vector<std::string> proof_buf(static_cast<std::size_t>(n));

  // A worker that decides the run silences the rest: SIGKILL unblocks
  // their drivers' frame reads with EOF.
  auto kill_others = [&](int me) {
    for (int j = 0; j < n; ++j) {
      if (j == me) continue;
      ::kill(children[static_cast<std::size_t>(j)].pid, SIGKILL);
    }
  };

  auto driver = [&](int i) {
    Child& child = children[static_cast<std::size_t>(i)];
    CubeStats& st = stats[static_cast<std::size_t>(i)];
    std::string payload;
    while (!stop.load(std::memory_order_relaxed)) {
      std::int64_t time_left_ms = -1;
      if (has_deadline) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          budget_exhausted.store(true, std::memory_order_relaxed);
          {
            MutexLock lock(&result_mu);
            unknown_reason = UnknownReason::kTimeBudget;
          }
          stop.store(true, std::memory_order_relaxed);
          kill_others(i);
          break;
        }
        time_left_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - now)
                           .count();
      }
      bool stolen = false;
      const int ci = queue.next(i, &stolen);
      if (ci < 0) break;
      if (stolen) ++st.cubes_stolen;

      std::ostringstream req;
      req << "solve " << opts.cube_conflicts << " " << time_left_ms;
      for (Lit l : cubes[static_cast<std::size_t>(ci)]) {
        req << " " << dimacs_code(l);
      }
      req << " 0";
      const bool wrote = fd_write_frame(child.in_fd, req.str());
      const int rst = wrote ? fd_read_frame(child.out_fd, payload) : 2;
      if (!wrote || rst != 0) {
        if (!stop.load(std::memory_order_relaxed)) {
          failed.store(true, std::memory_order_relaxed);
          {
            MutexLock lock(&result_mu);
            if (error.empty()) error = "cube worker died mid-solve";
          }
          stop.store(true, std::memory_order_relaxed);
          kill_others(i);
        }
        break;
      }

      std::istringstream resp(payload);
      std::string s_tag;
      std::string verdict;
      resp >> s_tag >> verdict;
      if (s_tag != "s") verdict = "?";
      if (verdict == "SAT") {
        int expected = -1;
        if (sat_cube.compare_exchange_strong(expected, ci)) {
          std::vector<lbool> m;
          std::string v_tag;
          resp >> v_tag;
          long long code = 0;
          while (resp >> code && code != 0) {
            const Var v = static_cast<Var>(std::llabs(code)) - 1;
            if (static_cast<std::size_t>(v) >= m.size()) {
              m.resize(static_cast<std::size_t>(v) + 1, l_undef);
            }
            m[static_cast<std::size_t>(v)] = code > 0 ? l_true : l_false;
          }
          MutexLock lock(&result_mu);
          model = std::move(m);
        }
        stop.store(true, std::memory_order_relaxed);
        kill_others(i);
        break;
      }
      if (verdict == "UNSAT") {
        ++st.cubes_solved;
        std::size_t core_size = 0;
        resp >> core_size;
        if (opts.proof) {
          // The DRAT delta is everything after the verdict line.
          const std::size_t nl = payload.find('\n');
          if (nl != std::string::npos) {
            proof_buf[static_cast<std::size_t>(i)].append(payload, nl + 1,
                                                          std::string::npos);
          }
        }
        if (core_size == 0) {
          root_refuted.store(true, std::memory_order_relaxed);
          stop.store(true, std::memory_order_relaxed);
          kill_others(i);
          break;
        }
        continue;
      }
      // UNKNOWN (or garbage): the pool cannot decide the instance.
      if (!stop.load(std::memory_order_relaxed)) {
        budget_exhausted.store(true, std::memory_order_relaxed);
        int reason_code = static_cast<int>(UnknownReason::kConflictBudget);
        resp >> reason_code;
        {
          MutexLock lock(&result_mu);
          unknown_reason = static_cast<UnknownReason>(reason_code);
        }
        stop.store(true, std::memory_order_relaxed);
        kill_others(i);
      }
      break;
    }
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) threads.emplace_back(driver, i);
    for (auto& t : threads) t.join();
  }
  for (Child& c : children) {
    close_fd(c.in_fd);  // EOF: idle children exit cleanly
    close_fd(c.out_fd);
    ::waitpid(c.pid, nullptr, 0);
  }

  for (const CubeStats& st : stats) res.cube_stats += st;

  const int sat_ci = sat_cube.load(std::memory_order_relaxed);
  if (sat_ci >= 0) {
    res.result = SolveResult::kSat;
    res.sat_cube = sat_ci;
    MutexLock lock(&result_mu);
    res.model = std::move(model);
    return res;
  }
  if (failed.load(std::memory_order_relaxed)) {
    res.result = SolveResult::kUnknown;
    res.unknown_reason = UnknownReason::kInterrupted;
    MutexLock lock(&result_mu);
    res.error = error;
    return res;
  }
  if (budget_exhausted.load(std::memory_order_relaxed)) {
    res.result = SolveResult::kUnknown;
    MutexLock lock(&result_mu);
    res.unknown_reason = unknown_reason;
    return res;
  }
  res.result = SolveResult::kUnsat;
  if (opts.proof) {
    if (root_refuted.load(std::memory_order_relaxed)) {
      // The refuting child's buffer already ends with the empty
      // clause and is a complete linear refutation on its own.
      for (int i = 0; i < n; ++i) {
        const std::string& buf = proof_buf[static_cast<std::size_t>(i)];
        if (buf.size() >= 2 && buf.compare(buf.size() - 2, 2, "0\n") == 0) {
          res.drat_text = buf;
        }
      }
    } else {
      for (const std::string& buf : proof_buf) res.drat_text += buf;
      std::ostringstream closing;
      for (const std::vector<Lit>& clause :
           CubeTree::build(cubes).closing_clauses()) {
        for (Lit l : clause) closing << dimacs_code(l) << " ";
        closing << "0\n";
      }
      res.drat_text += closing.str();
    }
  }
  return res;
}

int run_cube_worker(const CnfFormula& f, const SolverOptions& opts,
                    bool stream_proof) {
  Solver s(opts);
  Proof proof;
  std::size_t sent_steps = 0;
  if (stream_proof) s.set_proof_tracer(&proof);
  [[maybe_unused]] const bool ok = s.add_formula(f);

  std::string payload;
  while (true) {
    const serve::FrameStatus st = serve::read_frame(std::cin, payload);
    if (st == serve::FrameStatus::kEof) return 0;
    if (st != serve::FrameStatus::kOk) return 1;

    std::istringstream req(payload);
    std::string verb;
    req >> verb;
    if (verb != "solve") return 1;
    std::int64_t conflicts = -1;
    std::int64_t time_ms = -1;
    req >> conflicts >> time_ms;
    std::vector<Lit> assumptions;
    long long code = 0;
    while (req >> code && code != 0) {
      const Var v = static_cast<Var>(std::llabs(code) - 1);
      s.ensure_var(v);
      assumptions.push_back(Lit(v, code < 0));
    }

    s.set_budgets(conflicts, time_ms);
    const SolveResult r = s.solve(assumptions);
    std::ostringstream resp;
    switch (r) {
      case SolveResult::kSat: {
        resp << "s SAT\nv";
        const std::vector<lbool>& m = s.model();
        for (Var v = 0; v < s.num_vars(); ++v) {
          const lbool val =
              static_cast<std::size_t>(v) < m.size() ? m[v] : l_undef;
          resp << " " << (val.is_false() ? -(v + 1) : (v + 1));
        }
        resp << " 0\n";
        break;
      }
      case SolveResult::kUnsat: {
        const std::size_t core_size = s.conflict_core().size();
        if (stream_proof && core_size == 0 && !proof.derives_empty_clause()) {
          // Root conflict found during clause addition: the trace may
          // lack the final step, but the empty clause is RUP from the
          // contradictory units, so closing it here stays checkable.
          proof.on_derive({});
        }
        resp << "s UNSAT " << core_size << "\n";
        if (stream_proof) {
          const std::vector<Proof::Step>& steps = proof.steps();
          for (std::size_t k = sent_steps; k < steps.size(); ++k) {
            // Deletions are withheld: the driver concatenates traces
            // from several children, and one child's deletion must not
            // remove a clause another child's steps (or the closing
            // clauses) still resolve on — the stitch_proofs() rule.
            if (steps[k].deletion) continue;
            write_drat_step(resp, DratFormat::kText, /*deletion=*/false,
                            steps[k].lits);
          }
          sent_steps = steps.size();
        }
        break;
      }
      case SolveResult::kUnknown:
        resp << "s UNKNOWN " << static_cast<int>(s.unknown_reason()) << "\n";
        break;
    }
    if (!serve::write_frame(std::cout, resp.str())) return 1;
    std::cout.flush();
  }
}

}  // namespace sateda::sat::cube
