#include "sat/cube/cube_engine.hpp"

#include <algorithm>
#include <chrono>

namespace sateda::sat::cube {

namespace {

std::int64_t remaining_ms(std::chrono::steady_clock::time_point deadline,
                          bool has_deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  return std::max<std::int64_t>(0, left);
}

}  // namespace

CubeSolver::CubeSolver(SolverOptions base, CubeEngineOptions copts)
    : base_(std::move(base)), copts_(std::move(copts)) {}

CubeSolver::~CubeSolver() = default;

Var CubeSolver::new_var() { return f_.new_var(); }

void CubeSolver::ensure_var(Var v) { f_.ensure_var(v); }

bool CubeSolver::add_clause(std::vector<Lit> lits) {
  if (lits.empty()) ok_ = false;
  f_.add_clause(std::move(lits));
  return ok_;
}

SolveResult CubeSolver::solve(const std::vector<Lit>& assumptions) {
  ++solve_calls_;
  model_.clear();
  conflict_core_.clear();
  unknown_reason_ = UnknownReason::kNone;
  interrupt_flag_.store(false, std::memory_order_relaxed);
  if (!ok_) return SolveResult::kUnsat;

  std::chrono::steady_clock::time_point deadline;
  const bool has_deadline = time_budget_ms_ >= 0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(time_budget_ms_);
  }

  // Assumptions become units of the split formula: the splitter then
  // partitions the *conditioned* search space, models satisfy the
  // assumptions by construction, and an UNSAT verdict refutes F ∧ A —
  // reported with the whole assumption set as the core (see file
  // comment in cube_engine.hpp).
  CnfFormula g = f_;
  for (Lit a : assumptions) {
    g.ensure_var(a.var());
    g.add_unit(a);
  }

  SplitOptions sopts = copts_.split;
  sopts.time_budget_ms = remaining_ms(deadline, has_deadline);
  SplitResult sr = split_formula(g, sopts, &interrupt_flag_);
  cube_stats_ += sr.stats;
  if (sr.status == SolveResult::kSat) {
    model_ = std::move(sr.model);
    return SolveResult::kSat;
  }
  if (interrupt_flag_.load(std::memory_order_relaxed)) {
    unknown_reason_ = UnknownReason::kInterrupted;
    return SolveResult::kUnknown;
  }

  ConquerOptions qopts;
  qopts.num_workers = copts_.num_workers;
  qopts.base = base_;
  qopts.share_clauses = copts_.share_clauses;
  qopts.cube_conflicts = conflict_budget_;
  qopts.time_budget_ms = remaining_ms(deadline, has_deadline);
  qopts.proof = false;  // engine seam carries verdicts, not certificates
  ConquerPool pool(g, std::move(sr.cubes), qopts);
  {
    MutexLock lock(&pool_mu_);
    active_pool_ = &pool;
  }
  if (interrupt_flag_.load(std::memory_order_relaxed)) pool.interrupt();
  const ConquerResult cr = pool.run();
  {
    MutexLock lock(&pool_mu_);
    active_pool_ = nullptr;
  }

  cube_stats_ += cr.cube_stats;
  stats_ += cr.solver_stats;
  switch (cr.result) {
    case SolveResult::kSat:
      model_ = cr.model;
      return SolveResult::kSat;
    case SolveResult::kUnsat:
      conflict_core_ = assumptions;
      return SolveResult::kUnsat;
    case SolveResult::kUnknown:
      break;
  }
  unknown_reason_ = cr.unknown_reason;
  return SolveResult::kUnknown;
}

void CubeSolver::interrupt() {
  interrupt_flag_.store(true, std::memory_order_relaxed);
  MutexLock lock(&pool_mu_);
  if (active_pool_ != nullptr) active_pool_->interrupt();
}

SolverStats CubeSolver::stats() const {
  SolverStats s = stats_;
  // Worker counters only accrue when conquer ran; count the engine's
  // own solve() calls so SAT-at-split runs are not invisible.
  s.solve_calls = solve_calls_;
  s.cubes_generated += cube_stats_.cubes_generated;
  s.cubes_refuted_split += cube_stats_.cubes_refuted_split;
  s.cubes_solved += cube_stats_.cubes_solved;
  s.cubes_stolen += cube_stats_.cubes_stolen;
  return s;
}

}  // namespace sateda::sat::cube
