/// \file splitter.hpp
/// \brief Lookahead cube splitter: partitions a formula into a binary
///        split tree of cubes for the conquer pool.
///
/// The splitter is the "cube" half of cube-and-conquer.  It walks a
/// DFS over candidate split variables, at each node reusing the
/// failed-literal probing machinery the inprocessor runs (assume a
/// literal at a fresh decision level, propagate to fixpoint, measure,
/// erase) — but where probing only cares about *conflicts*, the
/// splitter scores every candidate by the measured propagation it
/// causes: for variable v with trail growths d+ (assume v) and d−
/// (assume ¬v), the march-style mixed score d+·d− + d+ + d− prefers
/// variables that constrain *both* halves of the split.  Probes that
/// conflict are harvested exactly like failed literals — the
/// complement is enqueued at the node level, strengthening the whole
/// subtree for free; when both polarities fail the node is refuted.
///
/// Cutoffs: a static depth cutoff bounds the tree, and a *dynamic*
/// cutoff retires easy branches early — a second, persistent CDCL
/// solver attacks each node's cube under a small conflict budget, and
/// a refutation within budget makes the node a leaf immediately (the
/// cube is still emitted: the conquer layer re-derives the refutation
/// with proof logging, keeping the splitter itself outside the trusted
/// base).  If the probe finds a model instead, the whole run is SAT.
///
/// Every leaf — refuted or not — is emitted, so the cube set is always
/// a *complete* cover (CubeTree::complete()), which is what the proof
/// stitching in conquer.hpp relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/cube/cube.hpp"
#include "sat/options.hpp"

namespace sateda::sat {
class Solver;
}  // namespace sateda::sat

namespace sateda::sat::cube {

/// Splitter tunables.
struct SplitOptions {
  /// Static cutoff: leaves are emitted at this depth.  The default
  /// targets 2^10 = 1024 cubes on instances where nothing refutes.
  int cutoff = 10;

  /// Dynamic cutoff: per-node conflict budget for the refutation
  /// probe (0 disables).  A node refuted within budget becomes a leaf.
  std::int64_t refute_conflicts = 200;

  /// Lookahead width: at most this many candidate variables are
  /// probed per node (preselected by occurrence counts).
  int candidates = 24;

  /// Hard cap on emitted cubes (safety valve; 0 = unlimited).  When
  /// the cap is hit, remaining open nodes are emitted as leaves.
  std::int64_t max_cubes = 1 << 20;

  /// Wall-clock budget for the whole split (ms; negative = none).
  /// On expiry, open nodes are emitted as leaves.
  std::int64_t time_budget_ms = -1;

  /// Propagation-tick budget per lookahead pass at one node (bounds
  /// pathological probe blowup; ticks are propagations).
  std::int64_t node_probe_ticks = 1 << 20;

  /// RNG seed for tie-breaking among equal-score candidates.
  std::uint64_t seed = 1;
};

/// Outcome of a split run.
struct SplitResult {
  /// kSat when a probe found a model (model below); otherwise kUnknown
  /// with the cube cover in `cubes` — the conquer layer decides.
  SolveResult status = SolveResult::kUnknown;
  std::vector<Cube> cubes;
  std::vector<lbool> model;  ///< satisfying assignment when status==kSat
  CubeStats stats;
};

/// Runs the lookahead splitter on \p f.  Interruptible via
/// \p interrupt (may be null): open nodes become leaves, so the cover
/// stays complete.
SplitResult split_formula(const CnfFormula& f, const SplitOptions& opts,
                          const std::atomic<bool>* interrupt = nullptr);

}  // namespace sateda::sat::cube
