/// \file proc.hpp
/// \brief Multi-process conquer: `sateda-solve --cube-worker` children
///        driven over the serve frame transport.
///
/// The in-process pool (conquer.hpp) shares one address space, so a
/// pathological worker (memory blowup, a crash in an experimental
/// configuration) takes the whole run down.  Process mode trades the
/// shared clause pool for isolation: each child is a full sateda-solve
/// loaded with the same CNF, the driver deals cubes from the same
/// StealQueue, and each request/response rides the length-prefixed
/// frame codec of sateda-serve (serve/framing.hpp) over the child's
/// stdin/stdout pipes.
///
/// Wire protocol (text payloads inside frames):
///
///   request:   solve <conflict_budget> <time_ms> <lit> ... 0
///   response:  s SAT\nv <lit> ... 0          (model, DIMACS codes)
///              s UNSAT <core_size>\n<drat>   (proof delta, see below)
///              s UNKNOWN <reason_code>
///
/// EOF on stdin ends a child.  Proof mode: each UNSAT response carries
/// the child's *new* derivation steps since its previous response as
/// text DRAT (deletions are omitted — child A's deletion must not
/// remove a clause the stitched proof still resolves on, exactly the
/// stitch_proofs() rule).  Children never exchange clauses, so each
/// child's trace is a linear derivation from F alone and concatenating
/// the per-child buffers in child order is sound; the driver appends
/// the cube tree's closing clauses to finish the refutation.  A
/// core_size of 0 means the child refuted F outright — its buffer
/// already ends with the empty clause and stands alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/cube/cube.hpp"
#include "sat/options.hpp"

namespace sateda::sat::cube {

/// Multi-process conquer tunables.
struct ProcOptions {
  std::string solver_path;  ///< the sateda-solve binary to spawn
  std::string cnf_path;     ///< DIMACS file every child loads
  int num_procs = 2;
  std::int64_t cube_conflicts = -1;  ///< per-cube conflict budget
  std::int64_t time_budget_ms = -1;  ///< whole-conquer wall clock
  bool proof = false;                ///< children stream DRAT deltas
  std::uint64_t steal_seed = 0;
};

/// Outcome of a multi-process conquer run.
struct ProcResult {
  SolveResult result = SolveResult::kUnknown;
  UnknownReason unknown_reason = UnknownReason::kNone;
  std::vector<lbool> model;  ///< on kSat
  int sat_cube = -1;
  CubeStats cube_stats;
  /// On kUnsat with proof: the stitched refutation as text DRAT
  /// (child deltas in child order, then the closing clauses).
  std::string drat_text;
  std::string error;  ///< non-empty on spawn/protocol failure
};

/// Spawns \p opts.num_procs children and conquers \p cubes.  Blocks
/// until a verdict (or failure, reported in ProcResult::error).
ProcResult conquer_procs(const std::vector<Cube>& cubes,
                         const ProcOptions& opts);

/// Child-side loop for `sateda-solve --cube-worker`: answers framed
/// solve requests on stdin with framed verdicts on stdout until EOF.
/// \p stream_proof enables the DRAT deltas in UNSAT responses.
/// Returns a process exit code (0 on clean EOF).
int run_cube_worker(const CnfFormula& f, const SolverOptions& opts,
                    bool stream_proof);

}  // namespace sateda::sat::cube
