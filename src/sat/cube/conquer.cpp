#include "sat/cube/conquer.hpp"

#include <algorithm>
#include <thread>

#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace sateda::sat::cube {

void StealQueue::deal(int num_workers, std::size_t num_items,
                      std::uint64_t seed) {
  MutexLock lock(&mu_);
  seed_ = seed;
  slots_.assign(static_cast<std::size_t>(num_workers), {});
  for (std::size_t i = 0; i < num_items; ++i) {
    slots_[i % static_cast<std::size_t>(num_workers)].items.push_back(
        static_cast<int>(i));
  }
}

int StealQueue::next(int worker, bool* stolen) {
  MutexLock lock(&mu_);
  if (stolen != nullptr) *stolen = false;
  Slot& own = slots_[static_cast<std::size_t>(worker)];
  if (own.head < own.items.size()) {
    return own.items[own.head++];
  }
  const int n = static_cast<int>(slots_.size());
  if (n == 1) return -1;
  // Seeded victim rotation: different seeds visit victims in different
  // orders, which is exactly the degree of freedom the determinism
  // test sweeps.
  const std::uint64_t mix =
      (seed_ + 0x9e3779b97f4a7c15ULL) *
      (static_cast<std::uint64_t>(worker) + 0x2545f4914f6cdd1dULL);
  const int start = static_cast<int>(mix % static_cast<std::uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    const int v = (start + k) % n;
    if (v == worker) continue;
    Slot& victim = slots_[static_cast<std::size_t>(v)];
    if (victim.head < victim.items.size()) {
      const int item = victim.items.back();
      victim.items.pop_back();
      if (stolen != nullptr) *stolen = true;
      return item;
    }
  }
  return -1;
}

ConquerPool::ConquerPool(const CnfFormula& f, std::vector<Cube> cubes,
                         const ConquerOptions& opts,
                         std::vector<Lit> extra_assumptions)
    : opts_(opts), cubes_(std::move(cubes)), extras_(std::move(extra_assumptions)) {
  // No cubes means "the whole search space in one piece" — the single
  // empty cube, so the pool degenerates to one incremental solve.
  if (cubes_.empty()) cubes_.emplace_back();

  int n = opts_.num_workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 2;
  // More workers than cubes would just load F into idle solvers.
  n = std::min<int>(n, static_cast<int>(cubes_.size()));

  workers_.reserve(static_cast<std::size_t>(n));
  if (opts_.proof) traces_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto w = std::make_unique<Solver>(
        PortfolioSolver::diversified_options(opts_.base, i));
    w->set_external_interrupt(&stop_);
    if (opts_.proof) {
      // Tracer before clauses, as with PortfolioSolver::enable_proof():
      // root strengthenings during construction belong to the trace.
      traces_.push_back(std::make_unique<SequencedProof>(&proof_ticket_));
      w->set_proof_tracer(traces_.back().get());
    }
    [[maybe_unused]] const bool ok = w->add_formula(f);
    for (Lit l : extras_) w->ensure_var(l.var());
    for (const Cube& c : cubes_) {
      for (Lit l : c) w->ensure_var(l.var());
    }
    workers_.push_back(std::move(w));
  }

  worker_stats_.resize(static_cast<std::size_t>(n));
  queue_.deal(n, cubes_.size(), opts_.steal_seed);
}

ConquerPool::~ConquerPool() = default;

void ConquerPool::interrupt() {
  user_interrupted_.store(true, std::memory_order_relaxed);
  stop_.store(true, std::memory_order_relaxed);
}

void ConquerPool::worker_loop(int worker) {
  Solver& s = *workers_[static_cast<std::size_t>(worker)];
  CubeStats& st = worker_stats_[static_cast<std::size_t>(worker)];
  std::vector<Lit> assumptions;
  while (!stop_.load(std::memory_order_relaxed)) {
    std::int64_t time_left_ms = -1;
    if (has_deadline_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline_) {
        budget_exhausted_.store(true, std::memory_order_relaxed);
        {
          MutexLock lock(&result_mu_);
          unknown_reason_ = UnknownReason::kTimeBudget;
        }
        stop_.store(true, std::memory_order_relaxed);
        break;
      }
      time_left_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline_ - now)
                         .count();
    }
    bool stolen = false;
    const int ci = queue_.next(worker, &stolen);
    if (ci < 0) break;
    if (stolen) ++st.cubes_stolen;

    assumptions = extras_;
    const Cube& c = cubes_[static_cast<std::size_t>(ci)];
    assumptions.insert(assumptions.end(), c.begin(), c.end());
    s.set_budgets(opts_.cube_conflicts, time_left_ms);
    const SolveResult r = s.solve(assumptions);
    if (r == SolveResult::kSat) {
      int expected = -1;
      if (sat_cube_.compare_exchange_strong(expected, ci)) {
        MutexLock lock(&result_mu_);
        model_ = s.model();
      }
      stop_.store(true, std::memory_order_relaxed);
      break;
    }
    if (r == SolveResult::kUnsat) {
      ++st.cubes_solved;
      if (s.conflict_core().empty()) {
        // The clause set itself is refuted (shared clauses can close F
        // at the root): every other cube is moot, and the worker's
        // trace already ends with the empty clause.
        root_refuted_.store(true, std::memory_order_relaxed);
        stop_.store(true, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    // kUnknown: either we were cancelled, or this cube exhausted its
    // budget — in which case the pool cannot decide the instance.
    if (stop_.load(std::memory_order_relaxed)) break;
    budget_exhausted_.store(true, std::memory_order_relaxed);
    {
      MutexLock lock(&result_mu_);
      unknown_reason_ = s.unknown_reason();
    }
    stop_.store(true, std::memory_order_relaxed);
    break;
  }
}

ConquerResult ConquerPool::run() {
  ConquerResult res;
  if (ran_) return res;
  ran_ = true;
  if (opts_.time_budget_ms >= 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(opts_.time_budget_ms);
    has_deadline_ = true;
  }

  const int n = num_workers();
  SharedClausePool pool(n, opts_.pool_capacity);
  if (opts_.share_clauses) {
    const int max_lbd = opts_.max_shared_lbd;
    const auto max_size = static_cast<std::size_t>(opts_.max_shared_size);
    for (int i = 0; i < n; ++i) {
      Solver* w = workers_[static_cast<std::size_t>(i)].get();
      w->set_clause_export(
          [&pool, i, max_lbd, max_size](const std::vector<Lit>& lits, int lbd) {
            if (lbd > max_lbd || lits.size() > max_size) return false;
            pool.publish(i, lits);
            return true;
          });
      w->set_clause_import([&pool, i](std::vector<std::vector<Lit>>& out) {
        pool.collect(i, out);
      });
    }
  }

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([this, i] { worker_loop(i); });
    }
    for (auto& t : threads) t.join();
  }
  for (auto& w : workers_) {
    w->set_clause_export({});
    w->set_clause_import({});
  }

  for (const CubeStats& st : worker_stats_) res.cube_stats += st;
  for (const auto& w : workers_) res.solver_stats += w->stats();

  const int sat_ci = sat_cube_.load(std::memory_order_relaxed);
  if (sat_ci >= 0) {
    res.result = SolveResult::kSat;
    res.sat_cube = sat_ci;
    MutexLock lock(&result_mu_);
    res.model = model_;
    return res;
  }
  if (user_interrupted_.load(std::memory_order_relaxed)) {
    res.result = SolveResult::kUnknown;
    res.unknown_reason = UnknownReason::kInterrupted;
    return res;
  }
  if (budget_exhausted_.load(std::memory_order_relaxed)) {
    res.result = SolveResult::kUnknown;
    MutexLock lock(&result_mu_);
    res.unknown_reason = unknown_reason_;
    return res;
  }
  // Every cube refuted (or F itself was).
  res.result = SolveResult::kUnsat;
  return res;
}

Proof ConquerPool::certified_proof() const {
  std::vector<const SequencedProof*> ptrs;
  ptrs.reserve(traces_.size());
  for (const auto& t : traces_) ptrs.push_back(t.get());
  Proof p = stitch_proofs(ptrs);
  if (p.derives_empty_clause()) return p;  // F refuted outright
  const CubeTree tree = CubeTree::build(cubes_);
  std::vector<Lit> neg_extras;
  neg_extras.reserve(extras_.size());
  for (Lit l : extras_) neg_extras.push_back(~l);
  for (const std::vector<Lit>& closing : tree.closing_clauses()) {
    // Under engine assumptions the refutation closes to ¬extras (the
    // checker discharges it with the assumptions); with none, the last
    // clause is empty.
    std::vector<Lit> clause = neg_extras;
    clause.insert(clause.end(), closing.begin(), closing.end());
    p.on_derive(clause);
  }
  return p;
}

}  // namespace sateda::sat::cube
