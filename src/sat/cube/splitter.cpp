#include "sat/cube/splitter.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "sat/solver.hpp"

namespace sateda::sat::cube {

namespace {

SolverOptions lookahead_options(const SplitOptions& opts) {
  SolverOptions so;
  so.seed = opts.seed;
  // The lookahead solver never runs search() — only manual
  // enqueue/deduce/erase cycles — so inprocessing would never trigger;
  // disable it outright so the probe solver below can share this
  // helper without inheriting an entry round.
  so.inprocess.enabled = false;
  return so;
}

}  // namespace

/// Drives one DFS split of a formula.  Friend of Solver: reuses the
/// same enqueue/deduce/erase_until probing cycle as the inprocessor's
/// failed-literal pass, one decision level per cube literal plus one
/// scratch level per lookahead probe.
class LookaheadSplitter {
 public:
  LookaheadSplitter(const CnfFormula& f, const SplitOptions& opts,
                    const std::atomic<bool>* interrupt)
      : opts_(opts),
        interrupt_(interrupt),
        s_(lookahead_options(opts)),
        probe_(lookahead_options(opts)) {
    formula_ok_ = s_.add_formula(f);
    if (opts_.refute_conflicts > 0) {
      probe_ok_ = probe_.add_formula(f);
    }
  }

  SplitResult run() {
    if (opts_.time_budget_ms >= 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opts_.time_budget_ms);
      has_deadline_ = true;
    }
    // Root propagation: a trivially refuted formula still gets a
    // complete cover — the single empty cube, which the conquer layer
    // refutes with a proper proof.
    if (!formula_ok_ || !s_.deduce().is_none()) {
      s_.ok_ = false;
      emit_leaf(/*refuted=*/true);
      return finish();
    }
    split_node(0);
    return finish();
  }

 private:
  SplitResult finish() {
    SplitResult res;
    res.stats = stats_;
    if (sat_found_) {
      res.status = SolveResult::kSat;
      res.model = std::move(model_);
      return res;
    }
    res.status = SolveResult::kUnknown;
    res.cubes = std::move(cubes_);
    return res;
  }

  bool out_of_budget() const {
    if (interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (opts_.max_cubes > 0 &&
        static_cast<std::int64_t>(cubes_.size()) >= opts_.max_cubes) {
      return true;
    }
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      return true;
    }
    return false;
  }

  void emit_leaf(bool refuted) {
    const int depth = static_cast<int>(cube_.size());
    cubes_.push_back(cube_);
    ++stats_.cubes_generated;
    if (refuted) ++stats_.cubes_refuted_split;
    stats_.max_depth = std::max(stats_.max_depth, depth);
    if (stats_.depth_histogram.size() <= static_cast<std::size_t>(depth)) {
      stats_.depth_histogram.resize(static_cast<std::size_t>(depth) + 1, 0);
    }
    ++stats_.depth_histogram[static_cast<std::size_t>(depth)];
  }

  /// Precondition: decision_level()==depth, cube_ assigned and
  /// propagated to fixpoint without conflict.
  void split_node(int depth) {
    if (sat_found_) return;
    if (out_of_budget() || depth >= opts_.cutoff) {
      emit_leaf(/*refuted=*/false);
      return;
    }
    if (s_.num_assigned() == s_.num_vars()) {
      // Propagation fixpoint with every variable assigned and no
      // conflict: every clause holds — a model.
      model_.assign(s_.assigns_.begin(), s_.assigns_.end());
      sat_found_ = true;
      return;
    }
    // Dynamic cutoff: let a budgeted CDCL probe retire easy branches.
    // (Skipped at the root — that is just "solve the instance".)
    if (opts_.refute_conflicts > 0 && probe_ok_ && !cube_.empty()) {
      probe_.set_budgets(opts_.refute_conflicts, -1);
      switch (probe_.solve(cube_)) {
        case SolveResult::kUnsat:
          emit_leaf(/*refuted=*/true);
          return;
        case SolveResult::kSat:
          model_ = probe_.model();
          sat_found_ = true;
          return;
        case SolveResult::kUnknown:
          break;  // too hard within budget: keep splitting
      }
    }
    bool refuted = false;
    const Var v = pick_split_var(depth, refuted);
    if (sat_found_) return;
    if (refuted) {
      emit_leaf(/*refuted=*/true);
      return;
    }
    if (v == kNullVar) {
      emit_leaf(/*refuted=*/false);
      return;
    }
    // Descend into the more constrained polarity first — it refutes
    // (or bottoms out) sooner, keeping the open-node frontier small.
    const Lit first = first_lit_;
    for (const Lit l : {first, ~first}) {
      s_.trail_lim_.push_back(static_cast<int>(s_.trail_.size()));
      cube_.push_back(l);
      const bool enq = s_.enqueue(l, kNoReason);
      if (!enq || !s_.deduce().is_none()) {
        emit_leaf(/*refuted=*/true);
      } else {
        split_node(depth + 1);
      }
      cube_.pop_back();
      s_.erase_until(depth);
      if (sat_found_) return;
    }
  }

  /// Lookahead over the top-K candidates by occurrence count, scoring
  /// each unfailed variable mixdiff-style.  Failed literals are
  /// harvested as node-level units (exactly the inprocessor's probing
  /// move, scoped to the cube instead of the root); both polarities
  /// failing refutes the node.  Returns kNullVar with \p refuted unset
  /// when nothing is worth splitting on.
  Var pick_split_var(int depth, bool& refuted) {
    struct Cand {
      Var v;
      std::int64_t occ;
    };
    std::vector<Cand> cands;
    for (Var v = 0; v < s_.num_vars(); ++v) {
      if (!s_.value(v).is_undef()) continue;
      if (s_.decision_[static_cast<std::size_t>(v)] == 0) continue;
      const auto pi = static_cast<std::size_t>(pos(v).index());
      const auto ni = static_cast<std::size_t>(neg(v).index());
      const std::int64_t occ = static_cast<std::int64_t>(s_.watches_.count(pi)) +
                               s_.watches_.count(ni) + s_.bin_watches_.count(pi) +
                               s_.bin_watches_.count(ni);
      if (occ == 0) continue;
      cands.push_back({v, occ});
    }
    if (cands.empty()) return kNullVar;
    const std::size_t k = std::min<std::size_t>(
        cands.size(), static_cast<std::size_t>(std::max(1, opts_.candidates)));
    // Deterministic preselection: highest occurrence first, variable
    // index breaking ties.
    std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k),
                      cands.end(), [](const Cand& a, const Cand& b) {
                        return a.occ != b.occ ? a.occ > b.occ : a.v < b.v;
                      });
    cands.resize(k);

    const std::int64_t tick_start = s_.stats_.propagations;
    std::int64_t best_score = -1;
    Var best_var = kNullVar;
    for (const Cand& c : cands) {
      if (s_.stats_.propagations - tick_start > opts_.node_probe_ticks) break;
      const Var v = c.v;
      // An earlier failed-literal unit may have assigned it meanwhile.
      if (!s_.value(v).is_undef()) continue;
      std::int64_t delta[2] = {0, 0};
      bool failed = false;
      for (int sgn = 0; sgn < 2; ++sgn) {
        const Lit l(v, sgn == 1);
        const int before = s_.num_assigned();
        s_.trail_lim_.push_back(before);
        [[maybe_unused]] const bool enq = s_.enqueue(l, kNoReason);
        assert(enq);
        const Reason confl = s_.deduce();
        delta[sgn] = s_.num_assigned() - before;
        s_.erase_until(depth);
        ++stats_.lookahead_probes;
        if (confl.is_none()) continue;
        // Failed literal: ¬l holds under this node's cube.  Keep it at
        // the node level — it strengthens every probe and both
        // children; a conflict here refutes the node outright.
        ++stats_.failed_lookaheads;
        failed = true;
        if (!s_.enqueue(~l, kNoReason) || !s_.deduce().is_none()) {
          refuted = true;
          return kNullVar;
        }
        break;
      }
      if (failed) continue;
      if (s_.num_assigned() == s_.num_vars()) continue;  // caught below
      const std::int64_t score = delta[0] * delta[1] + delta[0] + delta[1];
      if (score > best_score) {
        best_score = score;
        best_var = v;
        first_lit_ = delta[0] >= delta[1] ? pos(v) : neg(v);
      }
    }
    // Failed-literal units may have completed the assignment.
    if (s_.num_assigned() == s_.num_vars()) {
      model_.assign(s_.assigns_.begin(), s_.assigns_.end());
      sat_found_ = true;
      return kNullVar;
    }
    if (best_var == kNullVar && !cands.empty() &&
        s_.value(cands.front().v).is_undef()) {
      // Probe budget ran dry before any candidate was scored: fall
      // back to the densest unassigned candidate.
      best_var = cands.front().v;
      first_lit_ = pos(best_var);
    }
    return best_var;
  }

  const SplitOptions opts_;
  const std::atomic<bool>* interrupt_;
  Solver s_;      ///< lookahead solver (manual probing only)
  Solver probe_;  ///< persistent budgeted refutation prober
  bool formula_ok_ = true;
  bool probe_ok_ = true;

  Cube cube_;                ///< current DFS path
  std::vector<Cube> cubes_;  ///< emitted leaves
  CubeStats stats_;
  bool sat_found_ = false;
  std::vector<lbool> model_;
  Lit first_lit_ = kUndefLit;  ///< set by pick_split_var

  std::chrono::steady_clock::time_point deadline_;
  bool has_deadline_ = false;
};

SplitResult split_formula(const CnfFormula& f, const SplitOptions& opts,
                          const std::atomic<bool>* interrupt) {
  return LookaheadSplitter(f, opts, interrupt).run();
}

}  // namespace sateda::sat::cube
