#include "sat/cube/cube.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sateda::sat::cube {

namespace {

int dimacs_code(Lit l) {
  return l.negative() ? -(l.var() + 1) : (l.var() + 1);
}

Lit lit_from_dimacs(long code) {
  const Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
  return Lit(v, code < 0);
}

}  // namespace

void write_cubes(std::ostream& out, const std::vector<Cube>& cubes) {
  out << "c sateda cube file (iCNF assumption lines)\n";
  out << "c cubes " << cubes.size() << "\n";
  for (const Cube& c : cubes) {
    out << 'a';
    for (Lit l : c) out << ' ' << dimacs_code(l);
    out << " 0\n";
  }
}

void write_cubes_file(const std::string& path, const std::vector<Cube>& cubes) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open cube file for writing: " + path);
  write_cubes(out, cubes);
}

std::vector<Cube> read_cubes(std::istream& in) {
  std::vector<Cube> cubes;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;  // blank line
    if (head == "c" || head[0] == 'c' || head == "p") continue;
    if (head != "a") {
      throw std::runtime_error("cube file line " + std::to_string(lineno) +
                               ": expected 'a' line, got '" + head + "'");
    }
    Cube c;
    long code = 0;
    bool terminated = false;
    while (ls >> code) {
      if (code == 0) {
        terminated = true;
        break;
      }
      c.push_back(lit_from_dimacs(code));
    }
    if (!terminated) {
      if (ls.fail() && !ls.eof()) {
        throw std::runtime_error("cube file line " + std::to_string(lineno) +
                                 ": non-integer literal");
      }
      throw std::runtime_error("cube file line " + std::to_string(lineno) +
                               ": missing 0 terminator");
    }
    cubes.push_back(std::move(c));
  }
  return cubes;
}

std::vector<Cube> read_cubes_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cube file: " + path);
  return read_cubes(in);
}

CubeTree CubeTree::build(const std::vector<Cube>& cubes) {
  CubeTree t;
  t.nodes_.push_back(Node{});  // root
  for (const Cube& c : cubes) {
    int at = 0;
    for (Lit l : c) {
      Node& n = t.nodes_[at];
      int next = -1;
      if (n.left >= 0 && t.nodes_[n.left].lit == l) next = n.left;
      if (n.right >= 0 && t.nodes_[n.right].lit == l) next = n.right;
      if (next < 0) {
        Node child;
        child.lit = l;
        child.parent = at;
        child.depth = t.nodes_[at].depth + 1;
        next = static_cast<int>(t.nodes_.size());
        // Fill left first; a third distinct child leaves both slots
        // taken and is caught by complete().
        if (t.nodes_[at].left < 0) {
          t.nodes_[at].left = next;
        } else {
          t.nodes_[at].right = next;
        }
        t.nodes_.push_back(child);
      }
      at = next;
    }
    if (!t.nodes_[at].is_leaf) {
      t.nodes_[at].is_leaf = true;
      ++t.num_leaves_;
    }
  }
  if (cubes.empty()) {
    t.nodes_[0].is_leaf = true;
    t.num_leaves_ = 1;
  }
  return t;
}

namespace {

std::string prefix_string(const std::vector<Lit>& prefix) {
  if (prefix.empty()) return "<root>";
  std::string s;
  for (Lit l : prefix) {
    if (!s.empty()) s += ' ';
    s += to_string(l);
  }
  return s;
}

}  // namespace

bool CubeTree::complete(std::string* why) const {
  // Iterative DFS carrying the literal prefix for diagnostics.
  std::vector<int> stack = {0};
  std::vector<Lit> prefix;
  // Recompute prefixes on demand via parent chains — the tree is small
  // (thousands of nodes) and this only runs on validation.
  auto prefix_of = [&](int idx) {
    std::vector<Lit> p;
    for (int at = idx; at > 0; at = nodes_[at].parent) p.push_back(nodes_[at].lit);
    std::reverse(p.begin(), p.end());
    return p;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const bool internal = n.left >= 0 || n.right >= 0;
    if (n.is_leaf && internal) {
      if (why != nullptr) {
        *why = "cube at " + prefix_string(prefix_of(static_cast<int>(i))) +
               " is a strict prefix of another cube";
      }
      return false;
    }
    if (!n.is_leaf && !internal) {
      if (why != nullptr) {
        *why = "dangling internal node at " +
               prefix_string(prefix_of(static_cast<int>(i)));
      }
      return false;
    }
    if (internal) {
      if (n.left < 0 || n.right < 0) {
        if (why != nullptr) {
          *why = "split at " + prefix_string(prefix_of(static_cast<int>(i))) +
                 " covers only one polarity";
        }
        return false;
      }
      if (nodes_[n.left].lit != ~nodes_[n.right].lit) {
        if (why != nullptr) {
          *why = "children of " + prefix_string(prefix_of(static_cast<int>(i))) +
                 " are not complementary literals (" +
                 to_string(nodes_[n.left].lit) + ", " +
                 to_string(nodes_[n.right].lit) + ")";
        }
        return false;
      }
    }
  }
  return true;
}

std::vector<std::vector<Lit>> CubeTree::closing_clauses() const {
  std::vector<std::vector<Lit>> out;
  // Postorder over internal nodes; emit ¬cube(node) after both
  // children have been handled so each clause is RUP from the ones
  // already present.
  struct Frame {
    int node;
    bool expanded;
  };
  std::vector<Frame> stack = {{0, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.node];
    if (n.is_leaf) continue;  // leaf clauses come from the workers
    if (!f.expanded) {
      stack.push_back({f.node, true});
      stack.push_back({n.right, false});
      stack.push_back({n.left, false});
      continue;
    }
    std::vector<Lit> clause;
    for (int at = f.node; at > 0; at = nodes_[at].parent) {
      clause.push_back(~nodes_[at].lit);
    }
    std::reverse(clause.begin(), clause.end());
    out.push_back(std::move(clause));
  }
  return out;
}

int CubeTree::max_depth() const {
  int d = 0;
  for (const Node& n : nodes_) {
    if (n.is_leaf) d = std::max(d, n.depth);
  }
  return d;
}

std::vector<std::int64_t> CubeTree::depth_histogram() const {
  std::vector<std::int64_t> h(static_cast<std::size_t>(max_depth()) + 1, 0);
  for (const Node& n : nodes_) {
    if (n.is_leaf) ++h[static_cast<std::size_t>(n.depth)];
  }
  return h;
}

CubeStats& CubeStats::operator+=(const CubeStats& o) {
  cubes_generated += o.cubes_generated;
  cubes_refuted_split += o.cubes_refuted_split;
  cubes_solved += o.cubes_solved;
  cubes_stolen += o.cubes_stolen;
  lookahead_probes += o.lookahead_probes;
  failed_lookaheads += o.failed_lookaheads;
  max_depth = std::max(max_depth, o.max_depth);
  if (depth_histogram.size() < o.depth_histogram.size()) {
    depth_histogram.resize(o.depth_histogram.size(), 0);
  }
  for (std::size_t i = 0; i < o.depth_histogram.size(); ++i) {
    depth_histogram[i] += o.depth_histogram[i];
  }
  return *this;
}

std::string CubeStats::summary() const {
  std::ostringstream os;
  os << "cubes generated        : " << cubes_generated << '\n';
  os << "cubes refuted at split : " << cubes_refuted_split << '\n';
  os << "cubes solved           : " << cubes_solved << '\n';
  os << "cubes stolen           : " << cubes_stolen << '\n';
  os << "lookahead probes       : " << lookahead_probes << '\n';
  os << "failed lookaheads      : " << failed_lookaheads << '\n';
  os << "max cube depth         : " << max_depth << '\n';
  os << "depth histogram        :";
  for (std::size_t d = 0; d < depth_histogram.size(); ++d) {
    if (depth_histogram[d] == 0) continue;
    os << ' ' << d << ':' << depth_histogram[d];
  }
  os << '\n';
  return os.str();
}

}  // namespace sateda::sat::cube
