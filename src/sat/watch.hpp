/// \file watch.hpp
/// \brief Flat watch arena for the propagation hot path.
///
/// Per-literal std::vector watch lists spray the propagation loop's
/// memory traffic across the heap: every literal visit chases the
/// vector header to a separately allocated buffer, and buffers of
/// adjacent literals share no locality.  The FlatWatchArena keeps every
/// watch list in ONE contiguous pool, indexed by a per-literal slab
/// descriptor {offset, count, capacity}:
///
///   * a slab scan is a sequential walk of pool memory — the next
///     watcher is always on the same or the next cache line, so the
///     solver can prefetch the next watcher's clause words while it
///     processes the current one;
///   * a slab that outgrows its capacity is relocated to the end of the
///     pool with doubled capacity (amortized O(1) push, the old slot
///     range becomes a hole);
///   * rebuild() compacts the pool with slabs laid out in literal-index
///     order — the order deduce() visits them — erasing all holes.  The
///     solver rebuilds at arena GC (where clause refs are remapped
///     anyway) and whenever the hole fraction passes 1/2.
///
/// Invalidation contract: push() and rebuild() may move pool memory, so
/// any Entry* or WatchRef obtained before either call is stale — the
/// sateda-cref-held-across-gc clang-tidy check enforces this for
/// WatchRef the same way it does for CRef.  Slab *indices* (literal
/// indices) are always stable.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "cnf/literal.hpp"
#include "sat/arena.hpp"

namespace sateda::sat {

/// Slot offset of a watch slab inside the arena pool.  Stale after any
/// push()/rebuild(), exactly like a CRef after arena compaction.
using WatchRef = std::uint32_t;

/// Watch-list entry for a clause of three or more literals.
struct Watcher {
  CRef cref;
  Lit blocker;  ///< a literal of the clause; if true, skip the visit
};

/// Binary-watch entry: the list at Lit p's index holds one entry per
/// binary clause (~p ∨ other) — when p becomes true, `other` is
/// implied directly, no clause memory touched.
struct BinWatcher {
  Lit other;
  std::uint8_t learnt;
};

/// Contiguous per-literal slabs with occupancy counts over one flat
/// entry pool.  Indexed by Lit::index().
template <typename Entry>
class FlatWatchArena {
 public:
  /// Grows the slab table to cover literal indices [0, n).
  void ensure_lits(std::size_t n) {
    if (slabs_.size() < n) slabs_.resize(n);
  }

  std::size_t num_lits() const { return slabs_.size(); }

  std::uint32_t count(std::size_t idx) const { return slabs_[idx].count; }
  std::uint32_t cap(std::size_t idx) const { return slabs_[idx].cap; }
  bool empty(std::size_t idx) const { return slabs_[idx].count == 0; }

  /// Pool offset of the slab (stale after push()/rebuild()).
  WatchRef slab(std::size_t idx) const { return slabs_[idx].offset; }

  /// Pointer to the slab's first entry (stale after push()/rebuild()).
  Entry* begin(std::size_t idx) { return pool_.data() + slabs_[idx].offset; }
  const Entry* begin(std::size_t idx) const {
    return pool_.data() + slabs_[idx].offset;
  }

  Entry& at(std::size_t idx, std::uint32_t k) {
    assert(k < slabs_[idx].count);
    return pool_[slabs_[idx].offset + k];
  }
  const Entry& at(std::size_t idx, std::uint32_t k) const {
    assert(k < slabs_[idx].count);
    return pool_[slabs_[idx].offset + k];
  }

  /// Appends an entry to the slab, relocating it (and possibly the
  /// whole pool) when full.  Invalidates outstanding Entry*/WatchRef.
  void push(std::size_t idx, Entry e) {
    Slab& s = slabs_[idx];
    if (s.count == s.cap) grow(idx);
    Slab& s2 = slabs_[idx];  // grow() may have moved the slab
    pool_[s2.offset + s2.count++] = e;
  }

  /// Shrinks the slab to its first \p n entries (capacity unchanged).
  void truncate(std::size_t idx, std::uint32_t n) {
    assert(n <= slabs_[idx].count);
    slabs_[idx].count = n;
  }

  /// Removes entry \p k by swapping the last entry into its place.
  void pop_swap(std::size_t idx, std::uint32_t k) {
    Slab& s = slabs_[idx];
    assert(k < s.count);
    Entry* b = pool_.data() + s.offset;
    b[k] = b[s.count - 1];
    --s.count;
  }

  /// Hints the slab's entries into cache ahead of a scan.
  void prefetch(std::size_t idx) const {
#if defined(__GNUC__) || defined(__clang__)
    const Slab& s = slabs_[idx];
    if (s.count == 0) return;
    const char* b = reinterpret_cast<const char*>(pool_.data() + s.offset);
    __builtin_prefetch(b);
    if (s.count * sizeof(Entry) > 64) __builtin_prefetch(b + 64);
#else
    (void)idx;
#endif
  }

  std::size_t pool_slots() const { return pool_.size(); }
  std::size_t wasted_slots() const { return wasted_; }
  std::int64_t slab_relocations() const { return relocations_; }

  /// True when relocation holes dominate the pool — time to rebuild.
  bool fragmented() const {
    return pool_.size() > 1024 && wasted_ * 2 > pool_.size();
  }

  /// Compacts the pool with slabs in literal-index order, applying
  /// \p fn to every entry as it is copied (the solver remaps clause
  /// refs through this hook during arena GC).  Slabs keep a small
  /// headroom so the next few pushes stay in place.
  template <typename Fn>
  void rebuild(Fn&& fn) {
    std::vector<Entry> np;
    std::size_t live = 0;
    for (const Slab& s : slabs_) live += s.count;
    np.reserve(live + (live >> 3) + slabs_.size() / 4);
    std::vector<Slab> ns(slabs_.size());
    for (std::size_t i = 0; i < slabs_.size(); ++i) {
      const Slab& s = slabs_[i];
      ns[i].offset = static_cast<WatchRef>(np.size());
      ns[i].count = s.count;
      ns[i].cap = s.count == 0 ? 0 : s.count + (s.count >> 3) + 1;
      for (std::uint32_t k = 0; k < s.count; ++k) {
        Entry e = pool_[s.offset + k];
        fn(e);
        np.push_back(e);
      }
      np.resize(np.size() + (ns[i].cap - s.count));
    }
    pool_ = std::move(np);
    slabs_ = std::move(ns);
    wasted_ = 0;
  }

  void rebuild() {
    rebuild([](Entry&) {});
  }

 private:
  struct Slab {
    WatchRef offset = 0;
    std::uint32_t count = 0;
    std::uint32_t cap = 0;
  };

  /// Relocates slab \p idx to the end of the pool with doubled
  /// capacity; the vacated slots become a hole until the next rebuild.
  void grow(std::size_t idx) {
    Slab& s = slabs_[idx];
    const std::uint32_t ncap = s.cap == 0 ? 4 : s.cap * 2;
    const WatchRef noff = static_cast<WatchRef>(pool_.size());
    pool_.resize(pool_.size() + ncap);
    Entry* dst = pool_.data() + noff;
    const Entry* src = pool_.data() + s.offset;
    for (std::uint32_t k = 0; k < s.count; ++k) dst[k] = src[k];
    wasted_ += s.cap;
    s.offset = noff;
    s.cap = ncap;
    ++relocations_;
  }

  std::vector<Slab> slabs_;  ///< indexed by Lit::index()
  std::vector<Entry> pool_;
  std::size_t wasted_ = 0;         ///< holes left by slab relocations
  std::int64_t relocations_ = 0;
};

}  // namespace sateda::sat
