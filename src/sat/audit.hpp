/// \file audit.hpp
/// \brief Debug-build invariant auditor for the CDCL solver.
///
/// The SolverAuditor inspects a live Solver at quiescent checkpoints
/// (propagation fixpoints, restarts, solve() exit) and validates the
/// invariants the search loop silently relies on:
///
///  * watcher integrity — every watch-list entry points at a live
///    arena clause that really watches that literal in position 0/1,
///    the blocker is a literal of the clause, every live clause is
///    watched exactly once per watched literal, and every implicit
///    binary clause is mirrored consistently across its two binary
///    watch lists;
///  * trail/reason consistency — trail literals are true, levels match
///    the decision-level segmentation, reason clauses are asserting in
///    shape (c[0] is the implied literal, the rest false at or below
///    its level), and at a fixpoint no live clause is unit or
///    falsified;
///  * learnt-clause redundancy — a sample of learnt clauses is checked
///    RUP against the rest of the database with the auditor's own
///    counter-based propagation (independent of the solver's watches).
///
/// Cost model: the auditor is debug tooling.  A full audit is O(database)
/// per checkpoint and the redundancy check is far more expensive still,
/// so production builds simply never attach an auditor (the solver's
/// checkpoint hook is one pointer test when detached).  Tests attach it
/// with interval=1; longer runs should raise the interval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace sateda::sat {

/// Which invariants to check, and how often.
struct AuditOptions {
  bool check_watchers = true;
  bool check_trail = true;
  bool check_learnts = true;
  /// Audit every Nth checkpoint the solver reports (1 = every time).
  std::uint64_t interval = 64;
  /// Learnt clauses sampled per audit for the RUP redundancy check.
  std::size_t max_learnts_checked = 64;
  /// Clause visits allowed per learnt RUP check before giving up
  /// (budget-exhausted checks count as inconclusive, not violations).
  std::size_t learnt_check_budget = 200000;
  /// Treat a learnt clause that fails the RUP check as a violation.
  /// Only sound when antecedents cannot disappear
  /// (DeletionPolicy::kNever and no simplify_db between audits);
  /// otherwise a failed check is counted as inconclusive.
  bool strict_learnt_rup = false;
};

/// Accumulated findings across audits.
struct AuditReport {
  std::vector<std::string> violations;
  std::uint64_t checkpoints_seen = 0;
  std::uint64_t audits_run = 0;
  std::uint64_t learnts_checked = 0;
  std::uint64_t learnts_inconclusive = 0;

  bool ok() const { return violations.empty(); }
};

/// Invariant auditor; attach with Solver::set_auditor().  Not owned by
/// the solver, not thread-safe: audit the solver from its own thread.
class SolverAuditor {
 public:
  explicit SolverAuditor(AuditOptions opts = {}) : opts_(opts) {}

  /// Called by the solver at quiescent points; runs audit() every
  /// opts_.interval calls.
  void maybe_checkpoint(const Solver& s) {
    ++report_.checkpoints_seen;
    if (opts_.interval <= 1 ||
        report_.checkpoints_seen % opts_.interval == 0) {
      audit(s);
    }
  }

  /// Runs every enabled check now; findings accumulate in report().
  void audit(const Solver& s);

  const AuditReport& report() const { return report_; }
  void clear() { report_ = {}; }

  /// Test hooks: deliberately corrupt solver internals so the
  /// negative-path tests can prove the auditor actually fires.
  static void corrupt_watcher_for_test(Solver& s);
  static void corrupt_trail_for_test(Solver& s);
  static void corrupt_learnt_for_test(Solver& s);

 private:
  void check_watchers(const Solver& s);
  void check_binaries(const Solver& s);
  void check_trail(const Solver& s);
  void check_learnts(const Solver& s);
  /// RUP test of \p lits against the live database minus clause
  /// \p self, with counter-based propagation.  Returns l_true
  /// (redundant), l_false (not RUP) or l_undef (budget exhausted).
  lbool learnt_is_rup(const Solver& s, CRef self,
                      const std::vector<Lit>& lits);
  void violation(const std::string& what) {
    report_.violations.push_back(what);
  }

  AuditOptions opts_;
  AuditReport report_;
};

}  // namespace sateda::sat
