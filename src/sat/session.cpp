#include "sat/session.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace sateda::sat {

namespace {

/// Counter difference after - before.  Monotone counters subtract;
/// high-water marks and wall-clock keep the per-query reading (the
/// solver resets solve_time_sec per call... it accumulates, so
/// subtract it too; max_decision_level is a high-water mark and the
/// after value is the best per-query approximation available).
SolverStats stats_delta(const SolverStats& before, const SolverStats& after) {
  SolverStats d = after;
  d.decisions -= before.decisions;
  d.propagations -= before.propagations;
  d.conflicts -= before.conflicts;
  d.restarts -= before.restarts;
  d.learnt_clauses -= before.learnt_clauses;
  d.learnt_literals -= before.learnt_literals;
  d.deleted_clauses -= before.deleted_clauses;
  d.minimized_literals -= before.minimized_literals;
  d.solve_calls -= before.solve_calls;
  d.exported_clauses -= before.exported_clauses;
  d.imported_clauses -= before.imported_clauses;
  d.binary_propagations -= before.binary_propagations;
  d.arena_gc_runs -= before.arena_gc_runs;
  d.arena_bytes_reclaimed -= before.arena_bytes_reclaimed;
  d.cores_extracted -= before.cores_extracted;
  d.core_literals -= before.core_literals;
  d.core_min_calls -= before.core_min_calls;
  d.relaxation_rounds -= before.relaxation_rounds;
  d.inprocess_runs -= before.inprocess_runs;
  d.eliminated_vars -= before.eliminated_vars;
  d.bve_resolvents -= before.bve_resolvents;
  d.failed_literals -= before.failed_literals;
  d.vivified_clauses -= before.vivified_clauses;
  d.vivified_literals -= before.vivified_literals;
  d.solve_time_sec = std::max(0.0, after.solve_time_sec - before.solve_time_sec);
  return d;
}

}  // namespace

SolverSession::SolverSession(SessionOptions opts)
    : spec_(std::move(opts.engine)),
      default_budget_(opts.default_budget),
      engine_(spec_.build(opts.solver)) {}

SolverSession::~SolverSession() = default;

Var SolverSession::new_var() {
  const Var v = engine_->new_var();
  max_user_var_ = std::max(max_user_var_, v);
  return v;
}

void SolverSession::ensure_var(Var v) {
  engine_->ensure_var(v);
  max_user_var_ = std::max(max_user_var_, v);
  revive(v);
}

int SolverSession::num_vars() const { return engine_->num_vars(); }

Var SolverSession::next_free_var() const {
  // Selectors live above max_user_var_ too, so the engine's variable
  // count (which covers both) is the first certainly-free id.
  return static_cast<Var>(engine_->num_vars());
}

bool SolverSession::add_clause(std::vector<Lit> lits) {
  for (Lit l : lits) {
    max_user_var_ = std::max(max_user_var_, l.var());
    revive(l.var());
  }
  if (epochs_.empty()) {
    root_clauses_.push_back(lits);
    return engine_->add_clause(std::move(lits));
  }
  Epoch& e = epochs_.back();
  e.clauses.push_back(lits);
  // Guarded form ¬selector ∨ C: inert unless the selector is assumed,
  // permanently satisfied once pop() fixes the selector false.
  lits.push_back(~e.selector);
  return engine_->add_clause(std::move(lits));
}

bool SolverSession::add_formula(const CnfFormula& f) {
  if (f.num_vars() > 0) ensure_var(f.num_vars() - 1);
  bool ok = true;
  for (const Clause& c : f) {
    if (!add_clause(std::vector<Lit>(c.begin(), c.end()))) ok = false;
  }
  return ok;
}

bool SolverSession::okay() const { return engine_->okay(); }

int SolverSession::push() {
  // Exactly one new_var() here — documented allocation guarantee.
  const Lit selector = pos(engine_->new_var());
  engine_->freeze(selector.var());
  epochs_.push_back(Epoch{selector, {}});
  return depth();
}

int SolverSession::pop() {
  if (epochs_.empty()) return -1;
  const Lit selector = epochs_.back().selector;
  epochs_.pop_back();
  // Fixing the selector false satisfies every guarded clause of the
  // epoch; simplify_db() then reclaims their storage and watches.
  (void)engine_->add_clause({~selector});
  engine_->thaw(selector.var());
  engine_->simplify_db();
  // Every variable allocated during the epoch (the selector plus any
  // epoch-local problem variables) now occurs only in retired clauses.
  // Take them out of the branching order: a long-lived session retires
  // thousands of such variables, and deciding free unconstrained ones
  // on every later query is pure waste.  revive() undoes this per
  // variable if a client ever references one again.
  const Var end = static_cast<Var>(engine_->num_vars());
  if (retired_.size() < static_cast<std::size_t>(end)) {
    retired_.resize(static_cast<std::size_t>(end), 0);
  }
  for (Var v = selector.var(); v < end; ++v) {
    engine_->set_decision_var(v, false);
    retired_[static_cast<std::size_t>(v)] = 1;
  }
  return depth();
}

void SolverSession::revive(Var v) {
  if (static_cast<std::size_t>(v) < retired_.size() &&
      retired_[static_cast<std::size_t>(v)]) {
    retired_[static_cast<std::size_t>(v)] = 0;
    engine_->set_decision_var(v, true);
  }
}

QueryResult SolverSession::query(const std::vector<Lit>& assumptions,
                                 const QueryBudget& budget) {
  QueryResult r;
  r.id = ++queries_run_;

  for (Lit a : assumptions) {
    engine_->ensure_var(a.var());
    max_user_var_ = std::max(max_user_var_, a.var());
    revive(a.var());
  }

  const std::int64_t conflicts =
      budget.conflicts >= 0 ? budget.conflicts : default_budget_.conflicts;
  const std::int64_t time_ms =
      budget.time_ms >= 0 ? budget.time_ms : default_budget_.time_ms;
  engine_->set_budgets(conflicts, time_ms);

  std::vector<Lit> assume = assumptions;
  for (const Epoch& e : epochs_) assume.push_back(e.selector);

  const SolverStats before = engine_->stats();
  const auto t0 = std::chrono::steady_clock::now();
  r.result = engine_->solve(assume);
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  r.stats = stats_delta(before, engine_->stats());
  r.reason = r.result == SolveResult::kUnknown ? engine_->unknown_reason()
                                               : UnknownReason::kNone;

  if (r.result == SolveResult::kSat) {
    r.model = engine_->model();
    // Selector and epoch-local values are implementation detail.
    if (r.model.size() > static_cast<std::size_t>(max_user_var_ + 1)) {
      r.model.resize(static_cast<std::size_t>(max_user_var_ + 1));
    }
  } else if (r.result == SolveResult::kUnsat) {
    // Keep only user assumptions: a core containing an epoch selector
    // means "the epoch's clauses participate", which the caller cannot
    // act on literal-by-literal.
    for (Lit l : engine_->conflict_core()) {
      const bool is_selector =
          std::any_of(epochs_.begin(), epochs_.end(),
                      [l](const Epoch& e) { return e.selector.var() == l.var(); });
      if (!is_selector) r.core.push_back(l);
    }
  }
  return r;
}

void SolverSession::cancel() { engine_->interrupt(); }

CnfFormula SolverSession::active_formula() const {
  CnfFormula f(max_user_var_ + 1);
  for (const std::vector<Lit>& c : root_clauses_) f.add_clause(c);
  for (const Epoch& e : epochs_) {
    for (const std::vector<Lit>& c : e.clauses) f.add_clause(c);
  }
  return f;
}

}  // namespace sateda::sat
