#include "sat/dpll.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <numeric>

namespace sateda::sat {

DpllSolver::DpllSolver(SolverOptions opts) : opts_(opts) {}

DpllSolver::DpllSolver(const CnfFormula& formula, bool use_occurrence_heuristic)
    : formula_(formula), use_occurrence_heuristic_(use_occurrence_heuristic) {
  for (const Clause& c : formula_) {
    if (c.empty()) ok_ = false;
  }
}

bool DpllSolver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  dirty_ = true;
  if (lits.empty()) {
    ok_ = false;
    formula_.add_clause(std::move(lits));
    return false;
  }
  formula_.add_clause(std::move(lits));
  return true;
}

void DpllSolver::rebuild_index() {
  const int nv = formula_.num_vars();
  occurs_.assign(2 * static_cast<std::size_t>(std::max(nv, 1)), {});
  assigns_.assign(nv, l_undef);
  trail_.clear();
  unassigned_count_.assign(formula_.num_clauses(), 0);
  satisfied_by_.assign(formula_.num_clauses(), 0);
  std::vector<std::size_t> occ_count(nv, 0);
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    const Clause& c = formula_.clause(ci);
    unassigned_count_[ci] = static_cast<int>(c.size());
    for (Lit l : c) {
      occurs_[l.index()].push_back(ci);
      ++occ_count[l.var()];
    }
  }
  static_order_.resize(nv);
  std::iota(static_order_.begin(), static_order_.end(), 0);
  if (use_occurrence_heuristic_) {
    std::stable_sort(static_order_.begin(), static_order_.end(),
                     [&](Var a, Var b) { return occ_count[a] > occ_count[b]; });
  }
  dirty_ = false;
}

bool DpllSolver::assign(Lit l) {
  assert(assigns_[l.var()].is_undef());
  assigns_[l.var()] = lbool(!l.negative());
  trail_.push_back(l);
  // The literal l is now true: its clauses gain a satisfied literal;
  // clauses containing ~l lose an unassigned literal.
  for (std::size_t ci : occurs_[l.index()]) ++satisfied_by_[ci];
  bool conflict = false;
  for (std::size_t ci : occurs_[(~l).index()]) {
    if (--unassigned_count_[ci] == 0 && satisfied_by_[ci] == 0) {
      conflict = true;  // finish the updates so unassign stays symmetric
    }
  }
  for (std::size_t ci : occurs_[l.index()]) --unassigned_count_[ci];
  return !conflict;
}

void DpllSolver::unassign_to(std::size_t trail_size) {
  while (trail_.size() > trail_size) {
    Lit l = trail_.back();
    trail_.pop_back();
    assigns_[l.var()] = l_undef;
    for (std::size_t ci : occurs_[l.index()]) {
      --satisfied_by_[ci];
      ++unassigned_count_[ci];
    }
    for (std::size_t ci : occurs_[(~l).index()]) ++unassigned_count_[ci];
  }
}

bool DpllSolver::propagate(std::size_t from) {
  for (std::size_t i = from; i < trail_.size(); ++i) {
    Lit assigned = trail_[i];
    ++stats_.propagations;
    // Clauses containing ~assigned may have become unit.
    for (std::size_t ci : occurs_[(~assigned).index()]) {
      if (satisfied_by_[ci] > 0) continue;
      if (unassigned_count_[ci] == 0) return false;
      if (unassigned_count_[ci] == 1) {
        // Find the lone unassigned literal.
        Lit unit = kUndefLit;
        for (Lit l : formula_.clause(ci)) {
          if (assigns_[l.var()].is_undef()) {
            unit = l;
            break;
          }
        }
        assert(unit.is_defined());
        if (!assign(unit)) return false;
      }
    }
  }
  return true;
}

Var DpllSolver::pick_variable() const {
  for (Var v : static_order_) {
    if (assigns_[v].is_undef()) return v;
  }
  return kNullVar;
}

SolveResult DpllSolver::solve(const std::vector<Lit>& assumptions) {
  return run(assumptions, opts_.conflict_budget);
}

SolveResult DpllSolver::solve(std::int64_t conflict_budget) {
  return run({}, conflict_budget);
}

SolveResult DpllSolver::run(const std::vector<Lit>& assumptions,
                            std::int64_t conflict_budget) {
  ++solve_calls_;
  model_.clear();
  conflict_core_.clear();
  interrupt_flag_.store(false, std::memory_order_relaxed);
  unknown_reason_ = UnknownReason::kNone;
  for (Lit l : assumptions) ensure_var(l.var());
  if (!ok_) return SolveResult::kUnsat;
  if (dirty_) rebuild_index();

  const std::int64_t backtracks_at_start = stats_.backtracks;
  // kUnsat exits report the assumptions as the core; a conflict before
  // any assumption is assigned leaves the core empty (formula UNSAT).
  const auto unsat = [&](bool assumptions_assigned) {
    unassign_to(0);
    if (assumptions_assigned) conflict_core_ = assumptions;
    return SolveResult::kUnsat;
  };

  // Top-level propagation of any unit clauses.
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    const Clause& c = formula_.clause(ci);
    if (c.empty()) return unsat(false);
    if (c.size() == 1 && satisfied_by_[ci] == 0) {
      if (assigns_[c[0].var()].is_undef()) {
        if (!assign(c[0])) return unsat(false);
      } else if ((assigns_[c[0].var()] ^ c[0].negative()).is_false()) {
        return unsat(false);
      }
    }
  }
  if (!propagate(0)) return unsat(false);

  // Assumptions are pre-assignments below the first decision.
  for (Lit a : assumptions) {
    lbool v = assigns_[a.var()] ^ a.negative();
    if (v.is_true()) continue;
    if (v.is_false()) return unsat(true);
    std::size_t pre = trail_.size();
    if (!assign(a) || !propagate(pre)) return unsat(true);
  }

  // Wall-clock budget: deadline armed once per run, clock polled once
  // per 64 decision rounds so the default path never pays the syscall.
  const bool has_deadline = opts_.time_budget_ms >= 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(has_deadline ? opts_.time_budget_ms : 0);
  int time_poll_counter = 0;

  std::vector<Frame> stack;
  const std::size_t root_trail = trail_.size();
  while (true) {
    if (interrupt_flag_.load(std::memory_order_relaxed)) {
      unassign_to(0);
      unknown_reason_ = UnknownReason::kInterrupted;
      return SolveResult::kUnknown;
    }
    if (has_deadline && ++time_poll_counter >= 64) {
      time_poll_counter = 0;
      if (std::chrono::steady_clock::now() >= deadline) {
        unassign_to(0);
        unknown_reason_ = UnknownReason::kTimeBudget;
        return SolveResult::kUnknown;
      }
    }
    Var v = pick_variable();
    if (v == kNullVar) {
      model_ = assigns_;
      unassign_to(0);
      return SolveResult::kSat;
    }
    ++stats_.decisions;
    stack.push_back({v, false, trail_.size()});
    Lit decision = neg(v);  // try value 0 first, like classic ATPG tools
    bool ok = assign(decision) && propagate(trail_.size() - 1);
    while (!ok) {
      ++stats_.backtracks;
      if (conflict_budget >= 0 &&
          stats_.backtracks - backtracks_at_start >= conflict_budget) {
        unassign_to(0);
        unknown_reason_ = UnknownReason::kConflictBudget;
        return SolveResult::kUnknown;
      }
      // Chronological backtracking: undo the most recent decision that
      // still has an untried polarity, flip it.
      while (!stack.empty() && stack.back().flipped) {
        unassign_to(stack.back().trail_size);
        stack.pop_back();
      }
      if (stack.empty()) {
        unassign_to(root_trail);
        return unsat(!assumptions.empty());
      }
      Frame& f = stack.back();
      unassign_to(f.trail_size);
      f.flipped = true;
      ok = assign(pos(f.var)) && propagate(trail_.size() - 1);
    }
  }
}

SolverStats DpllSolver::stats() const {
  SolverStats s;
  s.decisions = stats_.decisions;
  s.propagations = stats_.propagations;
  s.conflicts = stats_.backtracks;
  s.solve_calls = solve_calls_;
  return s;
}

}  // namespace sateda::sat
