#include "sat/dpll.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace sateda::sat {

DpllSolver::DpllSolver(const CnfFormula& formula, bool use_occurrence_heuristic)
    : formula_(formula) {
  const int nv = formula.num_vars();
  occurs_.resize(2 * static_cast<std::size_t>(std::max(nv, 1)));
  assigns_.assign(nv, l_undef);
  unassigned_count_.resize(formula.num_clauses());
  satisfied_by_.assign(formula.num_clauses(), 0);
  std::vector<std::size_t> occ_count(nv, 0);
  for (std::size_t ci = 0; ci < formula.num_clauses(); ++ci) {
    const Clause& c = formula.clause(ci);
    unassigned_count_[ci] = static_cast<int>(c.size());
    for (Lit l : c) {
      occurs_[l.index()].push_back(ci);
      ++occ_count[l.var()];
    }
  }
  static_order_.resize(nv);
  std::iota(static_order_.begin(), static_order_.end(), 0);
  if (use_occurrence_heuristic) {
    std::stable_sort(static_order_.begin(), static_order_.end(),
                     [&](Var a, Var b) { return occ_count[a] > occ_count[b]; });
  }
}

bool DpllSolver::assign(Lit l) {
  assert(assigns_[l.var()].is_undef());
  assigns_[l.var()] = lbool(!l.negative());
  trail_.push_back(l);
  // The literal l is now true: its clauses gain a satisfied literal;
  // clauses containing ~l lose an unassigned literal.
  for (std::size_t ci : occurs_[l.index()]) ++satisfied_by_[ci];
  bool conflict = false;
  for (std::size_t ci : occurs_[(~l).index()]) {
    if (--unassigned_count_[ci] == 0 && satisfied_by_[ci] == 0) {
      conflict = true;  // finish the updates so unassign stays symmetric
    }
  }
  for (std::size_t ci : occurs_[l.index()]) --unassigned_count_[ci];
  return !conflict;
}

void DpllSolver::unassign_to(std::size_t trail_size) {
  while (trail_.size() > trail_size) {
    Lit l = trail_.back();
    trail_.pop_back();
    assigns_[l.var()] = l_undef;
    for (std::size_t ci : occurs_[l.index()]) {
      --satisfied_by_[ci];
      ++unassigned_count_[ci];
    }
    for (std::size_t ci : occurs_[(~l).index()]) ++unassigned_count_[ci];
  }
}

bool DpllSolver::propagate(std::size_t from) {
  for (std::size_t i = from; i < trail_.size(); ++i) {
    Lit assigned = trail_[i];
    ++stats_.propagations;
    // Clauses containing ~assigned may have become unit.
    for (std::size_t ci : occurs_[(~assigned).index()]) {
      if (satisfied_by_[ci] > 0) continue;
      if (unassigned_count_[ci] == 0) return false;
      if (unassigned_count_[ci] == 1) {
        // Find the lone unassigned literal.
        Lit unit = kUndefLit;
        for (Lit l : formula_.clause(ci)) {
          if (assigns_[l.var()].is_undef()) {
            unit = l;
            break;
          }
        }
        assert(unit.is_defined());
        if (!assign(unit)) return false;
      }
    }
  }
  return true;
}

Var DpllSolver::pick_variable() const {
  for (Var v : static_order_) {
    if (assigns_[v].is_undef()) return v;
  }
  return kNullVar;
}

SolveResult DpllSolver::solve(std::int64_t conflict_budget) {
  model_.clear();
  // Top-level propagation of any unit clauses.
  std::size_t scanned = 0;
  for (std::size_t ci = 0; ci < formula_.num_clauses(); ++ci) {
    const Clause& c = formula_.clause(ci);
    if (c.empty()) return SolveResult::kUnsat;
    if (c.size() == 1 && satisfied_by_[ci] == 0) {
      if (assigns_[c[0].var()].is_undef()) {
        if (!assign(c[0])) return SolveResult::kUnsat;
      } else if ((assigns_[c[0].var()] ^ c[0].negative()).is_false()) {
        return SolveResult::kUnsat;
      }
    }
  }
  if (!propagate(scanned)) return SolveResult::kUnsat;

  std::vector<Frame> stack;
  const std::size_t root_trail = trail_.size();
  while (true) {
    Var v = pick_variable();
    if (v == kNullVar) {
      model_ = assigns_;
      unassign_to(root_trail);
      return SolveResult::kSat;
    }
    ++stats_.decisions;
    stack.push_back({v, false, trail_.size()});
    Lit decision = neg(v);  // try value 0 first, like classic ATPG tools
    bool ok = assign(decision) && propagate(trail_.size() - 1);
    while (!ok) {
      ++stats_.backtracks;
      if (conflict_budget >= 0 && stats_.backtracks >= conflict_budget) {
        unassign_to(root_trail);
        return SolveResult::kUnknown;
      }
      // Chronological backtracking: undo the most recent decision that
      // still has an untried polarity, flip it.
      while (!stack.empty() && stack.back().flipped) {
        unassign_to(stack.back().trail_size);
        stack.pop_back();
      }
      if (stack.empty()) return SolveResult::kUnsat;
      Frame& f = stack.back();
      unassign_to(f.trail_size);
      f.flipped = true;
      ok = assign(pos(f.var)) && propagate(trail_.size() - 1);
    }
  }
}

}  // namespace sateda::sat
