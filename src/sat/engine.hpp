/// \file engine.hpp
/// \brief Abstract SAT engine interface: one contract for every solving
///        backend so the EDA application layers are engine-agnostic.
///
/// The paper's central empirical claim (§4.1, §6) is that *which*
/// solver configuration wins is workload-dependent — GRASP-style
/// relevance learning, Chaff-style VSIDS/restarts and randomization
/// each dominate on different EDA instances.  Exploiting that requires
/// applications (ATPG, CEC, BMC, delay, routing, covering, EUF,
/// crosstalk) to be parameterized by an engine instead of hard-coding
/// the concrete CDCL solver.  SatEngine is that seam:
///
///  * sat::Solver       — the CDCL engine (GRASP/Chaff-flavoured);
///  * sat::DpllSolver   — the pre-GRASP DPLL baseline;
///  * sat::WalkSatSolver— stochastic local search (never proves UNSAT);
///  * sat::PortfolioSolver — N diversified CDCL workers racing on
///    threads with learnt-clause sharing (see portfolio.hpp).
///
/// Applications accept an EngineFactory; the default (empty) factory
/// builds the single-threaded CDCL solver, so existing call sites keep
/// their behaviour.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "cnf/literal.hpp"
#include "sat/options.hpp"

namespace sateda::sat {

/// Abstract incremental SAT engine.
///
/// Contract notes:
///  * add_clause() returns false iff the engine detected trivial
///    root-level unsatisfiability; solve() then returns kUnsat.
///  * solve(assumptions) treats each assumption as a pseudo-decision;
///    after kUnsat under assumptions, conflict_core() is a subset of
///    the assumptions whose conjunction is inconsistent with the
///    clause set (possibly empty when the clause set itself is UNSAT).
///  * After kUnknown, unknown_reason() says why (budget/interrupt).
///  * interrupt() may be called from another thread; the engine stops
///    cooperatively and the interrupted solve() returns kUnknown.  The
///    flag is cleared on the next solve() entry.
class SatEngine {
 public:
  virtual ~SatEngine() = default;

  /// Short engine identifier ("cdcl", "dpll", "walksat", "portfolio").
  virtual std::string name() const = 0;

  // --- problem construction ---------------------------------------

  /// Allocates a fresh variable.
  virtual Var new_var() = 0;

  /// Ensures variables 0..v exist.
  virtual void ensure_var(Var v) = 0;

  virtual int num_vars() const = 0;

  /// Adds a clause; may be called between solve() calls (incremental
  /// interface, paper §6).  Returns false on trivial root conflict.
  [[nodiscard]] virtual bool add_clause(std::vector<Lit> lits) = 0;
  [[nodiscard]] bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::vector<Lit>(lits));
  }

  /// Adds every clause of \p f.  Returns false on trivial root
  /// conflict (the engine stays usable; solve() reports kUnsat).
  [[nodiscard]] virtual bool add_formula(const CnfFormula& f);

  /// False once the clause set has been proven unsatisfiable at the
  /// root level.
  virtual bool okay() const = 0;

  /// Number of original (non-learnt) problem clauses.
  virtual std::size_t num_problem_clauses() const = 0;

  // --- solving ------------------------------------------------------

  /// Decides satisfiability under the given assumption literals.
  [[nodiscard]] virtual SolveResult solve(
      const std::vector<Lit>& assumptions) = 0;

  /// Decides satisfiability of the current clause set.
  [[nodiscard]] SolveResult solve() { return solve(std::vector<Lit>{}); }

  /// After kSat: the satisfying assignment, indexed by variable.
  /// Entries may be l_undef for don't-care variables (partial models).
  virtual const std::vector<lbool>& model() const = 0;

  lbool model_value(Var v) const {
    const std::vector<lbool>& m = model();
    return static_cast<std::size_t>(v) < m.size() ? m[v] : l_undef;
  }
  lbool model_value(Lit l) const { return model_value(l.var()) ^ l.negative(); }

  /// After kUnsat under assumptions: the final conflict core.
  virtual const std::vector<Lit>& conflict_core() const = 0;

  // --- control / instrumentation ------------------------------------

  /// Requests cooperative termination of an in-flight solve() (callable
  /// from any thread).  The interrupted call returns kUnknown with
  /// unknown_reason() == kInterrupted.
  virtual void interrupt() = 0;

  /// Replaces the per-solve resource budgets applied to subsequent
  /// solve() calls: give up with kUnknown after \p conflicts conflicts
  /// (engines without a conflict notion map their closest native
  /// effort unit — DPLL backtracks, WalkSAT flips) or \p time_ms
  /// milliseconds of wall clock.  Negative means unlimited.  Unlike
  /// SolverOptions, which is fixed at construction, this can be called
  /// between solve() calls, so a long-lived engine (a serving session)
  /// can give every query its own budget.
  virtual void set_budgets(std::int64_t conflicts, std::int64_t time_ms) {
    (void)conflicts;
    (void)time_ms;
  }

  /// Why the last solve() returned kUnknown (kNone when it decided).
  virtual UnknownReason unknown_reason() const = 0;

  /// Aggregated search counters (summed over workers for a portfolio).
  virtual SolverStats stats() const = 0;

  // --- optional hints (no-ops where the engine has no equivalent) ---

  /// Removes clauses already satisfied at the root level; must be
  /// called between solve() calls.
  virtual void simplify_db() {}

  /// Prefers branching on v=value first.
  virtual void set_polarity(Var v, bool value) {
    (void)v;
    (void)value;
  }

  /// Excludes \p v from branching when \p is_decision is false.
  virtual void set_decision_var(Var v, bool is_decision) {
    (void)v;
    (void)is_decision;
  }

  /// Steers the decision heuristic toward \p v (e.g. fault-cone
  /// variables in ATPG).
  virtual void bump_variable(Var v) { (void)v; }

  /// Protects \p v from elimination or substitution by simplification
  /// (preprocessing/inprocessing): a frozen variable keeps its clauses
  /// and its meaning, so it is safe to use later as an assumption or a
  /// selector (MUS selectors, MaxSAT relaxation variables, k-induction
  /// frame selectors).  Engines without simplification ignore it.
  /// Freeze before the first solve() that could simplify the variable.
  virtual void freeze(Var v) { (void)v; }

  /// Releases the freeze() protection (the variable becomes eligible
  /// for elimination again at the next simplification run).
  virtual void thaw(Var v) { (void)v; }

  /// Whether \p v is currently frozen.
  virtual bool is_frozen(Var v) const {
    (void)v;
    return false;
  }
};

/// Builds a SAT engine from application-tuned solver options.  An
/// empty factory means "the default engine" — see make_engine().
using EngineFactory =
    std::function<std::unique_ptr<SatEngine>(const SolverOptions&)>;

/// A parsed, printable description of a SAT backend — the one way
/// engines are selected everywhere (CLI flags, the sateda-serve
/// protocol, application options structs).
///
/// The spec grammar is `backend[:field[:field]]`:
///
///   cdcl | dpll | walksat (alias wsat)
///   portfolio[:N][:det|:race]     N workers (0 = one per core)
///   cube[:N]                      cube-and-conquer, N conquer workers
///
/// Examples: "cdcl", "portfolio:8", "portfolio:8:det".  parse() and
/// to_string() round-trip: parse(s.to_string()) describes the same
/// engine, which is what lets a daemon echo back the exact backend a
/// session runs on.  A spec is a value — storable in options structs,
/// comparable, and serializable — unlike the EngineFactory closure it
/// replaces (the old engine_factory_by_name(name, num_workers)
/// signature survives as a deprecated shim).
///
/// A custom factory can still be wrapped (backend kCustom, printed as
/// "custom"); such a spec does not round-trip through parse().
class EngineSpec {
 public:
  enum class Backend { kCdcl, kDpll, kWalkSat, kPortfolio, kCube, kCustom };

  /// Default: the single-threaded CDCL solver.
  EngineSpec() = default;

  /// Wraps a caller-supplied factory (intentionally implicit so call
  /// sites that used to store an EngineFactory keep working).
  EngineSpec(EngineFactory custom)  // NOLINT(google-explicit-constructor)
      : backend_(Backend::kCustom), custom_(std::move(custom)) {}

  /// Parses a spec string; see parse().  Implicit so option structs
  /// accept `opts.engine = "portfolio:4"`.
  EngineSpec(const std::string& text)  // NOLINT(google-explicit-constructor)
      : EngineSpec(parse(text)) {}
  EngineSpec(const char* text)  // NOLINT(google-explicit-constructor)
      : EngineSpec(parse(text)) {}

  /// Parses `backend[:field[:field]]`.  Throws std::invalid_argument
  /// with a message naming the offending token on anything else.
  static EngineSpec parse(const std::string& text);

  /// Portfolio over \p num_workers diversified CDCL workers (0 → one
  /// per hardware thread), optionally in the deterministic
  /// barrier-synchronized mode (see PortfolioOptions).
  static EngineSpec portfolio(int num_workers, bool deterministic = false);

  /// Cube-and-conquer: lookahead split, then \p num_workers conquer
  /// workers with work stealing (0 → one per hardware thread).  See
  /// sat/cube/cube_engine.hpp.
  static EngineSpec cube(int num_workers = 0);

  /// Canonical spec string ("walksat" for wsat, workers/mode fields
  /// only where they differ from the defaults); "custom" for wrapped
  /// factories.
  std::string to_string() const;

  Backend backend() const { return backend_; }
  int num_workers() const { return num_workers_; }
  bool deterministic() const { return deterministic_; }
  bool is_custom() const { return backend_ == Backend::kCustom; }

  /// Overrides the worker count (meaningful for portfolio; kept so the
  /// shared --threads flag composes with any spec string).
  EngineSpec& with_workers(int n) {
    num_workers_ = n;
    return *this;
  }
  EngineSpec& with_deterministic(bool det) {
    deterministic_ = det;
    return *this;
  }

  /// Builds the described engine.
  std::unique_ptr<SatEngine> build(const SolverOptions& opts = {}) const;

  /// The equivalent factory closure (for the few call sites that still
  /// hand construction off to someone else).
  EngineFactory factory() const;

  /// Two non-custom specs describing the same engine compare equal.
  friend bool operator==(const EngineSpec& a, const EngineSpec& b) {
    return a.backend_ == b.backend_ && a.num_workers_ == b.num_workers_ &&
           a.deterministic_ == b.deterministic_;
  }

 private:
  Backend backend_ = Backend::kCdcl;
  int num_workers_ = 0;
  bool deterministic_ = false;
  EngineFactory custom_;
};

/// Invokes \p factory (or builds the default single-threaded CDCL
/// solver when the factory is empty) with \p opts.
std::unique_ptr<SatEngine> make_engine(const EngineFactory& factory,
                                       const SolverOptions& opts);

/// Builds the engine \p spec describes.
std::unique_ptr<SatEngine> make_engine(const EngineSpec& spec,
                                       const SolverOptions& opts);

/// Stock factories for the four backends.
EngineFactory cdcl_engine_factory();
EngineFactory dpll_engine_factory();
EngineFactory walksat_engine_factory();

/// Portfolio over \p num_workers diversified CDCL workers (0 → one per
/// hardware thread).  \p deterministic enables barrier-synchronized
/// clause exchange for reproducible runs (see PortfolioOptions).
EngineFactory portfolio_engine_factory(int num_workers,
                                       bool deterministic = false);

/// Resolves "cdcl" | "dpll" | "wsat"/"walksat" | "portfolio" (with
/// \p num_workers workers).  Throws std::invalid_argument on an
/// unknown name.
[[deprecated("use EngineSpec::parse(text) — specs also carry the worker "
             "count and mode, and round-trip through to_string()")]]
EngineFactory engine_factory_by_name(const std::string& name,
                                     int num_workers = 0);

}  // namespace sateda::sat
