/// \file structural_hash.hpp
/// \brief Structural hashing (strashing): merging structurally
///        identical gates — the standard front-end simplification used
///        before SAT-based equivalence checking (paper §3, [16, 26]).
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

struct StrashStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t merged = 0;       ///< gates replaced by an existing twin
  std::size_t buffers_folded = 0;
  std::size_t constants_folded = 0;

  std::string summary() const {
    return "gates " + std::to_string(gates_before) + " -> " +
           std::to_string(gates_after) + " (merged=" + std::to_string(merged) +
           ", buf=" + std::to_string(buffers_folded) +
           ", const=" + std::to_string(constants_folded) + ")";
  }
};

/// Rebuilds \p c merging duplicate gates (same type, same canonical
/// fanin list), folding buffers through, and propagating constants
/// through AND/OR/NAND/NOR/XOR gates.  Functionally equivalent to the
/// input; primary inputs and output order are preserved.
Circuit strash(const Circuit& c, StrashStats* stats = nullptr);

}  // namespace sateda::circuit
