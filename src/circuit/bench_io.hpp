/// \file bench_io.hpp
/// \brief Reader/writer for the ISCAS "BENCH" netlist format — the
///        interchange format of the testing community the paper's ATPG
///        applications target.
///
/// Supported lines:
///   # comment
///   INPUT(name)
///   OUTPUT(name)
///   name = GATE(arg1, arg2, ...)     GATE in {AND, NAND, OR, NOR,
///                                    XOR, XNOR, NOT, BUF, BUFF}
/// Gates may be declared in any order; the reader topologically sorts.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Parses a BENCH netlist.  Throws CircuitError on syntax errors,
/// undefined signals or combinational cycles.
Circuit read_bench(std::istream& in, const std::string& name = "bench");

/// Parses a BENCH netlist from a string.
Circuit read_bench_string(const std::string& text,
                          const std::string& name = "bench");

/// Parses a BENCH file from disk.
Circuit read_bench_file(const std::string& path);

/// Serializes a circuit in BENCH format.  Unnamed nodes get synthetic
/// names ("n<id>").
void write_bench(std::ostream& out, const Circuit& c);

/// Serializes to a BENCH string.
std::string to_bench_string(const Circuit& c);

}  // namespace sateda::circuit
