#include "circuit/rewrite.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

namespace sateda::circuit {

namespace {

/// Signed reference to a node of the output circuit: 2*node + negated.
/// Complement edges make NOT free and let gate polarity float until a
/// consumer (or an output) forces a concrete realization.
using SLit = std::int32_t;

constexpr SLit slit(NodeId n, bool neg) {
  return (n << 1) | static_cast<SLit>(neg);
}
constexpr NodeId snode(SLit s) { return s >> 1; }
constexpr bool sneg(SLit s) { return (s & 1) != 0; }
constexpr SLit sflip(SLit s) { return s ^ 1; }
constexpr SLit kNullSLit = -2;

/// One K-feasible cut: the node's exact function over `leaves` as a
/// truth table (bit m of `tt` = value on minterm m of the leaves, LSB
/// leaf = leaves[0]).  Only the low 2^|leaves| bits are meaningful.
struct Cut {
  std::vector<NodeId> leaves;  ///< sorted, |leaves| <= cut_size
  std::uint16_t tt = 0;
};

std::uint16_t cut_mask(std::size_t num_leaves) {
  const unsigned bits = 1u << num_leaves;
  return bits >= 16 ? 0xFFFFu
                    : static_cast<std::uint16_t>((1u << bits) - 1u);
}

/// Projection of leaf \p i over a 4-variable truth-table space.
constexpr std::uint16_t kProj[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

/// Re-expresses \p c's truth table over the superset \p leaves (every
/// leaf of c must appear in leaves; both sorted).
std::uint16_t expand_tt(const Cut& c, const std::vector<NodeId>& leaves) {
  // Position of each cut leaf inside the union.
  int pos[4];
  for (std::size_t i = 0; i < c.leaves.size(); ++i) {
    pos[i] = static_cast<int>(
        std::lower_bound(leaves.begin(), leaves.end(), c.leaves[i]) -
        leaves.begin());
  }
  const unsigned minterms = 1u << leaves.size();
  std::uint16_t r = 0;
  for (unsigned m = 0; m < minterms; ++m) {
    unsigned idx = 0;
    for (std::size_t i = 0; i < c.leaves.size(); ++i) {
      if ((m >> pos[i]) & 1u) idx |= 1u << i;
    }
    if ((c.tt >> idx) & 1u) r |= static_cast<std::uint16_t>(1u << m);
  }
  return r;
}

class Rewriter {
 public:
  Rewriter(const Circuit& c, const RewriteOptions& opts)
      : in_(c), out_(c.name() + "_rw"), opts_(opts) {
    opts_.cut_size = std::clamp(opts_.cut_size, 2, 4);
    opts_.max_cuts = std::max(opts_.max_cuts, 1);
    map_.assign(c.num_nodes(), kNullSLit);
  }

  RewriteResult run(const std::vector<NodeId>& keep) {
    stats_.gates_before = in_.num_gates();
    for (NodeId id = 0; id < static_cast<NodeId>(in_.num_nodes()); ++id) {
      map_[id] = rewrite_node(id);
    }
    RewriteResult res;
    res.node_map.assign(in_.num_nodes(), kNullNode);
    for (NodeId id = 0; id < static_cast<NodeId>(in_.num_nodes()); ++id) {
      if (map_[id] != kNullSLit && !sneg(map_[id])) {
        res.node_map[id] = snode(map_[id]);
      }
    }
    for (NodeId k : keep) res.node_map[k] = realize(map_[k]);
    for (std::size_t i = 0; i < in_.outputs().size(); ++i) {
      const NodeId o = in_.outputs()[i];
      res.node_map[o] = realize(map_[o]);
      out_.mark_output(res.node_map[o], in_.output_name(i));
    }
    stats_.gates_after = out_.num_gates();
    res.circuit = std::move(out_);
    res.stats = stats_;
    return res;
  }

 private:
  // --- constants -----------------------------------------------------

  NodeId const0() {
    if (const0_ == kNullNode) const0_ = new_node(GateType::kConst0, {});
    return const0_;
  }
  bool is_const(SLit s) const {
    return const0_ != kNullNode && snode(s) == const0_;
  }
  /// Value of a constant slit (const0 complemented = 1).
  bool const_value(SLit s) const { return sneg(s); }
  SLit const_slit(bool v) { return slit(const0(), v); }

  // --- per-node dispatch ---------------------------------------------

  SLit rewrite_node(NodeId id) {
    const Node& n = in_.node(id);
    switch (n.type) {
      case GateType::kInput:
        return slit(new_node(GateType::kInput, {}, n.name), false);
      case GateType::kConst0:
        return const_slit(false);
      case GateType::kConst1:
        return const_slit(true);
      case GateType::kBuf:
        return map_[n.fanins[0]];
      case GateType::kNot:
        return sflip(map_[n.fanins[0]]);
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool or_like =
            n.type == GateType::kOr || n.type == GateType::kNor;
        std::vector<SLit> fs;
        fs.reserve(n.fanins.size());
        for (NodeId f : n.fanins) {
          // OR(a, b) = ¬AND(¬a, ¬b): everything is an AND internally.
          fs.push_back(or_like ? sflip(map_[f]) : map_[f]);
        }
        SLit a = make_and(std::move(fs));
        return is_inverting(n.type) != or_like ? sflip(a) : a;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        SLit x = make_xor(map_[n.fanins[0]], map_[n.fanins[1]]);
        return n.type == GateType::kXnor ? sflip(x) : x;
      }
    }
    return kNullSLit;  // unreachable
  }

  // --- AND / XOR construction with folding ---------------------------

  /// AND over signed fanins; complement edges absorbed.
  SLit make_and(std::vector<SLit> fs) {
    // Constant folding: a 0 controls, 1s drop out.
    std::size_t w = 0;
    for (SLit f : fs) {
      if (is_const(f)) {
        if (!const_value(f)) {
          ++stats_.constants_folded;
          return const_slit(false);
        }
        continue;  // AND(x, 1) = x
      }
      fs[w++] = f;
    }
    if (w < fs.size()) ++stats_.constants_folded;
    fs.resize(w);
    // Canonical order; duplicate fanins collapse, complementary pairs
    // (adjacent after the sort, since slit(n,0)+1 == slit(n,1)) give 0.
    std::sort(fs.begin(), fs.end());
    fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
    if (w > fs.size()) ++stats_.identity_folds;
    for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
      if (fs[i + 1] == sflip(fs[i])) {
        ++stats_.constants_folded;
        return const_slit(false);  // x ∧ ¬x
      }
    }
    if (fs.empty()) return const_slit(true);
    if (fs.size() == 1) {
      ++stats_.identity_folds;
      return fs[0];
    }
    const StructKey key{0, fs};
    if (auto it = struct_cache_.find(key); it != struct_cache_.end()) {
      ++stats_.structural_merges;
      return it->second;
    }
    // Realize: all-negated fanins De Morgan into one NOR; mixed signs
    // materialize (shared) inverters for the negated few.
    std::size_t negs = 0;
    for (SLit f : fs) negs += sneg(f) ? 1 : 0;
    GateType type = GateType::kAnd;
    std::vector<NodeId> fanins;
    fanins.reserve(fs.size());
    if (negs == fs.size()) {
      type = GateType::kNor;  // AND(¬a…) = NOR(a…)
      ++stats_.demorgan_rewrites;
      for (SLit f : fs) fanins.push_back(snode(f));
    } else {
      for (SLit f : fs) {
        fanins.push_back(sneg(f) ? snode(make_not(snode(f))) : snode(f));
      }
    }
    return finish_gate(type, std::move(fanins), key);
  }

  SLit make_xor(SLit a, SLit b) {
    // Fanin complements float to the output: XOR(¬a, b) = ¬XOR(a, b).
    const bool phase = sneg(a) != sneg(b);
    NodeId na = snode(a), nb = snode(b);
    if (na == nb) {
      ++stats_.constants_folded;
      return const_slit(phase);  // x ⊕ x = 0
    }
    if (is_const(slit(na, false))) std::swap(na, nb);
    if (is_const(slit(nb, false))) {
      ++stats_.constants_folded;
      return slit(na, phase);  // XOR(x, 0) = x  (1 went into `phase`)
    }
    if (na > nb) std::swap(na, nb);
    const StructKey key{1, {slit(na, false), slit(nb, false)}};
    SLit r;
    if (auto it = struct_cache_.find(key); it != struct_cache_.end()) {
      ++stats_.structural_merges;
      r = it->second;
    } else {
      r = finish_gate(GateType::kXor, {na, nb}, key);
    }
    return phase ? sflip(r) : r;
  }

  /// Callers need a *materialized positive* node computing ¬n (they
  /// strip the sign with snode), so a complemented cut hit — e.g. ¬n
  /// itself, whose function trivially matches — must be rejected.
  SLit make_not(NodeId n) {
    const StructKey key{2, {slit(n, false)}};
    if (auto it = struct_cache_.find(key);
        it != struct_cache_.end() && !sneg(it->second)) {
      return it->second;
    }
    return finish_gate(GateType::kNot, {n}, key, /*require_positive=*/true);
  }

  // --- cut machinery --------------------------------------------------

  std::uint16_t apply_gate_tt(GateType t, const std::vector<std::uint16_t>& in,
                              std::uint16_t mask) const {
    switch (t) {
      case GateType::kNot:
        return static_cast<std::uint16_t>(~in[0] & mask);
      case GateType::kAnd: {
        std::uint16_t v = mask;
        for (std::uint16_t x : in) v &= x;
        return v;
      }
      case GateType::kNor: {
        std::uint16_t v = 0;
        for (std::uint16_t x : in) v |= x;
        return static_cast<std::uint16_t>(~v & mask);
      }
      case GateType::kXor:
        return static_cast<std::uint16_t>((in[0] ^ in[1]) & mask);
      default:
        return 0;  // unreachable: only the four types above are built
    }
  }

  const std::vector<Cut>& cuts_of(NodeId n) {
    if (static_cast<std::size_t>(n) >= cuts_.size()) cuts_.resize(n + 1);
    if (cuts_[n].empty()) {
      // Leaves (inputs, constants) carry just the trivial cut.
      cuts_[n].push_back(Cut{{n}, static_cast<std::uint16_t>(kProj[0] & cut_mask(1))});
    }
    return cuts_[n];
  }

  /// Cuts of a *candidate* gate (not yet added): one cut per
  /// combination of fanin cuts whose leaf union stays within K.
  std::vector<Cut> compute_cuts(GateType t, const std::vector<NodeId>& fanins) {
    std::vector<Cut> result;
    auto merge = [&](const std::vector<const Cut*>& parts) {
      std::vector<NodeId> leaves;
      for (const Cut* p : parts) {
        leaves.insert(leaves.end(), p->leaves.begin(), p->leaves.end());
      }
      std::sort(leaves.begin(), leaves.end());
      leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
      if (leaves.size() > static_cast<std::size_t>(opts_.cut_size)) return;
      const std::uint16_t mask = cut_mask(leaves.size());
      std::vector<std::uint16_t> tts;
      tts.reserve(parts.size());
      for (const Cut* p : parts) tts.push_back(expand_tt(*p, leaves));
      Cut c{std::move(leaves), apply_gate_tt(t, tts, mask)};
      for (const Cut& seen : result) {
        if (seen.leaves == c.leaves && seen.tt == c.tt) return;
      }
      result.push_back(std::move(c));
    };
    if (fanins.size() == 1) {
      for (const Cut& c : cuts_of(fanins[0])) merge({&c});
    } else if (fanins.size() == 2) {
      // Copy: cuts_of may reallocate cuts_ between the two lookups.
      const std::vector<Cut> ca = cuts_of(fanins[0]);
      const std::vector<Cut> cb = cuts_of(fanins[1]);
      for (const Cut& a : ca) {
        for (const Cut& b : cb) {
          merge({&a, &b});
          if (result.size() >= static_cast<std::size_t>(4 * opts_.max_cuts)) {
            break;
          }
        }
      }
    } else {
      // Wide gates: just the cut over the fanins themselves.
      std::vector<Cut> trivial;
      trivial.reserve(fanins.size());
      for (NodeId f : fanins) {
        trivial.push_back(Cut{{f}, static_cast<std::uint16_t>(
                                       kProj[0] & cut_mask(1))});
      }
      std::vector<const Cut*> parts;
      for (const Cut& c : trivial) parts.push_back(&c);
      merge(parts);
    }
    // Smaller cuts merge more often; keep the best few.
    std::stable_sort(result.begin(), result.end(),
                     [](const Cut& a, const Cut& b) {
                       return a.leaves.size() < b.leaves.size();
                     });
    if (result.size() > static_cast<std::size_t>(opts_.max_cuts)) {
      result.resize(static_cast<std::size_t>(opts_.max_cuts));
    }
    return result;
  }

  /// Phase-canonical cut key: the lexicographically smaller of tt and
  /// its complement, with the phase in the returned flag.
  static std::pair<std::uint16_t, bool> canon_tt(std::uint16_t tt,
                                                 std::uint16_t mask) {
    const std::uint16_t comp = static_cast<std::uint16_t>(~tt & mask);
    return comp < tt ? std::make_pair(comp, true) : std::make_pair(tt, false);
  }

  using StructKey = std::pair<int, std::vector<SLit>>;
  using CutKey = std::pair<std::vector<NodeId>, std::uint16_t>;

  /// Tries a cut-function merge; otherwise materializes the gate and
  /// registers its structural key and cut functions.
  SLit finish_gate(GateType t, std::vector<NodeId> fanins,
                   const StructKey& key, bool require_positive = false) {
    std::vector<Cut> cuts;
    if (opts_.cut_merging) {
      cuts = compute_cuts(t, fanins);
      for (const Cut& c : cuts) {
        const std::uint16_t mask = cut_mask(c.leaves.size());
        auto [ct, phase] = canon_tt(c.tt, mask);
        auto it = cut_cache_.find(CutKey{c.leaves, ct});
        if (it == cut_cache_.end()) continue;
        const SLit hit = phase ? sflip(it->second) : it->second;
        if (require_positive && sneg(hit)) continue;
        ++stats_.cut_merges;
        struct_cache_[key] = hit;
        return hit;
      }
    }
    const NodeId n = new_node(t, std::move(fanins));
    const SLit s = slit(n, false);
    struct_cache_[key] = s;
    if (opts_.cut_merging) {
      if (static_cast<std::size_t>(n) >= cuts_.size()) cuts_.resize(n + 1);
      for (const Cut& c : cuts) {
        const std::uint16_t mask = cut_mask(c.leaves.size());
        auto [ct, phase] = canon_tt(c.tt, mask);
        cut_cache_.emplace(CutKey{c.leaves, ct}, phase ? sflip(s) : s);
      }
      cuts.push_back(Cut{{n}, static_cast<std::uint16_t>(kProj[0] & cut_mask(1))});
      cuts_[n] = std::move(cuts);
    }
    return s;
  }

  NodeId new_node(GateType t, std::vector<NodeId> fanins,
                  const std::string& name = "") {
    switch (t) {
      case GateType::kInput:
        return out_.add_input(name);
      case GateType::kConst0:
        return out_.add_const(false);
      default:
        return out_.add_gate(t, std::move(fanins));
    }
  }

  /// Positive realization for outputs / kept nodes: a complemented
  /// reference becomes a (hashed) inverter, a complemented constant
  /// becomes the other constant.
  NodeId realize(SLit s) {
    assert(s != kNullSLit);
    if (!sneg(s)) return snode(s);
    if (is_const(s)) {
      if (const1_ == kNullNode) const1_ = out_.add_const(true);
      return const1_;
    }
    return snode(make_not(snode(s)));
  }

  const Circuit& in_;
  Circuit out_;
  RewriteOptions opts_;
  RewriteStats stats_;
  std::vector<SLit> map_;
  NodeId const0_ = kNullNode, const1_ = kNullNode;
  std::map<StructKey, SLit> struct_cache_;
  std::map<CutKey, SLit> cut_cache_;
  std::vector<std::vector<Cut>> cuts_;  ///< by output-circuit node
};

}  // namespace

std::string RewriteStats::summary() const {
  return "gates " + std::to_string(gates_before) + " -> " +
         std::to_string(gates_after) + " (const=" +
         std::to_string(constants_folded) + " ident=" +
         std::to_string(identity_folds) + " hash=" +
         std::to_string(structural_merges) + " demorgan=" +
         std::to_string(demorgan_rewrites) + " cut=" +
         std::to_string(cut_merges) + ")";
}

RewriteResult rewrite(const Circuit& c, const RewriteOptions& opts,
                      const std::vector<NodeId>& keep) {
  return Rewriter(c, opts).run(keep);
}

}  // namespace sateda::circuit
