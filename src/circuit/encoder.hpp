/// \file encoder.hpp
/// \brief Circuit → CNF translation (paper §2, Table 1, Figure 1).
///
/// "The CNF formula of a combinational circuit is the conjunction of
/// the CNF formulas for each gate output, where the CNF formula of
/// each gate denotes the valid input-output assignments to the gate."
/// Node ids double as CNF variables, so the formula of a circuit with
/// N nodes has exactly N variables and the mapping is the identity.
#pragma once

#include <vector>

#include "cnf/formula.hpp"
#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Emits the Table 1 clauses of a single gate (node \p id of \p c)
/// into \p f.  Exposed separately so tests/benches can reproduce the
/// table gate by gate.
void encode_gate(const Circuit& c, NodeId id, CnfFormula& f);

/// Table 1 clauses for a gate of \p type with output variable \p out
/// and input variables \p ins — the low-level form used when gate
/// copies live on variables other than their node ids (incremental
/// ATPG, BMC unrolling).  kInput emits nothing; kConst0/kConst1 emit
/// the unit clause.
void encode_gate_clauses(GateType type, Var out, const std::vector<Var>& ins,
                         CnfFormula& f);

/// Number of clauses Table 1 assigns to a gate of \p type with
/// \p arity inputs (inputs/constants included for completeness).
std::size_t gate_clause_count(GateType type, std::size_t arity);

/// CNF formula of the whole circuit: variable v ⇔ node v.
CnfFormula encode_circuit(const Circuit& c);

/// A cone encoding with *compact* variable numbering: only in-cone
/// nodes get variables, so a tiny cone of a huge netlist yields a tiny
/// formula and the solver's var-indexed structures (heap, phases,
/// watch slabs) size to the cone, not the netlist.
struct ConeEncoding {
  CnfFormula formula;
  /// node -> formula variable; kNullVar for out-of-cone nodes.
  std::vector<Var> node_to_var;
  /// formula variable -> node (model readback).
  std::vector<NodeId> var_to_node;
  /// Clauses the Plaisted-Greenbaum polarity analysis dropped.
  std::size_t clauses_dropped = 0;

  Var var_of(NodeId n) const { return node_to_var[n]; }
};

struct ConeEncodingOptions {
  /// Plaisted-Greenbaum: emit only the implication direction each node
  /// polarity actually needs (single-polarity cones lose half their
  /// clauses; XOR cones keep both).  Equisatisfiable with the Table 1
  /// encoding; models restricted to the inputs still simulate to the
  /// objective values.
  bool plaisted_greenbaum = false;
};

/// CNF of the transitive fanin cones of \p roots only — the
/// instance-shrinking trick used when a property mentions few outputs
/// — with both polarities encoded (the roots carry no objective here).
ConeEncoding encode_cones(const Circuit& c, const std::vector<NodeId>& roots);

/// Cone encoding of the objectives (node=value, ANDed): the cones of
/// the objective nodes plus one unit clause per objective.  With
/// opts.plaisted_greenbaum the objective values seed the polarity
/// analysis (node=1 needs the onset direction only, node=0 the
/// offset), and single-polarity gates emit half their Table 1 clauses.
ConeEncoding encode_objectives(
    const Circuit& c, const std::vector<std::pair<NodeId, bool>>& objectives,
    const ConeEncodingOptions& opts = {});

/// The satisfiability problem (C, o) of §5: circuit CNF plus unit
/// objective clauses requiring node \p node to take value \p value —
/// e.g. Figure 1(b)'s "with property z = 0".
CnfFormula encode_objective(const Circuit& c, NodeId node, bool value);

}  // namespace sateda::circuit
