/// \file encoder.hpp
/// \brief Circuit → CNF translation (paper §2, Table 1, Figure 1).
///
/// "The CNF formula of a combinational circuit is the conjunction of
/// the CNF formulas for each gate output, where the CNF formula of
/// each gate denotes the valid input-output assignments to the gate."
/// Node ids double as CNF variables, so the formula of a circuit with
/// N nodes has exactly N variables and the mapping is the identity.
#pragma once

#include <vector>

#include "cnf/formula.hpp"
#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Emits the Table 1 clauses of a single gate (node \p id of \p c)
/// into \p f.  Exposed separately so tests/benches can reproduce the
/// table gate by gate.
void encode_gate(const Circuit& c, NodeId id, CnfFormula& f);

/// Table 1 clauses for a gate of \p type with output variable \p out
/// and input variables \p ins — the low-level form used when gate
/// copies live on variables other than their node ids (incremental
/// ATPG, BMC unrolling).  kInput emits nothing; kConst0/kConst1 emit
/// the unit clause.
void encode_gate_clauses(GateType type, Var out, const std::vector<Var>& ins,
                         CnfFormula& f);

/// Number of clauses Table 1 assigns to a gate of \p type with
/// \p arity inputs (inputs/constants included for completeness).
std::size_t gate_clause_count(GateType type, std::size_t arity);

/// CNF formula of the whole circuit: variable v ⇔ node v.
CnfFormula encode_circuit(const Circuit& c);

/// CNF formula of the transitive fanin cones of \p roots only — the
/// instance-shrinking trick used when a property mentions few outputs.
/// Nodes outside the cone contribute no clauses (their variables stay
/// unconstrained).
CnfFormula encode_cones(const Circuit& c, const std::vector<NodeId>& roots);

/// The satisfiability problem (C, o) of §5: circuit CNF plus unit
/// objective clauses requiring node \p node to take value \p value —
/// e.g. Figure 1(b)'s "with property z = 0".
CnfFormula encode_objective(const Circuit& c, NodeId node, bool value);

}  // namespace sateda::circuit
