/// \file dot.hpp
/// \brief Graphviz DOT export for netlists — the debugging/reporting
///        view every circuit tool grows sooner or later.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

struct DotOptions {
  /// Optional per-node value annotation (e.g. a simulation result or a
  /// SAT model); entries beyond the vector are unannotated.
  std::vector<lbool> values;
  /// Highlight these nodes (e.g. a sensitized path or a fault cone).
  std::vector<NodeId> highlight;
  bool left_to_right = true;
};

/// Writes \p c as a DOT digraph: inputs as boxes on the left, gates as
/// ellipses labelled with their type, outputs double-circled.
void write_dot(std::ostream& out, const Circuit& c, const DotOptions& opts = {});

/// Serializes to a DOT string.
std::string to_dot_string(const Circuit& c, const DotOptions& opts = {});

}  // namespace sateda::circuit
