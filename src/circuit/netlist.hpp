/// \file netlist.hpp
/// \brief Gate-level combinational netlist (paper §2, Figure 1).
///
/// Nodes are stored in topological order by construction: every gate's
/// fanins must already exist when the gate is added.  This invariant
/// makes simulation, encoding and levelization single linear passes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/gate.hpp"

namespace sateda::circuit {

/// Dense node identifier; doubles as the CNF variable of the node
/// under encode_circuit().
using NodeId = std::int32_t;
inline constexpr NodeId kNullNode = -1;

/// Raised on structural errors (unknown names, bad arity, ...).
class CircuitError : public std::runtime_error {
 public:
  explicit CircuitError(const std::string& what) : std::runtime_error(what) {}
};

/// One node: a primary input, constant or gate.
struct Node {
  GateType type = GateType::kInput;
  std::vector<NodeId> fanins;
  std::string name;  ///< optional; unique when non-empty
};

/// A combinational circuit C (paper §2): a DAG of simple gates with
/// designated primary inputs and outputs.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction --------------------------------------------------

  /// Adds a primary input.
  NodeId add_input(const std::string& name = "");

  /// Adds a constant node.
  NodeId add_const(bool value, const std::string& name = "");

  /// Adds a gate of \p type over \p fanins (which must already exist).
  /// Checks arity: BUF/NOT take 1 input, XOR/XNOR take 2, the rest ≥ 1.
  NodeId add_gate(GateType type, std::vector<NodeId> fanins,
                  const std::string& name = "");

  /// Convenience builders.
  NodeId add_not(NodeId a, const std::string& name = "") {
    return add_gate(GateType::kNot, {a}, name);
  }
  NodeId add_buf(NodeId a, const std::string& name = "") {
    return add_gate(GateType::kBuf, {a}, name);
  }
  NodeId add_and(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kAnd, {a, b}, name);
  }
  NodeId add_or(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kOr, {a, b}, name);
  }
  NodeId add_nand(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kNand, {a, b}, name);
  }
  NodeId add_nor(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kNor, {a, b}, name);
  }
  NodeId add_xor(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kXor, {a, b}, name);
  }
  NodeId add_xnor(NodeId a, NodeId b, const std::string& name = "") {
    return add_gate(GateType::kXnor, {a, b}, name);
  }

  /// Marks \p node as a primary output.
  void mark_output(NodeId node, const std::string& name = "");

  // --- access ----------------------------------------------------------

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_gates() const { return num_gates_; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Name given to the i-th output at mark_output time (may be empty).
  const std::string& output_name(std::size_t i) const {
    return output_names_[i];
  }

  bool is_input(NodeId id) const {
    return nodes_[id].type == GateType::kInput;
  }

  /// Looks up a node by name; kNullNode if absent.
  NodeId find(const std::string& name) const;

  /// FO(x) of the paper §5: fanout lists, built lazily.
  const std::vector<NodeId>& fanouts(NodeId id) const;

  /// Logic level of each node (inputs at level 0); the circuit depth
  /// is max+0.  Unit gate delays — used by the delay module as the
  /// topological delay bound.
  std::vector<int> levels() const;

  /// Depth under unit gate delays.
  int depth() const;

  /// Throws CircuitError unless every output exists, arities are legal
  /// and the topological invariant holds.
  void check() const;

 private:
  NodeId add_node(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t num_gates_ = 0;
  mutable std::vector<std::vector<NodeId>> fanouts_;  ///< lazy cache
};

}  // namespace sateda::circuit
