/// \file gate.hpp
/// \brief Gate types of combinational netlists and their Boolean
///        semantics (2-valued, 3-valued and 64-way bit-parallel).
#pragma once

#include <cstdint>
#include <span>
#include <vector>
#include <string>

#include "cnf/literal.hpp"

namespace sateda::circuit {

/// The "simple gates" of the paper's Table 1, plus primary inputs and
/// constants.  AND/NAND/OR/NOR accept any arity ≥ 1; XOR/XNOR are
/// 2-input; BUF/NOT are 1-input.
enum class GateType : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

inline std::string to_string(GateType t) {
  switch (t) {
    case GateType::kInput: return "INPUT";
    case GateType::kConst0: return "CONST0";
    case GateType::kConst1: return "CONST1";
    case GateType::kBuf: return "BUF";
    case GateType::kNot: return "NOT";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

/// True iff the gate output is the complement of the same gate without
/// inversion (NAND/NOR/XNOR/NOT).
constexpr bool is_inverting(GateType t) {
  return t == GateType::kNand || t == GateType::kNor ||
         t == GateType::kXnor || t == GateType::kNot;
}

/// 2-valued evaluation.  Takes a vector (not a span) because
/// std::vector<bool> is bit-packed and cannot alias a bool span.
inline bool eval_gate(GateType t, const std::vector<bool>& in) {
  switch (t) {
    case GateType::kInput: return false;  // inputs have no function
    case GateType::kConst0: return false;
    case GateType::kConst1: return true;
    case GateType::kBuf: return in[0];
    case GateType::kNot: return !in[0];
    case GateType::kAnd:
    case GateType::kNand: {
      bool v = true;
      for (bool b : in) v = v && b;
      return t == GateType::kAnd ? v : !v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool v = false;
      for (bool b : in) v = v || b;
      return t == GateType::kOr ? v : !v;
    }
    case GateType::kXor: return in[0] != in[1];
    case GateType::kXnor: return in[0] == in[1];
  }
  return false;
}

/// 64-way bit-parallel evaluation (one simulation pattern per bit) —
/// the workhorse of the fault simulator.
inline std::uint64_t eval_gate_word(GateType t,
                                    std::span<const std::uint64_t> in) {
  switch (t) {
    case GateType::kInput: return 0;
    case GateType::kConst0: return 0;
    case GateType::kConst1: return ~std::uint64_t{0};
    case GateType::kBuf: return in[0];
    case GateType::kNot: return ~in[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t v = ~std::uint64_t{0};
      for (std::uint64_t b : in) v &= b;
      return t == GateType::kAnd ? v : ~v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t v = 0;
      for (std::uint64_t b : in) v |= b;
      return t == GateType::kOr ? v : ~v;
    }
    case GateType::kXor: return in[0] ^ in[1];
    case GateType::kXnor: return ~(in[0] ^ in[1]);
  }
  return 0;
}

/// 3-valued (ternary) evaluation with controlling-value shortcuts:
/// e.g. AND with any input 0 is 0 regardless of Xs.
inline lbool eval_gate_ternary(GateType t, std::span<const lbool> in) {
  auto all_known = [&] {
    for (lbool v : in) {
      if (v.is_undef()) return false;
    }
    return true;
  };
  switch (t) {
    case GateType::kInput: return l_undef;
    case GateType::kConst0: return l_false;
    case GateType::kConst1: return l_true;
    case GateType::kBuf: return in[0];
    case GateType::kNot: return ~in[0];
    case GateType::kAnd:
    case GateType::kNand: {
      bool flip = (t == GateType::kNand);
      for (lbool v : in) {
        if (v.is_false()) return lbool(flip);
      }
      return all_known() ? lbool(!flip) : l_undef;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool flip = (t == GateType::kNor);
      for (lbool v : in) {
        if (v.is_true()) return lbool(!flip);
      }
      return all_known() ? lbool(flip) : l_undef;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      if (in[0].is_undef() || in[1].is_undef()) return l_undef;
      bool v = in[0].is_true() != in[1].is_true();
      return lbool(t == GateType::kXor ? v : !v);
    }
  }
  return l_undef;
}

}  // namespace sateda::circuit
