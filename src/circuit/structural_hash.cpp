#include "circuit/structural_hash.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace sateda::circuit {

namespace {

bool is_symmetric(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

}  // namespace

Circuit strash(const Circuit& c, StrashStats* stats) {
  StrashStats local;
  local.gates_before = c.num_gates();

  Circuit out(c.name() + "_strash");
  // old node -> new node; parallel constant tag for folded nodes.
  std::vector<NodeId> map(c.num_nodes(), kNullNode);
  std::vector<lbool> konst(c.num_nodes(), l_undef);  // by *old* id
  NodeId const0 = kNullNode, const1 = kNullNode;
  auto get_const = [&](bool v) {
    NodeId& slot = v ? const1 : const0;
    if (slot == kNullNode) slot = out.add_const(v);
    return slot;
  };

  std::map<std::tuple<int, std::vector<NodeId>>, NodeId> cache;
  auto hashed_gate = [&](GateType t, std::vector<NodeId> fanins) {
    if (is_symmetric(t)) std::sort(fanins.begin(), fanins.end());
    auto key = std::make_tuple(static_cast<int>(t), fanins);
    auto it = cache.find(key);
    if (it != cache.end()) {
      ++local.merged;
      return it->second;
    }
    NodeId n = out.add_gate(t, std::get<1>(key));
    cache.emplace(std::move(key), n);
    return n;
  };

  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    switch (n.type) {
      case GateType::kInput:
        map[id] = out.add_input(n.name);
        continue;
      case GateType::kConst0:
      case GateType::kConst1:
        konst[id] = lbool(n.type == GateType::kConst1);
        map[id] = get_const(n.type == GateType::kConst1);
        continue;
      default:
        break;
    }
    // Gather fanins with their constant tags.
    std::vector<NodeId> fi;
    std::vector<lbool> fk;
    for (NodeId f : n.fanins) {
      fi.push_back(map[f]);
      fk.push_back(konst[f]);
    }
    auto set_const = [&](bool v) {
      konst[id] = lbool(v);
      map[id] = get_const(v);
      ++local.constants_folded;
    };
    auto alias = [&](std::size_t i) {
      // Output equals fanin i.
      map[id] = fi[i];
      konst[id] = fk[i];
      ++local.buffers_folded;
    };

    switch (n.type) {
      case GateType::kBuf:
        alias(0);
        continue;
      case GateType::kNot:
        if (!fk[0].is_undef()) {
          set_const(fk[0].is_false());
        } else {
          map[id] = hashed_gate(GateType::kNot, {fi[0]});
        }
        continue;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool and_like =
            (n.type == GateType::kAnd || n.type == GateType::kNand);
        const bool inv = is_inverting(n.type);
        // Controlling value: 0 for AND-like, 1 for OR-like.
        bool controlled = false;
        std::vector<NodeId> live;
        for (std::size_t i = 0; i < fi.size(); ++i) {
          if (fk[i].is_undef()) {
            live.push_back(fi[i]);
          } else if (fk[i].is_true() != and_like) {
            controlled = true;  // controlling constant present
          }
          // non-controlling constants are simply dropped
        }
        // Canonicalize: sort the surviving fanins and drop duplicates
        // (x∧x = x, x∨x = x) so AND(a,b) and AND(b,a,a) share a cache
        // key — the sort in hashed_gate alone would keep the duplicate.
        std::sort(live.begin(), live.end());
        const auto uniq = std::unique(live.begin(), live.end());
        if (uniq != live.end()) {
          local.buffers_folded += static_cast<std::size_t>(live.end() - uniq);
          live.erase(uniq, live.end());
        }
        if (controlled) {
          set_const(and_like ? inv : !inv);
        } else if (live.empty()) {
          set_const(and_like ? !inv : inv);
        } else if (live.size() == 1) {
          if (inv) {
            map[id] = hashed_gate(GateType::kNot, {live[0]});
          } else {
            map[id] = live[0];
            ++local.buffers_folded;
          }
        } else {
          map[id] = hashed_gate(n.type, std::move(live));
        }
        continue;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        const bool inv = (n.type == GateType::kXnor);
        if (!fk[0].is_undef() && !fk[1].is_undef()) {
          bool v = (fk[0].is_true() != fk[1].is_true()) != inv;
          set_const(v);
        } else if (!fk[0].is_undef() || !fk[1].is_undef()) {
          std::size_t ci = fk[0].is_undef() ? 1 : 0;
          std::size_t oi = 1 - ci;
          bool flip = fk[ci].is_true() != inv;
          if (flip) {
            map[id] = hashed_gate(GateType::kNot, {fi[oi]});
          } else {
            alias(oi);
          }
        } else if (fi[0] == fi[1]) {
          set_const(inv);  // x ⊕ x = 0
        } else {
          map[id] = hashed_gate(n.type, {fi[0], fi[1]});
        }
        continue;
      }
      default:
        continue;  // unreachable
    }
  }

  for (std::size_t i = 0; i < c.outputs().size(); ++i) {
    out.mark_output(map[c.outputs()[i]], c.output_name(i));
  }
  local.gates_after = out.num_gates();
  if (stats) *stats = local;
  return out;
}

}  // namespace sateda::circuit
