#include "circuit/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace sateda::circuit {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

GateType parse_gate_type(std::string t) {
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  if (t == "AND") return GateType::kAnd;
  if (t == "NAND") return GateType::kNand;
  if (t == "OR") return GateType::kOr;
  if (t == "NOR") return GateType::kNor;
  if (t == "XOR") return GateType::kXor;
  if (t == "XNOR") return GateType::kXnor;
  if (t == "NOT" || t == "INV") return GateType::kNot;
  if (t == "BUF" || t == "BUFF") return GateType::kBuf;
  throw CircuitError("unknown BENCH gate type: " + t);
}

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kNot: return "NOT";
    case GateType::kBuf: return "BUFF";
    default: return nullptr;
  }
}

struct GateLine {
  std::string name;
  GateType type;
  std::vector<std::string> args;
};

}  // namespace

Circuit read_bench(std::istream& in, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<GateLine> gates;
  std::unordered_map<std::string, std::size_t> gate_of;  // name -> gates idx

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string s = trim(line);
    if (s.empty() || s[0] == '#') continue;
    auto err = [&](const std::string& what) {
      throw CircuitError("BENCH line " + std::to_string(line_no) + ": " +
                         what + ": " + s);
    };
    std::size_t eq = s.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      std::size_t lp = s.find('(');
      std::size_t rp = s.rfind(')');
      if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        err("expected INPUT(...) or OUTPUT(...)");
      }
      std::string kind = trim(s.substr(0, lp));
      std::transform(kind.begin(), kind.end(), kind.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      std::string arg = trim(s.substr(lp + 1, rp - lp - 1));
      if (arg.empty()) err("empty signal name");
      if (kind == "INPUT") {
        input_names.push_back(arg);
      } else if (kind == "OUTPUT") {
        output_names.push_back(arg);
      } else {
        err("unknown directive");
      }
      continue;
    }
    GateLine g;
    g.name = trim(s.substr(0, eq));
    std::string rhs = trim(s.substr(eq + 1));
    std::size_t lp = rhs.find('(');
    std::size_t rp = rhs.rfind(')');
    if (g.name.empty() || lp == std::string::npos || rp == std::string::npos ||
        rp < lp) {
      err("malformed gate definition");
    }
    g.type = parse_gate_type(trim(rhs.substr(0, lp)));
    std::string args = rhs.substr(lp + 1, rp - lp - 1);
    std::istringstream as(args);
    std::string tok;
    while (std::getline(as, tok, ',')) {
      tok = trim(tok);
      if (tok.empty()) err("empty gate argument");
      g.args.push_back(tok);
    }
    if (g.args.empty()) err("gate has no arguments");
    if (gate_of.count(g.name)) err("signal defined twice");
    gate_of[g.name] = gates.size();
    gates.push_back(std::move(g));
  }

  // Build, topologically: DFS from each gate through its arguments.
  Circuit c(name);
  std::unordered_map<std::string, NodeId> node_of;
  for (const std::string& in_name : input_names) {
    if (node_of.count(in_name)) {
      throw CircuitError("BENCH: input declared twice: " + in_name);
    }
    node_of[in_name] = c.add_input(in_name);
  }
  // state: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> state(gates.size(), 0);
  // Iterative DFS frames: (gate index, next argument).
  struct Frame {
    std::size_t gi;
    std::size_t arg;
  };
  for (std::size_t root = 0; root < gates.size(); ++root) {
    if (state[root] == 2) continue;
    std::vector<Frame> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      GateLine& g = gates[f.gi];
      if (f.arg < g.args.size()) {
        const std::string& a = g.args[f.arg++];
        if (node_of.count(a)) continue;  // already built (input or done gate)
        auto it = gate_of.find(a);
        if (it == gate_of.end()) {
          throw CircuitError("BENCH: undefined signal: " + a);
        }
        if (state[it->second] == 1) {
          throw CircuitError("BENCH: combinational cycle through " + a);
        }
        if (state[it->second] == 0) {
          state[it->second] = 1;
          stack.push_back({it->second, 0});
        }
        continue;
      }
      // All arguments resolved: create the gate.
      std::vector<NodeId> fanins;
      for (const std::string& a : g.args) fanins.push_back(node_of.at(a));
      node_of[g.name] = c.add_gate(g.type, std::move(fanins), g.name);
      state[f.gi] = 2;
      stack.pop_back();
    }
  }
  for (const std::string& out_name : output_names) {
    auto it = node_of.find(out_name);
    if (it == node_of.end()) {
      throw CircuitError("BENCH: undefined output: " + out_name);
    }
    c.mark_output(it->second, "");
  }
  return c;
}

Circuit read_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return read_bench(in, name);
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CircuitError("cannot open BENCH file: " + path);
  return read_bench(in, path);
}

void write_bench(std::ostream& out, const Circuit& c) {
  auto node_name = [&](NodeId id) {
    const std::string& n = c.node(id).name;
    return n.empty() ? "n" + std::to_string(id) : n;
  };
  out << "# " << c.name() << " (" << c.inputs().size() << " inputs, "
      << c.num_gates() << " gates, " << c.outputs().size() << " outputs)\n";
  for (NodeId i : c.inputs()) out << "INPUT(" << node_name(i) << ")\n";
  for (NodeId o : c.outputs()) out << "OUTPUT(" << node_name(o) << ")\n";
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    if (n.type == GateType::kInput) continue;
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1) {
      // BENCH has no constants; emit as a degenerate XOR/XNOR of an
      // input with itself when one exists, otherwise fail loudly.
      if (c.inputs().empty()) {
        throw CircuitError("write_bench: constant node with no inputs");
      }
      const char* g = (n.type == GateType::kConst0) ? "XOR" : "XNOR";
      std::string a = node_name(c.inputs()[0]);
      out << node_name(id) << " = " << g << "(" << a << ", " << a << ")\n";
      continue;
    }
    out << node_name(id) << " = " << gate_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << node_name(n.fanins[i]);
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Circuit& c) {
  std::ostringstream out;
  write_bench(out, c);
  return out.str();
}

}  // namespace sateda::circuit
