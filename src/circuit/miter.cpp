#include "circuit/miter.hpp"

namespace sateda::circuit {

std::vector<NodeId> append_copy(Circuit& dst, const Circuit& src,
                                const std::vector<NodeId>& input_map) {
  if (input_map.size() != src.inputs().size()) {
    throw CircuitError("append_copy: input_map size mismatch");
  }
  std::vector<NodeId> map(src.num_nodes(), kNullNode);
  for (std::size_t i = 0; i < src.inputs().size(); ++i) {
    map[src.inputs()[i]] = input_map[i];
  }
  for (NodeId id = 0; id < static_cast<NodeId>(src.num_nodes()); ++id) {
    const Node& n = src.node(id);
    if (n.type == GateType::kInput) continue;
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1) {
      map[id] = dst.add_const(n.type == GateType::kConst1);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (NodeId f : n.fanins) fanins.push_back(map[f]);
    map[id] = dst.add_gate(n.type, std::move(fanins));
  }
  return map;
}

Circuit build_miter(const Circuit& a, const Circuit& b) {
  if (a.inputs().size() != b.inputs().size()) {
    throw CircuitError("miter: input count mismatch");
  }
  if (a.outputs().size() != b.outputs().size()) {
    throw CircuitError("miter: output count mismatch");
  }
  Circuit m("miter_" + a.name() + "_" + b.name());
  std::vector<NodeId> shared;
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    shared.push_back(m.add_input("i" + std::to_string(i)));
  }
  std::vector<NodeId> map_a = append_copy(m, a, shared);
  std::vector<NodeId> map_b = append_copy(m, b, shared);
  std::vector<NodeId> diffs;
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    diffs.push_back(
        m.add_xor(map_a[a.outputs()[i]], map_b[b.outputs()[i]]));
  }
  while (diffs.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < diffs.size(); i += 2) {
      next.push_back(m.add_or(diffs[i], diffs[i + 1]));
    }
    if (diffs.size() % 2) next.push_back(diffs.back());
    diffs = std::move(next);
  }
  m.mark_output(diffs[0], "miter");
  return m;
}

}  // namespace sateda::circuit
