#include "circuit/netlist.hpp"

#include <algorithm>

namespace sateda::circuit {

NodeId Circuit::add_node(Node n) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (!n.name.empty()) {
    auto [it, inserted] = by_name_.emplace(n.name, id);
    if (!inserted) throw CircuitError("duplicate node name: " + n.name);
  }
  nodes_.push_back(std::move(n));
  fanouts_.clear();  // invalidate cache
  return id;
}

NodeId Circuit::add_input(const std::string& name) {
  NodeId id = add_node({GateType::kInput, {}, name});
  inputs_.push_back(id);
  return id;
}

NodeId Circuit::add_const(bool value, const std::string& name) {
  return add_node({value ? GateType::kConst1 : GateType::kConst0, {}, name});
}

NodeId Circuit::add_gate(GateType type, std::vector<NodeId> fanins,
                         const std::string& name) {
  if (type == GateType::kInput || type == GateType::kConst0 ||
      type == GateType::kConst1) {
    throw CircuitError("add_gate cannot create inputs or constants");
  }
  const std::size_t arity = fanins.size();
  if ((type == GateType::kBuf || type == GateType::kNot) && arity != 1) {
    throw CircuitError("BUF/NOT require exactly one fanin");
  }
  if ((type == GateType::kXor || type == GateType::kXnor) && arity != 2) {
    throw CircuitError("XOR/XNOR require exactly two fanins");
  }
  if (arity < 1) throw CircuitError("gate requires at least one fanin");
  for (NodeId f : fanins) {
    if (f < 0 || f >= static_cast<NodeId>(nodes_.size())) {
      throw CircuitError("fanin does not exist (topological order violated)");
    }
  }
  ++num_gates_;
  return add_node({type, std::move(fanins), name});
}

void Circuit::mark_output(NodeId node, const std::string& name) {
  if (node < 0 || node >= static_cast<NodeId>(nodes_.size())) {
    throw CircuitError("output node does not exist");
  }
  if (!name.empty()) {
    auto [it, inserted] = by_name_.emplace(name, node);
    if (!inserted && it->second != node) {
      throw CircuitError("output name collides: " + name);
    }
  }
  outputs_.push_back(node);
  output_names_.push_back(name);
}

NodeId Circuit::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNullNode : it->second;
}

const std::vector<NodeId>& Circuit::fanouts(NodeId id) const {
  if (fanouts_.size() != nodes_.size()) {
    fanouts_.assign(nodes_.size(), {});
    for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
      for (NodeId f : nodes_[n].fanins) fanouts_[f].push_back(n);
    }
  }
  return fanouts_[id];
}

std::vector<int> Circuit::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    int max_in = -1;
    for (NodeId f : nodes_[n].fanins) max_in = std::max(max_in, level[f]);
    level[n] = nodes_[n].fanins.empty() ? 0 : max_in + 1;
  }
  return level;
}

int Circuit::depth() const {
  std::vector<int> lv = levels();
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

void Circuit::check() const {
  for (NodeId n = 0; n < static_cast<NodeId>(nodes_.size()); ++n) {
    const Node& node = nodes_[n];
    for (NodeId f : node.fanins) {
      if (f < 0 || f >= n) {
        throw CircuitError("node " + std::to_string(n) +
                           " violates topological order");
      }
    }
  }
  for (NodeId o : outputs_) {
    if (o < 0 || o >= static_cast<NodeId>(nodes_.size())) {
      throw CircuitError("dangling output");
    }
  }
}

}  // namespace sateda::circuit
