/// \file rewrite.hpp
/// \brief AIG-style netlist rewriting ahead of CNF encoding.
///
/// Structural hashing (structural_hash.hpp) merges syntactically equal
/// gates; this pass goes further, the way AIG packages do:
///
///  * complement edges — NOT/BUF chains cost nothing and inverter
///    polarity is pushed into consumers, so De Morgan variants of the
///    same function (e.g. NAND(¬a, ¬b) vs OR(a, b)) normalize to one
///    node;
///  * constant / identity propagation — controlling constants, x∧x,
///    x∧¬x, x⊕x fold away;
///  * cut-based functional merging — every gate carries a small set of
///    K-feasible cuts with exact truth tables over the cut leaves; two
///    gates whose cuts compute the same function (up to complement)
///    over the same leaves merge even when their local structure
///    differs.
///
/// The CEC/ATPG/BMC front ends run this before encoding: shared logic
/// between "two implementations" collapses, easy miters settle to a
/// constant without any SAT call, and the CNF the solver does see is
/// smaller and more canonical.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

struct RewriteOptions {
  /// Enable the cut-based functional merging layer (the two-level and
  /// constant rules always run — they are what makes the pass sound
  /// and cheap).
  bool cut_merging = true;
  /// Cut width K: truth tables are exact over up to K leaves (2..4).
  int cut_size = 4;
  /// Cuts kept per node; more cuts find more merges but cost more.
  int max_cuts = 6;
};

struct RewriteStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t constants_folded = 0;   ///< controlling values, x⊕x, x∧¬x
  std::size_t identity_folds = 0;     ///< buffers, duplicate fanins
  std::size_t structural_merges = 0;  ///< complement-canonical hash hits
  std::size_t demorgan_rewrites = 0;  ///< all-negated AND → NOR etc.
  std::size_t cut_merges = 0;         ///< equal cut function, different shape
  std::string summary() const;
};

struct RewriteResult {
  Circuit circuit;
  /// old node id -> node of `circuit` computing the same function.
  /// Guaranteed valid (and polarity-correct) for primary inputs, every
  /// output, and every node passed in `keep`; other nodes map to
  /// kNullNode when their rewritten form only exists complemented.
  std::vector<NodeId> node_map;
  RewriteStats stats;
};

/// Rewrites \p c.  Primary inputs are preserved in order (and name);
/// outputs are re-marked in order.  Nodes listed in \p keep get a
/// polarity-correct representative in node_map even if they are not
/// outputs (BMC next-state functions, ATPG objectives).
RewriteResult rewrite(const Circuit& c, const RewriteOptions& opts = {},
                      const std::vector<NodeId>& keep = {});

}  // namespace sateda::circuit
