/// \file generators.hpp
/// \brief Parameterized circuit generators.
///
/// The paper's applications were evaluated on industrial and ISCAS
/// netlists which are not redistributable here; these generators
/// provide synthetic circuits exercising the same code paths (CNF
/// encoding, justification, fault activation/propagation, timing
/// sensitization).  Every generator is deterministic in its
/// parameters/seed, so experiments are reproducible.
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Reconstruction of the paper's Figure 1 example circuit (the scanned
/// figure is partly illegible; this is a faithful-in-spirit small
/// circuit with an internal NOT/AND structure and output z, used with
/// the property z = 0 throughout the tests).
Circuit example_figure1();

/// The ISCAS-85 c17 benchmark: 5 inputs, 6 NAND2 gates, 2 outputs.
Circuit c17();

/// n-bit ripple-carry adder: inputs a[0..n), b[0..n), cin; outputs
/// s[0..n), cout.
Circuit ripple_carry_adder(int n);

/// n x n array multiplier: inputs a[0..n), b[0..n); outputs p[0..2n).
Circuit array_multiplier(int n);

/// n-bit equality comparator: output eq = (a == b).
Circuit equality_comparator(int n);

/// n-input XOR parity tree: output is the parity of the inputs.
Circuit parity_tree(int n);

/// 2^sel_bits-to-1 multiplexer built from AND/OR/NOT gates.
Circuit mux_tree(int sel_bits);

/// Tiny ALU slice: two n-bit operands and a 2-bit opcode selecting
/// among ADD / AND / OR / XOR; n+1 outputs (result + carry).
Circuit alu(int n);

/// Random combinational DAG: \p num_inputs primary inputs followed by
/// \p num_gates gates with types drawn from {AND,NAND,OR,NOR,XOR,NOT}
/// and fanins biased toward recent nodes (locality, like real logic).
/// Nodes without fanout become primary outputs.
Circuit random_circuit(int num_inputs, int num_gates, std::uint64_t seed);

}  // namespace sateda::circuit
