#include "circuit/encoder.hpp"

namespace sateda::circuit {

void encode_gate_clauses(GateType type, Var out, const std::vector<Var>& ins,
                         CnfFormula& f) {
  f.ensure_var(out);
  const Var x = out;
  const auto& w = ins;
  switch (type) {
    case GateType::kInput:
      break;  // no constraint
    case GateType::kConst0:
      f.add_unit(neg(x));
      break;
    case GateType::kConst1:
      f.add_unit(pos(x));
      break;
    case GateType::kBuf:
      // x = BUFFER(w1): (x + ¬w1)·(¬x + w1)   [Table 1]
      f.add_binary(pos(x), neg(w[0]));
      f.add_binary(neg(x), pos(w[0]));
      break;
    case GateType::kNot:
      // x = NOT(w1): (x + w1)·(¬x + ¬w1)   [Table 1]
      f.add_binary(pos(x), pos(w[0]));
      f.add_binary(neg(x), neg(w[0]));
      break;
    case GateType::kAnd: {
      // x = AND(w…): (¬x + wi) ∀i and (x + Σ¬wi)   [Table 1]
      std::vector<Lit> big{pos(x)};
      for (Var wi : w) {
        f.add_binary(neg(x), pos(wi));
        big.push_back(neg(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kNand: {
      // x = NAND(w…): (x + wi) ∀i and (¬x + Σ¬wi)   [Table 1]
      std::vector<Lit> big{neg(x)};
      for (Var wi : w) {
        f.add_binary(pos(x), pos(wi));
        big.push_back(neg(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kOr: {
      // x = OR(w…): (x + ¬wi) ∀i and (¬x + Σwi)   [Table 1]
      std::vector<Lit> big{neg(x)};
      for (Var wi : w) {
        f.add_binary(pos(x), neg(wi));
        big.push_back(pos(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kNor: {
      // x = NOR(w…): (¬x + ¬wi) ∀i and (x + Σwi)   [Table 1]
      std::vector<Lit> big{pos(x)};
      for (Var wi : w) {
        f.add_binary(neg(x), neg(wi));
        big.push_back(pos(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kXor:
      // x = a ⊕ b: four ternary clauses.
      f.add_ternary(neg(x), pos(w[0]), pos(w[1]));
      f.add_ternary(neg(x), neg(w[0]), neg(w[1]));
      f.add_ternary(pos(x), neg(w[0]), pos(w[1]));
      f.add_ternary(pos(x), pos(w[0]), neg(w[1]));
      break;
    case GateType::kXnor:
      f.add_ternary(pos(x), pos(w[0]), pos(w[1]));
      f.add_ternary(pos(x), neg(w[0]), neg(w[1]));
      f.add_ternary(neg(x), neg(w[0]), pos(w[1]));
      f.add_ternary(neg(x), pos(w[0]), neg(w[1]));
      break;
  }
}

void encode_gate(const Circuit& c, NodeId id, CnfFormula& f) {
  const Node& n = c.node(id);
  std::vector<Var> ins(n.fanins.begin(), n.fanins.end());
  encode_gate_clauses(n.type, id, ins, f);
}

std::size_t gate_clause_count(GateType type, std::size_t arity) {
  switch (type) {
    case GateType::kInput: return 0;
    case GateType::kConst0:
    case GateType::kConst1: return 1;
    case GateType::kBuf:
    case GateType::kNot: return 2;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: return arity + 1;
    case GateType::kXor:
    case GateType::kXnor: return 4;
  }
  return 0;
}

CnfFormula encode_circuit(const Circuit& c) {
  CnfFormula f(static_cast<int>(c.num_nodes()));
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    encode_gate(c, id, f);
  }
  return f;
}

CnfFormula encode_cones(const Circuit& c, const std::vector<NodeId>& roots) {
  std::vector<char> in_cone(c.num_nodes(), 0);
  std::vector<NodeId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (in_cone[n]) continue;
    in_cone[n] = 1;
    for (NodeId f : c.node(n).fanins) stack.push_back(f);
  }
  CnfFormula f(static_cast<int>(c.num_nodes()));
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    if (in_cone[id]) encode_gate(c, id, f);
  }
  return f;
}

CnfFormula encode_objective(const Circuit& c, NodeId node, bool value) {
  CnfFormula f = encode_circuit(c);
  f.add_unit(Lit(node, !value));
  return f;
}

}  // namespace sateda::circuit
