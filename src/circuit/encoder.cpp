#include "circuit/encoder.hpp"

namespace sateda::circuit {

void encode_gate_clauses(GateType type, Var out, const std::vector<Var>& ins,
                         CnfFormula& f) {
  f.ensure_var(out);
  const Var x = out;
  const auto& w = ins;
  switch (type) {
    case GateType::kInput:
      break;  // no constraint
    case GateType::kConst0:
      f.add_unit(neg(x));
      break;
    case GateType::kConst1:
      f.add_unit(pos(x));
      break;
    case GateType::kBuf:
      // x = BUFFER(w1): (x + ¬w1)·(¬x + w1)   [Table 1]
      f.add_binary(pos(x), neg(w[0]));
      f.add_binary(neg(x), pos(w[0]));
      break;
    case GateType::kNot:
      // x = NOT(w1): (x + w1)·(¬x + ¬w1)   [Table 1]
      f.add_binary(pos(x), pos(w[0]));
      f.add_binary(neg(x), neg(w[0]));
      break;
    case GateType::kAnd: {
      // x = AND(w…): (¬x + wi) ∀i and (x + Σ¬wi)   [Table 1]
      std::vector<Lit> big{pos(x)};
      for (Var wi : w) {
        f.add_binary(neg(x), pos(wi));
        big.push_back(neg(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kNand: {
      // x = NAND(w…): (x + wi) ∀i and (¬x + Σ¬wi)   [Table 1]
      std::vector<Lit> big{neg(x)};
      for (Var wi : w) {
        f.add_binary(pos(x), pos(wi));
        big.push_back(neg(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kOr: {
      // x = OR(w…): (x + ¬wi) ∀i and (¬x + Σwi)   [Table 1]
      std::vector<Lit> big{neg(x)};
      for (Var wi : w) {
        f.add_binary(pos(x), neg(wi));
        big.push_back(pos(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kNor: {
      // x = NOR(w…): (¬x + ¬wi) ∀i and (x + Σwi)   [Table 1]
      std::vector<Lit> big{pos(x)};
      for (Var wi : w) {
        f.add_binary(neg(x), neg(wi));
        big.push_back(pos(wi));
      }
      f.add_clause(std::move(big));
      break;
    }
    case GateType::kXor:
      // x = a ⊕ b: four ternary clauses.
      f.add_ternary(neg(x), pos(w[0]), pos(w[1]));
      f.add_ternary(neg(x), neg(w[0]), neg(w[1]));
      f.add_ternary(pos(x), neg(w[0]), pos(w[1]));
      f.add_ternary(pos(x), pos(w[0]), neg(w[1]));
      break;
    case GateType::kXnor:
      f.add_ternary(pos(x), pos(w[0]), pos(w[1]));
      f.add_ternary(pos(x), neg(w[0]), neg(w[1]));
      f.add_ternary(neg(x), neg(w[0]), pos(w[1]));
      f.add_ternary(neg(x), pos(w[0]), neg(w[1]));
      break;
  }
}

void encode_gate(const Circuit& c, NodeId id, CnfFormula& f) {
  const Node& n = c.node(id);
  std::vector<Var> ins(n.fanins.begin(), n.fanins.end());
  encode_gate_clauses(n.type, id, ins, f);
}

std::size_t gate_clause_count(GateType type, std::size_t arity) {
  switch (type) {
    case GateType::kInput: return 0;
    case GateType::kConst0:
    case GateType::kConst1: return 1;
    case GateType::kBuf:
    case GateType::kNot: return 2;
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: return arity + 1;
    case GateType::kXor:
    case GateType::kXnor: return 4;
  }
  return 0;
}

CnfFormula encode_circuit(const Circuit& c) {
  CnfFormula f(static_cast<int>(c.num_nodes()));
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    encode_gate(c, id, f);
  }
  return f;
}

namespace {

/// Plaisted-Greenbaum single-gate emission: of the Table 1 clauses for
/// x = G(w…), the ones containing ¬x encode x → G(w…) and are needed
/// only when x occurs positively downstream; the ones containing x
/// encode ¬x → ¬G(w…) and are needed only when x occurs negatively.
void encode_gate_clauses_pg(GateType type, Var out, const std::vector<Var>& ins,
                            bool need_pos, bool need_neg, CnfFormula& f) {
  if (need_pos && need_neg) {
    encode_gate_clauses(type, out, ins, f);
    return;
  }
  f.ensure_var(out);
  const Var x = out;
  const auto& w = ins;
  switch (type) {
    case GateType::kInput:
      break;
    case GateType::kConst0:
      if (need_pos) f.add_unit(neg(x));
      break;
    case GateType::kConst1:
      if (need_neg) f.add_unit(pos(x));
      break;
    case GateType::kBuf:
      if (need_neg) f.add_binary(pos(x), neg(w[0]));
      if (need_pos) f.add_binary(neg(x), pos(w[0]));
      break;
    case GateType::kNot:
      if (need_neg) f.add_binary(pos(x), pos(w[0]));
      if (need_pos) f.add_binary(neg(x), neg(w[0]));
      break;
    case GateType::kAnd: {
      if (need_pos)
        for (Var wi : w) f.add_binary(neg(x), pos(wi));
      if (need_neg) {
        std::vector<Lit> big{pos(x)};
        for (Var wi : w) big.push_back(neg(wi));
        f.add_clause(std::move(big));
      }
      break;
    }
    case GateType::kNand: {
      if (need_neg)
        for (Var wi : w) f.add_binary(pos(x), pos(wi));
      if (need_pos) {
        std::vector<Lit> big{neg(x)};
        for (Var wi : w) big.push_back(neg(wi));
        f.add_clause(std::move(big));
      }
      break;
    }
    case GateType::kOr: {
      if (need_neg)
        for (Var wi : w) f.add_binary(pos(x), neg(wi));
      if (need_pos) {
        std::vector<Lit> big{neg(x)};
        for (Var wi : w) big.push_back(pos(wi));
        f.add_clause(std::move(big));
      }
      break;
    }
    case GateType::kNor: {
      if (need_pos)
        for (Var wi : w) f.add_binary(neg(x), neg(wi));
      if (need_neg) {
        std::vector<Lit> big{pos(x)};
        for (Var wi : w) big.push_back(pos(wi));
        f.add_clause(std::move(big));
      }
      break;
    }
    case GateType::kXor:
      if (need_pos) {
        f.add_ternary(neg(x), pos(w[0]), pos(w[1]));
        f.add_ternary(neg(x), neg(w[0]), neg(w[1]));
      }
      if (need_neg) {
        f.add_ternary(pos(x), neg(w[0]), pos(w[1]));
        f.add_ternary(pos(x), pos(w[0]), neg(w[1]));
      }
      break;
    case GateType::kXnor:
      if (need_neg) {
        f.add_ternary(pos(x), pos(w[0]), pos(w[1]));
        f.add_ternary(pos(x), neg(w[0]), neg(w[1]));
      }
      if (need_pos) {
        f.add_ternary(neg(x), neg(w[0]), pos(w[1]));
        f.add_ternary(neg(x), pos(w[0]), neg(w[1]));
      }
      break;
  }
}

/// Shared worker: marks the cones of the polarity seeds, numbers
/// in-cone nodes compactly (id order, which is topological), and emits
/// each node's clauses restricted to the polarities it is needed in.
ConeEncoding encode_cone_impl(
    const Circuit& c, const std::vector<std::pair<NodeId, bool>>& seeds,
    bool both_polarities) {
  const auto n = static_cast<NodeId>(c.num_nodes());
  std::vector<char> need_pos(n, 0), need_neg(n, 0);
  std::vector<std::pair<NodeId, bool>> stack(seeds.begin(), seeds.end());
  if (both_polarities)
    for (const auto& [id, p] : seeds) stack.emplace_back(id, !p);
  while (!stack.empty()) {
    const auto [id, p] = stack.back();
    stack.pop_back();
    char& seen = p ? need_pos[id] : need_neg[id];
    if (seen) continue;
    seen = 1;
    const Node& nd = c.node(id);
    // AND/OR/BUF pass polarity through; NOT/NAND/NOR invert it;
    // XOR/XNOR mention every fanin in both phases.
    const bool both = nd.type == GateType::kXor || nd.type == GateType::kXnor ||
                      both_polarities;
    const bool inv = nd.type == GateType::kNot || nd.type == GateType::kNand ||
                     nd.type == GateType::kNor;
    for (NodeId fi : nd.fanins) {
      if (both) {
        stack.emplace_back(fi, true);
        stack.emplace_back(fi, false);
      } else {
        stack.emplace_back(fi, inv ? !p : p);
      }
    }
  }

  ConeEncoding enc;
  enc.node_to_var.assign(n, kNullVar);
  for (NodeId id = 0; id < n; ++id) {
    if (!need_pos[id] && !need_neg[id]) continue;
    enc.node_to_var[id] = static_cast<Var>(enc.var_to_node.size());
    enc.var_to_node.push_back(id);
  }
  enc.formula = CnfFormula(static_cast<int>(enc.var_to_node.size()));
  std::vector<Var> ins;
  for (NodeId id : enc.var_to_node) {
    const Node& nd = c.node(id);
    ins.clear();
    for (NodeId fi : nd.fanins) ins.push_back(enc.node_to_var[fi]);
    const std::size_t before = enc.formula.num_clauses();
    encode_gate_clauses_pg(nd.type, enc.node_to_var[id], ins, need_pos[id],
                           need_neg[id], enc.formula);
    enc.clauses_dropped += gate_clause_count(nd.type, nd.fanins.size()) -
                           (enc.formula.num_clauses() - before);
  }
  return enc;
}

}  // namespace

ConeEncoding encode_cones(const Circuit& c, const std::vector<NodeId>& roots) {
  std::vector<std::pair<NodeId, bool>> seeds;
  seeds.reserve(roots.size());
  for (NodeId r : roots) seeds.emplace_back(r, true);
  return encode_cone_impl(c, seeds, /*both_polarities=*/true);
}

ConeEncoding encode_objectives(
    const Circuit& c, const std::vector<std::pair<NodeId, bool>>& objectives,
    const ConeEncodingOptions& opts) {
  ConeEncoding enc =
      encode_cone_impl(c, objectives, !opts.plaisted_greenbaum);
  for (const auto& [node, value] : objectives) {
    enc.formula.add_unit(Lit(enc.node_to_var[node], !value));
  }
  return enc;
}

CnfFormula encode_objective(const Circuit& c, NodeId node, bool value) {
  CnfFormula f = encode_circuit(c);
  f.add_unit(Lit(node, !value));
  return f;
}

}  // namespace sateda::circuit
