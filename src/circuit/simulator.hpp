/// \file simulator.hpp
/// \brief Logic simulation: 2-valued, 3-valued and 64-way parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/literal.hpp"
#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Simulates the circuit for one input pattern (indexed like
/// Circuit::inputs()).  Returns the value of every node.
std::vector<bool> simulate(const Circuit& c, const std::vector<bool>& inputs);

/// Output values only, in Circuit::outputs() order.
std::vector<bool> simulate_outputs(const Circuit& c,
                                   const std::vector<bool>& inputs);

/// 3-valued simulation for a partial input pattern — used to verify
/// the §5 claim that justification-frontier solutions leave don't-care
/// inputs unspecified yet still determine the objective.
std::vector<lbool> simulate_ternary(const Circuit& c,
                                    const std::vector<lbool>& inputs);

/// 64 patterns at once: inputs[i] packs 64 values of input i, one per
/// bit.  Returns packed values per node.
std::vector<std::uint64_t> simulate_words(
    const Circuit& c, const std::vector<std::uint64_t>& inputs);

}  // namespace sateda::circuit
