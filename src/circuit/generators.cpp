#include "circuit/generators.hpp"

#include <random>
#include <string>
#include <vector>

namespace sateda::circuit {

Circuit example_figure1() {
  Circuit c("figure1");
  NodeId x1 = c.add_input("x1");
  NodeId x2 = c.add_input("x2");
  NodeId x3 = c.add_input("x3");
  NodeId w1 = c.add_and(x1, x2, "w1");
  NodeId x = c.add_not(w1, "x");
  NodeId w2 = c.add_or(x, x3, "w2");
  NodeId z = c.add_and(w1, w2, "z");
  c.mark_output(z, "z_out");
  return c;
}

Circuit c17() {
  Circuit c("c17");
  NodeId g1 = c.add_input("1");
  NodeId g2 = c.add_input("2");
  NodeId g3 = c.add_input("3");
  NodeId g6 = c.add_input("6");
  NodeId g7 = c.add_input("7");
  NodeId g10 = c.add_nand(g1, g3, "10");
  NodeId g11 = c.add_nand(g3, g6, "11");
  NodeId g16 = c.add_nand(g2, g11, "16");
  NodeId g19 = c.add_nand(g11, g7, "19");
  NodeId g22 = c.add_nand(g10, g16, "22");
  NodeId g23 = c.add_nand(g16, g19, "23");
  c.mark_output(g22, "out22");
  c.mark_output(g23, "out23");
  return c;
}

namespace {

/// Full adder on (a, b, cin); returns {sum, cout}.
std::pair<NodeId, NodeId> full_adder(Circuit& c, NodeId a, NodeId b,
                                     NodeId cin) {
  NodeId axb = c.add_xor(a, b);
  NodeId sum = c.add_xor(axb, cin);
  NodeId and1 = c.add_and(a, b);
  NodeId and2 = c.add_and(axb, cin);
  NodeId cout = c.add_or(and1, and2);
  return {sum, cout};
}

}  // namespace

Circuit ripple_carry_adder(int n) {
  Circuit c("rca" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NodeId carry = c.add_input("cin");
  for (int i = 0; i < n; ++i) {
    auto [s, co] = full_adder(c, a[i], b[i], carry);
    c.mark_output(s, "s" + std::to_string(i));
    carry = co;
  }
  c.mark_output(carry, "cout");
  return c;
}

Circuit array_multiplier(int n) {
  Circuit c("mul" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  // Row-by-row carry-save accumulation of partial products.
  std::vector<NodeId> acc;  // current partial sum, low bit first
  for (int j = 0; j < n; ++j) {
    std::vector<NodeId> pp(n);
    for (int i = 0; i < n; ++i) pp[i] = c.add_and(a[i], b[j]);
    if (j == 0) {
      acc = pp;
      continue;
    }
    // Add pp (shifted by j) into acc: the low j bits of acc are final.
    std::vector<NodeId> next;
    NodeId carry = kNullNode;
    for (int i = 0; i < n; ++i) {
      NodeId lhs = (j + i < static_cast<int>(acc.size()))
                       ? acc[j + i]
                       : kNullNode;
      NodeId sum, co;
      if (lhs == kNullNode && carry == kNullNode) {
        sum = pp[i];
        co = kNullNode;
      } else if (lhs == kNullNode) {
        sum = c.add_xor(pp[i], carry);
        co = c.add_and(pp[i], carry);
      } else if (carry == kNullNode) {
        sum = c.add_xor(lhs, pp[i]);
        co = c.add_and(lhs, pp[i]);
      } else {
        auto [s, co2] = full_adder(c, lhs, pp[i], carry);
        sum = s;
        co = co2;
      }
      next.push_back(sum);
      carry = co;
    }
    // Splice: acc = acc[0..j) ++ next ++ carry.
    acc.resize(j);
    for (NodeId nid : next) acc.push_back(nid);
    if (carry != kNullNode) acc.push_back(carry);
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    c.mark_output(acc[i], "p" + std::to_string(i));
  }
  return c;
}

Circuit equality_comparator(int n) {
  Circuit c("eq" + std::to_string(n));
  std::vector<NodeId> bits;
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  for (int i = 0; i < n; ++i) bits.push_back(c.add_xnor(a[i], b[i]));
  // Balanced AND tree.
  while (bits.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(c.add_and(bits[i], bits[i + 1]));
    }
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  c.mark_output(bits[0], "eq");
  return c;
}

Circuit parity_tree(int n) {
  Circuit c("parity" + std::to_string(n));
  std::vector<NodeId> bits;
  for (int i = 0; i < n; ++i) {
    bits.push_back(c.add_input("x" + std::to_string(i)));
  }
  while (bits.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(c.add_xor(bits[i], bits[i + 1]));
    }
    if (bits.size() % 2) next.push_back(bits.back());
    bits = std::move(next);
  }
  c.mark_output(bits[0], "parity");
  return c;
}

Circuit mux_tree(int sel_bits) {
  Circuit c("mux" + std::to_string(sel_bits));
  const int n_data = 1 << sel_bits;
  std::vector<NodeId> data(n_data), sel(sel_bits), nsel(sel_bits);
  for (int i = 0; i < n_data; ++i) {
    data[i] = c.add_input("d" + std::to_string(i));
  }
  for (int i = 0; i < sel_bits; ++i) {
    sel[i] = c.add_input("s" + std::to_string(i));
  }
  for (int i = 0; i < sel_bits; ++i) nsel[i] = c.add_not(sel[i]);
  std::vector<NodeId> layer = data;
  for (int level = 0; level < sel_bits; ++level) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      NodeId lo = c.add_and(layer[i], nsel[level]);
      NodeId hi = c.add_and(layer[i + 1], sel[level]);
      next.push_back(c.add_or(lo, hi));
    }
    layer = std::move(next);
  }
  c.mark_output(layer[0], "y");
  return c;
}

Circuit alu(int n) {
  Circuit c("alu" + std::to_string(n));
  std::vector<NodeId> a(n), b(n);
  for (int i = 0; i < n; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < n; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NodeId op0 = c.add_input("op0");
  NodeId op1 = c.add_input("op1");
  NodeId nop0 = c.add_not(op0);
  NodeId nop1 = c.add_not(op1);
  // Opcode one-hot lines: 00=ADD, 01=AND, 10=OR, 11=XOR.
  NodeId is_add = c.add_and(nop1, nop0);
  NodeId is_and = c.add_and(nop1, op0);
  NodeId is_or = c.add_and(op1, nop0);
  NodeId is_xor = c.add_and(op1, op0);
  NodeId carry = c.add_const(false, "c0");
  std::vector<NodeId> add_bits(n);
  for (int i = 0; i < n; ++i) {
    auto [s, co] = full_adder(c, a[i], b[i], carry);
    add_bits[i] = s;
    carry = co;
  }
  for (int i = 0; i < n; ++i) {
    NodeId and_i = c.add_and(a[i], b[i]);
    NodeId or_i = c.add_or(a[i], b[i]);
    NodeId xor_i = c.add_xor(a[i], b[i]);
    NodeId t0 = c.add_and(add_bits[i], is_add);
    NodeId t1 = c.add_and(and_i, is_and);
    NodeId t2 = c.add_and(or_i, is_or);
    NodeId t3 = c.add_and(xor_i, is_xor);
    NodeId r01 = c.add_or(t0, t1);
    NodeId r23 = c.add_or(t2, t3);
    c.mark_output(c.add_or(r01, r23), "r" + std::to_string(i));
  }
  c.mark_output(c.add_and(carry, is_add), "carry");
  return c;
}

Circuit random_circuit(int num_inputs, int num_gates, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Circuit c("rand_i" + std::to_string(num_inputs) + "_g" +
            std::to_string(num_gates) + "_s" + std::to_string(seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(c.add_input("x" + std::to_string(i)));
  }
  const GateType types[] = {GateType::kAnd, GateType::kNand, GateType::kOr,
                            GateType::kNor, GateType::kXor, GateType::kNot};
  std::uniform_int_distribution<int> type_pick(0, 5);
  // Locality bias: prefer recently created nodes as fanins so the DAG
  // has depth, like synthesized logic, instead of being bushy.
  auto pick_node = [&](NodeId exclude) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (pool.size() == 1) return pool[0];  // cannot honour exclude
    while (true) {
      double r = u(rng);
      // Quadratic bias toward the end of the pool.
      std::size_t idx = static_cast<std::size_t>(
          (1.0 - r * r) * static_cast<double>(pool.size()));
      if (idx >= pool.size()) idx = pool.size() - 1;
      NodeId cand = pool[idx];
      if (cand != exclude) return cand;
    }
  };
  for (int g = 0; g < num_gates; ++g) {
    GateType t = types[type_pick(rng)];
    NodeId n;
    if (t == GateType::kNot) {
      n = c.add_not(pick_node(kNullNode));
    } else {
      NodeId f1 = pick_node(kNullNode);
      NodeId f2 = pick_node(f1);
      n = c.add_gate(t, {f1, f2});
    }
    pool.push_back(n);
  }
  // Outputs: every node with no fanout.
  std::vector<char> has_fanout(c.num_nodes(), 0);
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    for (NodeId f : c.node(id).fanins) has_fanout[f] = 1;
  }
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    if (!has_fanout[id] && !c.is_input(id)) {
      c.mark_output(id, "o" + std::to_string(id));
    }
  }
  if (c.outputs().empty() && num_gates > 0) {
    c.mark_output(static_cast<NodeId>(c.num_nodes() - 1), "o_last");
  }
  return c;
}

}  // namespace sateda::circuit
