#include "circuit/simulator.hpp"

#include <cassert>

namespace sateda::circuit {

std::vector<bool> simulate(const Circuit& c, const std::vector<bool>& inputs) {
  assert(inputs.size() == c.inputs().size());
  std::vector<bool> value(c.num_nodes(), false);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[c.inputs()[i]] = inputs[i];
  }
  std::vector<bool> in_vals;
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    if (n.type == GateType::kInput) continue;
    in_vals.clear();
    for (NodeId f : n.fanins) in_vals.push_back(value[f]);
    value[id] = eval_gate(n.type, in_vals);
  }
  return value;
}

std::vector<bool> simulate_outputs(const Circuit& c,
                                   const std::vector<bool>& inputs) {
  std::vector<bool> value = simulate(c, inputs);
  std::vector<bool> out;
  out.reserve(c.outputs().size());
  for (NodeId o : c.outputs()) out.push_back(value[o]);
  return out;
}

std::vector<lbool> simulate_ternary(const Circuit& c,
                                    const std::vector<lbool>& inputs) {
  assert(inputs.size() == c.inputs().size());
  std::vector<lbool> value(c.num_nodes(), l_undef);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[c.inputs()[i]] = inputs[i];
  }
  std::vector<lbool> in_vals;
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    if (n.type == GateType::kInput) continue;
    in_vals.clear();
    for (NodeId f : n.fanins) in_vals.push_back(value[f]);
    value[id] = eval_gate_ternary(n.type, in_vals);
  }
  return value;
}

std::vector<std::uint64_t> simulate_words(
    const Circuit& c, const std::vector<std::uint64_t>& inputs) {
  assert(inputs.size() == c.inputs().size());
  std::vector<std::uint64_t> value(c.num_nodes(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value[c.inputs()[i]] = inputs[i];
  }
  std::vector<std::uint64_t> in_vals;
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    if (n.type == GateType::kInput) continue;
    in_vals.clear();
    for (NodeId f : n.fanins) in_vals.push_back(value[f]);
    value[id] = eval_gate_word(n.type, in_vals);
  }
  return value;
}

}  // namespace sateda::circuit
