/// \file miter.hpp
/// \brief Miter construction for equivalence checking (paper §3) and
///        general circuit composition helpers.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"

namespace sateda::circuit {

/// Copies every gate of \p src into \p dst, with src's primary inputs
/// replaced by \p input_map (one existing dst node per src input).
/// Returns the dst node for each src node.  The workhorse behind
/// miters (two copies, shared inputs) and BMC time-frame unrolling.
std::vector<NodeId> append_copy(Circuit& dst, const Circuit& src,
                                const std::vector<NodeId>& input_map);

/// Builds the miter of two circuits with identical interfaces: shared
/// primary inputs feed both copies, each output pair is XORed, and the
/// OR of all XORs is the single output.  The miter output is
/// satisfiable to 1 iff the circuits are NOT equivalent.
Circuit build_miter(const Circuit& a, const Circuit& b);

}  // namespace sateda::circuit
