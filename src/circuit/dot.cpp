#include "circuit/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace sateda::circuit {

namespace {

std::string node_label(const Circuit& c, NodeId id,
                       const DotOptions& opts) {
  const Node& n = c.node(id);
  std::string label = n.name.empty() ? "n" + std::to_string(id) : n.name;
  if (n.type != GateType::kInput) {
    label += "\\n" + to_string(n.type);
  }
  if (static_cast<std::size_t>(id) < opts.values.size() &&
      !opts.values[id].is_undef()) {
    label += "\\n=" + to_string(opts.values[id]);
  }
  return label;
}

}  // namespace

void write_dot(std::ostream& out, const Circuit& c, const DotOptions& opts) {
  out << "digraph \"" << (c.name().empty() ? "circuit" : c.name())
      << "\" {\n";
  if (opts.left_to_right) out << "  rankdir=LR;\n";
  std::vector<char> highlighted(c.num_nodes(), 0);
  for (NodeId h : opts.highlight) highlighted[h] = 1;
  std::vector<char> is_output(c.num_nodes(), 0);
  for (NodeId o : c.outputs()) is_output[o] = 1;

  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const Node& n = c.node(id);
    out << "  n" << id << " [label=\"" << node_label(c, id, opts) << "\"";
    if (n.type == GateType::kInput) {
      out << ", shape=box";
    } else if (n.type == GateType::kConst0 || n.type == GateType::kConst1) {
      out << ", shape=plaintext";
    } else if (is_output[id]) {
      out << ", shape=doublecircle";
    } else {
      out << ", shape=ellipse";
    }
    if (highlighted[id]) out << ", style=filled, fillcolor=gold";
    out << "];\n";
  }
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    for (NodeId f : c.node(id).fanins) {
      out << "  n" << f << " -> n" << id;
      if (highlighted[f] && highlighted[id]) {
        out << " [color=goldenrod, penwidth=2]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot_string(const Circuit& c, const DotOptions& opts) {
  std::ostringstream out;
  write_dot(out, c, opts);
  return out.str();
}

}  // namespace sateda::circuit
