/// \file crosstalk.hpp
/// \brief SAT-based crosstalk noise analysis (paper §3, ref. [8] Chen
///        & Keutzer, "Towards True Crosstalk Noise Analysis").
///
/// Topological noise analysis assumes every aggressor wire adjacent to
/// a victim can switch simultaneously; the functional ("true") worst
/// case is usually smaller because logic correlations prevent aligned
/// switching.  Model: two arbitrary consecutive input vectors
/// (v1, v2); aggressor i *rises* when it is 0 under v1 and 1 under v2;
/// the victim must hold a stable quiet value.  The maximum number of
/// simultaneously rising aggressors is found by binary search over a
/// cardinality constraint on a two-frame circuit CNF.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::noise {

struct CrosstalkOptions {
  /// Victim's quiet value during the aggressor transition.
  bool victim_value = false;
  std::int64_t conflict_budget = -1;
  sat::SolverOptions solver;
  sat::EngineSpec engine;  ///< SAT backend (empty: CDCL)
};

struct CrosstalkResult {
  /// The pessimistic bound: every aggressor assumed able to rise.
  int topological_bound = 0;
  /// SAT-certified maximum of simultaneously rising aggressors with
  /// the victim quiet; -1 if even zero rising is impossible (victim
  /// cannot hold the requested value).
  int functional_worst = -1;
  /// Witness vector pair attaining the maximum.
  std::vector<bool> vector1, vector2;
};

/// Computes the functional worst case for \p victim against
/// \p aggressors (all node ids of \p c).
CrosstalkResult worst_case_aggressors(const circuit::Circuit& c,
                                      circuit::NodeId victim,
                                      const std::vector<circuit::NodeId>& aggressors,
                                      CrosstalkOptions opts = {});

}  // namespace sateda::noise
