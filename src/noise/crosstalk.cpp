#include "noise/crosstalk.hpp"

#include "circuit/encoder.hpp"
#include "opt/cardinality.hpp"
#include "sat/engine.hpp"

namespace sateda::noise {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

CrosstalkResult worst_case_aggressors(
    const Circuit& c, NodeId victim, const std::vector<NodeId>& aggressors,
    CrosstalkOptions opts) {
  CrosstalkResult result;
  result.topological_bound = static_cast<int>(aggressors.size());

  // Two independent frames of the circuit CNF.
  CnfFormula f;
  std::vector<std::vector<Var>> frame(2);
  for (int t = 0; t < 2; ++t) {
    frame[t].resize(c.num_nodes());
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      frame[t][n] = f.new_var();
    }
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      const circuit::Node& node = c.node(n);
      if (node.type == GateType::kInput) continue;
      std::vector<Var> ins;
      for (NodeId fi : node.fanins) ins.push_back(frame[t][fi]);
      circuit::encode_gate_clauses(node.type, frame[t][n], ins, f);
    }
  }
  // Victim quiet in both frames.
  f.add_unit(Lit(frame[0][victim], opts.victim_value == false));
  f.add_unit(Lit(frame[1][victim], opts.victim_value == false));
  // rise_i ⇔ ¬a_i@0 ∧ a_i@1 (one direction suffices for maximization:
  // the solver may only claim a rise it can realise).
  std::vector<Lit> rises;
  for (NodeId a : aggressors) {
    Var r = f.new_var();
    f.add_binary(neg(r), neg(frame[0][a]));
    f.add_binary(neg(r), pos(frame[1][a]));
    rises.push_back(pos(r));
  }

  auto attempt = [&](int k) -> bool {
    CnfFormula g = f;
    opt::add_at_least_k(g, rises, k);
    sat::SolverOptions sopts = opts.solver;
    sopts.conflict_budget = opts.conflict_budget;
    std::unique_ptr<sat::SatEngine> solver =
        sat::make_engine(opts.engine, sopts);
    if (!solver->add_formula(g)) return false;
    if (solver->solve() != sat::SolveResult::kSat) return false;
    result.vector1.clear();
    result.vector2.clear();
    for (NodeId in : c.inputs()) {
      result.vector1.push_back(solver->model_value(frame[0][in]).is_true());
      result.vector2.push_back(solver->model_value(frame[1][in]).is_true());
    }
    return true;
  };

  // Binary search the maximum feasible k in [0, |aggressors|].
  int lo = 0, hi = result.topological_bound;
  if (!attempt(0)) return result;  // victim cannot even hold its value
  result.functional_worst = 0;
  while (lo < hi) {
    int mid = lo + (hi - lo + 1) / 2;
    if (attempt(mid)) {
      result.functional_worst = mid;
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return result;
}

}  // namespace sateda::noise
