/// \file circuit_bdd.hpp
/// \brief Circuit → BDD bridge: symbolic simulation of a netlist into
///        canonical output functions.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "circuit/netlist.hpp"
#include "cnf/formula.hpp"

namespace sateda::bdd {

/// Builds the BDD of every node by symbolic simulation in topological
/// order; returns the refs of the primary outputs in order.
/// \param input_level maps input ordinal i (position in
///        Circuit::inputs()) to its BDD level; empty = identity.
///        Variable order is the make-or-break knob for BDDs — see
///        interleaved_levels().
/// \throws BddLimitExceeded when the manager's node limit trips.
std::vector<BddRef> build_output_bdds(BddManager& mgr,
                                      const circuit::Circuit& c,
                                      const std::vector<int>& input_level = {});

/// Builds the BDD of a CNF formula (conjunction of clause BDDs) over
/// formula.num_vars() BDD levels — enabling exact model counting
/// (#SAT) and canonical equivalence of formulas.  Clause order follows
/// the formula; no dynamic reordering, so pick your variable numbering
/// wisely.  \throws BddLimitExceeded on blowup.
BddRef cnf_to_bdd(BddManager& mgr, const CnfFormula& f);

/// A level map interleaving the first and second halves of the inputs
/// (a0 b0 a1 b1 …) with any odd tail appended — the textbook good
/// order for two-operand datapath circuits, under which an adder's
/// outputs stay linear while the natural order is exponential.
std::vector<int> interleaved_levels(int num_inputs);

}  // namespace sateda::bdd
