#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace sateda::bdd {

BddManager::BddManager(int num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  nodes_.push_back({num_vars_, kFalse, kFalse});  // 0: terminal false
  nodes_.push_back({num_vars_, kTrue, kTrue});    // 1: terminal true
}

BddRef BddManager::make_node(int level, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // reduction rule
  TripleKey key = pack(static_cast<std::uint64_t>(level), lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddLimitExceeded(node_limit_);
  BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({level, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(int level) {
  assert(level >= 0 && level < num_vars_);
  return make_node(level, kFalse, kTrue);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  TripleKey key = pack(f, g, h);
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int top = std::min({nodes_[f].level, nodes_[g].level,
                            nodes_[h].level});
  auto cofactor = [&](BddRef x, bool positive) {
    if (nodes_[x].level != top) return x;
    return positive ? nodes_[x].hi : nodes_[x].lo;
  };
  BddRef hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  BddRef lo = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  BddRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

bool BddManager::eval(BddRef f, const std::vector<bool>& inputs) const {
  while (f != kTrue && f != kFalse) {
    const Node& n = nodes_[f];
    f = inputs[n.level] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::count_models(BddRef f) const {
  // count(node) = number of models over the variables at or below the
  // node's level; scale to the full space at the end.
  std::unordered_map<BddRef, double> memo;
  auto count = [&](auto&& self, BddRef x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    auto it = memo.find(x);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[x];
    auto weight = [&](BddRef child) {
      const int child_level =
          (child == kTrue || child == kFalse) ? num_vars_
                                              : nodes_[child].level;
      // Variables skipped between this node and the child are free.
      return std::pow(2.0, child_level - n.level - 1);
    };
    double result = self(self, n.lo) * weight(n.lo) +
                    self(self, n.hi) * weight(n.hi);
    memo.emplace(x, result);
    return result;
  };
  const int top_level = (f == kTrue || f == kFalse) ? num_vars_
                                                    : nodes_[f].level;
  return count(count, f) * std::pow(2.0, top_level);
}

std::vector<lbool> BddManager::any_model(BddRef f) const {
  if (f == kFalse) return {};
  std::vector<lbool> model(num_vars_, l_undef);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      model[n.level] = l_true;
      f = n.hi;
    } else {
      model[n.level] = l_false;
      f = n.lo;
    }
  }
  return model;
}

std::size_t BddManager::size(BddRef f) const {
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, char> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    BddRef x = stack.back();
    stack.pop_back();
    if (seen.count(x)) continue;
    seen.emplace(x, 1);
    ++count;
    if (x != kTrue && x != kFalse) {
      stack.push_back(nodes_[x].lo);
      stack.push_back(nodes_[x].hi);
    }
  }
  return count;
}

}  // namespace sateda::bdd
