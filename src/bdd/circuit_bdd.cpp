#include "bdd/circuit_bdd.hpp"

#include <cassert>

namespace sateda::bdd {

using circuit::GateType;
using circuit::NodeId;

std::vector<BddRef> build_output_bdds(BddManager& mgr,
                                      const circuit::Circuit& c,
                                      const std::vector<int>& input_level) {
  assert(input_level.empty() || input_level.size() == c.inputs().size());
  std::vector<BddRef> node_bdd(c.num_nodes(), kFalse);
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    int level = input_level.empty() ? static_cast<int>(i)
                                    : input_level[i];
    node_bdd[c.inputs()[i]] = mgr.var(level);
  }
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    const auto& fi = node.fanins;
    auto in = [&](std::size_t i) { return node_bdd[fi[i]]; };
    switch (node.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        node_bdd[n] = kFalse;
        break;
      case GateType::kConst1:
        node_bdd[n] = kTrue;
        break;
      case GateType::kBuf:
        node_bdd[n] = in(0);
        break;
      case GateType::kNot:
        node_bdd[n] = mgr.bdd_not(in(0));
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        BddRef acc = kTrue;
        for (std::size_t i = 0; i < fi.size(); ++i) {
          acc = mgr.bdd_and(acc, in(i));
        }
        node_bdd[n] = (node.type == GateType::kNand) ? mgr.bdd_not(acc) : acc;
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        BddRef acc = kFalse;
        for (std::size_t i = 0; i < fi.size(); ++i) {
          acc = mgr.bdd_or(acc, in(i));
        }
        node_bdd[n] = (node.type == GateType::kNor) ? mgr.bdd_not(acc) : acc;
        break;
      }
      case GateType::kXor:
        node_bdd[n] = mgr.bdd_xor(in(0), in(1));
        break;
      case GateType::kXnor:
        node_bdd[n] = mgr.bdd_xnor(in(0), in(1));
        break;
    }
  }
  std::vector<BddRef> outs;
  outs.reserve(c.outputs().size());
  for (NodeId o : c.outputs()) outs.push_back(node_bdd[o]);
  return outs;
}

BddRef cnf_to_bdd(BddManager& mgr, const CnfFormula& f) {
  BddRef acc = kTrue;
  for (const Clause& c : f) {
    BddRef clause = kFalse;
    for (Lit l : c) {
      BddRef v = mgr.var(l.var());
      clause = mgr.bdd_or(clause, l.negative() ? mgr.bdd_not(v) : v);
    }
    acc = mgr.bdd_and(acc, clause);
    if (acc == kFalse) break;  // already unsatisfiable
  }
  return acc;
}

std::vector<int> interleaved_levels(int num_inputs) {
  std::vector<int> level(num_inputs);
  const int half = num_inputs / 2;
  for (int i = 0; i < half; ++i) {
    level[i] = 2 * i;
    level[half + i] = 2 * i + 1;
  }
  if (num_inputs % 2) level[num_inputs - 1] = num_inputs - 1;
  return level;
}

}  // namespace sateda::bdd
