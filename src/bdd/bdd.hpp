/// \file bdd.hpp
/// \brief Reduced ordered binary decision diagrams.
///
/// The paper's framing (§1) is that "SAT packages are currently
/// expected to have an impact on EDA applications similar to that of
/// BDD packages since their introduction more than a decade ago", and
/// ref. [16] integrates a SAT checker *with* BDDs for equivalence
/// checking.  This module provides the BDD substrate those comparisons
/// need: a unique-table/ITE manager with memoization, model counting,
/// and a node-limit guard so hybrid flows can fall back to SAT when
/// BDDs blow up (the classic failure mode SAT was brought in to fix).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda::bdd {

/// Reference to a BDD node inside a manager.  BDDs are canonical:
/// two functions are equivalent iff their refs are equal.
using BddRef = std::uint32_t;
inline constexpr BddRef kFalse = 0;
inline constexpr BddRef kTrue = 1;

/// Thrown when the unique table outgrows the configured node limit —
/// the signal for hybrid flows to switch engines.
class BddLimitExceeded : public std::runtime_error {
 public:
  explicit BddLimitExceeded(std::size_t limit)
      : std::runtime_error("BDD node limit exceeded (" +
                           std::to_string(limit) + ")") {}
};

/// ROBDD manager over a fixed number of variables with the natural
/// order level 0 on top (callers reorder by permuting their own
/// variable→level mapping).
class BddManager {
 public:
  explicit BddManager(int num_vars, std::size_t node_limit = 1u << 22);

  int num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// The function of a single variable / its complement.
  BddRef var(int level);
  BddRef nvar(int level) { return ite(var(level), kFalse, kTrue); }

  /// If-then-else — the universal connective.
  BddRef ite(BddRef f, BddRef g, BddRef h);

  BddRef bdd_not(BddRef f) { return ite(f, kFalse, kTrue); }
  BddRef bdd_and(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef bdd_or(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  BddRef bdd_xor(BddRef f, BddRef g) { return ite(f, bdd_not(g), g); }
  BddRef bdd_xnor(BddRef f, BddRef g) { return ite(f, g, bdd_not(g)); }

  /// Evaluates under a complete assignment (indexed by level).
  bool eval(BddRef f, const std::vector<bool>& inputs) const;

  /// Number of satisfying assignments over all num_vars() variables.
  double count_models(BddRef f) const;

  /// A satisfying assignment (l_undef on levels the path skips), or
  /// empty vector when f is kFalse.
  std::vector<lbool> any_model(BddRef f) const;

  /// Nodes reachable from f (its size as a diagram).
  std::size_t size(BddRef f) const;

 private:
  struct Node {
    int level;  ///< num_vars_ for terminals
    BddRef lo, hi;
  };

  struct TripleKey {
    std::uint64_t a, b;
    friend bool operator==(const TripleKey&, const TripleKey&) = default;
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const {
      std::uint64_t x = k.a * 0x9e3779b97f4a7c15ULL ^ k.b;
      x ^= x >> 31;
      return static_cast<std::size_t>(x * 0xbf58476d1ce4e5b9ULL);
    }
  };
  static TripleKey pack(std::uint64_t x, std::uint64_t y, std::uint64_t z) {
    return TripleKey{(x << 32) | y, z};
  }

  BddRef make_node(int level, BddRef lo, BddRef hi);

  int num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<TripleKey, BddRef, TripleKeyHash> unique_;
  std::unordered_map<TripleKey, BddRef, TripleKeyHash> ite_cache_;
};

}  // namespace sateda::bdd
