/// \file covering.hpp
/// \brief Unate/binate covering (paper §3, refs [9, 23]): choose a
///        minimum-cost subset of columns satisfying every row
///        constraint.  Rows are clauses over column literals, so unate
///        covering (set cover) and binate covering (with negative
///        literals) share one representation.
///
/// Solvers:
///  * branch-and-bound with essentiality, row/column dominance and an
///    independent-row lower bound (the classical algorithm [9]);
///  * the same B&B augmented with SAT-based pruning [23]: before
///    exploring a subtree, a SAT query with a cardinality bound checks
///    whether any completion can beat the incumbent;
///  * a pure SAT binary search on the cost (via at-most-k), which also
///    handles binate instances.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::opt {

/// A covering problem over \p num_columns 0/1 column variables.
/// Each row is a clause: at least one of its literals must hold
/// (positive literal = column chosen; negative = column not chosen).
/// Unit cost per chosen column.
struct CoveringProblem {
  int num_columns = 0;
  std::vector<std::vector<Lit>> rows;

  /// Unate helper: row requiring one of \p cols to be chosen.
  void add_cover_row(const std::vector<int>& cols) {
    std::vector<Lit> r;
    r.reserve(cols.size());
    for (int c : cols) r.push_back(pos(c));
    rows.push_back(std::move(r));
  }
  bool is_unate() const {
    for (const auto& r : rows) {
      for (Lit l : r) {
        if (l.negative()) return false;
      }
    }
    return true;
  }
};

struct CoveringStats {
  std::int64_t branch_nodes = 0;
  std::int64_t sat_prunes = 0;   ///< subtrees cut by SAT queries
  std::int64_t sat_calls = 0;
  std::int64_t maxsat_rounds = 0;  ///< core relaxations (maxsat engine)
  std::string summary() const {
    std::string s = "nodes=" + std::to_string(branch_nodes) +
                    " sat_calls=" + std::to_string(sat_calls) +
                    " sat_prunes=" + std::to_string(sat_prunes);
    if (maxsat_rounds) s += " maxsat_rounds=" + std::to_string(maxsat_rounds);
    return s;
  }
};

struct CoveringResult {
  bool feasible = false;
  bool optimal = true;       ///< false when the node budget aborted B&B
  int cost = -1;
  std::vector<bool> chosen;  ///< per column
  CoveringStats stats;
};

struct CoveringOptions {
  bool sat_pruning = false;       ///< ref [23]
  int sat_prune_period = 1;       ///< run the SAT check every N UB updates
  std::int64_t node_budget = -1;  ///< B&B node limit (<0 = unlimited)
  sat::SolverOptions solver;
  sat::EngineSpec engine;      ///< SAT backend (empty: CDCL)
};

/// Branch-and-bound covering solver (unate rows only; binate rows are
/// rejected — use solve_covering_sat for those).
CoveringResult solve_covering_bnb(const CoveringProblem& p,
                                  CoveringOptions opts = {});

/// Pure SAT covering: linear/binary search on the cost bound with a
/// cardinality constraint.  Handles unate and binate instances.
CoveringResult solve_covering_sat(const CoveringProblem& p,
                                  CoveringOptions opts = {});

/// Core-guided MaxSAT covering (OLL over opt/maxsat): rows become hard
/// clauses, each chosen column costs a unit soft clause, and the
/// optimum is proven by UNSAT cores instead of a search on the bound.
/// Handles unate and binate instances; results are proven optimal.
CoveringResult solve_covering_maxsat(const CoveringProblem& p,
                                     CoveringOptions opts = {});

/// Random unate instance: each of \p rows rows picks between 2 and
/// \p max_row_width columns.  Always feasible.
CoveringProblem random_covering(int columns, int rows, int max_row_width,
                                std::uint64_t seed);

}  // namespace sateda::opt
