/// \file prime_implicants.hpp
/// \brief Minimum-size prime implicant computation (paper §3,
///        ref. [22]): given a function as a CNF formula φ, find a
///        smallest cube c with c ⊨ φ.  A minimum-size implicant is
///        necessarily prime (dropping any literal would yield a
///        smaller implicant).
///
/// Encoding (Manquinho/Oliveira/Marques-Silva): for each variable x,
/// selector variables yₓ ("x appears positively in the cube") and zₓ
/// ("negatively"), with ¬(yₓ ∧ zₓ).  The cube implies φ iff every
/// clause of φ contains a literal the cube asserts:  for clause ω,
/// ∨_{x ∈ ω} yₓ  ∨  ∨_{¬x ∈ ω} zₓ.  Minimize Σ(yₓ + zₓ) by binary
/// search with a cardinality constraint.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cnf/formula.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::opt {

struct PrimeImplicantResult {
  bool exists = false;   ///< false iff φ is unsatisfiable
  std::vector<Lit> cube; ///< the implicant's literals
  int sat_calls = 0;
};

/// Computes a minimum-size prime implicant of the function denoted by
/// \p f (over f.num_vars() variables).  \p engine selects the SAT
/// backend (default: single-threaded CDCL).
PrimeImplicantResult minimum_prime_implicant(
    const CnfFormula& f, sat::SolverOptions opts = {},
    const sat::EngineSpec& engine = {});

/// True iff the cube implies the formula: every total assignment
/// extending \p cube satisfies \p f.  For CNF f this reduces to a
/// syntactic test — each clause of f must contain a literal of the
/// cube (otherwise falsifying that whole clause is consistent with the
/// cube).
bool is_implicant(const CnfFormula& f, const std::vector<Lit>& cube);

/// True iff \p cube is a *prime* implicant: an implicant none of whose
/// proper sub-cubes is an implicant.
bool is_prime_implicant(const CnfFormula& f, const std::vector<Lit>& cube);

}  // namespace sateda::opt
