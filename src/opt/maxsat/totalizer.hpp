/// \file totalizer.hpp
/// \brief Totalizer cardinality encoding built directly inside a
///        SatEngine, with outputs usable as assumption literals.
///
/// The core-guided MaxSAT loop (maxsat.hpp) needs to say "at most b of
/// these literals are true" and later raise b without re-encoding.
/// The totalizer (Bailleux & Boutier) fits exactly: a balanced merge
/// tree whose root outputs o_1..o_n unary-encode the count of true
/// inputs, so bound b is enforced by *assuming* ¬o_{b+1} — no clause
/// retraction needed, and raising the bound is just dropping one
/// assumption.  Only the inputs→outputs direction is encoded
/// (¬L_a ∨ ¬R_b ∨ O_{a+b}); that is sufficient (and standard) for
/// upper-bounding, and keeps the clause count at O(n²) for n inputs.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/engine.hpp"

namespace sateda::opt {

/// One totalizer circuit over a fixed input set, encoded into the
/// engine at construction.  Outputs are plain literals; the caller
/// moves the enforced bound by choosing which ¬output to assume.
class Totalizer {
 public:
  /// Encodes the counting circuit for \p inputs into \p engine.  New
  /// auxiliary variables are allocated from the engine.  \p inputs must
  /// be non-empty.
  Totalizer(sat::SatEngine& engine, std::vector<Lit> inputs);

  std::size_t num_inputs() const { return inputs_.size(); }

  /// Literal that is forced true whenever at least \p k of the inputs
  /// are true (1 ≤ k ≤ num_inputs()).
  Lit at_least(std::size_t k) const { return outputs_[k - 1]; }

  /// Assumption literal enforcing "at most \p k inputs are true"
  /// (0 ≤ k < num_inputs()): the negation of at_least(k+1).
  Lit at_most_assumption(std::size_t k) const { return ~outputs_[k]; }

  /// False iff encoding hit a root-level conflict in the engine (the
  /// engine then reports kUnsat anyway; callers may ignore this).
  bool okay() const { return ok_; }

  int aux_vars() const { return aux_vars_; }
  int clauses_added() const { return clauses_added_; }

 private:
  /// Returns the output literals (counts 1..size) of the subtree over
  /// inputs_[begin, begin+size).
  std::vector<Lit> build(sat::SatEngine& engine, std::size_t begin,
                         std::size_t size);

  std::vector<Lit> inputs_;
  std::vector<Lit> outputs_;  ///< outputs_[j] ⇐ at least j+1 inputs true
  bool ok_ = true;
  int aux_vars_ = 0;
  int clauses_added_ = 0;
};

}  // namespace sateda::opt
