/// \file maxsat.hpp
/// \brief Core-guided MaxSAT over a WCNF instance: Fu–Malik (WPM1) and
///        OLL relaxation loops driving incremental SAT.
///
/// The paper casts several EDA tasks (§3) as minimum-cost covering —
/// two-level minimization, minimum test sets — and solves them with
/// branch-and-bound over SAT oracles.  Core-guided MaxSAT inverts that
/// search: solve the hard clauses plus *assumptions* that every soft
/// clause holds; each UNSAT answer returns a core of softs that cannot
/// all be satisfied, the proven lower bound rises by the core's
/// minimum weight, and the core is relaxed so exactly that much
/// violation becomes free.  The first SAT answer is then a proven
/// optimum: its cost equals the accumulated lower bound.  Two classic
/// relaxations are provided:
///
///  * Fu–Malik / WPM1: per core, every member soft gains a fresh
///    relaxation variable (weight-splitting clones softs whose weight
///    exceeds the core minimum) and an at-most-one over the round's
///    relaxation variables is added as hard clauses;
///  * OLL: per core, a totalizer counts the core's violations; the
///    bound "at most one violation" is assumed, and when later cores
///    exhaust an output's weight the next totalizer output is
///    activated — clauses are only ever added, never retracted.
///
/// Both reuse one incremental engine for the whole run, optionally
/// shrinking every core with sat/core (mus.hpp) first — smaller cores
/// mean smaller relaxations, which is where the run time goes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opt/maxsat/wcnf.hpp"
#include "sat/core/mus.hpp"
#include "sat/engine.hpp"

namespace sateda::opt {

/// Which relaxation the core-guided loop applies.
enum class MaxSatAlgo {
  kOll,      ///< totalizer-based OLL (default; fewer clones, reusable sums)
  kFuMalik,  ///< Fu–Malik / WPM1 relaxation-variable cloning
};

/// Tunables for solve_maxsat().
struct MaxSatOptions {
  MaxSatAlgo algo = MaxSatAlgo::kOll;
  sat::EngineSpec engine;      ///< SAT backend spec (default: CDCL)
  sat::SolverOptions solver;   ///< options handed to the engine factory
  /// Shrink each UNSAT core with sat/core before relaxing it.  Smaller
  /// cores give smaller totalizers/fewer clones at the price of extra
  /// solve calls; the effort is bounded by `core` below.
  bool minimize_cores = true;
  /// Budgeted minimization defaults: refinement plus a deletion pass
  /// capped at 64 solve calls per core.
  sat::core::CoreMinimizeOptions core{true, 4, true, 64};
  std::int64_t max_rounds = -1;  ///< relaxation-round cap (<0: unlimited)
};

/// Outcome classification of a MaxSAT run.
enum class MaxSatStatus {
  kOptimal,  ///< model found with cost equal to the proven lower bound
  kUnsat,    ///< the hard clauses alone are unsatisfiable
  kUnknown,  ///< budget/interrupt/round-cap before the optimum was proven
};

std::string to_string(MaxSatStatus s);

/// Effort counters for one solve_maxsat() run.
struct MaxSatStats {
  std::int64_t rounds = 0;           ///< cores relaxed (= lower-bound lifts)
  std::int64_t core_literals = 0;    ///< summed relaxed-core sizes
  std::int64_t core_min_solves = 0;  ///< solve calls spent minimizing cores
  std::int64_t totalizers = 0;       ///< OLL: totalizer circuits built
  std::int64_t cloned_softs = 0;     ///< Fu–Malik: weight-splitting clones
  /// Engine counters at the end of the run, with the core/relaxation
  /// observability fields (core_min_calls, relaxation_rounds) folded in.
  sat::SolverStats solver;

  std::string summary() const {
    return "rounds=" + std::to_string(rounds) +
           " core_lits=" + std::to_string(core_literals) +
           " min_solves=" + std::to_string(core_min_solves) +
           " totalizers=" + std::to_string(totalizers) +
           " clones=" + std::to_string(cloned_softs);
  }
};

/// Result of solve_maxsat().
struct MaxSatResult {
  MaxSatStatus status = MaxSatStatus::kUnknown;
  /// Cost of `model` on the original softs; equals `lower_bound` (and
  /// is therefore proven minimal) when status == kOptimal.
  std::uint64_t cost = 0;
  /// Proven lower bound on any solution's cost (also meaningful after
  /// kUnknown: the optimum is ≥ this).
  std::uint64_t lower_bound = 0;
  /// Model of the hard clauses achieving `cost` (valid iff kOptimal).
  std::vector<lbool> model;
  MaxSatStats stats;
};

/// Minimizes the summed weight of falsified soft clauses subject to the
/// hard clauses of \p f.  Deterministic for a fixed engine
/// configuration.  kOptimal results carry a certificate by
/// construction: cost == lower_bound, each lower-bound lift justified
/// by an UNSAT core.
MaxSatResult solve_maxsat(const WcnfFormula& f, const MaxSatOptions& opts = {});

}  // namespace sateda::opt
