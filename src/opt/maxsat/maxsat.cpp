#include "opt/maxsat/maxsat.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "opt/maxsat/totalizer.hpp"

namespace sateda::opt {

namespace {

using sat::SatEngine;
using sat::SolveResult;

/// Folds the run's own effort counters into the engine snapshot so
/// SolverStats observability (core_min_calls, relaxation_rounds) is
/// populated for every consumer.
void snapshot(MaxSatResult& res, SatEngine& engine, std::uint64_t lb) {
  res.lower_bound = lb;
  res.stats.solver = engine.stats();
  res.stats.solver.core_min_calls += res.stats.core_min_solves;
  res.stats.solver.relaxation_rounds += res.stats.rounds;
}

/// Shrinks \p core in place when enabled; counts the effort.  A core
/// returned by the engine is inconsistent with the clause set on its
/// own, so minimization need not carry the other active assumptions.
void shrink_core(SatEngine& engine, std::vector<Lit>& core,
                 const MaxSatOptions& opts, MaxSatStats& stats) {
  if (!opts.minimize_cores || core.size() <= 1) return;
  sat::core::CoreResult cr = sat::core::minimize_core(engine, core, opts.core);
  stats.core_min_solves += cr.stats.solve_calls;
  if (cr.unsat) core = std::move(cr.core);
}

/// Resolves core literals to soft-assumption slots, deduplicated.
/// Returns false on an unexpected literal (internal inconsistency).
bool core_members(const std::vector<Lit>& core,
                  const std::unordered_map<Lit, std::size_t>& slot,
                  std::vector<std::size_t>& members) {
  members.clear();
  for (Lit l : core) {
    auto it = slot.find(l);
    if (it == slot.end()) return false;
    members.push_back(it->second);
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  return !members.empty();
}

// ----------------------------------------------------------------- OLL

/// One active soft assumption in the OLL loop: an original soft's
/// satisfaction literal, or a totalizer output bounding violations.
struct OllAssump {
  Lit lit;
  std::uint64_t weight = 0;
  int tot = -1;  ///< owning totalizer index, -1 for original softs
};

/// One totalizer sum introduced for a core.
struct OllSum {
  std::unique_ptr<Totalizer> tot;
  std::uint64_t base_weight = 0;  ///< weight of the core it relaxed
  std::size_t bound = 0;          ///< currently assumed "at most bound"
};

MaxSatResult solve_oll(const WcnfFormula& f, const MaxSatOptions& opts) {
  MaxSatResult res;
  std::unique_ptr<SatEngine> engine = sat::make_engine(opts.engine, opts.solver);
  if (f.num_vars() > 0) engine->ensure_var(f.num_vars() - 1);
  // A root conflict here just makes solve() report kUnsat below.
  bool ok = engine->add_formula(f.hard);

  std::uint64_t lb = 0;
  std::vector<OllAssump> softs;
  std::unordered_map<Lit, std::size_t> slot;
  std::vector<OllSum> sums;

  for (const SoftClause& s : f.soft) {
    if (s.lits.empty()) {  // unsatisfiable soft: charge it up front
      lb += s.weight;
      continue;
    }
    Lit a;
    if (s.lits.size() == 1) {
      a = s.lits[0];  // assume the literal itself; no selector needed
    } else {
      const Var r = engine->new_var();
      // Selectors are assumed across every iteration; simplification
      // must not eliminate or substitute them between solves.
      engine->freeze(r);
      std::vector<Lit> cl = s.lits;
      cl.push_back(pos(r));
      if (!engine->add_clause(std::move(cl))) ok = false;
      a = neg(r);
    }
    auto it = slot.find(a);
    if (it != slot.end()) {
      softs[it->second].weight += s.weight;  // merge duplicate softs
    } else {
      slot.emplace(a, softs.size());
      softs.push_back(OllAssump{a, s.weight, -1});
    }
  }
  (void)ok;

  std::vector<Lit> assumptions;
  std::vector<std::size_t> members;
  for (;;) {
    if (opts.max_rounds >= 0 && res.stats.rounds >= opts.max_rounds) {
      res.status = MaxSatStatus::kUnknown;
      break;
    }
    assumptions.clear();
    for (const OllAssump& a : softs) {
      if (a.weight > 0) assumptions.push_back(a.lit);
    }
    const SolveResult sr = engine->solve(assumptions);
    if (sr == SolveResult::kSat) {
      res.model = engine->model();
      res.cost = f.cost_of(res.model);
      // Every weighted soft held under assumption, so the model's cost
      // is exactly the accumulated lower bound — a proven optimum.
      res.status = res.cost == lb ? MaxSatStatus::kOptimal
                                  : MaxSatStatus::kUnknown;
      break;
    }
    if (sr == SolveResult::kUnknown) {
      res.status = MaxSatStatus::kUnknown;
      break;
    }
    std::vector<Lit> core = engine->conflict_core();
    if (core.empty()) {  // UNSAT with no assumption involved: hards are
      res.status = MaxSatStatus::kUnsat;  // unsatisfiable by themselves
      break;
    }
    shrink_core(*engine, core, opts, res.stats);
    if (core.empty() || !core_members(core, slot, members)) {
      res.status = core.empty() ? MaxSatStatus::kUnsat
                                : MaxSatStatus::kUnknown;
      break;
    }
    std::uint64_t wmin = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t idx : members) {
      wmin = std::min(wmin, softs[idx].weight);
    }
    lb += wmin;
    ++res.stats.rounds;
    res.stats.core_literals += static_cast<std::int64_t>(core.size());
    if (core.size() > 1) {
      // Count this core's violations with a totalizer; one violation
      // is proven free (charged into lb), the second costs wmin.
      std::vector<Lit> violations;
      violations.reserve(core.size());
      for (Lit l : core) violations.push_back(~l);
      sums.push_back(OllSum{
          std::make_unique<Totalizer>(*engine, std::move(violations)), wmin,
          1});
      ++res.stats.totalizers;
      const Lit bound_lit = sums.back().tot->at_most_assumption(1);
      slot.emplace(bound_lit, softs.size());
      softs.push_back(
          OllAssump{bound_lit, wmin, static_cast<int>(sums.size()) - 1});
    }
    for (std::size_t idx : members) {
      softs[idx].weight -= wmin;  // weight splitting
      if (softs[idx].weight != 0 || softs[idx].tot < 0) continue;
      // A totalizer bound just had its weight exhausted: the next
      // violation level starts costing the sum's base weight.
      const int s = softs[idx].tot;
      OllSum& sum = sums[static_cast<std::size_t>(s)];
      if (sum.bound + 1 < sum.tot->num_inputs()) {
        ++sum.bound;
        const Lit next = sum.tot->at_most_assumption(sum.bound);
        slot.emplace(next, softs.size());
        softs.push_back(OllAssump{next, sum.base_weight, s});
      }
    }
  }
  snapshot(res, *engine, lb);
  return res;
}

// ------------------------------------------------------------ Fu–Malik

/// One active soft in the WPM1 loop: the clause's literals (original
/// plus relaxation variables accumulated over rounds) and the selector
/// assumed to enforce it.
struct FmSoft {
  std::vector<Lit> lits;
  std::uint64_t weight = 0;
  Lit assump;
};

MaxSatResult solve_fu_malik(const WcnfFormula& f, const MaxSatOptions& opts) {
  MaxSatResult res;
  std::unique_ptr<SatEngine> engine = sat::make_engine(opts.engine, opts.solver);
  if (f.num_vars() > 0) engine->ensure_var(f.num_vars() - 1);
  bool ok = engine->add_formula(f.hard);

  std::uint64_t lb = 0;
  std::vector<FmSoft> softs;
  std::unordered_map<Lit, std::size_t> slot;

  auto instrument = [&](std::vector<Lit> lits, std::uint64_t weight,
                        std::size_t reuse_slot) {
    const Var sel = engine->new_var();
    engine->freeze(sel);  // assumed on every later solve
    std::vector<Lit> cl = lits;
    cl.push_back(pos(sel));
    if (!engine->add_clause(std::move(cl))) ok = false;
    if (reuse_slot != static_cast<std::size_t>(-1)) {
      slot.erase(softs[reuse_slot].assump);  // retire the old selector
      softs[reuse_slot].lits = std::move(lits);
      softs[reuse_slot].assump = neg(sel);
      slot.emplace(neg(sel), reuse_slot);
    } else {
      slot.emplace(neg(sel), softs.size());
      softs.push_back(FmSoft{std::move(lits), weight, neg(sel)});
    }
  };

  for (const SoftClause& s : f.soft) {
    if (s.lits.empty()) {
      lb += s.weight;
      continue;
    }
    instrument(s.lits, s.weight, static_cast<std::size_t>(-1));
  }

  std::vector<Lit> assumptions;
  std::vector<std::size_t> members;
  for (;;) {
    if (opts.max_rounds >= 0 && res.stats.rounds >= opts.max_rounds) {
      res.status = MaxSatStatus::kUnknown;
      break;
    }
    assumptions.clear();
    for (const FmSoft& s : softs) {
      if (s.weight > 0) assumptions.push_back(s.assump);
    }
    const SolveResult sr = engine->solve(assumptions);
    if (sr == SolveResult::kSat) {
      res.model = engine->model();
      res.cost = f.cost_of(res.model);
      // WPM1 invariant: opt(original) = lb + opt(transformed); the
      // model satisfies every transformed soft, so its cost is lb.
      res.status = res.cost == lb ? MaxSatStatus::kOptimal
                                  : MaxSatStatus::kUnknown;
      break;
    }
    if (sr == SolveResult::kUnknown) {
      res.status = MaxSatStatus::kUnknown;
      break;
    }
    std::vector<Lit> core = engine->conflict_core();
    if (core.empty()) {
      res.status = MaxSatStatus::kUnsat;
      break;
    }
    shrink_core(*engine, core, opts, res.stats);
    if (core.empty() || !core_members(core, slot, members)) {
      res.status = core.empty() ? MaxSatStatus::kUnsat
                                : MaxSatStatus::kUnknown;
      break;
    }
    std::uint64_t wmin = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t idx : members) {
      wmin = std::min(wmin, softs[idx].weight);
    }
    lb += wmin;
    ++res.stats.rounds;
    res.stats.core_literals += static_cast<std::int64_t>(core.size());
    // WPM1 relaxation: every member gains a fresh relaxation variable;
    // softs heavier than wmin split into an untouched residual and a
    // relaxed wmin-weight clone.  At most one relaxation variable of
    // the round may fire — that single free violation is what the
    // lower-bound lift paid for.
    std::vector<Lit> round_relax;
    round_relax.reserve(members.size());
    for (std::size_t idx : members) {
      const Var b = engine->new_var();
      engine->freeze(b);  // appears in later cardinality assumptions
      round_relax.push_back(pos(b));
      if (softs[idx].weight > wmin) {
        softs[idx].weight -= wmin;
        std::vector<Lit> clone = softs[idx].lits;
        clone.push_back(pos(b));
        instrument(std::move(clone), wmin, static_cast<std::size_t>(-1));
        ++res.stats.cloned_softs;
      } else {
        std::vector<Lit> relaxed = softs[idx].lits;
        relaxed.push_back(pos(b));
        instrument(std::move(relaxed), wmin, idx);
      }
    }
    for (std::size_t i = 0; i < round_relax.size(); ++i) {
      for (std::size_t j = i + 1; j < round_relax.size(); ++j) {
        if (!engine->add_clause({~round_relax[i], ~round_relax[j]})) {
          ok = false;
        }
      }
    }
  }
  (void)ok;
  snapshot(res, *engine, lb);
  return res;
}

}  // namespace

std::string to_string(MaxSatStatus s) {
  switch (s) {
    case MaxSatStatus::kOptimal: return "OPTIMUM FOUND";
    case MaxSatStatus::kUnsat: return "UNSATISFIABLE";
    case MaxSatStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

MaxSatResult solve_maxsat(const WcnfFormula& f, const MaxSatOptions& opts) {
  return opts.algo == MaxSatAlgo::kFuMalik ? solve_fu_malik(f, opts)
                                           : solve_oll(f, opts);
}

}  // namespace sateda::opt
