#include "opt/maxsat/wcnf.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace sateda::opt {

namespace {

/// Largest DIMACS variable index a Lit can encode (matches the CNF
/// reader in cnf/dimacs.cpp).
constexpr long long kMaxDimacsVar = 1LL << 30;

Lit lit_from_dimacs(long long code) {
  Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
  return Lit(v, code < 0);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw WcnfError("line " + std::to_string(line_no) + ": " + what);
}

/// Strict signed-integer token parse; dies with a line-numbered error.
long long parse_number(const std::string& tok, std::size_t line_no) {
  long long value = 0;
  const char* end = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(tok.data(), end, value);
  if (ec == std::errc::result_out_of_range) {
    fail(line_no, "number '" + tok + "' overflows");
  }
  if (ec != std::errc() || ptr != end) {
    fail(line_no, "bad token '" + tok + "' in WCNF data");
  }
  return value;
}

}  // namespace

std::uint64_t WcnfFormula::cost_of(const std::vector<lbool>& model) const {
  std::uint64_t cost = 0;
  for (const SoftClause& s : soft) {
    bool satisfied = false;
    for (Lit l : s.lits) {
      const lbool v = static_cast<std::size_t>(l.var()) < model.size()
                          ? model[l.var()]
                          : l_undef;
      if ((v ^ l.negative()) == l_true) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) cost += s.weight;
  }
  return cost;
}

WcnfFormula read_wcnf(std::istream& in) {
  WcnfFormula f;
  bool saw_header = false;
  long long declared_vars = 0;
  std::string line;
  std::string tok;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    if (!(ls >> tok)) continue;   // blank line
    if (tok[0] == 'c') continue;  // comment
    if (tok == "p") {
      if (saw_header) fail(line_no, "duplicate WCNF header");
      std::string fmt;
      long long declared_clauses = 0;
      long long top = 0;
      if (!(ls >> fmt) || fmt != "wcnf") {
        fail(line_no, "expected 'p wcnf' header, got: " + line);
      }
      // The <top> field is mandatory: without it hard clauses cannot be
      // told apart from softs, so the old top-less dialect is rejected.
      if (!(ls >> declared_vars >> declared_clauses >> top) ||
          declared_vars < 0 || declared_clauses < 0) {
        fail(line_no,
             "malformed 'p wcnf <vars> <clauses> <top>' header "
             "(the <top> field is required): " +
                 line);
      }
      if (top <= 0) {
        fail(line_no, "top weight must be positive, got " +
                          std::to_string(top));
      }
      if (ls >> tok) {
        fail(line_no, "trailing token '" + tok + "' after WCNF header");
      }
      if (declared_vars > kMaxDimacsVar) {
        fail(line_no, "declared variable count " +
                          std::to_string(declared_vars) +
                          " exceeds the representable range");
      }
      if (declared_vars > 0) {
        f.hard.ensure_var(static_cast<Var>(declared_vars - 1));
      }
      f.top = static_cast<std::uint64_t>(top);
      saw_header = true;
      continue;
    }
    if (!saw_header) fail(line_no, "clause data before the WCNF header");
    // Clause line: <weight> <lit>... 0.  Unlike plain CNF, a clause may
    // not span lines — the first token of each line is its weight.
    const long long weight = parse_number(tok, line_no);
    if (weight <= 0) {
      fail(line_no, "clause weight must be positive, got " +
                        std::to_string(weight));
    }
    if (static_cast<std::uint64_t>(weight) > f.top) {
      fail(line_no, "clause weight " + std::to_string(weight) +
                        " exceeds top " + std::to_string(f.top));
    }
    std::vector<Lit> lits;
    bool terminated = false;
    while (ls >> tok) {
      if (tok[0] == 'c') break;  // trailing comment
      if (terminated) {
        fail(line_no, "literal '" + tok + "' after the terminating 0");
      }
      const long long code = parse_number(tok, line_no);
      if (code == 0) {
        terminated = true;
        continue;
      }
      const long long mag = code < 0 ? -code : code;
      if (mag > kMaxDimacsVar) {
        fail(line_no, "literal '" + tok +
                          "' is outside the representable variable range");
      }
      lits.push_back(lit_from_dimacs(code));
    }
    if (!terminated) {
      fail(line_no, "clause is missing its terminating 0");
    }
    if (static_cast<std::uint64_t>(weight) == f.top) {
      f.add_hard(std::move(lits));
    } else {
      f.add_soft(std::move(lits), static_cast<std::uint64_t>(weight));
    }
  }
  if (!saw_header) {
    fail(line_no == 0 ? 1 : line_no, "missing 'p wcnf' header");
  }
  return f;
}

WcnfFormula read_wcnf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw WcnfError("cannot open WCNF file: " + path);
  return read_wcnf(in);
}

WcnfFormula read_wcnf_string(const std::string& text) {
  std::istringstream in(text);
  return read_wcnf(in);
}

void write_wcnf(std::ostream& out, const WcnfFormula& f,
                const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream cs(comment);
    std::string line;
    while (std::getline(cs, line)) out << "c " << line << "\n";
  }
  out << "p wcnf " << f.num_vars() << " "
      << f.hard.num_clauses() + f.soft.size() << " " << f.top << "\n";
  auto emit_lits = [&out](const std::vector<Lit>& lits) {
    for (Lit l : lits) {
      out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  };
  for (const Clause& c : f.hard) {
    out << f.top << " ";
    emit_lits(std::vector<Lit>(c.begin(), c.end()));
  }
  for (const SoftClause& s : f.soft) {
    out << s.weight << " ";
    emit_lits(s.lits);
  }
}

}  // namespace sateda::opt
