/// \file wcnf.hpp
/// \brief Weighted CNF (WCNF): soft clauses with weights over a hard
///        clause set, plus the `p wcnf` DIMACS dialect reader/writer.
///
/// The paper's covering-style EDA problems (§3: two-level minimization,
/// minimum test sets) are optimization problems a plain SAT engine can
/// only bisect over.  WCNF is the standard input form for their
/// MaxSAT formulation: hard clauses must hold, each soft clause
/// carries a violation weight, and the goal is a model of the hard
/// clauses minimizing the summed weight of falsified softs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "cnf/formula.hpp"
#include "cnf/literal.hpp"

namespace sateda::opt {

/// Raised on malformed WCNF input.  The message carries the 1-based
/// input line number of the offending construct.
class WcnfError : public std::runtime_error {
 public:
  explicit WcnfError(const std::string& what) : std::runtime_error(what) {}
};

/// One soft clause: falsifying it costs \p weight.
struct SoftClause {
  std::vector<Lit> lits;
  std::uint64_t weight = 1;
};

/// A weighted CNF instance: hard clauses (must hold) plus weighted
/// soft clauses (each falsification costs its weight).
struct WcnfFormula {
  /// The "hard" weight from the `p wcnf <vars> <clauses> <top>` header;
  /// clauses carrying it are hard.  For programmatically built
  /// instances any value larger than sum_soft_weight() works.
  std::uint64_t top = 1;
  CnfFormula hard;               ///< hard clauses (tracks num_vars)
  std::vector<SoftClause> soft;  ///< weighted soft clauses

  /// Variables are 0..num_vars()-1 across hard and soft clauses.
  int num_vars() const { return hard.num_vars(); }

  void add_hard(std::vector<Lit> lits) { hard.add_clause(std::move(lits)); }

  void add_soft(std::vector<Lit> lits, std::uint64_t weight) {
    for (Lit l : lits) hard.ensure_var(l.var());
    soft.push_back(SoftClause{std::move(lits), weight});
  }

  /// Summed weight of all soft clauses — an upper bound on any cost.
  std::uint64_t sum_soft_weight() const {
    std::uint64_t sum = 0;
    for (const SoftClause& s : soft) sum += s.weight;
    return sum;
  }

  /// Cost of \p model: total weight of soft clauses it falsifies.  A
  /// soft clause counts as falsified unless some literal is assigned
  /// true (l_undef never satisfies).
  std::uint64_t cost_of(const std::vector<lbool>& model) const;
};

/// Parses the `p wcnf <vars> <clauses> <top>` DIMACS dialect: every
/// clause line starts with its weight; weight == top marks a hard
/// clause.  Rejects, with a line-numbered WcnfError: a missing or
/// short header (the <top> field is required), zero/negative/
/// non-numeric weights, weights exceeding top, clause data before the
/// header, and a final clause missing its terminating 0.
WcnfFormula read_wcnf(std::istream& in);

/// Parses a WCNF file from disk.
WcnfFormula read_wcnf_file(const std::string& path);

/// Parses WCNF from a string (convenient for tests).
WcnfFormula read_wcnf_string(const std::string& text);

/// Writes \p f in `p wcnf` format, with an optional leading comment.
void write_wcnf(std::ostream& out, const WcnfFormula& f,
                const std::string& comment = "");

}  // namespace sateda::opt
