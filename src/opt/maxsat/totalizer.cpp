#include "opt/maxsat/totalizer.hpp"

#include <cassert>

namespace sateda::opt {

Totalizer::Totalizer(sat::SatEngine& engine, std::vector<Lit> inputs)
    : inputs_(std::move(inputs)) {
  assert(!inputs_.empty());
  for (Lit l : inputs_) engine.ensure_var(l.var());
  outputs_ = build(engine, 0, inputs_.size());
}

std::vector<Lit> Totalizer::build(sat::SatEngine& engine, std::size_t begin,
                                  std::size_t size) {
  if (size == 1) return {inputs_[begin]};
  const std::size_t half = size / 2;
  const std::vector<Lit> left = build(engine, begin, half);
  const std::vector<Lit> right = build(engine, begin + half, size - half);
  std::vector<Lit> out;
  out.reserve(size);
  for (std::size_t j = 0; j < size; ++j) {
    out.push_back(pos(engine.new_var()));
    ++aux_vars_;
  }
  // (L_a ∧ R_b) → O_{a+b} for every split a+b ≥ 1 of the count, with
  // L_0/R_0 meaning "no constraint from that side".
  for (std::size_t a = 0; a <= left.size(); ++a) {
    for (std::size_t b = 0; b <= right.size(); ++b) {
      if (a + b == 0) continue;
      std::vector<Lit> clause;
      clause.reserve(3);
      if (a > 0) clause.push_back(~left[a - 1]);
      if (b > 0) clause.push_back(~right[b - 1]);
      clause.push_back(out[a + b - 1]);
      if (!engine.add_clause(std::move(clause))) ok_ = false;
      ++clauses_added_;
    }
  }
  return out;
}

}  // namespace sateda::opt
