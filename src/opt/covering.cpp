#include "opt/covering.hpp"

#include <algorithm>
#include <cassert>
#include <random>
#include <stdexcept>

#include "opt/cardinality.hpp"
#include "opt/maxsat/maxsat.hpp"
#include "sat/engine.hpp"

namespace sateda::opt {

namespace {

/// Builds the CNF of the covering constraints over columns 0..n-1.
CnfFormula covering_cnf(const CoveringProblem& p) {
  CnfFormula f(p.num_columns);
  for (const auto& row : p.rows) {
    f.add_clause(std::vector<Lit>(row.begin(), row.end()));
  }
  return f;
}

/// SAT feasibility of "cover with cost ≤ bound".
std::optional<std::vector<bool>> sat_cover_within(
    const CoveringProblem& p, int bound, const sat::SolverOptions& so,
    const sat::EngineSpec& engine, CoveringStats& stats) {
  CnfFormula f = covering_cnf(p);
  std::vector<Lit> cols;
  cols.reserve(p.num_columns);
  for (int c = 0; c < p.num_columns; ++c) cols.push_back(pos(c));
  add_at_most_k(f, cols, bound);
  std::unique_ptr<sat::SatEngine> solver = sat::make_engine(engine, so);
  ++stats.sat_calls;
  if (!solver->add_formula(f) ||
      solver->solve() != sat::SolveResult::kSat) {
    return std::nullopt;
  }
  std::vector<bool> chosen(p.num_columns);
  for (int c = 0; c < p.num_columns; ++c) {
    chosen[c] = solver->model_value(Var{c}).is_true();
  }
  return chosen;
}

/// State of the B&B solver: rows still uncovered, columns still free.
struct BnbState {
  const CoveringProblem& p;
  CoveringOptions opts;
  CoveringStats stats;
  std::vector<bool> best_chosen;
  int best_cost;
  std::vector<bool> chosen;
  std::vector<char> removed_col;
  std::vector<char> covered_row;
  bool aborted = false;

  explicit BnbState(const CoveringProblem& problem, CoveringOptions o)
      : p(problem),
        opts(o),
        best_cost(problem.num_columns + 1),
        chosen(problem.num_columns, false),
        removed_col(problem.num_columns, 0),
        covered_row(problem.rows.size(), 0) {}

  int lower_bound() const {
    // Maximal independent set of uncovered rows (greedy): rows sharing
    // no column each need a distinct column.
    std::vector<char> used_col(p.num_columns, 0);
    int lb = 0;
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      if (covered_row[r]) continue;
      bool independent = true;
      for (Lit l : p.rows[r]) {
        if (used_col[l.var()]) {
          independent = false;
          break;
        }
      }
      if (independent) {
        ++lb;
        for (Lit l : p.rows[r]) used_col[l.var()] = 1;
      }
    }
    return lb;
  }

  void search(int cost) {
    if (aborted) return;
    ++stats.branch_nodes;
    if (opts.node_budget >= 0 && stats.branch_nodes > opts.node_budget) {
      aborted = true;
      return;
    }
    // Covered everything?
    bool all_covered = true;
    std::size_t branch_row = p.rows.size();
    std::size_t branch_width = SIZE_MAX;
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      if (covered_row[r]) continue;
      std::size_t width = 0;
      for (Lit l : p.rows[r]) {
        if (!removed_col[l.var()]) ++width;
      }
      if (width == 0) return;  // infeasible branch
      all_covered = false;
      if (width < branch_width) {
        branch_width = width;
        branch_row = r;
      }
    }
    if (all_covered) {
      if (cost < best_cost) {
        best_cost = cost;
        best_chosen = chosen;
      }
      return;
    }
    if (cost + lower_bound() >= best_cost) return;  // bound

    // SAT-based pruning [23]: can any completion beat the incumbent?
    if (opts.sat_pruning && best_cost <= p.num_columns) {
      CoveringProblem sub;
      sub.num_columns = p.num_columns;
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (covered_row[r]) continue;
        std::vector<Lit> row;
        for (Lit l : p.rows[r]) {
          if (!removed_col[l.var()]) row.push_back(l);
        }
        sub.rows.push_back(std::move(row));
      }
      // Chosen columns are sunk cost; remaining budget:
      int budget = best_cost - 1 - cost;
      CnfFormula f = covering_cnf(sub);
      std::vector<Lit> free_cols;
      for (int c = 0; c < p.num_columns; ++c) {
        if (removed_col[c]) {
          f.add_unit(neg(c));
        } else {
          free_cols.push_back(pos(c));
        }
      }
      add_at_most_k(f, free_cols, budget);
      std::unique_ptr<sat::SatEngine> solver =
          sat::make_engine(opts.engine, opts.solver);
      ++stats.sat_calls;
      if (!solver->add_formula(f) ||
          solver->solve() != sat::SolveResult::kSat) {
        ++stats.sat_prunes;
        return;
      }
    }

    // Branch on the columns of the narrowest uncovered row.
    std::vector<int> newly_removed;
    for (Lit l : p.rows[branch_row]) {
      int col = l.var();
      if (removed_col[col]) continue;
      // Include col.
      chosen[col] = true;
      removed_col[col] = 1;
      newly_removed.push_back(col);
      std::vector<std::size_t> newly;
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (covered_row[r]) continue;
        for (Lit rl : p.rows[r]) {
          if (rl.var() == col) {
            covered_row[r] = 1;
            newly.push_back(r);
            break;
          }
        }
      }
      search(cost + 1);
      for (std::size_t r : newly) covered_row[r] = 0;
      chosen[col] = false;
      // Exclude col for the remaining branches of this row.
      // (removed_col[col] stays 1.)
    }
    // Restore only the columns this call removed.
    for (int col : newly_removed) removed_col[col] = 0;
  }
};

}  // namespace

CoveringResult solve_covering_bnb(const CoveringProblem& p,
                                  CoveringOptions opts) {
  if (!p.is_unate()) {
    throw std::invalid_argument(
        "solve_covering_bnb handles unate rows only; use solve_covering_sat");
  }
  BnbState state(p, opts);
  state.search(0);
  CoveringResult r;
  r.stats = state.stats;
  r.optimal = !state.aborted;
  if (state.best_cost <= p.num_columns) {
    r.feasible = true;
    r.cost = state.best_cost;
    r.chosen = state.best_chosen;
  }
  return r;
}

CoveringResult solve_covering_sat(const CoveringProblem& p,
                                  CoveringOptions opts) {
  CoveringResult r;
  // Feasibility first (no bound).
  std::optional<std::vector<bool>> cover =
      sat_cover_within(p, p.num_columns, opts.solver, opts.engine, r.stats);
  if (!cover.has_value()) return r;
  auto cost_of = [](const std::vector<bool>& v) {
    return static_cast<int>(std::count(v.begin(), v.end(), true));
  };
  r.feasible = true;
  r.chosen = *cover;
  r.cost = cost_of(*cover);
  // Tighten with binary search on the bound.
  int lo = 0, hi = r.cost - 1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    auto attempt = sat_cover_within(p, mid, opts.solver, opts.engine, r.stats);
    if (attempt.has_value()) {
      r.chosen = *attempt;
      r.cost = cost_of(*attempt);
      hi = std::min(r.cost - 1, mid - 1);
    } else {
      lo = mid + 1;
    }
  }
  return r;
}

CoveringResult solve_covering_maxsat(const CoveringProblem& p,
                                     CoveringOptions opts) {
  // Covering as WCNF: every row is hard, every column is a unit soft
  // ¬x_c — choosing a column falsifies its soft and costs 1.
  WcnfFormula w;
  w.top = static_cast<std::uint64_t>(p.num_columns) + 1;
  if (p.num_columns > 0) w.hard.ensure_var(p.num_columns - 1);
  for (const std::vector<Lit>& row : p.rows) w.add_hard(row);
  for (int c = 0; c < p.num_columns; ++c) w.add_soft({neg(c)}, 1);

  MaxSatOptions mopts;
  mopts.engine = opts.engine;
  mopts.solver = opts.solver;
  const MaxSatResult m = solve_maxsat(w, mopts);

  CoveringResult r;
  r.stats.sat_calls = m.stats.solver.solve_calls;
  r.stats.maxsat_rounds = m.stats.rounds;
  if (m.status != MaxSatStatus::kOptimal) {
    r.optimal = false;
    return r;  // infeasible (hard rows UNSAT) or undecided
  }
  r.feasible = true;
  r.cost = static_cast<int>(m.cost);
  r.chosen.assign(static_cast<std::size_t>(p.num_columns), false);
  for (int c = 0; c < p.num_columns; ++c) {
    const lbool v = static_cast<std::size_t>(c) < m.model.size()
                        ? m.model[c]
                        : l_undef;
    r.chosen[static_cast<std::size_t>(c)] = v.is_true();
  }
  return r;
}

CoveringProblem random_covering(int columns, int rows, int max_row_width,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  CoveringProblem p;
  p.num_columns = columns;
  std::uniform_int_distribution<int> width_dist(2, std::max(2, max_row_width));
  std::uniform_int_distribution<int> col_dist(0, columns - 1);
  for (int r = 0; r < rows; ++r) {
    int width = width_dist(rng);
    std::vector<int> cols;
    while (static_cast<int>(cols.size()) < width) {
      int c = col_dist(rng);
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    p.add_cover_row(cols);
  }
  return p;
}

}  // namespace sateda::opt
