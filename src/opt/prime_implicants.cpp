#include "opt/prime_implicants.hpp"

#include <algorithm>

#include "opt/cardinality.hpp"
#include "sat/engine.hpp"

namespace sateda::opt {

bool is_implicant(const CnfFormula& f, const std::vector<Lit>& cube) {
  for (const Clause& c : f) {
    bool hit = false;
    for (Lit l : c) {
      if (std::find(cube.begin(), cube.end(), l) != cube.end()) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

bool is_prime_implicant(const CnfFormula& f, const std::vector<Lit>& cube) {
  if (!is_implicant(f, cube)) return false;
  for (std::size_t i = 0; i < cube.size(); ++i) {
    std::vector<Lit> sub;
    sub.reserve(cube.size() - 1);
    for (std::size_t j = 0; j < cube.size(); ++j) {
      if (j != i) sub.push_back(cube[j]);
    }
    if (is_implicant(f, sub)) return false;  // a literal was droppable
  }
  return true;
}

PrimeImplicantResult minimum_prime_implicant(const CnfFormula& f,
                                             sat::SolverOptions opts,
                                             const sat::EngineSpec& engine) {
  PrimeImplicantResult result;
  const int n = f.num_vars();
  // Selector variables: y_x = 2x (positive literal in cube),
  // z_x = 2x+1 (negative literal in cube).
  auto y = [](Var x) { return pos(2 * x); };
  auto z = [](Var x) { return pos(2 * x + 1); };

  auto build = [&](int bound) {
    CnfFormula g(2 * n);
    for (Var x = 0; x < n; ++x) {
      g.add_binary(~y(x), ~z(x));  // cube cannot assert x and ¬x
    }
    for (const Clause& c : f) {
      std::vector<Lit> row;
      for (Lit l : c) {
        row.push_back(l.negative() ? z(l.var()) : y(l.var()));
      }
      g.add_clause(std::move(row));
    }
    if (bound >= 0) {
      std::vector<Lit> selectors;
      selectors.reserve(2 * n);
      for (Var x = 0; x < n; ++x) {
        selectors.push_back(y(x));
        selectors.push_back(z(x));
      }
      add_at_most_k(g, selectors, bound);
    }
    return g;
  };

  auto try_bound = [&](int bound) -> std::optional<std::vector<Lit>> {
    std::unique_ptr<sat::SatEngine> solver = sat::make_engine(engine, opts);
    ++result.sat_calls;
    if (!solver->add_formula(build(bound)) ||
        solver->solve() != sat::SolveResult::kSat) {
      return std::nullopt;
    }
    std::vector<Lit> cube;
    for (Var x = 0; x < n; ++x) {
      if (solver->model_value(y(x)).is_true()) cube.push_back(pos(x));
      if (solver->model_value(z(x)).is_true()) cube.push_back(neg(x));
    }
    return cube;
  };

  // Feasibility: a cube exists iff f is satisfiable (a full model is a
  // cube).  The unbounded query decides this.
  auto first = try_bound(-1);
  if (!first.has_value()) return result;
  result.exists = true;
  result.cube = *first;
  int lo = 0, hi = static_cast<int>(result.cube.size()) - 1;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    auto attempt = try_bound(mid);
    if (attempt.has_value()) {
      result.cube = *attempt;
      hi = std::min(static_cast<int>(result.cube.size()) - 1, mid - 1);
    } else {
      lo = mid + 1;
    }
  }
  return result;
}

}  // namespace sateda::opt
