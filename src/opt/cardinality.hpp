/// \file cardinality.hpp
/// \brief CNF cardinality constraints (sequential-counter encoding) —
///        the bridge from SAT to the linear-integer-optimization uses
///        of paper §3 (ref. [3]): covering, prime implicants.
#pragma once

#include <vector>

#include "cnf/formula.hpp"

namespace sateda::opt {

/// Adds clauses to \p f enforcing  Σ lits ≤ k  using the
/// Sinz sequential-counter encoding: O(n·k) auxiliary variables and
/// clauses, arc-consistent under unit propagation.
void add_at_most_k(CnfFormula& f, const std::vector<Lit>& lits, int k);

/// Adds clauses enforcing Σ lits ≥ k (via at-most on complements).
void add_at_least_k(CnfFormula& f, const std::vector<Lit>& lits, int k);

}  // namespace sateda::opt
