#include "opt/cardinality.hpp"

namespace sateda::opt {

void add_at_most_k(CnfFormula& f, const std::vector<Lit>& lits, int k) {
  const int n = static_cast<int>(lits.size());
  if (k >= n) return;  // vacuous
  if (k < 0) k = 0;
  if (k == 0) {
    for (Lit l : lits) f.add_unit(~l);
    return;
  }
  // s[i][j] ⇔ "at least j+1 of lits[0..i] are true" (one-directional).
  // Registers: s[i][j], i in [0, n-1), j in [0, k).
  std::vector<std::vector<Var>> s(n - 1, std::vector<Var>(k));
  for (auto& row : s) {
    for (Var& v : row) v = f.new_var();
  }
  // lits[0] → s[0][0]
  f.add_binary(~lits[0], pos(s[0][0]));
  for (int j = 1; j < k; ++j) {
    // s[0][j] is false for j ≥ 1.
    f.add_unit(neg(s[0][j]));
  }
  for (int i = 1; i < n - 1; ++i) {
    // lits[i] → s[i][0];  s[i-1][j] → s[i][j]
    f.add_binary(~lits[i], pos(s[i][0]));
    for (int j = 0; j < k; ++j) {
      f.add_binary(neg(s[i - 1][j]), pos(s[i][j]));
      if (j + 1 < k) {
        // lits[i] ∧ s[i-1][j] → s[i][j+1]
        f.add_ternary(~lits[i], neg(s[i - 1][j]), pos(s[i][j + 1]));
      }
    }
    // Overflow: lits[i] ∧ s[i-1][k-1] → ⊥
    f.add_binary(~lits[i], neg(s[i - 1][k - 1]));
  }
  // Final literal overflow.
  f.add_binary(~lits[n - 1], neg(s[n - 2][k - 1]));
}

void add_at_least_k(CnfFormula& f, const std::vector<Lit>& lits, int k) {
  if (k <= 0) return;
  const int n = static_cast<int>(lits.size());
  if (k > n) {
    f.add_clause(Clause(std::vector<Lit>{}));  // unsatisfiable demand
    return;
  }
  if (k == 1) {
    f.add_clause(std::vector<Lit>(lits.begin(), lits.end()));
    return;
  }
  // Σ lits ≥ k  ⇔  Σ ¬lits ≤ n - k.
  std::vector<Lit> complements;
  complements.reserve(lits.size());
  for (Lit l : lits) complements.push_back(~l);
  add_at_most_k(f, complements, n - k);
}

}  // namespace sateda::opt
