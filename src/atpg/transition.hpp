/// \file transition.hpp
/// \brief Transition (gross-delay) fault test generation — the delay
///        fault testing application of paper §3 (refs [7, 18]).
///
/// A slow-to-rise fault at node n needs a two-vector test (v1, v2):
/// v1 initializes n to 0, v2 launches the 0→1 transition and
/// propagates it to an output — i.e. v2 is a stuck-at-0 test for n.
/// (Slow-to-fall is the dual.)  For combinational circuits the two
/// vectors decouple, so generation is one objective query plus one
/// stuck-at query; both use the incremental machinery.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "atpg/engine.hpp"

namespace sateda::atpg {

/// A transition fault at a node's output.
struct TransitionFault {
  circuit::NodeId node = circuit::kNullNode;
  bool slow_to_rise = true;  ///< false = slow-to-fall
};

inline std::string to_string(const TransitionFault& f) {
  return "n" + std::to_string(f.node) + (f.slow_to_rise ? "/str" : "/stf");
}

/// A two-vector test.
struct TransitionTest {
  std::vector<bool> init;    ///< v1: sets the victim to its initial value
  std::vector<bool> launch;  ///< v2: launches and propagates the transition
};

/// Generates a test for \p f, or nullopt if the fault is untestable
/// (the node cannot take the initial value, or the corresponding
/// stuck-at fault is redundant).
std::optional<TransitionTest> generate_transition_test(
    const circuit::Circuit& c, const TransitionFault& f,
    const AtpgOptions& opts = {});

/// Enumerates transition faults on every node output.
std::vector<TransitionFault> enumerate_transition_faults(
    const circuit::Circuit& c);

struct TransitionAtpgResult {
  std::vector<TransitionFault> faults;
  std::vector<std::optional<TransitionTest>> tests;  ///< parallel
  int testable = 0;
  int untestable = 0;
};

/// Runs transition-fault ATPG over the whole fault list.
TransitionAtpgResult run_transition_atpg(const circuit::Circuit& c,
                                         const AtpgOptions& opts = {});

}  // namespace sateda::atpg
