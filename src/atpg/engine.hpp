/// \file engine.hpp
/// \brief The complete SAT-based ATPG flow (paper §3, refs [20, 25]):
///        optional random-pattern phase with fault-simulation dropping,
///        then one SAT test-generation query per remaining fault,
///        classifying faults as detected / redundant / aborted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/detection.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "csat/circuit_sat.hpp"

namespace sateda::atpg {

struct AtpgOptions {
  bool collapse = true;            ///< structural fault collapsing
  bool random_phase = true;        ///< cheap random patterns first
  int random_patterns = 128;       ///< count for the random phase
  bool drop_by_simulation = true;  ///< fault-simulate each new test
  bool use_structural_layer = true;///< §5 layer inside the TPG queries
  /// Structure-aware CNF pipeline for the TPG queries instead of the
  /// circuit layer: AIG rewriting on the detection circuit, optional
  /// Plaisted-Greenbaum objective encoding, StructureHints branching.
  bool rewrite = false;
  bool plaisted_greenbaum = false;
  bool struct_hints = false;
  std::int64_t conflict_budget = 200000;  ///< per-fault abort bound
  std::uint64_t seed = 7;          ///< random phase + don't-care fill
  sat::SolverOptions solver;
};

struct AtpgStats {
  int total_faults = 0;      ///< after collapsing
  int detected = 0;
  int redundant = 0;
  int aborted = 0;
  int random_detected = 0;   ///< subset of detected from random phase
  int sat_calls = 0;
  std::int64_t decisions = 0;
  std::int64_t conflicts = 0;

  double fault_coverage() const {
    return total_faults ? static_cast<double>(detected) / total_faults : 1.0;
  }
  /// Coverage over testable faults only (redundant ones excluded) —
  /// the "test efficiency" figure ATPG papers report.
  double test_efficiency() const {
    const int classified = detected + redundant;
    return total_faults ? static_cast<double>(classified) / total_faults : 1.0;
  }
  std::string summary() const;
};

struct AtpgResult {
  std::vector<std::vector<bool>> tests;  ///< complete input patterns
  std::vector<Fault> faults;             ///< the (collapsed) fault list
  std::vector<FaultStatus> status;       ///< parallel to `faults`
  AtpgStats stats;
};

/// Runs the full flow on \p c.
AtpgResult run_atpg(const circuit::Circuit& c, AtpgOptions opts = {});

/// Baseline for bench E6: random patterns + fault simulation only.
/// Returns the achieved coverage over the same collapsed fault list.
AtpgResult run_random_atpg(const circuit::Circuit& c, int num_patterns,
                           std::uint64_t seed, bool collapse = true);

/// Generates a test for a single fault.  Returns the fault status;
/// on kDetected, \p pattern receives a (possibly partial) input
/// pattern in Circuit::inputs() order.  When \p accum is non-null the
/// query's decision/conflict counts are added to it.
FaultStatus generate_test(const circuit::Circuit& c, const Fault& f,
                          std::vector<lbool>& pattern,
                          const AtpgOptions& opts = {},
                          sat::SolverStats* accum = nullptr);

}  // namespace sateda::atpg
