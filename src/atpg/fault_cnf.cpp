#include "atpg/fault_cnf.hpp"

#include <algorithm>

#include "circuit/encoder.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

FaultQueryCnf encode_fault_query(const Circuit& c, const Fault& f,
                                 Var first_free_var) {
  FaultQueryCnf q;
  q.next_var = first_free_var;

  // Output cone of the fault site.
  std::vector<char> in_cone(c.num_nodes(), 0);
  std::vector<NodeId> stack{f.node};
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    if (in_cone[x]) continue;
    in_cone[x] = 1;
    cone.push_back(x);
    for (NodeId fo : c.fanouts(x)) stack.push_back(fo);
  }
  std::sort(cone.begin(), cone.end());

  bool reaches_output = false;
  for (NodeId o : c.outputs()) {
    if (in_cone[o]) reaches_output = true;
  }
  if (!reaches_output) {
    q.trivially_redundant = true;
    return q;
  }

  // Fresh variables for the faulty copies, allocated in cone order so
  // the layout is a pure function of (circuit, fault, first_free_var).
  Var next = first_free_var;
  CnfFormula& add = q.clauses;
  add.ensure_var(first_free_var - 1);
  std::vector<Var> faulty(c.num_nodes(), kNullVar);
  for (NodeId x : cone) faulty[x] = next++;
  for (NodeId x : cone) {
    const circuit::Node& n = c.node(x);
    if (x == f.node && f.pin == Fault::kOutputPin) {
      add.add_unit(Lit(faulty[x], !f.stuck_value));
      continue;
    }
    std::vector<Var> ins;
    ins.reserve(n.fanins.size());
    for (int i = 0; i < static_cast<int>(n.fanins.size()); ++i) {
      NodeId fi = n.fanins[i];
      if (x == f.node && i == f.pin) {
        // Faulted pin: a fresh variable pinned to the stuck value.
        Var pin_var = next++;
        add.ensure_var(pin_var);
        add.add_unit(Lit(pin_var, !f.stuck_value));
        ins.push_back(pin_var);
      } else {
        ins.push_back(in_cone[fi] ? faulty[fi] : static_cast<Var>(fi));
      }
    }
    encode_gate_clauses(n.type, faulty[x], ins, add);
  }

  // detect = OR of XORs of affected output pairs.
  std::vector<Var> diffs;
  for (NodeId o : c.outputs()) {
    if (!in_cone[o]) continue;
    Var d = next++;
    add.ensure_var(d);
    encode_gate_clauses(GateType::kXor, d, {static_cast<Var>(o), faulty[o]},
                        add);
    diffs.push_back(d);
  }
  Var detect = next++;
  add.ensure_var(detect);
  encode_gate_clauses(GateType::kOr, detect, diffs, add);

  q.assumptions.push_back(pos(detect));
  q.next_var = next;
  return q;
}

}  // namespace sateda::atpg
