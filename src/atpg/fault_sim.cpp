#include "atpg/fault_sim.hpp"

#include <algorithm>

#include "circuit/simulator.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

FaultSimulator::FaultSimulator(const Circuit& c) : circuit_(c) {
  const std::size_t n = c.num_nodes();
  // cones_[s] = nodes reachable from s (including s), ascending.
  // Built backwards: iterate nodes in descending order and union the
  // cones of fanouts.  To bound memory we simply BFS per node; for the
  // circuit sizes in this toolkit that is fine and keeps it simple.
  cones_.resize(n);
  std::vector<char> seen(n, 0);
  for (NodeId s = 0; s < static_cast<NodeId>(n); ++s) {
    std::vector<NodeId> stack{s};
    std::vector<NodeId> cone;
    std::fill(seen.begin(), seen.end(), 0);
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      if (seen[x]) continue;
      seen[x] = 1;
      cone.push_back(x);
      for (NodeId fo : c.fanouts(x)) stack.push_back(fo);
    }
    std::sort(cone.begin(), cone.end());
    cones_[s] = std::move(cone);
  }
  is_output_.assign(n, 0);
  for (NodeId o : c.outputs()) is_output_[o] = 1;
  faulty_scratch_.resize(n);
  in_cone_scratch_.assign(n, 0);
}

std::vector<std::uint64_t> FaultSimulator::good_values(
    const std::vector<std::uint64_t>& packed_inputs) const {
  return circuit::simulate_words(circuit_, packed_inputs);
}

std::uint64_t FaultSimulator::detect_mask(
    const std::vector<std::uint64_t>& good, const Fault& f) const {
  const std::vector<NodeId>& cone = cones_[f.node];
  auto& fv = faulty_scratch_;
  auto& in_cone = in_cone_scratch_;
  for (NodeId x : cone) in_cone[x] = 1;

  const std::uint64_t stuck = f.stuck_value ? ~std::uint64_t{0} : 0;
  std::vector<std::uint64_t> ins;
  for (NodeId x : cone) {
    const circuit::Node& node = circuit_.node(x);
    if (x == f.node) {
      if (f.pin == Fault::kOutputPin) {
        fv[x] = stuck;
      } else {
        ins.clear();
        for (int i = 0; i < static_cast<int>(node.fanins.size()); ++i) {
          ins.push_back(i == f.pin ? stuck : good[node.fanins[i]]);
        }
        fv[x] = eval_gate_word(node.type, ins);
      }
      continue;
    }
    ins.clear();
    for (NodeId fi : node.fanins) {
      ins.push_back(in_cone[fi] ? fv[fi] : good[fi]);
    }
    fv[x] = eval_gate_word(node.type, ins);
  }

  std::uint64_t mask = 0;
  for (NodeId x : cone) {
    if (is_output_[x]) mask |= good[x] ^ fv[x];
    in_cone[x] = 0;  // reset scratch
  }
  return mask;
}

bool FaultSimulator::detects(const std::vector<bool>& pattern,
                             const Fault& f) const {
  std::vector<std::uint64_t> packed(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    packed[i] = pattern[i] ? 1 : 0;
  }
  return (detect_mask(good_values(packed), f) & 1) != 0;
}

}  // namespace sateda::atpg
