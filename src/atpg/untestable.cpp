#include "atpg/untestable.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "atpg/detection.hpp"
#include "circuit/encoder.hpp"

namespace sateda::atpg {

namespace {

/// Disjoint-set forest over core indices.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

/// Encodes the detection circuit of \p dc into \p engine with the
/// good-circuit gates guarded: each clause of a gate whose node id is
/// below \p good_nodes gains ¬g_x for a fresh selector g_x.  Faulty
/// cone and compare logic (ids ≥ good_nodes) stay unguarded — they
/// define what "detect" means and are not part of the explanation.
/// Returns the selector literal per guarded gate.
std::unordered_map<Lit, circuit::NodeId> encode_guarded(
    sat::SatEngine& engine, const DetectionCircuit& dc,
    std::size_t good_nodes, std::vector<Lit>& selectors) {
  const circuit::Circuit& cc = dc.circuit;
  std::unordered_map<Lit, circuit::NodeId> gate_of;
  // Node ids double as CNF variables; selectors live above them.
  Var next_sel = static_cast<Var>(cc.num_nodes());
  engine.ensure_var(next_sel > 0 ? next_sel - 1 : 0);
  for (circuit::NodeId id = 0;
       id < static_cast<circuit::NodeId>(cc.num_nodes()); ++id) {
    CnfFormula scratch(static_cast<int>(cc.num_nodes()));
    circuit::encode_gate(cc, id, scratch);
    if (scratch.clauses().empty()) continue;  // primary input
    const bool guard = static_cast<std::size_t>(id) < good_nodes;
    Lit sel = kUndefLit;
    if (guard) {
      const Var g = next_sel++;
      engine.ensure_var(g);
      sel = pos(g);
      selectors.push_back(sel);
      gate_of.emplace(sel, id);
    }
    for (const Clause& cl : scratch.clauses()) {
      std::vector<Lit> guarded(cl.begin(), cl.end());
      if (guard) guarded.push_back(~sel);
      (void)engine.add_clause(std::move(guarded));
    }
  }
  return gate_of;
}

}  // namespace

UntestableGroups group_untestable_faults(const circuit::Circuit& c,
                                         const std::vector<Fault>& faults,
                                         const UntestableGroupOptions& opts) {
  UntestableGroups out;
  for (const Fault& f : faults) {
    const DetectionCircuit dc = build_detection_circuit(c, f);
    if (!dc.structurally_detectable) {
      out.cores.push_back({f, {}, true});
      continue;
    }
    sat::SolverOptions so = opts.solver;
    so.conflict_budget = opts.conflict_budget;
    std::unique_ptr<sat::SatEngine> engine = sat::make_engine(opts.engine, so);
    std::vector<Lit> selectors;
    const std::unordered_map<Lit, circuit::NodeId> gate_of =
        encode_guarded(*engine, dc, c.num_nodes(), selectors);

    std::vector<Lit> assumptions = selectors;
    assumptions.push_back(pos(dc.detect));
    if (engine->solve(assumptions) != sat::SolveResult::kUnsat) {
      continue;  // testable, or budget exhausted — no explanation
    }
    const sat::core::CoreResult mus = sat::core::minimize_core(
        *engine, engine->conflict_core(), opts.core);

    UntestableCore uc;
    uc.fault = f;
    uc.minimal = mus.unsat && mus.minimal;
    for (Lit l : mus.core) {
      auto it = gate_of.find(l);
      if (it != gate_of.end()) uc.gates.push_back(it->second);
    }
    std::sort(uc.gates.begin(), uc.gates.end());
    out.cores.push_back(std::move(uc));
  }

  // Union faults whose cores share a gate; all structurally untestable
  // faults (empty cores) coalesce into one group.
  UnionFind uf(out.cores.size());
  std::unordered_map<circuit::NodeId, std::size_t> first_with_gate;
  std::size_t first_empty = out.cores.size();
  for (std::size_t i = 0; i < out.cores.size(); ++i) {
    if (out.cores[i].gates.empty()) {
      if (first_empty == out.cores.size()) {
        first_empty = i;
      } else {
        uf.unite(i, first_empty);
      }
      continue;
    }
    for (circuit::NodeId g : out.cores[i].gates) {
      auto [it, fresh] = first_with_gate.emplace(g, i);
      if (!fresh) uf.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::size_t> group_index;
  for (std::size_t i = 0; i < out.cores.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto [it, fresh] = group_index.emplace(root, out.groups.size());
    if (fresh) out.groups.emplace_back();
    out.groups[it->second].push_back(i);
  }
  return out;
}

}  // namespace sateda::atpg
