#include "atpg/detection.hpp"

#include <algorithm>

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

DetectionCircuit build_detection_circuit(const Circuit& c, const Fault& f) {
  DetectionCircuit result;
  Circuit& d = result.circuit;
  d.set_name(c.name() + "_detect_" + to_string(f));

  // 1. Clone the good circuit; node ids are preserved because nodes
  //    are recreated in the same (topological) order.
  for (NodeId id = 0; id < static_cast<NodeId>(c.num_nodes()); ++id) {
    const circuit::Node& n = c.node(id);
    NodeId nid;
    switch (n.type) {
      case GateType::kInput:
        nid = d.add_input();
        break;
      case GateType::kConst0:
      case GateType::kConst1:
        nid = d.add_const(n.type == GateType::kConst1);
        break;
      default:
        nid = d.add_gate(n.type, n.fanins);
        break;
    }
    (void)nid;
  }

  // 2. Output cone of the fault site.
  std::vector<char> in_cone(c.num_nodes(), 0);
  std::vector<NodeId> stack{f.node};
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    if (in_cone[x]) continue;
    in_cone[x] = 1;
    cone.push_back(x);
    for (NodeId fo : c.fanouts(x)) stack.push_back(fo);
  }
  std::sort(cone.begin(), cone.end());

  // 3. Faulty copies.
  NodeId stuck_const = d.add_const(f.stuck_value);
  std::vector<NodeId> faulty(c.num_nodes(), circuit::kNullNode);
  for (NodeId x : cone) {
    const circuit::Node& n = c.node(x);
    if (x == f.node) {
      if (f.pin == Fault::kOutputPin) {
        faulty[x] = stuck_const;
      } else {
        std::vector<NodeId> fis = n.fanins;
        fis[f.pin] = stuck_const;
        faulty[x] = d.add_gate(n.type, std::move(fis));
      }
      continue;
    }
    std::vector<NodeId> fis;
    fis.reserve(n.fanins.size());
    for (NodeId fi : n.fanins) {
      fis.push_back(in_cone[fi] ? faulty[fi] : fi);
    }
    faulty[x] = d.add_gate(n.type, std::move(fis));
  }

  // 4. Compare affected primary outputs.
  std::vector<NodeId> diffs;
  for (NodeId o : c.outputs()) {
    if (in_cone[o]) diffs.push_back(d.add_xor(o, faulty[o]));
  }
  if (diffs.empty()) {
    result.structurally_detectable = false;
    result.detect = d.add_const(false);
    d.mark_output(result.detect, "detect");
    return result;
  }
  while (diffs.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < diffs.size(); i += 2) {
      next.push_back(d.add_or(diffs[i], diffs[i + 1]));
    }
    if (diffs.size() % 2) next.push_back(diffs.back());
    diffs = std::move(next);
  }
  result.detect = diffs[0];
  d.mark_output(result.detect, "detect");
  return result;
}

}  // namespace sateda::atpg
