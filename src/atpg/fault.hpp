/// \file fault.hpp
/// \brief Single stuck-at fault model and fault-list utilities
///        (paper §3: ATPG [20, 25, 38], redundancy identification [17]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace sateda::atpg {

/// A single stuck-at fault.  pin == kOutputPin denotes a fault on the
/// node's output (stem); otherwise the fault sits on input pin `pin`
/// of gate `node` (a fanout-branch fault).
struct Fault {
  static constexpr int kOutputPin = -1;

  circuit::NodeId node = circuit::kNullNode;
  int pin = kOutputPin;
  bool stuck_value = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

inline std::string to_string(const Fault& f) {
  std::string s = "n" + std::to_string(f.node);
  if (f.pin != Fault::kOutputPin) s += ".in" + std::to_string(f.pin);
  s += f.stuck_value ? "/sa1" : "/sa0";
  return s;
}

/// Status assigned to each fault by the ATPG flow.
enum class FaultStatus {
  kUntested,
  kDetected,      ///< a test pattern exists and was recorded
  kRedundant,     ///< proven untestable (UNSAT) — the [17] use case
  kAborted,       ///< budget exhausted
};

/// Enumerates the full (uncollapsed) single stuck-at fault list:
/// both polarities on every node output and every gate input pin.
std::vector<Fault> enumerate_faults(const circuit::Circuit& c);

/// Structural equivalence collapsing: faults provably equivalent to a
/// representative are removed.  Rules: a controlling-value input fault
/// of an AND/OR-like gate is equivalent to the corresponding output
/// fault; NOT/BUF input faults are equivalent to output faults.
/// Collapsing is safe for coverage accounting because equivalent
/// faults are detected by exactly the same tests.
std::vector<Fault> collapse_faults(const circuit::Circuit& c,
                                   const std::vector<Fault>& faults);

}  // namespace sateda::atpg
