#include "atpg/transition.hpp"

#include <random>

#include "csat/circuit_sat.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

std::vector<TransitionFault> enumerate_transition_faults(const Circuit& c) {
  std::vector<TransitionFault> faults;
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    GateType t = c.node(n).type;
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    faults.push_back({n, true});
    faults.push_back({n, false});
  }
  return faults;
}

std::optional<TransitionTest> generate_transition_test(
    const Circuit& c, const TransitionFault& f, const AtpgOptions& opts) {
  // v2: a test for the corresponding stuck-at fault (stuck at the
  // *initial* value: slow-to-rise behaves as stuck-at-0 under v2).
  const bool stuck_value = f.slow_to_rise ? false : true;
  std::vector<lbool> launch_partial;
  FaultStatus st = generate_test(
      c, Fault{f.node, Fault::kOutputPin, stuck_value}, launch_partial, opts);
  if (st != FaultStatus::kDetected) return std::nullopt;

  // v1: any vector setting the victim node to the initial value.
  csat::CircuitSatOptions copts;
  copts.solver = opts.solver;
  copts.solver.conflict_budget = opts.conflict_budget;
  csat::CircuitSatSolver init_solver(c, copts);
  csat::CircuitSatResult init = init_solver.solve(f.node, stuck_value);
  if (init.result != sat::SolveResult::kSat) return std::nullopt;

  std::mt19937_64 rng(opts.seed ^ (static_cast<std::uint64_t>(f.node) << 1));
  std::bernoulli_distribution coin(0.5);
  TransitionTest test;
  test.init.resize(c.inputs().size());
  test.launch.resize(c.inputs().size());
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    lbool v1 = init.input_pattern[i];
    test.init[i] = v1.is_undef() ? coin(rng) : v1.is_true();
    lbool v2 = launch_partial[i];
    test.launch[i] = v2.is_undef() ? coin(rng) : v2.is_true();
  }
  return test;
}

TransitionAtpgResult run_transition_atpg(const Circuit& c,
                                         const AtpgOptions& opts) {
  TransitionAtpgResult result;
  result.faults = enumerate_transition_faults(c);
  result.tests.reserve(result.faults.size());
  for (const TransitionFault& f : result.faults) {
    auto test = generate_transition_test(c, f, opts);
    if (test.has_value()) {
      ++result.testable;
    } else {
      ++result.untestable;
    }
    result.tests.push_back(std::move(test));
  }
  return result;
}

}  // namespace sateda::atpg
