/// \file fault_cnf.hpp
/// \brief Standalone CNF encoding of one stuck-at fault query over a
///        good-circuit base encoding (paper §6, refs [18, 25]).
///
/// The incremental-ATPG formulation keeps one persistent solver
/// holding encode_circuit(c) — variable i is node i's good value — and
/// asks, fault by fault: "is there an input pattern under which some
/// output of the faulty copy differs?"  This header carves that
/// per-fault delta out as pure data so every consumer of the pattern
/// shares one encoder:
///
///  * atpg::IncrementalAtpg runs it in-process, one clause epoch per
///    fault (sat::SolverSession);
///  * the sateda-serve ATPG load generator ships the same clauses as
///    protocol requests, which is what makes the daemon bench answers
///    directly comparable to the in-process flow.
///
/// Variables at and above \p first_free_var are allocated
/// deterministically in encoding order, so a client that knows the
/// next free engine variable can predict every id in the query.
#pragma once

#include "atpg/fault.hpp"
#include "cnf/formula.hpp"

namespace sateda::atpg {

/// One fault's query, relative to the good-circuit base encoding.
struct FaultQueryCnf {
  /// Fault-cone copy + XOR detectors + final OR.  Empty when the fault
  /// is trivially redundant.
  CnfFormula clauses;
  /// Assumption literals activating detection (the OR-of-differences
  /// output forced true).  Empty when trivially_redundant.
  std::vector<Lit> assumptions;
  /// First variable id after the query's allocations (== the passed
  /// first_free_var when nothing was allocated).
  Var next_var = 0;
  /// The fault cone reaches no primary output: redundant without any
  /// SAT call.
  bool trivially_redundant = false;
};

/// Encodes the faulty-cone copy of \p f over fresh variables starting
/// at \p first_free_var, plus XOR difference detectors on the affected
/// outputs.  The base encoding (encode_circuit) must already be loaded
/// wherever the clauses are sent; good node x is variable x there.
FaultQueryCnf encode_fault_query(const circuit::Circuit& c, const Fault& f,
                                 Var first_free_var);

}  // namespace sateda::atpg
