/// \file compact.hpp
/// \brief Test-set compaction: pick a minimum subset of an ATPG test
///        set that still detects every covered fault.
///
/// The paper lists minimum-size test sets among the covering-style EDA
/// optimizations (§3, ref. [23]).  The formulation is exactly unate
/// covering — columns are test patterns, a row per fault lists the
/// tests detecting it (computed by word-parallel fault simulation) —
/// so both the classical branch-and-bound and the core-guided MaxSAT
/// engine (opt/maxsat) apply; the latter returns proven optima on
/// binate-free instances without a search on the bound.
#pragma once

#include <cstddef>
#include <vector>

#include "atpg/fault.hpp"
#include "opt/covering.hpp"

namespace sateda::atpg {

struct CompactionOptions {
  /// Solve the covering with core-guided MaxSAT (default) instead of
  /// branch-and-bound; both return proven-optimal subsets.
  bool use_maxsat = true;
  sat::SolverOptions solver;
  sat::EngineSpec engine;
};

struct CompactionResult {
  /// Indices (into the input test vector) of the kept tests.
  std::vector<std::size_t> kept;
  /// Faults detected by at least one input test (rows of the covering
  /// problem); faults no test detects cannot constrain the selection.
  int covered_faults = 0;
  /// True iff the covering engine proved the subset minimum.
  bool optimal = false;
  opt::CoveringStats stats;
};

/// Minimizes \p tests against \p faults on circuit \p c: the kept
/// subset detects every fault some input test detects.  Detection is
/// established by fault simulation (64 patterns per pass).
CompactionResult minimize_test_set(const circuit::Circuit& c,
                                   const std::vector<std::vector<bool>>& tests,
                                   const std::vector<Fault>& faults,
                                   const CompactionOptions& opts = {});

}  // namespace sateda::atpg
