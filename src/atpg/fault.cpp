#include "atpg/fault.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

std::vector<Fault> enumerate_faults(const Circuit& c) {
  std::vector<Fault> faults;
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    if (node.type == GateType::kConst0 || node.type == GateType::kConst1) {
      continue;  // constants are not testable lines
    }
    faults.push_back({n, Fault::kOutputPin, false});
    faults.push_back({n, Fault::kOutputPin, true});
    for (int pin = 0; pin < static_cast<int>(node.fanins.size()); ++pin) {
      faults.push_back({n, pin, false});
      faults.push_back({n, pin, true});
    }
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Circuit& c,
                                   const std::vector<Fault>& faults) {
  std::vector<Fault> kept;
  kept.reserve(faults.size());
  for (const Fault& f : faults) {
    if (f.pin == Fault::kOutputPin) {
      kept.push_back(f);
      continue;
    }
    const circuit::Node& node = c.node(f.node);
    // A fanout-branch fault on the only branch of a stem is the same
    // line as the stem: collapse onto the stem's output fault.
    const NodeId stem = node.fanins[f.pin];
    if (c.fanouts(stem).size() == 1) {
      // Equivalent to an output fault on the stem — skip (stem fault
      // is already enumerated).  For NOT/NAND/NOR the gate-local rules
      // below would also fire, but the stem rule subsumes them.
      continue;
    }
    bool drop = false;
    switch (node.type) {
      case GateType::kBuf:
        drop = true;  // equivalent to output fault, same polarity
        break;
      case GateType::kNot:
        drop = true;  // equivalent to output fault, inverted polarity
        break;
      case GateType::kAnd:
        drop = !f.stuck_value;  // in/sa0 ≡ out/sa0
        break;
      case GateType::kNand:
        drop = !f.stuck_value;  // in/sa0 ≡ out/sa1
        break;
      case GateType::kOr:
        drop = f.stuck_value;  // in/sa1 ≡ out/sa1
        break;
      case GateType::kNor:
        drop = f.stuck_value;  // in/sa1 ≡ out/sa0
        break;
      default:
        break;  // XOR/XNOR: no structural equivalences
    }
    if (!drop) kept.push_back(f);
  }
  return kept;
}

}  // namespace sateda::atpg
