/// \file detection.hpp
/// \brief Larrabee-style fault-detection circuit construction
///        (paper §3, ref. [20]): the good circuit, a faulty copy of
///        the fault's output cone, and a detect signal that is 1 iff
///        some primary output differs.
#pragma once

#include "atpg/fault.hpp"
#include "circuit/netlist.hpp"

namespace sateda::atpg {

struct DetectionCircuit {
  circuit::Circuit circuit;      ///< good + faulty cone + compare logic
  circuit::NodeId detect = circuit::kNullNode;  ///< objective node
  /// Good-circuit nodes keep their original ids inside `circuit`, so
  /// the original primary input ids index the shared inputs directly.
  bool structurally_detectable = true;  ///< fault cone reaches some PO
};

/// Builds the detection circuit for fault \p f on circuit \p c.
/// SAT(detect = 1) iff a test pattern for f exists; UNSAT proves the
/// fault redundant (ref. [17]).
DetectionCircuit build_detection_circuit(const circuit::Circuit& c,
                                         const Fault& f);

}  // namespace sateda::atpg
