#include "atpg/compact.hpp"

#include <cstdint>

#include "atpg/fault_sim.hpp"

namespace sateda::atpg {

CompactionResult minimize_test_set(const circuit::Circuit& c,
                                   const std::vector<std::vector<bool>>& tests,
                                   const std::vector<Fault>& faults,
                                   const CompactionOptions& opts) {
  CompactionResult result;
  if (tests.empty()) {
    result.optimal = true;
    return result;
  }
  const std::size_t num_inputs = c.inputs().size();
  const std::size_t num_tests = tests.size();

  // Word-parallel simulation: batches of 64 tests, one detect mask per
  // (batch, fault).
  FaultSimulator sim(c);
  const std::size_t num_batches = (num_tests + 63) / 64;
  std::vector<std::vector<std::uint64_t>> good_per_batch;
  good_per_batch.reserve(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    std::vector<std::uint64_t> packed(num_inputs, 0);
    for (std::size_t t = b * 64; t < std::min(num_tests, (b + 1) * 64); ++t) {
      const std::vector<bool>& pattern = tests[t];
      for (std::size_t i = 0; i < num_inputs && i < pattern.size(); ++i) {
        if (pattern[i]) packed[i] |= std::uint64_t{1} << (t - b * 64);
      }
    }
    good_per_batch.push_back(sim.good_values(packed));
  }

  opt::CoveringProblem cover;
  cover.num_columns = static_cast<int>(num_tests);
  for (const Fault& f : faults) {
    std::vector<int> detecting;
    for (std::size_t b = 0; b < num_batches; ++b) {
      std::uint64_t mask = sim.detect_mask(good_per_batch[b], f);
      if (b + 1 == num_batches && num_tests % 64 != 0) {
        mask &= (std::uint64_t{1} << (num_tests % 64)) - 1;
      }
      while (mask != 0) {
        const int bit = __builtin_ctzll(mask);
        mask &= mask - 1;
        detecting.push_back(static_cast<int>(b * 64) + bit);
      }
    }
    if (detecting.empty()) continue;  // no input test covers this fault
    ++result.covered_faults;
    cover.add_cover_row(detecting);
  }

  opt::CoveringOptions copts;
  copts.solver = opts.solver;
  copts.engine = opts.engine;
  const opt::CoveringResult r = opts.use_maxsat
                                    ? opt::solve_covering_maxsat(cover, copts)
                                    : opt::solve_covering_bnb(cover, copts);
  result.stats = r.stats;
  result.optimal = r.feasible && r.optimal;
  if (r.feasible) {
    for (std::size_t t = 0; t < num_tests; ++t) {
      if (r.chosen[t]) result.kept.push_back(t);
    }
  }
  return result;
}

}  // namespace sateda::atpg
