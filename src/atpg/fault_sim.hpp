/// \file fault_sim.hpp
/// \brief Word-parallel single stuck-at fault simulation: 64 patterns
///        per pass, with event propagation confined to the fault's
///        output cone.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "circuit/netlist.hpp"

namespace sateda::atpg {

/// Fault simulator bound to one circuit.  Precomputes the output cone
/// of every node so per-fault simulation touches only affected gates.
class FaultSimulator {
 public:
  explicit FaultSimulator(const circuit::Circuit& c);

  /// Packed good-machine simulation (64 patterns; bit b of inputs[i]
  /// is the value of input i in pattern b).
  std::vector<std::uint64_t> good_values(
      const std::vector<std::uint64_t>& packed_inputs) const;

  /// Bitmask of the patterns (bits of the packed batch) that detect
  /// \p f, i.e. produce a good/faulty difference at some primary
  /// output.  \p good must come from good_values() for the same batch.
  std::uint64_t detect_mask(const std::vector<std::uint64_t>& good,
                            const Fault& f) const;

  /// Convenience for a single unpacked pattern: true iff it detects f.
  bool detects(const std::vector<bool>& pattern, const Fault& f) const;

  /// The nodes in f's output cone (ascending ids).
  const std::vector<circuit::NodeId>& cone(circuit::NodeId site) const {
    return cones_[site];
  }

 private:
  const circuit::Circuit& circuit_;
  std::vector<std::vector<circuit::NodeId>> cones_;  ///< per node, sorted
  std::vector<char> is_output_;
  mutable std::vector<std::uint64_t> faulty_scratch_;
  mutable std::vector<char> in_cone_scratch_;
};

}  // namespace sateda::atpg
