/// \file untestable.hpp
/// \brief Explains *why* faults are untestable: a minimal set of gates
///        whose logic blocks detection, extracted as an UNSAT core,
///        and grouping of faults that share a structural cause.
///
/// Redundancy identification (paper §3, ref. [17]) proves a fault
/// untestable by an UNSAT answer, but the bare verdict gives the
/// designer nothing to act on.  Here every gate of the good circuit
/// gets a selector literal guarding its CNF clauses; solving the
/// detection objective under all selectors yields an UNSAT core over
/// *gates*, minimized to a MUS with sat/core.  Faults whose gate cores
/// overlap are untestable for a shared reason — one redundant region
/// of logic — so fixing (or accepting) one explanation disposes of the
/// whole group.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "sat/core/mus.hpp"
#include "sat/engine.hpp"

namespace sateda::atpg {

struct UntestableGroupOptions {
  sat::SolverOptions solver;
  sat::EngineSpec engine;  ///< SAT backend (empty: CDCL)
  /// Core-minimization effort (bounded by default: refinement plus a
  /// deletion pass capped at 128 solve calls per fault).
  sat::core::CoreMinimizeOptions core{true, 4, true, 128};
  std::int64_t conflict_budget = 200000;  ///< per solve call
};

/// The explanation extracted for one untestable fault.
struct UntestableCore {
  Fault fault;
  /// Good-circuit gates whose clauses the refutation needs, ascending.
  /// Empty when the fault is structurally untestable (its cone reaches
  /// no primary output) — no gate logic is involved at all.
  std::vector<circuit::NodeId> gates;
  bool minimal = false;  ///< the gate set is a MUS (deletion pass done)
};

struct UntestableGroups {
  /// One entry per fault proven untestable here (testable or aborted
  /// faults from the input list are dropped).
  std::vector<UntestableCore> cores;
  /// Partition of `cores` (by index): faults in one group have
  /// overlapping gate cores, i.e. share blocking logic.  Structurally
  /// untestable faults (empty cores) form one group of their own.
  std::vector<std::vector<std::size_t>> groups;
};

/// Extracts a minimized gate core per untestable fault of \p faults on
/// \p c and groups faults with overlapping cores.  Faults that turn
/// out testable (or exhaust the budget) are skipped silently — pass a
/// pre-screened list (e.g. run_atpg's kRedundant faults) for precise
/// accounting.
UntestableGroups group_untestable_faults(const circuit::Circuit& c,
                                         const std::vector<Fault>& faults,
                                         const UntestableGroupOptions& opts = {});

}  // namespace sateda::atpg
