#include "atpg/incremental.hpp"

#include <cassert>

#include "atpg/fault_cnf.hpp"
#include "circuit/encoder.hpp"

namespace sateda::atpg {

using circuit::Circuit;

sat::SessionOptions IncrementalAtpg::session_options(
    sat::SolverOptions solver_opts, std::int64_t conflict_budget,
    const sat::EngineSpec& engine) {
  sat::SessionOptions so;
  so.engine = engine;
  so.solver = std::move(solver_opts);
  so.default_budget.conflicts = conflict_budget;
  return so;
}

IncrementalAtpg::IncrementalAtpg(const Circuit& c,
                                 sat::SolverOptions solver_opts,
                                 std::int64_t conflict_budget,
                                 const sat::EngineSpec& engine)
    : circuit_(c),
      session_(session_options(std::move(solver_opts), conflict_budget,
                               engine)) {
  (void)session_.add_formula(circuit::encode_circuit(c));
}

FaultStatus IncrementalAtpg::test_fault(const Fault& f,
                                        std::vector<lbool>& pattern) {
  // The epoch selector takes next_free_var(); the fault query's fresh
  // variables follow it — the same layout a serve protocol client
  // reproduces from the documented push() allocation guarantee.
  const Var first_free = session_.next_free_var();
  FaultQueryCnf q = encode_fault_query(circuit_, f, first_free + 1);
  if (q.trivially_redundant) return FaultStatus::kRedundant;

  session_.push();
  (void)session_.add_formula(q.clauses);
  sat::QueryResult r = session_.query(q.assumptions);
  // Retire this fault's clauses, reclaim their storage, and drop the
  // fault-local variables from the branching order — without this, the
  // database and heuristic bloat of retired fault groups eats the
  // learnt-clause-reuse benefit.
  const int depth = session_.pop();
  assert(depth >= 0 && "pop is matched by the push above");
  (void)depth;

  switch (r.result) {
    case sat::SolveResult::kUnsat:
      return FaultStatus::kRedundant;
    case sat::SolveResult::kUnknown:
      return FaultStatus::kAborted;
    case sat::SolveResult::kSat:
      break;
  }
  pattern.assign(circuit_.inputs().size(), l_undef);
  for (std::size_t i = 0; i < circuit_.inputs().size(); ++i) {
    pattern[i] = r.model[circuit_.inputs()[i]];
  }
  return FaultStatus::kDetected;
}

}  // namespace sateda::atpg
