#include "atpg/incremental.hpp"

#include <algorithm>

#include "circuit/encoder.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

IncrementalAtpg::IncrementalAtpg(const Circuit& c,
                                 sat::SolverOptions solver_opts,
                                 std::int64_t conflict_budget,
                                 const sat::EngineFactory& factory)
    : circuit_(c), conflict_budget_(conflict_budget) {
  solver_opts.conflict_budget = conflict_budget_;
  solver_ = sat::make_engine(factory, solver_opts);
  (void)solver_->add_formula(circuit::encode_circuit(c));
}

FaultStatus IncrementalAtpg::test_fault(const Fault& f,
                                        std::vector<lbool>& pattern) {
  // Output cone of the fault site.
  std::vector<char> in_cone(circuit_.num_nodes(), 0);
  std::vector<NodeId> stack{f.node};
  std::vector<NodeId> cone;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    if (in_cone[x]) continue;
    in_cone[x] = 1;
    cone.push_back(x);
    for (NodeId fo : circuit_.fanouts(x)) stack.push_back(fo);
  }
  std::sort(cone.begin(), cone.end());

  bool reaches_output = false;
  for (NodeId o : circuit_.outputs()) {
    if (in_cone[o]) reaches_output = true;
  }
  if (!reaches_output) return FaultStatus::kRedundant;

  // Fresh variables for the faulty copies, plus the activation guard.
  const Var first_local = solver_->num_vars();
  const Lit guard = pos(solver_->new_var());
  std::vector<Var> faulty(circuit_.num_nodes(), kNullVar);
  CnfFormula add(solver_->num_vars());
  for (NodeId x : cone) faulty[x] = solver_->new_var();
  for (NodeId x : cone) {
    const circuit::Node& n = circuit_.node(x);
    if (x == f.node && f.pin == Fault::kOutputPin) {
      add.add_unit(Lit(faulty[x], !f.stuck_value));
      continue;
    }
    std::vector<Var> ins;
    ins.reserve(n.fanins.size());
    for (int i = 0; i < static_cast<int>(n.fanins.size()); ++i) {
      NodeId fi = n.fanins[i];
      if (x == f.node && i == f.pin) {
        // Faulted pin: a fresh variable pinned to the stuck value.
        Var pin_var = solver_->new_var();
        add.add_unit(Lit(pin_var, !f.stuck_value));
        ins.push_back(pin_var);
      } else {
        ins.push_back(in_cone[fi] ? faulty[fi] : static_cast<Var>(fi));
      }
    }
    encode_gate_clauses(n.type, faulty[x], ins, add);
  }
  // detect = OR of XORs of affected output pairs.
  std::vector<Var> diffs;
  for (NodeId o : circuit_.outputs()) {
    if (!in_cone[o]) continue;
    Var d = solver_->new_var();
    encode_gate_clauses(GateType::kXor, d,
                        {static_cast<Var>(o), faulty[o]}, add);
    diffs.push_back(d);
  }
  Var detect = solver_->new_var();
  encode_gate_clauses(GateType::kOr, detect, diffs, add);

  // Install the clauses guarded by ¬guard ∨ clause so they are only
  // active while `guard` is assumed.
  for (const Clause& c : add) {
    std::vector<Lit> lits(c.begin(), c.end());
    lits.push_back(~guard);
    (void)solver_->add_clause(std::move(lits));
  }

  sat::SolveResult r = solver_->solve({guard, pos(detect)});
  // Permanently retire this fault's clauses and reclaim the watch
  // lists they occupied — without this, the database bloat of retired
  // fault groups eats the learnt-clause-reuse benefit.
  (void)solver_->add_clause({~guard});
  solver_->simplify_db();
  // Retired fault-local variables occur only in removed clauses:
  // exclude them from branching so later solves do not waste
  // decisions on dead logic.
  for (Var v = first_local; v < solver_->num_vars(); ++v) {
    solver_->set_decision_var(v, false);
  }
  switch (r) {
    case sat::SolveResult::kUnsat:
      return FaultStatus::kRedundant;
    case sat::SolveResult::kUnknown:
      return FaultStatus::kAborted;
    case sat::SolveResult::kSat:
      break;
  }
  pattern.assign(circuit_.inputs().size(), l_undef);
  for (std::size_t i = 0; i < circuit_.inputs().size(); ++i) {
    pattern[i] = solver_->model()[circuit_.inputs()[i]];
  }
  return FaultStatus::kDetected;
}

}  // namespace sateda::atpg
