#include "atpg/engine.hpp"

#include <memory>
#include <random>
#include <utility>

#include "circuit/encoder.hpp"
#include "circuit/rewrite.hpp"
#include "csat/hints.hpp"
#include "sat/engine.hpp"

namespace sateda::atpg {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

namespace {

/// Structure-aware TPG query: rewrite the detection circuit, encode
/// only the detect cone (optionally polarity-aware), branch with
/// StructureHints.  Mirrors the CEC pipeline in equiv/cec.cpp.
FaultStatus generate_test_pipeline(const Circuit& c, DetectionCircuit det,
                                   std::vector<lbool>& pattern,
                                   const AtpgOptions& opts,
                                   sat::SolverStats* accum) {
  Circuit work = std::move(det.circuit);
  NodeId objective = det.detect;
  if (opts.rewrite) {
    circuit::RewriteResult rr = circuit::rewrite(work, {}, {det.detect});
    objective = rr.node_map[det.detect];
    work = std::move(rr.circuit);
    const GateType ot = work.node(objective).type;
    if (ot == GateType::kConst0) return FaultStatus::kRedundant;
    if (ot == GateType::kConst1) {
      // Every pattern detects; leave all inputs don't-care.
      pattern.assign(c.inputs().size(), l_undef);
      return FaultStatus::kDetected;
    }
  }

  const std::vector<std::pair<NodeId, bool>> objectives{{objective, true}};
  circuit::ConeEncodingOptions eopts;
  eopts.plaisted_greenbaum = opts.plaisted_greenbaum;
  circuit::ConeEncoding enc =
      circuit::encode_objectives(work, objectives, eopts);

  sat::SolverOptions sopts = opts.solver;
  sopts.conflict_budget = opts.conflict_budget;
  std::unique_ptr<sat::SatEngine> engine =
      sat::make_engine(sat::EngineSpec{}, sopts);
  if (!engine->add_formula(enc.formula)) return FaultStatus::kRedundant;
  if (opts.struct_hints) {
    csat::make_structure_hints(work, enc.node_to_var, objectives)
        .apply(*engine);
  }
  const sat::SolveResult r = engine->solve();
  if (accum) {
    accum->decisions += engine->stats().decisions;
    accum->conflicts += engine->stats().conflicts;
  }
  switch (r) {
    case sat::SolveResult::kUnsat:
      return FaultStatus::kRedundant;
    case sat::SolveResult::kUnknown:
      return FaultStatus::kAborted;
    case sat::SolveResult::kSat:
      break;
  }
  // Rewriting preserves primary inputs in order; out-of-cone inputs
  // have no variable and stay don't-care.
  const std::vector<lbool>& model = engine->model();
  pattern.assign(c.inputs().size(), l_undef);
  for (std::size_t i = 0; i < work.inputs().size(); ++i) {
    const Var v = enc.node_to_var[work.inputs()[i]];
    if (v != kNullVar && v < static_cast<Var>(model.size())) {
      pattern[i] = model[v];
    }
  }
  return FaultStatus::kDetected;
}

}  // namespace

std::string AtpgStats::summary() const {
  return "faults=" + std::to_string(total_faults) +
         " detected=" + std::to_string(detected) + " (random=" +
         std::to_string(random_detected) +
         ") redundant=" + std::to_string(redundant) +
         " aborted=" + std::to_string(aborted) +
         " coverage=" + std::to_string(fault_coverage());
}

FaultStatus generate_test(const Circuit& c, const Fault& f,
                          std::vector<lbool>& pattern,
                          const AtpgOptions& opts, sat::SolverStats* accum) {
  DetectionCircuit det = build_detection_circuit(c, f);
  if (!det.structurally_detectable) return FaultStatus::kRedundant;
  if (opts.rewrite || opts.plaisted_greenbaum || opts.struct_hints) {
    return generate_test_pipeline(c, std::move(det), pattern, opts, accum);
  }
  csat::CircuitSatOptions copts;
  copts.solver = opts.solver;
  copts.solver.conflict_budget = opts.conflict_budget;
  copts.layer.frontier_termination = opts.use_structural_layer;
  copts.layer.backtrace_decisions = opts.use_structural_layer;
  csat::CircuitSatSolver solver(det.circuit, copts);
  csat::CircuitSatResult r = solver.solve(det.detect, true);
  if (accum) {
    accum->decisions += solver.solver().stats().decisions;
    accum->conflicts += solver.solver().stats().conflicts;
  }
  switch (r.result) {
    case sat::SolveResult::kUnsat:
      return FaultStatus::kRedundant;
    case sat::SolveResult::kUnknown:
      return FaultStatus::kAborted;
    case sat::SolveResult::kSat:
      break;
  }
  // The detection circuit shares the original circuit's input ids.
  pattern.assign(c.inputs().size(), l_undef);
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    pattern[i] = r.node_values[c.inputs()[i]];
  }
  return FaultStatus::kDetected;
}

namespace {

std::vector<bool> fill_pattern(const std::vector<lbool>& partial,
                               std::mt19937_64& rng) {
  std::bernoulli_distribution coin(0.5);
  std::vector<bool> full(partial.size());
  for (std::size_t i = 0; i < partial.size(); ++i) {
    full[i] = partial[i].is_undef() ? coin(rng) : partial[i].is_true();
  }
  return full;
}

/// Runs a packed batch of random patterns through the fault simulator,
/// marking newly detected faults; keeps patterns that detect something.
void random_batch(const FaultSimulator& sim, const Circuit& c,
                  std::mt19937_64& rng, int batch_patterns,
                  std::vector<Fault>& faults, std::vector<FaultStatus>& status,
                  AtpgResult& result, bool count_as_random) {
  std::vector<std::uint64_t> packed(c.inputs().size());
  for (auto& w : packed) w = rng();
  std::vector<std::uint64_t> good = sim.good_values(packed);
  std::uint64_t used_bits = 0;
  const std::uint64_t live =
      batch_patterns >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << batch_patterns) - 1);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (status[fi] != FaultStatus::kUntested) continue;
    std::uint64_t mask = sim.detect_mask(good, faults[fi]) & live;
    if (!mask) continue;
    status[fi] = FaultStatus::kDetected;
    ++result.stats.detected;
    if (count_as_random) ++result.stats.random_detected;
    used_bits |= mask & (~mask + 1);  // keep the lowest detecting pattern
  }
  for (int b = 0; b < 64; ++b) {
    if (!((used_bits >> b) & 1)) continue;
    std::vector<bool> pattern(c.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = (packed[i] >> b) & 1;
    }
    result.tests.push_back(std::move(pattern));
  }
}

}  // namespace

AtpgResult run_atpg(const Circuit& c, AtpgOptions opts) {
  AtpgResult result;
  result.faults = enumerate_faults(c);
  if (opts.collapse) result.faults = collapse_faults(c, result.faults);
  result.status.assign(result.faults.size(), FaultStatus::kUntested);
  result.stats.total_faults = static_cast<int>(result.faults.size());

  FaultSimulator sim(c);
  std::mt19937_64 rng(opts.seed);

  // Phase 1: random patterns knock out the easy faults cheaply.
  if (opts.random_phase) {
    for (int done = 0; done < opts.random_patterns; done += 64) {
      random_batch(sim, c, rng, std::min(64, opts.random_patterns - done),
                   result.faults, result.status, result,
                   /*count_as_random=*/true);
    }
  }

  // Phase 2: deterministic SAT-based generation per remaining fault.
  for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
    if (result.status[fi] != FaultStatus::kUntested) continue;
    std::vector<lbool> partial;
    ++result.stats.sat_calls;
    sat::SolverStats query_stats;
    FaultStatus st =
        generate_test(c, result.faults[fi], partial, opts, &query_stats);
    result.stats.decisions += query_stats.decisions;
    result.stats.conflicts += query_stats.conflicts;
    result.status[fi] = st;
    switch (st) {
      case FaultStatus::kRedundant:
        ++result.stats.redundant;
        continue;
      case FaultStatus::kAborted:
        ++result.stats.aborted;
        continue;
      case FaultStatus::kDetected:
        break;
      case FaultStatus::kUntested:
        continue;  // unreachable
    }
    ++result.stats.detected;
    std::vector<bool> pattern = fill_pattern(partial, rng);
    result.tests.push_back(pattern);
    // Drop other faults detected by this pattern.
    if (opts.drop_by_simulation) {
      std::vector<std::uint64_t> packed(pattern.size());
      for (std::size_t i = 0; i < pattern.size(); ++i) {
        packed[i] = pattern[i] ? 1 : 0;
      }
      std::vector<std::uint64_t> good = sim.good_values(packed);
      for (std::size_t fj = fi + 1; fj < result.faults.size(); ++fj) {
        if (result.status[fj] != FaultStatus::kUntested) continue;
        if (sim.detect_mask(good, result.faults[fj]) & 1) {
          result.status[fj] = FaultStatus::kDetected;
          ++result.stats.detected;
        }
      }
    }
  }
  return result;
}

AtpgResult run_random_atpg(const Circuit& c, int num_patterns,
                           std::uint64_t seed, bool collapse) {
  AtpgResult result;
  result.faults = enumerate_faults(c);
  if (collapse) result.faults = collapse_faults(c, result.faults);
  result.status.assign(result.faults.size(), FaultStatus::kUntested);
  result.stats.total_faults = static_cast<int>(result.faults.size());
  FaultSimulator sim(c);
  std::mt19937_64 rng(seed);
  for (int done = 0; done < num_patterns; done += 64) {
    random_batch(sim, c, rng, std::min(64, num_patterns - done),
                 result.faults, result.status, result,
                 /*count_as_random=*/true);
  }
  return result;
}

}  // namespace sateda::atpg
