/// \file incremental.hpp
/// \brief Incremental SAT formulation of ATPG (paper §6, refs
///        [18, 25]): one persistent solver holds the good-circuit CNF
///        and the learnt clauses it accumulates; each fault adds only
///        its faulty-cone clauses, guarded by an activation literal,
///        and is tested under assumptions.  Contrast with the
///        from-scratch flow in engine.hpp (bench E12).
#pragma once

#include <vector>

#include "atpg/fault.hpp"
#include "sat/engine.hpp"

namespace sateda::atpg {

class IncrementalAtpg {
 public:
  /// \p factory selects the SAT backend (empty: single-threaded CDCL).
  explicit IncrementalAtpg(const circuit::Circuit& c,
                           sat::SolverOptions solver_opts = {},
                           std::int64_t conflict_budget = 200000,
                           const sat::EngineFactory& factory = {});

  /// Tests one fault.  On kDetected, \p pattern receives a (possibly
  /// partial) input pattern.
  FaultStatus test_fault(const Fault& f, std::vector<lbool>& pattern);

  const sat::SatEngine& solver() const { return *solver_; }

 private:
  const circuit::Circuit& circuit_;
  std::unique_ptr<sat::SatEngine> solver_;
  std::int64_t conflict_budget_;
};

}  // namespace sateda::atpg
