/// \file incremental.hpp
/// \brief Incremental SAT formulation of ATPG (paper §6, refs
///        [18, 25]): one persistent session holds the good-circuit CNF
///        and the learnt clauses it accumulates; each fault adds only
///        its faulty-cone clauses inside a clause epoch and is tested
///        under assumptions.  Contrast with the from-scratch flow in
///        engine.hpp (bench E12).
#pragma once

#include <vector>

#include "atpg/fault.hpp"
#include "sat/session.hpp"

namespace sateda::atpg {

class IncrementalAtpg {
 public:
  /// \p engine selects the SAT backend (default: single-threaded CDCL).
  explicit IncrementalAtpg(const circuit::Circuit& c,
                           sat::SolverOptions solver_opts = {},
                           std::int64_t conflict_budget = 200000,
                           const sat::EngineSpec& engine = {});

  /// Tests one fault.  On kDetected, \p pattern receives a (possibly
  /// partial) input pattern.
  FaultStatus test_fault(const Fault& f, std::vector<lbool>& pattern);

  const sat::SatEngine& solver() const { return session_.engine(); }
  const sat::SolverSession& session() const { return session_; }

 private:
  static sat::SessionOptions session_options(sat::SolverOptions solver_opts,
                                             std::int64_t conflict_budget,
                                             const sat::EngineSpec& engine);

  const circuit::Circuit& circuit_;
  sat::SolverSession session_;
};

}  // namespace sateda::atpg
