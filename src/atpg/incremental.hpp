/// \file incremental.hpp
/// \brief Incremental SAT formulation of ATPG (paper §6, refs
///        [18, 25]): one persistent solver holds the good-circuit CNF
///        and the learnt clauses it accumulates; each fault adds only
///        its faulty-cone clauses, guarded by an activation literal,
///        and is tested under assumptions.  Contrast with the
///        from-scratch flow in engine.hpp (bench E12).
#pragma once

#include <vector>

#include "atpg/fault.hpp"
#include "sat/solver.hpp"

namespace sateda::atpg {

class IncrementalAtpg {
 public:
  explicit IncrementalAtpg(const circuit::Circuit& c,
                           sat::SolverOptions solver_opts = {},
                           std::int64_t conflict_budget = 200000);

  /// Tests one fault.  On kDetected, \p pattern receives a (possibly
  /// partial) input pattern.
  FaultStatus test_fault(const Fault& f, std::vector<lbool>& pattern);

  const sat::Solver& solver() const { return solver_; }

 private:
  const circuit::Circuit& circuit_;
  sat::Solver solver_;
  std::int64_t conflict_budget_;
};

}  // namespace sateda::atpg
