/// \file euf.hpp
/// \brief Equality logic with uninterpreted functions, decided by
///        reduction to propositional SAT (paper §3, ref. [6]:
///        Velev & Bryant, superscalar processor verification by
///        reducing EUF to propositional logic).
///
/// The pipeline-vs-ISA correctness statements of processor
/// verification abstract datapath blocks as uninterpreted functions;
/// validity of the resulting EUF formula is decided by:
///  1. ITE elimination — each term-level mux becomes a fresh constant
///     with guarded equalities;
///  2. Ackermann's reduction — each function application becomes a
///     fresh constant, with functional-consistency constraints
///     (equal arguments ⇒ equal results) for every application pair;
///  3. the e_ij encoding — one propositional variable per pair of
///     constants with explicit transitivity constraints (the
///     Bryant-Velev approach);
///  4. CDCL SAT on the Tseitin CNF of the whole thing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::euf {

/// Handle to a term (individual-sorted expression).
using TermId = std::int32_t;
/// Handle to a formula (Boolean-sorted expression).
using FormulaId = std::int32_t;

/// On SAT: a model assigning each term an equivalence-class id and
/// each propositional variable a value.
struct EufModel {
  std::vector<int> term_class;       ///< per TermId
  std::vector<bool> prop_values;     ///< per propositional FormulaId (dense map)
};

struct EufResult {
  sat::SolveResult result = sat::SolveResult::kUnknown;
  EufModel model;  ///< meaningful on kSat
  int atoms = 0;   ///< constants after the reduction
  std::size_t cnf_clauses = 0;
};

/// Builder + decision procedure for EUF formulas.
class EufContext {
 public:
  // --- terms ---------------------------------------------------------
  /// A fresh uninterpreted constant (domain variable).
  TermId term_var(const std::string& name);
  /// Application of uninterpreted function \p fn (grouped by name and
  /// arity) to \p args.  Structurally identical applications share a
  /// term.
  TermId apply(const std::string& fn, std::vector<TermId> args);
  /// Term-level if-then-else (mux).
  TermId term_ite(FormulaId cond, TermId then_t, TermId else_t);

  // --- formulas ------------------------------------------------------
  FormulaId eq(TermId a, TermId b);
  FormulaId prop_var(const std::string& name);
  FormulaId f_true();
  FormulaId f_false();
  FormulaId f_not(FormulaId a);
  FormulaId f_and(FormulaId a, FormulaId b);
  FormulaId f_or(FormulaId a, FormulaId b);
  FormulaId f_implies(FormulaId a, FormulaId b) {
    return f_or(f_not(a), b);
  }
  FormulaId f_iff(FormulaId a, FormulaId b);
  FormulaId f_and_all(const std::vector<FormulaId>& fs);

  // --- deciding ------------------------------------------------------
  /// Satisfiability of \p f.  \p engine selects the SAT backend
  /// (default: single-threaded CDCL).
  EufResult check_sat(FormulaId f, sat::SolverOptions opts = {},
                      const sat::EngineSpec& engine = {});
  /// Validity (true in all interpretations): ¬f unsatisfiable.
  bool is_valid(FormulaId f, sat::SolverOptions opts = {},
                const sat::EngineSpec& engine = {});

  std::size_t num_terms() const { return terms_.size(); }
  std::size_t num_formulas() const { return formulas_.size(); }

 private:
  struct Term {
    enum class Kind { kVar, kApply, kIte };
    Kind kind;
    std::string name;           ///< var name or function symbol
    std::vector<TermId> args;   ///< kApply
    FormulaId cond = -1;        ///< kIte
    TermId then_t = -1, else_t = -1;
  };
  struct Formula {
    enum class Kind { kEq, kProp, kNot, kAnd, kOr, kConst };
    Kind kind;
    TermId a = -1, b = -1;      ///< kEq
    FormulaId x = -1, y = -1;   ///< kNot/kAnd/kOr operands
    bool value = false;         ///< kConst
    std::string name;           ///< kProp
  };

  std::vector<Term> terms_;
  std::vector<Formula> formulas_;

  friend class Reduction;
};

}  // namespace sateda::euf
