/// \file pipeline.hpp
/// \brief Toy processor-correctness queries in EUF (paper §3,
///        ref. [6]): a two-register, single-source ALU machine whose
///        2-stage pipelined implementation is compared against
///        sequential ISA execution, Burch-Dill style.
///
/// The datapath ALU is an uninterpreted function alu(op, operand);
/// register selects are propositional variables, so one validity query
/// covers every opcode interpretation and operand value at once — the
/// point of the EUF abstraction.  The pipelined implementation reads
/// operands before the previous instruction's writeback; a forwarding
/// mux repairs the read-after-write hazard.  With forwarding the
/// equivalence is valid; without it the decision procedure returns a
/// hazard counterexample.
#pragma once

#include "euf/euf.hpp"

namespace sateda::euf {

struct PipelineVerification {
  bool valid = false;   ///< implementation == ISA for all interpretations
  EufResult query;      ///< the underlying (negated) SAT query
};

/// Verifies a 2-instruction sequence through the pipelined datapath.
/// \param with_forwarding include the RAW-hazard bypass mux.
PipelineVerification verify_toy_pipeline(bool with_forwarding,
                                         sat::SolverOptions opts = {});

}  // namespace sateda::euf
