#include "euf/euf.hpp"

#include <cassert>
#include <map>
#include <unordered_map>

#include "sat/engine.hpp"

namespace sateda::euf {

// --- construction -------------------------------------------------------

TermId EufContext::term_var(const std::string& name) {
  Term t;
  t.kind = Term::Kind::kVar;
  t.name = name;
  terms_.push_back(std::move(t));
  return static_cast<TermId>(terms_.size() - 1);
}

TermId EufContext::apply(const std::string& fn, std::vector<TermId> args) {
  // Hash-cons structurally identical applications.
  for (TermId i = 0; i < static_cast<TermId>(terms_.size()); ++i) {
    const Term& t = terms_[i];
    if (t.kind == Term::Kind::kApply && t.name == fn && t.args == args) {
      return i;
    }
  }
  Term t;
  t.kind = Term::Kind::kApply;
  t.name = fn;
  t.args = std::move(args);
  terms_.push_back(std::move(t));
  return static_cast<TermId>(terms_.size() - 1);
}

TermId EufContext::term_ite(FormulaId cond, TermId then_t, TermId else_t) {
  Term t;
  t.kind = Term::Kind::kIte;
  t.name = "ite";
  t.cond = cond;
  t.then_t = then_t;
  t.else_t = else_t;
  terms_.push_back(std::move(t));
  return static_cast<TermId>(terms_.size() - 1);
}

FormulaId EufContext::eq(TermId a, TermId b) {
  Formula f;
  f.kind = Formula::Kind::kEq;
  f.a = a;
  f.b = b;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::prop_var(const std::string& name) {
  Formula f;
  f.kind = Formula::Kind::kProp;
  f.name = name;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_true() {
  Formula f;
  f.kind = Formula::Kind::kConst;
  f.value = true;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_false() {
  Formula f;
  f.kind = Formula::Kind::kConst;
  f.value = false;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_not(FormulaId a) {
  Formula f;
  f.kind = Formula::Kind::kNot;
  f.x = a;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_and(FormulaId a, FormulaId b) {
  Formula f;
  f.kind = Formula::Kind::kAnd;
  f.x = a;
  f.y = b;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_or(FormulaId a, FormulaId b) {
  Formula f;
  f.kind = Formula::Kind::kOr;
  f.x = a;
  f.y = b;
  formulas_.push_back(std::move(f));
  return static_cast<FormulaId>(formulas_.size() - 1);
}

FormulaId EufContext::f_iff(FormulaId a, FormulaId b) {
  return f_and(f_implies(a, b), f_implies(b, a));
}

FormulaId EufContext::f_and_all(const std::vector<FormulaId>& fs) {
  if (fs.empty()) return f_true();
  FormulaId acc = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) acc = f_and(acc, fs[i]);
  return acc;
}

// --- reduction to SAT -----------------------------------------------------

/// One-shot reduction: atoms, e_ij variables, transitivity, Ackermann,
/// ITE elimination and Tseitin encoding of the formula structure.
class Reduction {
 public:
  Reduction(const EufContext& ctx, sat::SolverOptions opts,
            const sat::EngineSpec& engine)
      : ctx_(ctx), solver_(sat::make_engine(engine, opts)) {}

  EufResult run(FormulaId root) {
    // 1. Atom per term.  Hash-consing already merged identical
    //    applications, so the identity map is sound.
    const int n = static_cast<int>(ctx_.terms_.size());
    num_atoms_ = n;

    // 2. SAT variables: the constant-true var, then e_ij on demand,
    //    then per-formula Tseitin/prop vars.
    true_var_ = solver_->new_var();
    add({pos(true_var_)});

    // 3. Structural constraints.
    add_transitivity();
    add_ackermann();
    add_ite_links();

    // 4. The formula itself.
    add({encode(root)});

    EufResult result;
    result.atoms = num_atoms_;
    result.result = solver_->solve(/*assumptions=*/{});
    result.cnf_clauses = solver_->num_problem_clauses();
    if (result.result == sat::SolveResult::kSat) extract_model(result.model);
    return result;
  }

 private:
  /// add_clause, folding the trivial-conflict flag: a false return is
  /// remembered by the engine and surfaces as kUnsat from solve().
  void add(std::vector<Lit> lits) {
    if (!solver_->add_clause(std::move(lits))) trivially_unsat_ = true;
  }

  Lit e_lit(int i, int j) {
    if (i == j) return pos(true_var_);
    if (i > j) std::swap(i, j);
    auto key = std::make_pair(i, j);
    auto it = e_vars_.find(key);
    if (it != e_vars_.end()) return pos(it->second);
    Var v = solver_->new_var();
    e_vars_.emplace(key, v);
    return pos(v);
  }

  void add_transitivity() {
    // Full triangle closure.  O(n^3) clauses; EUF instances from
    // processor verification have tens of atoms, not thousands.
    for (int i = 0; i < num_atoms_; ++i) {
      for (int j = i + 1; j < num_atoms_; ++j) {
        for (int k = j + 1; k < num_atoms_; ++k) {
          Lit ij = e_lit(i, j), jk = e_lit(j, k), ik = e_lit(i, k);
          add({~ij, ~jk, ik});
          add({~ij, ~ik, jk});
          add({~ik, ~jk, ij});
        }
      }
    }
  }

  void add_ackermann() {
    // Functional consistency between every pair of applications of the
    // same symbol: equal arguments force equal results.
    for (TermId a = 0; a < static_cast<TermId>(ctx_.terms_.size()); ++a) {
      const auto& ta = ctx_.terms_[a];
      if (ta.kind != EufContext::Term::Kind::kApply) continue;
      for (TermId b = a + 1; b < static_cast<TermId>(ctx_.terms_.size());
           ++b) {
        const auto& tb = ctx_.terms_[b];
        if (tb.kind != EufContext::Term::Kind::kApply || tb.name != ta.name ||
            tb.args.size() != ta.args.size()) {
          continue;
        }
        std::vector<Lit> clause;
        bool trivially_true = false;
        for (std::size_t k = 0; k < ta.args.size(); ++k) {
          Lit ek = e_lit(ta.args[k], tb.args[k]);
          if (ek == pos(true_var_)) continue;  // same atom: premise holds
          clause.push_back(~ek);
        }
        Lit res = e_lit(a, b);
        if (res == pos(true_var_)) trivially_true = true;
        clause.push_back(res);
        if (!trivially_true) add(std::move(clause));
      }
    }
  }

  void add_ite_links() {
    for (TermId t = 0; t < static_cast<TermId>(ctx_.terms_.size()); ++t) {
      const auto& term = ctx_.terms_[t];
      if (term.kind != EufContext::Term::Kind::kIte) continue;
      Lit c = encode(term.cond);
      add({~c, e_lit(t, term.then_t)});
      add({c, e_lit(t, term.else_t)});
    }
  }

  Lit encode(FormulaId f) {
    auto it = formula_lit_.find(f);
    if (it != formula_lit_.end()) return it->second;
    const auto& node = ctx_.formulas_[f];
    Lit result = kUndefLit;
    using Kind = EufContext::Formula::Kind;
    switch (node.kind) {
      case Kind::kEq:
        result = e_lit(node.a, node.b);
        break;
      case Kind::kProp: {
        Var v = solver_->new_var();
        prop_var_of_[f] = v;
        result = pos(v);
        break;
      }
      case Kind::kConst:
        result = node.value ? pos(true_var_) : neg(true_var_);
        break;
      case Kind::kNot:
        result = ~encode(node.x);
        break;
      case Kind::kAnd: {
        Lit a = encode(node.x), b = encode(node.y);
        Var v = solver_->new_var();
        add({neg(v), a});
        add({neg(v), b});
        add({pos(v), ~a, ~b});
        result = pos(v);
        break;
      }
      case Kind::kOr: {
        Lit a = encode(node.x), b = encode(node.y);
        Var v = solver_->new_var();
        add({neg(v), a, b});
        add({pos(v), ~a});
        add({pos(v), ~b});
        result = pos(v);
        break;
      }
    }
    formula_lit_.emplace(f, result);
    return result;
  }

  void extract_model(EufModel& model) {
    // Union atoms connected by true e_ij variables.
    std::vector<int> parent(num_atoms_);
    for (int i = 0; i < num_atoms_; ++i) parent[i] = i;
    auto find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const auto& [key, var] : e_vars_) {
      if (solver_->model_value(var).is_true()) {
        parent[find(key.first)] = find(key.second);
      }
    }
    model.term_class.resize(ctx_.terms_.size());
    for (std::size_t t = 0; t < ctx_.terms_.size(); ++t) {
      model.term_class[t] = find(static_cast<int>(t));
    }
    model.prop_values.assign(ctx_.formulas_.size(), false);
    for (const auto& [fid, var] : prop_var_of_) {
      model.prop_values[fid] = solver_->model_value(var).is_true();
    }
  }

  const EufContext& ctx_;
  std::unique_ptr<sat::SatEngine> solver_;
  bool trivially_unsat_ = false;
  int num_atoms_ = 0;
  Var true_var_ = kNullVar;
  std::map<std::pair<int, int>, Var> e_vars_;
  std::unordered_map<FormulaId, Lit> formula_lit_;
  std::unordered_map<FormulaId, Var> prop_var_of_;
};

EufResult EufContext::check_sat(FormulaId f, sat::SolverOptions opts,
                                const sat::EngineSpec& engine) {
  Reduction r(*this, opts, engine);
  return r.run(f);
}

bool EufContext::is_valid(FormulaId f, sat::SolverOptions opts,
                          const sat::EngineSpec& engine) {
  FormulaId negated = f_not(f);
  return check_sat(negated, opts, engine).result == sat::SolveResult::kUnsat;
}

}  // namespace sateda::euf
