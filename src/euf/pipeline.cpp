#include "euf/pipeline.hpp"

namespace sateda::euf {

namespace {

/// Architectural state: the two registers as terms.
struct RegState {
  TermId r0, r1;
};

/// One instruction: ALU op term plus register selects.
struct Instr {
  TermId op;       ///< uninterpreted opcode/immediate bundle
  FormulaId src1;  ///< true = source is r1
  FormulaId dst1;  ///< true = destination is r1
};

/// ISA semantics: read, execute, write back.
RegState isa_step(EufContext& ctx, const RegState& s, const Instr& i) {
  TermId operand = ctx.term_ite(i.src1, s.r1, s.r0);
  TermId result = ctx.apply("alu", {i.op, operand});
  RegState next;
  next.r0 = ctx.term_ite(i.dst1, s.r0, result);
  next.r1 = ctx.term_ite(i.dst1, result, s.r1);
  return next;
}

}  // namespace

PipelineVerification verify_toy_pipeline(bool with_forwarding,
                                         sat::SolverOptions opts) {
  EufContext ctx;
  RegState init{ctx.term_var("r0"), ctx.term_var("r1")};
  Instr i1{ctx.term_var("op1"), ctx.prop_var("src1_is_r1"),
           ctx.prop_var("dst1_is_r1")};
  Instr i2{ctx.term_var("op2"), ctx.prop_var("src2_is_r1"),
           ctx.prop_var("dst2_is_r1")};

  // Specification: execute sequentially.
  RegState spec1 = isa_step(ctx, init, i1);
  RegState spec2 = isa_step(ctx, spec1, i2);

  // Implementation: I2's operand is fetched from the *initial*
  // register file (I1 has not written back yet).
  TermId res1 = ctx.apply(
      "alu", {i1.op, ctx.term_ite(i1.src1, init.r1, init.r0)});
  TermId stale2 = ctx.term_ite(i2.src1, init.r1, init.r0);
  TermId operand2 = stale2;
  if (with_forwarding) {
    // RAW hazard: I2 reads the register I1 writes.
    FormulaId hazard = ctx.f_iff(i2.src1, i1.dst1);
    operand2 = ctx.term_ite(hazard, res1, stale2);
  }
  TermId res2 = ctx.apply("alu", {i2.op, operand2});
  // Writeback in order (I1 then I2), as the pipeline drains.
  RegState impl1;
  impl1.r0 = ctx.term_ite(i1.dst1, init.r0, res1);
  impl1.r1 = ctx.term_ite(i1.dst1, res1, init.r1);
  RegState impl2;
  impl2.r0 = ctx.term_ite(i2.dst1, impl1.r0, res2);
  impl2.r1 = ctx.term_ite(i2.dst1, res2, impl1.r1);

  FormulaId correct = ctx.f_and(ctx.eq(spec2.r0, impl2.r0),
                                ctx.eq(spec2.r1, impl2.r1));
  PipelineVerification v;
  v.query = ctx.check_sat(ctx.f_not(correct), opts);
  v.valid = (v.query.result == sat::SolveResult::kUnsat);
  return v;
}

}  // namespace sateda::euf
