/// \file cec.hpp
/// \brief SAT-based combinational equivalence checking (paper §3,
///        refs [16, 19, 26]): miter construction, structural hashing
///        front-end, CNF + CDCL back-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "cnf/formula.hpp"
#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::sat {
class ProofTracer;
}

namespace sateda::equiv {

struct CecOptions {
  /// Run structural hashing on the miter first; shared logic between
  /// the two circuits merges and easy miters collapse to constant 0.
  bool structural_hashing = true;
  /// Use the §5 circuit layer inside the SAT query.
  bool use_structural_layer = false;
  /// AIG-style rewriting (circuit/rewrite.hpp) on the strashed miter:
  /// De Morgan normalization + cut-based functional merging.  Routes
  /// the check through the structure-aware CNF pipeline.
  bool rewrite = false;
  /// Plaisted-Greenbaum polarity-aware objective encoding (CNF
  /// pipeline path).
  bool plaisted_greenbaum = false;
  /// Derive StructureHints (cone groups, input/frontier branching
  /// priority, justification phase hints) and apply them to the engine.
  bool struct_hints = false;
  /// Engine for the CNF pipeline path (ignored by the circuit layer).
  sat::EngineSpec engine;
  /// Proof tracer for UNSAT certification.  Setting it forces the CNF
  /// pipeline path with a single CDCL solver (proofs are per-solver)
  /// and fills CecResult::pipeline_formula.
  sat::ProofTracer* proof = nullptr;
  std::int64_t conflict_budget = -1;
  sat::SolverOptions solver;

  bool wants_cnf_pipeline() const {
    return rewrite || plaisted_greenbaum || struct_hints || proof != nullptr;
  }
};

enum class CecVerdict {
  kEquivalent,
  kNotEquivalent,
  kUnknown,  ///< budget exhausted
};

inline std::string to_string(CecVerdict v) {
  switch (v) {
    case CecVerdict::kEquivalent: return "EQUIVALENT";
    case CecVerdict::kNotEquivalent: return "NOT EQUIVALENT";
    case CecVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct CecResult {
  CecVerdict verdict = CecVerdict::kUnknown;
  /// On kNotEquivalent: an input pattern on which the circuits differ.
  std::vector<bool> counterexample;
  /// True if structural hashing alone settled the question (the miter
  /// output folded to a constant).
  bool settled_structurally = false;
  /// True when the structure-aware CNF pipeline (rewrite → polarity
  /// encoding → hints) answered, rather than the circuit layer.
  bool used_cnf_pipeline = false;
  /// With CecOptions::proof set and a SAT call made: the exact formula
  /// the solver refuted, for external DRAT re-certification.
  CnfFormula pipeline_formula;
  std::int64_t decisions = 0;
  std::int64_t conflicts = 0;
};

/// Checks whether \p a and \p b (same interface) compute the same
/// outputs on every input.
CecResult check_equivalence(const circuit::Circuit& a,
                            const circuit::Circuit& b, CecOptions opts = {});

}  // namespace sateda::equiv
