/// \file cec.hpp
/// \brief SAT-based combinational equivalence checking (paper §3,
///        refs [16, 19, 26]): miter construction, structural hashing
///        front-end, CNF + CDCL back-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sat/options.hpp"

namespace sateda::equiv {

struct CecOptions {
  /// Run structural hashing on the miter first; shared logic between
  /// the two circuits merges and easy miters collapse to constant 0.
  bool structural_hashing = true;
  /// Use the §5 circuit layer inside the SAT query.
  bool use_structural_layer = false;
  std::int64_t conflict_budget = -1;
  sat::SolverOptions solver;
};

enum class CecVerdict {
  kEquivalent,
  kNotEquivalent,
  kUnknown,  ///< budget exhausted
};

inline std::string to_string(CecVerdict v) {
  switch (v) {
    case CecVerdict::kEquivalent: return "EQUIVALENT";
    case CecVerdict::kNotEquivalent: return "NOT EQUIVALENT";
    case CecVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct CecResult {
  CecVerdict verdict = CecVerdict::kUnknown;
  /// On kNotEquivalent: an input pattern on which the circuits differ.
  std::vector<bool> counterexample;
  /// True if structural hashing alone settled the question (the miter
  /// output folded to a constant).
  bool settled_structurally = false;
  std::int64_t decisions = 0;
  std::int64_t conflicts = 0;
};

/// Checks whether \p a and \p b (same interface) compute the same
/// outputs on every input.
CecResult check_equivalence(const circuit::Circuit& a,
                            const circuit::Circuit& b, CecOptions opts = {});

}  // namespace sateda::equiv
