/// \file sec.hpp
/// \brief Sequential equivalence checking: the product-machine
///        composition of the paper's BMC (§3, ref. [5]) and
///        equivalence-checking (§3, refs [16, 26]) applications.
///
/// Two sequential circuits with matching primary interfaces are
/// equivalent iff the product machine — shared inputs, both state
/// spaces, bad = "some outputs differ this cycle" — never asserts bad
/// from the initial state pair.  Bounded refutation comes from BMC;
/// full proofs from k-induction with simple-path constraints.
#pragma once

#include <string>
#include <vector>

#include "bmc/induction.hpp"
#include "bmc/sequential.hpp"

namespace sateda::equiv {

/// Builds the product machine of \p a and \p b.  Both machines must
/// have the same number of primary inputs and outputs; `bad` is the
/// OR over XORs of corresponding outputs.
bmc::SequentialCircuit build_product_machine(const bmc::SequentialCircuit& a,
                                             const bmc::SequentialCircuit& b);

enum class SecVerdict {
  kEquivalent,      ///< proved for all input sequences (induction)
  kNotEquivalent,   ///< distinguishing input sequence found
  kUnknown,         ///< bound/budget exhausted
};

inline std::string to_string(SecVerdict v) {
  switch (v) {
    case SecVerdict::kEquivalent: return "SEQ-EQUIVALENT";
    case SecVerdict::kNotEquivalent: return "NOT EQUIVALENT";
    case SecVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct SecResult {
  SecVerdict verdict = SecVerdict::kUnknown;
  int depth = -1;  ///< distinguishing-trace length or proof strength
  std::vector<std::vector<bool>> trace;  ///< on kNotEquivalent
};

/// Checks sequential equivalence via k-induction on the product
/// machine.  Outputs are compared every cycle starting from the
/// respective initial states.
SecResult check_sequential_equivalence(const bmc::SequentialCircuit& a,
                                       const bmc::SequentialCircuit& b,
                                       bmc::InductionOptions opts = {});

}  // namespace sateda::equiv
