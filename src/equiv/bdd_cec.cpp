#include "equiv/bdd_cec.hpp"

#include "bdd/circuit_bdd.hpp"
#include "circuit/miter.hpp"

namespace sateda::equiv {

using circuit::Circuit;

BddCecResult check_equivalence_bdd(const Circuit& a, const Circuit& b,
                                   BddCecOptions opts) {
  BddCecResult result;
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw circuit::CircuitError("BDD CEC: interface mismatch");
  }
  bdd::BddManager mgr(static_cast<int>(a.inputs().size()), opts.node_limit);
  std::vector<int> levels;
  if (opts.interleave_inputs) {
    levels = bdd::interleaved_levels(static_cast<int>(a.inputs().size()));
  }
  try {
    std::vector<bdd::BddRef> fa = bdd::build_output_bdds(mgr, a, levels);
    std::vector<bdd::BddRef> fb = bdd::build_output_bdds(mgr, b, levels);
    result.bdd_nodes = mgr.num_nodes();
    for (std::size_t i = 0; i < fa.size(); ++i) {
      if (fa[i] == fb[i]) continue;  // canonical: equal refs ⇔ equal
      result.verdict = CecVerdict::kNotEquivalent;
      bdd::BddRef diff = mgr.bdd_xor(fa[i], fb[i]);
      std::vector<lbool> partial = mgr.any_model(diff);
      result.counterexample.assign(a.inputs().size(), false);
      for (std::size_t in = 0; in < a.inputs().size(); ++in) {
        const int level = levels.empty() ? static_cast<int>(in) : levels[in];
        if (static_cast<std::size_t>(level) < partial.size() &&
            !partial[level].is_undef()) {
          result.counterexample[in] = partial[level].is_true();
        }
      }
      return result;
    }
    result.verdict = CecVerdict::kEquivalent;
    return result;
  } catch (const bdd::BddLimitExceeded&) {
    result.verdict = CecVerdict::kUnknown;
    result.bdd_nodes = mgr.num_nodes();
    return result;
  }
}

HybridCecResult check_equivalence_hybrid(const Circuit& a, const Circuit& b,
                                         BddCecOptions bdd_opts,
                                         CecOptions sat_opts) {
  HybridCecResult hybrid;
  BddCecResult via_bdd = check_equivalence_bdd(a, b, bdd_opts);
  if (via_bdd.verdict != CecVerdict::kUnknown) {
    hybrid.used_bdd = true;
    hybrid.result.verdict = via_bdd.verdict;
    hybrid.result.counterexample = std::move(via_bdd.counterexample);
    return hybrid;
  }
  hybrid.result = check_equivalence(a, b, sat_opts);
  return hybrid;
}

}  // namespace sateda::equiv
