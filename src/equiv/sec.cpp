#include "equiv/sec.hpp"

#include "circuit/miter.hpp"

namespace sateda::equiv {

using circuit::NodeId;

bmc::SequentialCircuit build_product_machine(const bmc::SequentialCircuit& a,
                                             const bmc::SequentialCircuit& b) {
  if (a.num_primary_inputs != b.num_primary_inputs) {
    throw circuit::CircuitError("SEC: primary input count mismatch");
  }
  if (a.outputs.size() != b.outputs.size()) {
    throw circuit::CircuitError("SEC: output count mismatch");
  }
  bmc::SequentialCircuit p;
  circuit::Circuit& c = p.comb;
  c.set_name("product_" + a.comb.name() + "_" + b.comb.name());
  p.num_primary_inputs = a.num_primary_inputs;
  // Shared primary inputs, then a's state inputs, then b's.
  std::vector<NodeId> shared;
  for (int i = 0; i < p.num_primary_inputs; ++i) {
    shared.push_back(c.add_input("pi" + std::to_string(i)));
  }
  std::vector<NodeId> map_in_a = shared;
  for (int i = 0; i < a.num_latches(); ++i) {
    map_in_a.push_back(c.add_input("sa" + std::to_string(i)));
  }
  std::vector<NodeId> map_a = circuit::append_copy(c, a.comb, map_in_a);

  std::vector<NodeId> map_in_b = shared;
  for (int i = 0; i < b.num_latches(); ++i) {
    map_in_b.push_back(c.add_input("sb" + std::to_string(i)));
  }
  std::vector<NodeId> map_b = circuit::append_copy(c, b.comb, map_in_b);

  for (NodeId n : a.next_state) p.next_state.push_back(map_a[n]);
  for (NodeId n : b.next_state) p.next_state.push_back(map_b[n]);
  p.initial_state = a.initial_state;
  p.initial_state.insert(p.initial_state.end(), b.initial_state.begin(),
                         b.initial_state.end());

  // bad = some pair of observable outputs differs.
  NodeId acc = circuit::kNullNode;
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    NodeId d = c.add_xor(map_a[a.outputs[i]], map_b[b.outputs[i]]);
    acc = (acc == circuit::kNullNode) ? d : c.add_or(acc, d);
  }
  if (acc == circuit::kNullNode) acc = c.add_const(false);
  p.bad = acc;
  c.mark_output(p.bad, "differs");
  p.outputs.push_back(p.bad);
  return p;
}

SecResult check_sequential_equivalence(const bmc::SequentialCircuit& a,
                                       const bmc::SequentialCircuit& b,
                                       bmc::InductionOptions opts) {
  bmc::SequentialCircuit product = build_product_machine(a, b);
  bmc::InductionResult r = bmc::prove_by_induction(product, opts);
  SecResult sec;
  sec.depth = r.k;
  switch (r.verdict) {
    case bmc::InductionVerdict::kProved:
      sec.verdict = SecVerdict::kEquivalent;
      break;
    case bmc::InductionVerdict::kCounterexample:
      sec.verdict = SecVerdict::kNotEquivalent;
      sec.trace = std::move(r.trace);
      break;
    case bmc::InductionVerdict::kUnknown:
      sec.verdict = SecVerdict::kUnknown;
      break;
  }
  return sec;
}

}  // namespace sateda::equiv
