#include "equiv/cec.hpp"

#include <memory>
#include <utility>

#include "circuit/encoder.hpp"
#include "circuit/miter.hpp"
#include "circuit/rewrite.hpp"
#include "circuit/structural_hash.hpp"
#include "csat/circuit_sat.hpp"
#include "csat/hints.hpp"
#include "sat/solver.hpp"

namespace sateda::equiv {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

namespace {

/// Checks whether the single miter output folded to a constant; fills
/// \p result and returns true when it did.
bool settled_by_constant(const Circuit& miter, std::size_t num_inputs,
                         CecResult& result) {
  const circuit::Node& out = miter.node(miter.outputs()[0]);
  if (out.type == GateType::kConst0) {
    result.verdict = CecVerdict::kEquivalent;
    result.settled_structurally = true;
    return true;
  }
  if (out.type == GateType::kConst1) {
    // Differ on every input; all-zero input is a counterexample.
    result.verdict = CecVerdict::kNotEquivalent;
    result.settled_structurally = true;
    result.counterexample.assign(num_inputs, false);
    return true;
  }
  return false;
}

/// The structure-aware path: rewrite → polarity-aware compact encoding
/// → StructureHints → engine.
CecResult check_equivalence_pipeline(const Circuit& a, Circuit miter,
                                     const CecOptions& opts) {
  CecResult result;
  result.used_cnf_pipeline = true;
  if (settled_by_constant(miter, a.inputs().size(), result)) return result;
  if (opts.rewrite) {
    circuit::RewriteResult rr = circuit::rewrite(miter);
    miter = std::move(rr.circuit);
    if (settled_by_constant(miter, a.inputs().size(), result)) return result;
  }

  const NodeId out = miter.outputs()[0];
  const std::vector<std::pair<NodeId, bool>> objectives{{out, true}};
  circuit::ConeEncodingOptions eopts;
  eopts.plaisted_greenbaum = opts.plaisted_greenbaum;
  circuit::ConeEncoding enc =
      circuit::encode_objectives(miter, objectives, eopts);

  sat::SolverOptions sopts = opts.solver;
  sopts.conflict_budget = opts.conflict_budget;
  std::unique_ptr<sat::SatEngine> engine;
  if (opts.proof != nullptr) {
    // Proof logging is a single-solver affair: certify with plain CDCL
    // regardless of the requested engine.
    auto solver = std::make_unique<sat::Solver>(sopts);
    solver->set_proof_tracer(opts.proof);
    engine = std::move(solver);
    result.pipeline_formula = enc.formula;
  } else {
    engine = sat::make_engine(opts.engine, sopts);
  }
  if (!engine->add_formula(enc.formula)) {
    result.verdict = CecVerdict::kEquivalent;
    return result;
  }
  if (opts.struct_hints) {
    csat::make_structure_hints(miter, enc.node_to_var, objectives)
        .apply(*engine);
  }

  const sat::SolveResult r = engine->solve();
  result.decisions = engine->stats().decisions;
  result.conflicts = engine->stats().conflicts;
  switch (r) {
    case sat::SolveResult::kUnsat:
      result.verdict = CecVerdict::kEquivalent;
      break;
    case sat::SolveResult::kUnknown:
      result.verdict = CecVerdict::kUnknown;
      break;
    case sat::SolveResult::kSat: {
      const std::vector<lbool>& model = engine->model();
      result.counterexample.reserve(miter.inputs().size());
      for (NodeId i : miter.inputs()) {
        // Out-of-cone and unassigned inputs are don't cares → 0.
        const Var v = enc.node_to_var[i];
        const bool val = v != kNullVar && v < static_cast<Var>(model.size()) &&
                         model[v].is_true();
        result.counterexample.push_back(val);
      }
      result.verdict = CecVerdict::kNotEquivalent;
      break;
    }
  }
  return result;
}

}  // namespace

CecResult check_equivalence(const Circuit& a, const Circuit& b,
                            CecOptions opts) {
  CecResult result;
  Circuit miter = circuit::build_miter(a, b);
  if (opts.structural_hashing) {
    miter = circuit::strash(miter);
  }
  if (opts.wants_cnf_pipeline()) {
    return check_equivalence_pipeline(a, std::move(miter), opts);
  }
  if (opts.structural_hashing &&
      settled_by_constant(miter, a.inputs().size(), result)) {
    return result;
  }

  csat::CircuitSatOptions copts;
  copts.solver = opts.solver;
  copts.solver.conflict_budget = opts.conflict_budget;
  copts.layer.frontier_termination = opts.use_structural_layer;
  copts.layer.backtrace_decisions = opts.use_structural_layer;
  csat::CircuitSatSolver solver(miter, copts);
  csat::CircuitSatResult r = solver.solve(miter.outputs()[0], true);
  result.decisions = solver.solver().stats().decisions;
  result.conflicts = solver.solver().stats().conflicts;
  switch (r.result) {
    case sat::SolveResult::kUnsat:
      result.verdict = CecVerdict::kEquivalent;
      break;
    case sat::SolveResult::kUnknown:
      result.verdict = CecVerdict::kUnknown;
      break;
    case sat::SolveResult::kSat: {
      result.verdict = CecVerdict::kNotEquivalent;
      result.counterexample.reserve(miter.inputs().size());
      for (NodeId i : miter.inputs()) {
        // Unassigned inputs are don't cares; default them to 0.
        result.counterexample.push_back(r.node_values[i].is_true());
      }
      break;
    }
  }
  return result;
}

}  // namespace sateda::equiv
