#include "equiv/cec.hpp"

#include "circuit/encoder.hpp"
#include "circuit/miter.hpp"
#include "circuit/structural_hash.hpp"
#include "csat/circuit_sat.hpp"

namespace sateda::equiv {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

CecResult check_equivalence(const Circuit& a, const Circuit& b,
                            CecOptions opts) {
  CecResult result;
  Circuit miter = circuit::build_miter(a, b);
  if (opts.structural_hashing) {
    miter = circuit::strash(miter);
    const circuit::Node& out = miter.node(miter.outputs()[0]);
    if (out.type == GateType::kConst0) {
      result.verdict = CecVerdict::kEquivalent;
      result.settled_structurally = true;
      return result;
    }
    if (out.type == GateType::kConst1) {
      // Differ on every input; all-zero input is a counterexample.
      result.verdict = CecVerdict::kNotEquivalent;
      result.settled_structurally = true;
      result.counterexample.assign(a.inputs().size(), false);
      return result;
    }
  }

  csat::CircuitSatOptions copts;
  copts.solver = opts.solver;
  copts.solver.conflict_budget = opts.conflict_budget;
  copts.layer.frontier_termination = opts.use_structural_layer;
  copts.layer.backtrace_decisions = opts.use_structural_layer;
  csat::CircuitSatSolver solver(miter, copts);
  csat::CircuitSatResult r = solver.solve(miter.outputs()[0], true);
  result.decisions = solver.solver().stats().decisions;
  result.conflicts = solver.solver().stats().conflicts;
  switch (r.result) {
    case sat::SolveResult::kUnsat:
      result.verdict = CecVerdict::kEquivalent;
      break;
    case sat::SolveResult::kUnknown:
      result.verdict = CecVerdict::kUnknown;
      break;
    case sat::SolveResult::kSat: {
      result.verdict = CecVerdict::kNotEquivalent;
      result.counterexample.reserve(miter.inputs().size());
      for (NodeId i : miter.inputs()) {
        // Unassigned inputs are don't cares; default them to 0.
        result.counterexample.push_back(r.node_values[i].is_true());
      }
      break;
    }
  }
  return result;
}

}  // namespace sateda::equiv
