/// \file bdd_cec.hpp
/// \brief BDD-based and hybrid BDD/SAT equivalence checking
///        (paper §1's SAT-vs-BDD framing; ref. [16] Gupta & Ashar,
///        "Integrating a Boolean Satisfiability Checker and BDDs for
///        Combinational Equivalence Checking").
#pragma once

#include <cstddef>

#include "equiv/cec.hpp"

namespace sateda::equiv {

struct BddCecOptions {
  std::size_t node_limit = 1u << 20;  ///< blowup guard
  /// Interleave the two operand halves of the inputs (good for
  /// datapath circuits; see bdd::interleaved_levels).
  bool interleave_inputs = false;
};

struct BddCecResult {
  CecVerdict verdict = CecVerdict::kUnknown;  ///< kUnknown = node blowup
  std::vector<bool> counterexample;           ///< on kNotEquivalent
  std::size_t bdd_nodes = 0;                  ///< manager size at the end
};

/// Canonical-form equivalence check: builds both circuits' output
/// BDDs under one manager/order and compares refs.  kUnknown when the
/// node limit trips — the blowup SAT-based CEC was invented to avoid.
BddCecResult check_equivalence_bdd(const circuit::Circuit& a,
                                   const circuit::Circuit& b,
                                   BddCecOptions opts = {});

/// The [16]-style hybrid: try BDDs under a small node budget; on
/// blowup fall back to the SAT-based check of cec.hpp.
struct HybridCecResult {
  CecResult result;
  bool used_bdd = false;  ///< settled within the BDD budget
};
HybridCecResult check_equivalence_hybrid(const circuit::Circuit& a,
                                         const circuit::Circuit& b,
                                         BddCecOptions bdd_opts = {},
                                         CecOptions sat_opts = {});

}  // namespace sateda::equiv
