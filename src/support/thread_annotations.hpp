/// \file thread_annotations.hpp
/// \brief Clang thread-safety-analysis capability macros.
///
/// These macros let the code state its lock discipline — which mutex
/// guards which field, which functions must (or must not) be entered
/// with a lock held, and in which order independent locks may nest —
/// so that `clang -Wthread-safety` can prove the discipline at compile
/// time.  The CI `thread-safety` job builds the whole tree with
/// `-Wthread-safety -Wthread-safety-beta -Werror`; under GCC (or any
/// compiler without the attributes) every macro expands to nothing, so
/// the annotations cost nothing outside analysis builds.
///
/// The macro set and spelling follow the Clang documentation
/// ("Thread Safety Analysis") and the Abseil/LLVM convention, so the
/// names read the same here as in the literature:
///
///   class CAPABILITY("mutex") Mutex { ... };
///   Mutex mu_;
///   int balance_ GUARDED_BY(mu_);
///   void deposit(int n) REQUIRES(mu_);
///   void audit() EXCLUDES(mu_);
///
/// Use the annotated wrappers in support/mutex.hpp instead of the raw
/// std primitives — `std::mutex` itself carries no capability
/// attribute, so the analysis cannot see through it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SATEDA_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SATEDA_THREAD_ANNOTATION
#define SATEDA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability (lockable).  The string names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) SATEDA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY SATEDA_THREAD_ANNOTATION(scoped_lockable)

/// Declares that the field it annotates is protected by the given
/// capability: reads require the capability held shared or exclusive,
/// writes require it exclusive.
#define GUARDED_BY(x) SATEDA_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY, for the data *pointed to* by a pointer field.
#define PT_GUARDED_BY(x) SATEDA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declaration: this capability must be acquired before
/// the listed ones (checked under -Wthread-safety-beta; documentation
/// either way).
#define ACQUIRED_BEFORE(...) SATEDA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Lock-ordering declaration: this capability must be acquired after
/// the listed ones.
#define ACQUIRED_AFTER(...) SATEDA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The annotated function must be called with the listed capabilities
/// held (and does not release them).
#define REQUIRES(...) \
  SATEDA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of REQUIRES.
#define REQUIRES_SHARED(...) \
  SATEDA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on
/// return (a lock function).  With no argument on a member of a
/// SCOPED_CAPABILITY type it refers to the managed capability.
#define ACQUIRE(...) \
  SATEDA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SATEDA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability (an unlock function).
#define RELEASE(...) \
  SATEDA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SATEDA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the
/// given value (try_lock).
#define TRY_ACQUIRE(...) \
  SATEDA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the listed
/// capabilities held (it acquires them itself, or would deadlock).
#define EXCLUDES(...) SATEDA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the static
/// analysis without acquiring anything).
#define ASSERT_CAPABILITY(x) \
  SATEDA_THREAD_ANNOTATION(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SATEDA_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis (use sparingly, with a comment
/// saying why — typically wrappers whose locking the analysis cannot
/// model, such as condition-variable waits).
#define NO_THREAD_SAFETY_ANALYSIS \
  SATEDA_THREAD_ANNOTATION(no_thread_safety_analysis)
