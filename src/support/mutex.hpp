/// \file mutex.hpp
/// \brief Annotated mutex / RAII-lock / condition-variable wrappers for
///        Clang thread-safety analysis.
///
/// `std::mutex` carries no capability attribute, so code using it is
/// invisible to `-Wthread-safety`.  These thin wrappers restore the
/// standard semantics (they compile to the std primitives) while
/// giving the analysis something to reason about:
///
///   class ClausePool {
///     mutable Mutex mu_;
///     std::vector<Entry> ring_ GUARDED_BY(mu_);
///    public:
///     void publish(Entry e) EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       ring_.push_back(std::move(e));
///     }
///   };
///
/// Condition waits use explicit while-loops instead of the predicate
/// overload on purpose: the predicate lambda is analyzed as a separate
/// function that the checker cannot see is only ever invoked with the
/// mutex held, so
///
///   while (!ready_) cv_.wait(mu_);          // analysis-clean
///
/// is the idiom, not `cv_.wait(lock, [&]{ return ready_; })`.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace sateda {

/// A std::mutex annotated as a Clang capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the std::lock_guard/std::unique_lock
/// replacement the analysis understands).  Supports temporary release
/// via Unlock()/Lock() — the scoped-capability analysis tracks both —
/// which is what the serve scheduler uses to drop the registry lock
/// around session execution.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (e.g. to run a callback that must
  /// not execute under the lock).
  void Unlock() RELEASE() {
    mu_->unlock();
    held_ = false;
  }

  /// Re-acquires after Unlock().
  void Lock() ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = true;
};

/// Condition variable over the annotated Mutex.
///
/// wait() must be called with the mutex held (enforced by REQUIRES);
/// it releases the mutex while blocked and re-acquires it before
/// returning, exactly like std::condition_variable — the wrapper body
/// opts out of the analysis because the checker cannot model that
/// release/re-acquire cycle.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified.  Caller must hold \p mu (and re-checks its
  /// predicate in a while-loop: spurious wakeups happen).
  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  /// Convenience overload: waits on the mutex managed by \p lock.
  void wait(MutexLock& lock) NO_THREAD_SAFETY_ANALYSIS {
    wait(*lock.mu_);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sateda
