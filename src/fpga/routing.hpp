/// \file routing.hpp
/// \brief SAT-based detailed routing (paper §3, refs [29, 30]):
///        channel routing as Boolean track assignment.
///
/// A channel holds horizontal tracks crossed by vertical columns.
/// Each two-pin net occupies one track across its column span
/// [left, right].  Constraints:
///  * exclusivity — each net gets exactly one track;
///  * horizontal   — nets whose spans overlap cannot share a track;
///  * vertical     — at a column where net a's pin is on the top edge
///    and net b's pin is on the bottom edge, a's track must lie above
///    b's (smaller index), or the vertical wires would short.
/// SAT decides routability for a given track count; iterating yields
/// the minimum channel height, compared against the density lower
/// bound and a left-edge greedy baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sat/engine.hpp"
#include "sat/options.hpp"

namespace sateda::fpga {

struct Net {
  int left = 0;    ///< leftmost column (inclusive)
  int right = 0;   ///< rightmost column (inclusive)
};

/// a_above_b: at some column, net `upper` has the top pin and net
/// `lower` the bottom pin, forcing track(upper) < track(lower).
struct VerticalConstraint {
  int upper = 0;
  int lower = 0;
};

struct ChannelProblem {
  std::vector<Net> nets;
  std::vector<VerticalConstraint> verticals;

  int num_columns() const {
    int m = 0;
    for (const Net& n : nets) m = std::max(m, n.right + 1);
    return m;
  }
};

/// Maximum number of nets crossing any single column — the classic
/// lower bound on the channel height.
int channel_density(const ChannelProblem& p);

/// Left-edge greedy routing ignoring vertical constraints; returns the
/// number of tracks it uses (equals density for interval graphs — the
/// baseline SAT must beat once vertical constraints exist).
int left_edge_tracks(const ChannelProblem& p);

struct RouteResult {
  bool routable = false;
  std::vector<int> track;  ///< per net, 0 = topmost
  std::int64_t conflicts = 0;
};

/// SAT decision: can the channel be routed in \p tracks tracks?
/// \p engine selects the SAT backend (default: single-threaded CDCL).
RouteResult route_channel(const ChannelProblem& p, int tracks,
                          sat::SolverOptions opts = {},
                          const sat::EngineSpec& engine = {});

/// Minimum feasible track count in [density, max_tracks], or -1 if
/// even max_tracks fails (cyclic vertical constraints can make a
/// dogleg-free channel unroutable at any height).
int minimum_tracks(const ChannelProblem& p, int max_tracks,
                   sat::SolverOptions opts = {},
                   const sat::EngineSpec& engine = {});

/// Validates a routing against all three constraint families.
bool validate_routing(const ChannelProblem& p, const std::vector<int>& track,
                      int tracks);

/// Random channel: \p num_nets nets with random spans over
/// \p columns columns; a fraction of adjacent net pairs get vertical
/// constraints (acyclic by construction, so instances stay routable).
ChannelProblem random_channel(int num_nets, int columns, double vertical_prob,
                              std::uint64_t seed);

}  // namespace sateda::fpga
