#include "fpga/routing.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "sat/engine.hpp"

namespace sateda::fpga {

namespace {

bool spans_overlap(const Net& a, const Net& b) {
  return a.left <= b.right && b.left <= a.right;
}

}  // namespace

int channel_density(const ChannelProblem& p) {
  const int cols = p.num_columns();
  std::vector<int> count(cols, 0);
  for (const Net& n : p.nets) {
    for (int c = n.left; c <= n.right; ++c) ++count[c];
  }
  return count.empty() ? 0 : *std::max_element(count.begin(), count.end());
}

int left_edge_tracks(const ChannelProblem& p) {
  // Sort nets by left edge; place each on the first track whose last
  // occupied column is left of the net.
  std::vector<int> order(p.nets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p.nets[a].left < p.nets[b].left;
  });
  std::vector<int> track_end;  // rightmost column used per track
  for (int ni : order) {
    const Net& n = p.nets[ni];
    bool placed = false;
    for (int t = 0; t < static_cast<int>(track_end.size()); ++t) {
      if (track_end[t] < n.left) {
        track_end[t] = n.right;
        placed = true;
        break;
      }
    }
    if (!placed) track_end.push_back(n.right);
  }
  return static_cast<int>(track_end.size());
}

RouteResult route_channel(const ChannelProblem& p, int tracks,
                          sat::SolverOptions opts,
                          const sat::EngineSpec& engine) {
  RouteResult result;
  const int n = static_cast<int>(p.nets.size());
  if (n == 0) {
    result.routable = true;
    return result;
  }
  if (tracks <= 0) return result;
  std::unique_ptr<sat::SatEngine> solver = sat::make_engine(engine, opts);
  // A false add_clause means the instance is trivially unroutable; the
  // engine remembers and solve() reports kUnsat, so keep going.
  bool ok = true;
  // x(i, t): net i on track t.
  auto x = [&](int i, int t) { return static_cast<Var>(i * tracks + t); };
  solver->ensure_var(n * tracks - 1);
  // Exactly one track per net.
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> at_least;
    for (int t = 0; t < tracks; ++t) at_least.push_back(pos(x(i, t)));
    ok = solver->add_clause(std::move(at_least)) && ok;
    for (int t1 = 0; t1 < tracks; ++t1) {
      for (int t2 = t1 + 1; t2 < tracks; ++t2) {
        ok = solver->add_clause({neg(x(i, t1)), neg(x(i, t2))}) && ok;
      }
    }
  }
  // Horizontal constraints.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!spans_overlap(p.nets[i], p.nets[j])) continue;
      for (int t = 0; t < tracks; ++t) {
        ok = solver->add_clause({neg(x(i, t)), neg(x(j, t))}) && ok;
      }
    }
  }
  // Vertical constraints: track(upper) < track(lower).
  for (const VerticalConstraint& vc : p.verticals) {
    for (int tu = 0; tu < tracks; ++tu) {
      for (int tl = 0; tl <= tu; ++tl) {
        ok = solver->add_clause({neg(x(vc.upper, tu)), neg(x(vc.lower, tl))}) &&
             ok;
      }
    }
  }
  if (!ok || solver->solve() != sat::SolveResult::kSat) {
    result.conflicts = solver->stats().conflicts;
    return result;
  }
  result.conflicts = solver->stats().conflicts;
  result.routable = true;
  result.track.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < tracks; ++t) {
      if (solver->model_value(x(i, t)).is_true()) {
        result.track[i] = t;
        break;
      }
    }
  }
  return result;
}

int minimum_tracks(const ChannelProblem& p, int max_tracks,
                   sat::SolverOptions opts,
                   const sat::EngineSpec& engine) {
  for (int t = channel_density(p); t <= max_tracks; ++t) {
    if (route_channel(p, t, opts, engine).routable) return t;
  }
  return -1;
}

bool validate_routing(const ChannelProblem& p, const std::vector<int>& track,
                      int tracks) {
  if (track.size() != p.nets.size()) return false;
  for (int t : track) {
    if (t < 0 || t >= tracks) return false;
  }
  for (std::size_t i = 0; i < p.nets.size(); ++i) {
    for (std::size_t j = i + 1; j < p.nets.size(); ++j) {
      if (track[i] == track[j] && spans_overlap(p.nets[i], p.nets[j])) {
        return false;
      }
    }
  }
  for (const VerticalConstraint& vc : p.verticals) {
    if (!(track[vc.upper] < track[vc.lower])) return false;
  }
  return true;
}

ChannelProblem random_channel(int num_nets, int columns, double vertical_prob,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ChannelProblem p;
  std::uniform_int_distribution<int> col(0, columns - 1);
  for (int i = 0; i < num_nets; ++i) {
    int a = col(rng), b = col(rng);
    if (a > b) std::swap(a, b);
    if (a == b) b = std::min(b + 1, columns - 1);
    p.nets.push_back({a, b});
  }
  // Acyclic vertical constraints: only allow upper < lower by net
  // index, between horizontally overlapping nets.
  std::bernoulli_distribution coin(vertical_prob);
  for (int i = 0; i < num_nets; ++i) {
    for (int j = i + 1; j < num_nets; ++j) {
      if (spans_overlap(p.nets[i], p.nets[j]) && coin(rng)) {
        p.verticals.push_back({i, j});
      }
    }
  }
  return p;
}

}  // namespace sateda::fpga
