/// \file bmc.hpp
/// \brief Bounded model checking without BDDs (paper §3, ref. [5]):
///        unroll the transition relation k time frames into CNF, ask
///        SAT whether `bad` is reachable at step k, increase k.
///
/// The checker is incremental (paper §6): one persistent solver holds
/// all frames added so far; each depth adds one frame's clauses and
/// queries bad_k under an assumption, so learnt clauses carry over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bmc/sequential.hpp"
#include "sat/engine.hpp"

namespace sateda::bmc {

struct BmcOptions {
  int max_depth = 64;
  /// AIG-rewrite the combinational core once up front (next-state and
  /// bad nodes remapped); every unrolled frame then encodes the
  /// smaller, more canonical netlist.
  bool rewrite = false;
  /// Apply StructureHints per frame: bump the frame's bad-cone
  /// variables (inputs and justification frontier hottest) and seed
  /// phases from the gate justification thresholds.
  bool struct_hints = false;
  std::int64_t conflict_budget = -1;  ///< per-depth-query conflict budget
  sat::SolverOptions solver;
  sat::EngineSpec engine;          ///< SAT backend (empty: CDCL)
};

enum class BmcVerdict {
  kCounterexample,     ///< bad reachable; see trace
  kNoCounterexample,   ///< bad unreachable within max_depth
  kUnknown,            ///< budget exhausted
};

inline std::string to_string(BmcVerdict v) {
  switch (v) {
    case BmcVerdict::kCounterexample: return "COUNTEREXAMPLE";
    case BmcVerdict::kNoCounterexample: return "BOUND REACHED";
    case BmcVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct BmcResult {
  BmcVerdict verdict = BmcVerdict::kUnknown;
  int depth = -1;  ///< counterexample length (steps) when found
  /// Primary-input vector per step, replayable with
  /// replay_reaches_bad().
  std::vector<std::vector<bool>> trace;
  std::int64_t decisions = 0;
  std::int64_t conflicts = 0;
};

/// Incremental BMC engine; also usable one-shot via bounded_model_check.
class BmcEngine {
 public:
  explicit BmcEngine(const SequentialCircuit& m, BmcOptions opts = {});

  /// Checks reachability of `bad` at exactly depth k (frames 0..k must
  /// have been checked/added in order; call check_depth with k equal
  /// to the number of previous calls).
  sat::SolveResult check_depth(int k);

  /// Runs the standard loop 0..max_depth.
  BmcResult run();

  /// After a kSat check_depth: extracts the input trace (length k+1).
  std::vector<std::vector<bool>> extract_trace(int k) const;

  const sat::SatEngine& solver() const { return *solver_; }

 private:
  /// Adds the clauses of time frame \p k; returns the frame's var map.
  void add_frame(int k);
  Var frame_var(int k, circuit::NodeId n) const {
    return frame_vars_[k][n];
  }

  /// Held by value: with opts.rewrite the constructor installs the
  /// rewritten machine here.
  SequentialCircuit machine_;
  BmcOptions opts_;
  std::unique_ptr<sat::SatEngine> solver_;
  std::vector<std::vector<Var>> frame_vars_;  ///< per frame, per node
};

/// One-shot convenience wrapper.
BmcResult bounded_model_check(const SequentialCircuit& m, BmcOptions opts = {});

}  // namespace sateda::bmc
