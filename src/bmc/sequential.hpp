/// \file sequential.hpp
/// \brief Synchronous sequential circuits for bounded model checking
///        (paper §3, ref. [5]): a combinational core plus D-latches.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"

namespace sateda::bmc {

/// A Mealy-style sequential circuit.  The combinational core's inputs
/// are the primary inputs followed by the present-state lines; the
/// property node `bad` and the next-state functions are nodes of the
/// core.  The property to check is AG ¬bad ("bad is never 1").
struct SequentialCircuit {
  circuit::Circuit comb;
  int num_primary_inputs = 0;  ///< first PIs of comb
  /// comb.inputs() = primary inputs ++ state inputs; hence:
  int num_latches() const {
    return static_cast<int>(comb.inputs().size()) - num_primary_inputs;
  }
  std::vector<circuit::NodeId> next_state;  ///< one node per latch
  std::vector<bool> initial_state;          ///< one bit per latch
  circuit::NodeId bad = circuit::kNullNode; ///< safety property monitor
  /// Observable outputs (for sequential equivalence checking); the
  /// built-in generators expose their monitor here.
  std::vector<circuit::NodeId> outputs;

  circuit::NodeId primary_input(int i) const { return comb.inputs()[i]; }
  circuit::NodeId state_input(int i) const {
    return comb.inputs()[num_primary_inputs + i];
  }
};

/// Steps the machine: returns {next state, bad flag} for one tick.
std::pair<std::vector<bool>, bool> step(const SequentialCircuit& m,
                                        const std::vector<bool>& state,
                                        const std::vector<bool>& inputs);

/// Runs a full input trace from the initial state; returns true iff
/// `bad` is asserted at some step (bounded safety violation witness).
bool replay_reaches_bad(const SequentialCircuit& m,
                        const std::vector<std::vector<bool>>& trace);

// --- generators -------------------------------------------------------

/// n-bit counter that increments when `en`=1; bad when the counter
/// equals \p bad_value.  Shortest counterexample depth = bad_value
/// (bad is sampled on the state, after that many increments).
SequentialCircuit counter_machine(int bits, std::uint64_t bad_value);

/// n-bit shift register; bad when all taps are 1.  Needs n consecutive
/// 1 inputs: counterexample depth n.
SequentialCircuit shift_register_machine(int bits);

/// Two-phase handshake FSM with a protocol-violation monitor that a
/// specific 3-step input sequence triggers; used as a small "control
/// logic" style instance.
SequentialCircuit handshake_machine();

/// n-bit Galois LFSR with taps; bad when the register hits
/// \p bad_state.  Input-free (autonomous): BMC must find the exact
/// time step.
SequentialCircuit lfsr_machine(int bits, std::uint64_t taps,
                               std::uint64_t seed_state,
                               std::uint64_t bad_state);

}  // namespace sateda::bmc
