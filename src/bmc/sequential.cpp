#include "bmc/sequential.hpp"

#include <cassert>

#include "circuit/simulator.hpp"

namespace sateda::bmc {

using circuit::Circuit;
using circuit::NodeId;

std::pair<std::vector<bool>, bool> step(const SequentialCircuit& m,
                                        const std::vector<bool>& state,
                                        const std::vector<bool>& inputs) {
  assert(static_cast<int>(inputs.size()) == m.num_primary_inputs);
  assert(static_cast<int>(state.size()) == m.num_latches());
  std::vector<bool> comb_in;
  comb_in.reserve(inputs.size() + state.size());
  for (bool b : inputs) comb_in.push_back(b);
  for (bool b : state) comb_in.push_back(b);
  std::vector<bool> values = circuit::simulate(m.comb, comb_in);
  std::vector<bool> next;
  next.reserve(m.next_state.size());
  for (NodeId n : m.next_state) next.push_back(values[n]);
  return {next, values[m.bad]};
}

bool replay_reaches_bad(const SequentialCircuit& m,
                        const std::vector<std::vector<bool>>& trace) {
  std::vector<bool> state = m.initial_state;
  for (const auto& inputs : trace) {
    auto [next, bad] = step(m, state, inputs);
    if (bad) return true;
    state = std::move(next);
  }
  return false;
}

SequentialCircuit counter_machine(int bits, std::uint64_t bad_value) {
  SequentialCircuit m;
  Circuit& c = m.comb;
  c.set_name("counter" + std::to_string(bits));
  NodeId en = c.add_input("en");
  m.num_primary_inputs = 1;
  std::vector<NodeId> q(bits);
  for (int i = 0; i < bits; ++i) q[i] = c.add_input("q" + std::to_string(i));
  // next q = q + en (ripple increment).
  NodeId carry = en;
  for (int i = 0; i < bits; ++i) {
    NodeId sum = c.add_xor(q[i], carry);
    carry = c.add_and(q[i], carry);
    m.next_state.push_back(sum);
  }
  // bad when q == bad_value; a value wider than the register can
  // never match, so the monitor is constant false.
  if (bits < 64 && (bad_value >> bits) != 0) {
    m.bad = c.add_const(false);
  } else {
    NodeId acc = circuit::kNullNode;
    for (int i = 0; i < bits; ++i) {
      NodeId bit = ((bad_value >> i) & 1) ? q[i] : c.add_not(q[i]);
      acc = (acc == circuit::kNullNode) ? bit : c.add_and(acc, bit);
    }
    m.bad = acc;
  }
  c.mark_output(m.bad, "bad");
  m.outputs.push_back(m.bad);
  m.initial_state.assign(bits, false);
  return m;
}

SequentialCircuit shift_register_machine(int bits) {
  SequentialCircuit m;
  Circuit& c = m.comb;
  c.set_name("shift" + std::to_string(bits));
  NodeId din = c.add_input("din");
  m.num_primary_inputs = 1;
  std::vector<NodeId> q(bits);
  for (int i = 0; i < bits; ++i) q[i] = c.add_input("q" + std::to_string(i));
  // next[0] = din, next[i] = q[i-1].
  m.next_state.push_back(c.add_buf(din));
  for (int i = 1; i < bits; ++i) m.next_state.push_back(c.add_buf(q[i - 1]));
  NodeId acc = q[0];
  for (int i = 1; i < bits; ++i) acc = c.add_and(acc, q[i]);
  m.bad = acc;
  c.mark_output(m.bad, "bad");
  m.outputs.push_back(m.bad);
  m.initial_state.assign(bits, false);
  return m;
}

SequentialCircuit handshake_machine() {
  // States (2 bits): 00 idle, 01 req, 10 ack, 11 error.  Input `go`.
  // Transition: idle --go--> req --go--> ack --go--> error (protocol
  // violation: a third consecutive go).  !go returns to idle.
  SequentialCircuit m;
  Circuit& c = m.comb;
  c.set_name("handshake");
  NodeId go = c.add_input("go");
  m.num_primary_inputs = 1;
  NodeId s0 = c.add_input("s0");
  NodeId s1 = c.add_input("s1");
  NodeId ngo = c.add_not(go);
  NodeId ns0_in = c.add_not(s0);
  NodeId ns1_in = c.add_not(s1);
  // State decode.
  NodeId idle = c.add_and(ns1_in, ns0_in);
  NodeId req = c.add_and(ns1_in, s0);
  NodeId ack = c.add_and(s1, ns0_in);
  NodeId err = c.add_and(s1, s0);
  // next = !go ? idle : (idle->req, req->ack, ack->err, err->err)
  NodeId next_req = c.add_and(go, idle);
  NodeId next_ack = c.add_and(go, req);
  NodeId next_err_a = c.add_and(go, ack);
  NodeId next_err_b = c.add_and(go, err);
  NodeId next_err = c.add_or(next_err_a, next_err_b);
  // s0' = req' | err'; s1' = ack' | err'.
  m.next_state.push_back(c.add_or(next_req, next_err));
  m.next_state.push_back(c.add_or(next_ack, next_err));
  m.bad = err;
  c.mark_output(m.bad, "bad");
  m.outputs.push_back(m.bad);
  m.num_primary_inputs = 1;
  m.initial_state = {false, false};
  (void)ngo;
  return m;
}

SequentialCircuit lfsr_machine(int bits, std::uint64_t taps,
                               std::uint64_t seed_state,
                               std::uint64_t bad_state) {
  SequentialCircuit m;
  Circuit& c = m.comb;
  c.set_name("lfsr" + std::to_string(bits));
  m.num_primary_inputs = 0;
  std::vector<NodeId> q(bits);
  for (int i = 0; i < bits; ++i) q[i] = c.add_input("q" + std::to_string(i));
  // Galois LFSR: out = q[0]; next[i] = q[i+1] ^ (taps[i] & out);
  // next[bits-1] = out when tapped... use: next[i] = q[i+1] ⊕ (tap_i·q0),
  // next[bits-1] = q0 if tapped else 0 — we use the Fibonacci form
  // instead for simplicity: feedback = XOR of tapped bits, shift right.
  NodeId fb = circuit::kNullNode;
  for (int i = 0; i < bits; ++i) {
    if ((taps >> i) & 1) {
      fb = (fb == circuit::kNullNode) ? q[i] : c.add_xor(fb, q[i]);
    }
  }
  if (fb == circuit::kNullNode) fb = c.add_const(false);
  for (int i = 0; i + 1 < bits; ++i) m.next_state.push_back(c.add_buf(q[i + 1]));
  m.next_state.push_back(c.add_buf(fb));
  NodeId acc = circuit::kNullNode;
  for (int i = 0; i < bits; ++i) {
    NodeId bit = ((bad_state >> i) & 1) ? q[i] : c.add_not(q[i]);
    acc = (acc == circuit::kNullNode) ? bit : c.add_and(acc, bit);
  }
  m.bad = acc;
  c.mark_output(m.bad, "bad");
  m.outputs.push_back(m.bad);
  m.initial_state.resize(bits);
  for (int i = 0; i < bits; ++i) m.initial_state[i] = (seed_state >> i) & 1;
  return m;
}

}  // namespace sateda::bmc
