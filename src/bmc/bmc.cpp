#include "bmc/bmc.hpp"

#include <cassert>
#include <utility>

#include "circuit/encoder.hpp"
#include "circuit/rewrite.hpp"
#include "csat/hints.hpp"

namespace sateda::bmc {

using circuit::NodeId;

namespace {

/// Rewrites the combinational core, remapping every node the unrolling
/// refers to (next-state functions, bad, observable outputs).  Inputs
/// are preserved in order, so primary_input()/state_input() indexing
/// is unchanged.
SequentialCircuit rewrite_machine(const SequentialCircuit& m) {
  std::vector<NodeId> keep = m.next_state;
  keep.push_back(m.bad);
  keep.insert(keep.end(), m.outputs.begin(), m.outputs.end());
  circuit::RewriteResult rr = circuit::rewrite(m.comb, {}, keep);
  SequentialCircuit out;
  out.comb = std::move(rr.circuit);
  out.num_primary_inputs = m.num_primary_inputs;
  out.initial_state = m.initial_state;
  out.next_state.reserve(m.next_state.size());
  for (NodeId n : m.next_state) out.next_state.push_back(rr.node_map[n]);
  out.bad = rr.node_map[m.bad];
  out.outputs.reserve(m.outputs.size());
  for (NodeId n : m.outputs) out.outputs.push_back(rr.node_map[n]);
  return out;
}

}  // namespace

BmcEngine::BmcEngine(const SequentialCircuit& m, BmcOptions opts)
    : machine_(opts.rewrite ? rewrite_machine(m) : m), opts_(opts) {
  sat::SolverOptions sopts = opts.solver;
  sopts.conflict_budget = opts.conflict_budget;
  solver_ = sat::make_engine(opts.engine, sopts);
}

void BmcEngine::add_frame(int k) {
  assert(static_cast<int>(frame_vars_.size()) == k);
  const circuit::Circuit& c = machine_.comb;
  std::vector<Var> vars(c.num_nodes(), kNullVar);
  CnfFormula f(solver_->num_vars());

  // State inputs: frame 0 pins to the initial state; frame k>0 aliases
  // the previous frame's next-state variables.
  for (int i = 0; i < machine_.num_latches(); ++i) {
    NodeId s = machine_.state_input(i);
    if (k == 0) {
      Var v = solver_->new_var();
      vars[s] = v;
      f.ensure_var(v);
      f.add_unit(Lit(v, !machine_.initial_state[i]));
    } else {
      vars[s] = frame_var(k - 1, machine_.next_state[i]);
    }
  }
  // Primary inputs: fresh variables.
  for (int i = 0; i < machine_.num_primary_inputs; ++i) {
    vars[machine_.primary_input(i)] = solver_->new_var();
  }
  // Gates in topological order.
  for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
    const circuit::Node& node = c.node(n);
    if (node.type == circuit::GateType::kInput) continue;
    vars[n] = solver_->new_var();
    std::vector<Var> ins;
    ins.reserve(node.fanins.size());
    for (NodeId fi : node.fanins) {
      assert(vars[fi] != kNullVar);
      ins.push_back(vars[fi]);
    }
    circuit::encode_gate_clauses(node.type, vars[n], ins, f);
  }
  // A false return (trivial root conflict) is remembered by the engine
  // and surfaces as kUnsat from the next solve.
  (void)solver_->add_formula(f);
  frame_vars_.push_back(std::move(vars));
  if (opts_.struct_hints) {
    // Re-seed branching toward this frame's bad cone: the most recent
    // frame is where the counterexample search happens.
    csat::make_structure_hints(c, frame_vars_.back(),
                               {{machine_.bad, true}})
        .apply(*solver_);
  }
}

sat::SolveResult BmcEngine::check_depth(int k) {
  while (static_cast<int>(frame_vars_.size()) <= k) {
    add_frame(static_cast<int>(frame_vars_.size()));
  }
  Var bad_k = frame_var(k, machine_.bad);
  return solver_->solve({pos(bad_k)});
}

std::vector<std::vector<bool>> BmcEngine::extract_trace(int k) const {
  std::vector<std::vector<bool>> trace;
  trace.reserve(k + 1);
  for (int t = 0; t <= k; ++t) {
    std::vector<bool> inputs(machine_.num_primary_inputs);
    for (int i = 0; i < machine_.num_primary_inputs; ++i) {
      Var v = frame_vars_[t][machine_.primary_input(i)];
      inputs[i] = solver_->model()[v].is_true();
    }
    trace.push_back(std::move(inputs));
  }
  return trace;
}

BmcResult BmcEngine::run() {
  BmcResult result;
  for (int k = 0; k <= opts_.max_depth; ++k) {
    sat::SolveResult r = check_depth(k);
    result.decisions = solver_->stats().decisions;
    result.conflicts = solver_->stats().conflicts;
    switch (r) {
      case sat::SolveResult::kSat:
        result.verdict = BmcVerdict::kCounterexample;
        result.depth = k;
        result.trace = extract_trace(k);
        return result;
      case sat::SolveResult::kUnknown:
        result.verdict = BmcVerdict::kUnknown;
        result.depth = k;
        return result;
      case sat::SolveResult::kUnsat:
        break;  // next depth
    }
  }
  result.verdict = BmcVerdict::kNoCounterexample;
  result.depth = opts_.max_depth;
  return result;
}

BmcResult bounded_model_check(const SequentialCircuit& m, BmcOptions opts) {
  BmcEngine engine(m, opts);
  return engine.run();
}

}  // namespace sateda::bmc
