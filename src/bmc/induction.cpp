#include "bmc/induction.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "circuit/encoder.hpp"

namespace sateda::bmc {

using circuit::NodeId;

namespace {

/// Unroller with a *free* (unconstrained) initial state — the step
/// case of induction quantifies over all states, not reachable ones.
class StepEngine {
 public:
  StepEngine(const SequentialCircuit& m, const InductionOptions& opts)
      : machine_(m), opts_(opts) {
    sat::SolverOptions sopts = opts.solver;
    sopts.conflict_budget = opts.conflict_budget;
    solver_ = sat::make_engine(opts.engine, sopts);
  }

  /// Ensures frames 0..k exist (with pairwise-distinct states when
  /// requested).  The ¬bad hypothesis of each frame is not asserted
  /// hard; it is activated per query through the frame's selector, so
  /// an UNSAT answer carries a core over hypothesis frames.
  void extend_to(int k) {
    while (static_cast<int>(frames_.size()) <= k) add_frame();
  }

  /// SAT ⇔ the property is not yet inductive at strength k.  The ¬bad
  /// hypothesis is assumed (via selectors) on every frame before k.
  sat::SolveResult query_bad_at(int k) {
    extend_to(k);
    std::vector<Lit> assumptions;
    assumptions.reserve(static_cast<std::size_t>(k) + 1);
    for (int i = 0; i < k; ++i) assumptions.push_back(pos(frames_[i].good_sel));
    assumptions.push_back(pos(frames_[k].bad));
    return solver_->solve(assumptions);
  }

  /// After an UNSAT query_bad_at(k): the hypothesis frames in the
  /// (minimized) assumption core, ascending.  Sets \p minimal when the
  /// deletion pass proved the set irreducible.
  std::vector<int> core_frames(const sat::core::CoreMinimizeOptions& copts,
                               bool& minimal) {
    const sat::core::CoreResult r =
        sat::core::minimize_core(*solver_, solver_->conflict_core(), copts);
    minimal = r.unsat && r.minimal;
    std::vector<int> frames;
    for (Lit l : r.core) {
      auto it = frame_of_sel_.find(l.var());
      if (it != frame_of_sel_.end()) frames.push_back(it->second);
    }
    std::sort(frames.begin(), frames.end());
    return frames;
  }

  const sat::SatEngine& solver() const { return *solver_; }

 private:
  struct Frame {
    std::vector<Var> vars;  ///< per comb node
    Var bad = kNullVar;
    Var good_sel = kNullVar;  ///< selector activating ¬bad here
    std::vector<Var> state;  ///< state-input vars of this frame
  };

  void add_frame() {
    const circuit::Circuit& c = machine_.comb;
    const int k = static_cast<int>(frames_.size());
    Frame frame;
    frame.vars.assign(c.num_nodes(), kNullVar);
    CnfFormula f(solver_->num_vars());
    for (int i = 0; i < machine_.num_latches(); ++i) {
      NodeId s = machine_.state_input(i);
      frame.vars[s] = (k == 0)
                          ? solver_->new_var()  // free initial state
                          : frames_[k - 1].vars[machine_.next_state[i]];
      frame.state.push_back(frame.vars[s]);
    }
    for (int i = 0; i < machine_.num_primary_inputs; ++i) {
      frame.vars[machine_.primary_input(i)] = solver_->new_var();
    }
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      const circuit::Node& node = c.node(n);
      if (node.type == circuit::GateType::kInput) continue;
      frame.vars[n] = solver_->new_var();
      std::vector<Var> ins;
      for (NodeId fi : node.fanins) ins.push_back(frame.vars[fi]);
      circuit::encode_gate_clauses(node.type, frame.vars[n], ins, f);
    }
    frame.bad = frame.vars[machine_.bad];
    // Guarded hypothesis g_k → ¬bad_k; queries assume g_i for i < k.
    frame.good_sel = solver_->new_var();
    // Guard selectors are assumed in every later induction query.
    solver_->freeze(frame.good_sel);
    f.add_binary(neg(frame.good_sel), neg(frame.bad));
    frame_of_sel_.emplace(frame.good_sel, k);
    // Simple-path constraint: this frame's state differs from every
    // earlier frame's state.
    if (opts_.unique_states && machine_.num_latches() > 0) {
      for (const Frame& other : frames_) {
        std::vector<Lit> some_diff;
        for (int l = 0; l < machine_.num_latches(); ++l) {
          Var d = solver_->new_var();
          circuit::encode_gate_clauses(circuit::GateType::kXor, d,
                                       {frame.state[l], other.state[l]}, f);
          some_diff.push_back(pos(d));
        }
        f.add_clause(std::move(some_diff));
      }
    }
    (void)solver_->add_formula(f);
    frames_.push_back(std::move(frame));
  }

  const SequentialCircuit& machine_;
  InductionOptions opts_;
  std::unique_ptr<sat::SatEngine> solver_;
  std::vector<Frame> frames_;
  std::unordered_map<Var, int> frame_of_sel_;
};

}  // namespace

InductionResult prove_by_induction(const SequentialCircuit& m,
                                   InductionOptions opts) {
  InductionResult result;
  BmcOptions bopts;
  bopts.solver = opts.solver;
  bopts.engine = opts.engine;
  bopts.conflict_budget = opts.conflict_budget;
  BmcEngine base(m, bopts);
  StepEngine step(m, opts);

  for (int k = 0; k <= opts.max_k; ++k) {
    // Base: no counterexample of length k.
    switch (base.check_depth(k)) {
      case sat::SolveResult::kSat:
        result.verdict = InductionVerdict::kCounterexample;
        result.k = k;
        result.trace = base.extract_trace(k);
        return result;
      case sat::SolveResult::kUnknown:
        result.k = k;
        return result;
      case sat::SolveResult::kUnsat:
        break;
    }
    // Step: ¬bad over k arbitrary distinct states implies ¬bad next.
    switch (step.query_bad_at(k)) {
      case sat::SolveResult::kUnsat:
        result.verdict = InductionVerdict::kProved;
        result.k = k;
        if (opts.extract_step_core && k > 0) {
          result.used_frames =
              step.core_frames(opts.core, result.used_frames_minimal);
        }
        return result;
      case sat::SolveResult::kUnknown:
        result.k = k;
        return result;
      case sat::SolveResult::kSat:
        break;  // not yet inductive; strengthen
    }
  }
  result.k = opts.max_k;
  return result;
}

}  // namespace sateda::bmc
