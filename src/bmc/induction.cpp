#include "bmc/induction.hpp"

#include <cassert>

#include "circuit/encoder.hpp"

namespace sateda::bmc {

using circuit::NodeId;

namespace {

/// Unroller with a *free* (unconstrained) initial state — the step
/// case of induction quantifies over all states, not reachable ones.
class StepEngine {
 public:
  StepEngine(const SequentialCircuit& m, const InductionOptions& opts)
      : machine_(m), opts_(opts) {
    sat::SolverOptions sopts = opts.solver;
    sopts.conflict_budget = opts.conflict_budget;
    solver_ = sat::make_engine(opts.engine, sopts);
  }

  /// Ensures frames 0..k exist, with ¬bad asserted on frames < k and
  /// pairwise-distinct states when requested.
  void extend_to(int k) {
    while (static_cast<int>(frames_.size()) <= k) add_frame();
    // Assert ¬bad on all frames strictly before k (the last asserted
    // index only moves forward).
    while (asserted_good_ < k) {
      // A false return means vacuous safety at this frame; the engine
      // remembers and the next query reports kUnsat.
      (void)solver_->add_clause({neg(frames_[asserted_good_].bad)});
      ++asserted_good_;
    }
  }

  /// SAT ⇔ the property is not yet inductive at strength k.
  sat::SolveResult query_bad_at(int k) {
    extend_to(k);
    return solver_->solve({pos(frames_[k].bad)});
  }

  const sat::SatEngine& solver() const { return *solver_; }

 private:
  struct Frame {
    std::vector<Var> vars;  ///< per comb node
    Var bad = kNullVar;
    std::vector<Var> state;  ///< state-input vars of this frame
  };

  void add_frame() {
    const circuit::Circuit& c = machine_.comb;
    const int k = static_cast<int>(frames_.size());
    Frame frame;
    frame.vars.assign(c.num_nodes(), kNullVar);
    CnfFormula f(solver_->num_vars());
    for (int i = 0; i < machine_.num_latches(); ++i) {
      NodeId s = machine_.state_input(i);
      frame.vars[s] = (k == 0)
                          ? solver_->new_var()  // free initial state
                          : frames_[k - 1].vars[machine_.next_state[i]];
      frame.state.push_back(frame.vars[s]);
    }
    for (int i = 0; i < machine_.num_primary_inputs; ++i) {
      frame.vars[machine_.primary_input(i)] = solver_->new_var();
    }
    for (NodeId n = 0; n < static_cast<NodeId>(c.num_nodes()); ++n) {
      const circuit::Node& node = c.node(n);
      if (node.type == circuit::GateType::kInput) continue;
      frame.vars[n] = solver_->new_var();
      std::vector<Var> ins;
      for (NodeId fi : node.fanins) ins.push_back(frame.vars[fi]);
      circuit::encode_gate_clauses(node.type, frame.vars[n], ins, f);
    }
    frame.bad = frame.vars[machine_.bad];
    // Simple-path constraint: this frame's state differs from every
    // earlier frame's state.
    if (opts_.unique_states && machine_.num_latches() > 0) {
      for (const Frame& other : frames_) {
        std::vector<Lit> some_diff;
        for (int l = 0; l < machine_.num_latches(); ++l) {
          Var d = solver_->new_var();
          circuit::encode_gate_clauses(circuit::GateType::kXor, d,
                                       {frame.state[l], other.state[l]}, f);
          some_diff.push_back(pos(d));
        }
        f.add_clause(std::move(some_diff));
      }
    }
    (void)solver_->add_formula(f);
    frames_.push_back(std::move(frame));
  }

  const SequentialCircuit& machine_;
  InductionOptions opts_;
  std::unique_ptr<sat::SatEngine> solver_;
  std::vector<Frame> frames_;
  int asserted_good_ = 0;
};

}  // namespace

InductionResult prove_by_induction(const SequentialCircuit& m,
                                   InductionOptions opts) {
  InductionResult result;
  BmcOptions bopts;
  bopts.solver = opts.solver;
  bopts.engine = opts.engine;
  bopts.conflict_budget = opts.conflict_budget;
  BmcEngine base(m, bopts);
  StepEngine step(m, opts);

  for (int k = 0; k <= opts.max_k; ++k) {
    // Base: no counterexample of length k.
    switch (base.check_depth(k)) {
      case sat::SolveResult::kSat:
        result.verdict = InductionVerdict::kCounterexample;
        result.k = k;
        result.trace = base.extract_trace(k);
        return result;
      case sat::SolveResult::kUnknown:
        result.k = k;
        return result;
      case sat::SolveResult::kUnsat:
        break;
    }
    // Step: ¬bad over k arbitrary distinct states implies ¬bad next.
    switch (step.query_bad_at(k)) {
      case sat::SolveResult::kUnsat:
        result.verdict = InductionVerdict::kProved;
        result.k = k;
        return result;
      case sat::SolveResult::kUnknown:
        result.k = k;
        return result;
      case sat::SolveResult::kSat:
        break;  // not yet inductive; strengthen
    }
  }
  result.k = opts.max_k;
  return result;
}

}  // namespace sateda::bmc
