/// \file induction.hpp
/// \brief Temporal (k-)induction on top of the BMC unroller — the
///        natural extension of ref. [5] for actually *proving* safety
///        instead of only refuting it within a bound.
///
/// Property AG ¬bad is proved at strength k when
///   base:  no counterexample of length ≤ k (plain BMC), and
///   step:  ¬bad over k consecutive arbitrary (non-initialized) states
///          with pairwise-distinct states forces ¬bad in state k+1
///          (UNSAT of the step query).
/// The uniqueness (simple-path) constraint makes the method complete
/// for finite systems: k never needs to exceed the recurrence
/// diameter.
#pragma once

#include <string>

#include "bmc/bmc.hpp"
#include "sat/core/mus.hpp"

namespace sateda::bmc {

enum class InductionVerdict {
  kProved,           ///< safety holds for all depths
  kCounterexample,   ///< the base case found a real violation
  kUnknown,          ///< max_k or budget exhausted
};

inline std::string to_string(InductionVerdict v) {
  switch (v) {
    case InductionVerdict::kProved: return "PROVED";
    case InductionVerdict::kCounterexample: return "COUNTEREXAMPLE";
    case InductionVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct InductionResult {
  InductionVerdict verdict = InductionVerdict::kUnknown;
  int k = -1;  ///< proof strength, or counterexample depth
  std::vector<std::vector<bool>> trace;  ///< on kCounterexample
  /// On kProved with core extraction enabled: the frames i < k whose
  /// ¬bad hypothesis the step refutation actually needs, ascending —
  /// a minimized UNSAT core over the per-frame selector assumptions.
  /// Frames outside this set are irrelevant to the inductive argument.
  std::vector<int> used_frames;
  /// True when `used_frames` was proven minimal (deletion pass ran to
  /// completion within its solve budget).
  bool used_frames_minimal = false;
};

struct InductionOptions {
  int max_k = 32;
  std::int64_t conflict_budget = -1;  ///< per SAT query
  sat::SolverOptions solver;
  sat::EngineSpec engine;  ///< SAT backend (empty: CDCL)
  bool unique_states = true;  ///< simple-path constraint (completeness)
  /// On a successful step query, extract (and minimize) the UNSAT core
  /// over the per-frame ¬bad selectors to report which hypothesis
  /// frames the proof needs.
  bool extract_step_core = true;
  /// Minimization effort for the step core (refinement + deletion pass
  /// bounded by 64 solve calls).
  sat::core::CoreMinimizeOptions core{true, 4, true, 64};
};

/// Attempts to prove AG ¬bad by k-induction, increasing k from 0.
InductionResult prove_by_induction(const SequentialCircuit& m,
                                   InductionOptions opts = {});

}  // namespace sateda::bmc
