/// \file circuit_layer.hpp
/// \brief The structural layer of paper §5: a SolverListener that
///        maintains a justification frontier over an *unmodified* CDCL
///        solver whose variables are circuit node ids.
///
/// The paper's design point: "data structures used for SAT need not be
/// modified, and so existing algorithmic solutions for SAT can
/// naturally be augmented with the proposed layer".  Concretely:
///  * Deduce()/Diagnose() notify the layer through on_assign /
///    on_unassign, which update the t_v counters of fanout gates
///    (Table 3) and the justification frontier;
///  * Decide() consults satisfied(), which tests for an *empty
///    justification frontier* instead of full CNF satisfaction — so
///    solutions leave don't-care inputs unassigned (no
///    overspecification);
///  * Decide() may delegate branching to choose_branch(), which
///    performs simple backtracing along fanins (ref. [1] of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "sat/listener.hpp"
#include "sat/solver.hpp"

namespace sateda::csat {

/// §5: "the Decide() function can optionally be modified to perform
/// backtracing given the fanin information", citing [1]'s simple and
/// multiple backtracing.
enum class BacktraceMode {
  kNone,     ///< leave decisions to the SAT heuristic
  kSimple,   ///< walk one path to a decision point (PODEM-style)
  kMultiple, ///< propagate objective counts through all paths (FAN-style)
};

struct CircuitLayerOptions {
  /// Terminate as soon as the justification frontier empties (§5).
  bool frontier_termination = true;
  /// Steer decisions by backtracing from an unjustified node to an
  /// unassigned decision point (§5 "simple backtracing").
  bool backtrace_decisions = true;
  /// Backtrace all the way to primary inputs (PODEM-style); otherwise
  /// branch directly on the unjustified node's unassigned fanin.
  /// (Applies to kSimple.)
  bool backtrace_to_inputs = true;
  /// Simple vs multiple backtracing (effective when
  /// backtrace_decisions is true).
  BacktraceMode backtrace_mode = BacktraceMode::kSimple;
};

struct CircuitLayerStats {
  std::int64_t backtraces = 0;
  std::int64_t frontier_terminations = 0;
  std::int64_t max_frontier = 0;

  std::string summary() const {
    return "backtraces=" + std::to_string(backtraces) +
           " frontier_stops=" + std::to_string(frontier_terminations) +
           " max_frontier=" + std::to_string(max_frontier);
  }
};

/// Attach to a Solver whose variables 0..num_nodes-1 are the nodes of
/// \p circuit (i.e. the formula came from circuit::encode_circuit).
/// Extra solver variables are ignored by the layer.
class CircuitLayer : public sat::SolverListener {
 public:
  CircuitLayer(const circuit::Circuit& circuit,
               CircuitLayerOptions opts = {});

  // SolverListener interface ------------------------------------------
  void on_assign(Lit l, int level) override;
  void on_unassign(Lit l) override;
  Lit choose_branch(const sat::Solver& solver) override;
  bool satisfied(const sat::Solver& solver) override;

  // Introspection -------------------------------------------------------
  int num_unjustified() const { return num_unjustified_; }
  bool is_justified(circuit::NodeId n) const { return !unjustified_[n]; }
  const CircuitLayerStats& stats() const { return stats_; }

 private:
  bool node_justified(circuit::NodeId n, bool value) const;
  void mark(circuit::NodeId n);
  void unmark(circuit::NodeId n);
  /// Re-evaluates the justification state of an assigned gate after a
  /// counter change.
  void refresh(circuit::NodeId n);
  Lit simple_backtrace(const sat::Solver& solver, circuit::NodeId start);
  Lit multiple_backtrace(const sat::Solver& solver, circuit::NodeId start);

  const circuit::Circuit& circuit_;
  CircuitLayerOptions opts_;
  CircuitLayerStats stats_;

  std::vector<int> t0_, t1_;       ///< Table 3 counters, per node
  std::vector<int> u0_, u1_;       ///< Table 2 thresholds, per node
  std::vector<lbool> value_;       ///< mirror of the solver assignment
  std::vector<char> unjustified_;  ///< frontier membership, per node
  int num_unjustified_ = 0;
  std::vector<circuit::NodeId> frontier_stack_;  ///< lazy, for branching
  std::vector<long> obj0_, obj1_;  ///< multiple-backtrace demand scratch
};

}  // namespace sateda::csat
