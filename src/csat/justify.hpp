/// \file justify.hpp
/// \brief Justification thresholds and counters (paper §5, Tables 2-3).
///
/// For a circuit node x assigned value v:
///  * u_v(x) — threshold: how many suitably-assigned inputs are needed
///    to justify value v on x (Table 2).  For every simple gate
///    u_v(x) ∈ {1, |FI(x)|}.
///  * t_v(x) — counter: how many currently-assigned inputs contribute
///    to justifying v on x (Table 3).
/// Node x with value v is justified iff t_v(x) ≥ u_v(x).
#pragma once

#include <utility>

#include "circuit/gate.hpp"

namespace sateda::csat {

/// Table 2: thresholds {u0(x), u1(x)} for a gate of \p type with
/// \p num_fanins inputs.  Inputs and constants are always justified
/// (threshold 0).
constexpr std::pair<int, int> justify_thresholds(circuit::GateType type,
                                                 int num_fanins) {
  using circuit::GateType;
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return {0, 0};
    case GateType::kBuf:
    case GateType::kNot:
      return {1, 1};
    case GateType::kAnd:   // one 0 justifies 0; all 1 justify 1
      return {1, num_fanins};
    case GateType::kNand:  // all 1 justify 0; one 0 justifies 1
      return {num_fanins, 1};
    case GateType::kOr:    // all 0 justify 0; one 1 justifies 1
      return {num_fanins, 1};
    case GateType::kNor:   // one 1 justifies 0; all 0 justify 1
      return {1, num_fanins};
    case GateType::kXor:   // any value needs all inputs assigned
    case GateType::kXnor:
      return {num_fanins, num_fanins};
  }
  return {0, 0};
}

/// Table 3: counter deltas when one input of a gate of \p type becomes
/// assigned \p input_value.  Returns {dt0, dt1} to add to (t0, t1).
/// For XOR-like gates both counters advance on any input assignment.
constexpr std::pair<int, int> justify_counter_delta(circuit::GateType type,
                                                    bool input_value) {
  using circuit::GateType;
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return {0, 0};
    case GateType::kBuf:   // input 0 supports output 0; 1 supports 1
    case GateType::kAnd:
    case GateType::kOr:
      return input_value ? std::pair<int, int>{0, 1}
                         : std::pair<int, int>{1, 0};
    case GateType::kNot:   // input 0 supports output 1; 1 supports 0
    case GateType::kNand:
    case GateType::kNor:
      return input_value ? std::pair<int, int>{1, 0}
                         : std::pair<int, int>{0, 1};
    case GateType::kXor:
    case GateType::kXnor:
      return {1, 1};
  }
  return {0, 0};
}

}  // namespace sateda::csat
