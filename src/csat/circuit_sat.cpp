#include "csat/circuit_sat.hpp"

#include "circuit/encoder.hpp"

namespace sateda::csat {

using circuit::NodeId;

CircuitSatSolver::CircuitSatSolver(const circuit::Circuit& circuit,
                                   CircuitSatOptions opts)
    : circuit_(circuit),
      opts_(opts),
      solver_(opts.solver),
      layer_(circuit, opts.layer) {
  solver_.set_listener(&layer_);
  node_encoded_.assign(circuit.num_nodes(), 0);
  solver_.ensure_var(static_cast<Var>(circuit_.num_nodes()) - 1);
}

void CircuitSatSolver::ensure_encoded(const std::vector<NodeId>& roots) {
  // Incrementally encode any not-yet-encoded gate in the fanin cones
  // of the roots, so repeated solves with different objectives stay
  // sound and reuse previously added clauses (§6 incremental SAT).
  std::vector<NodeId> stack(roots.begin(), roots.end());
  CnfFormula f(static_cast<int>(circuit_.num_nodes()));
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (node_encoded_[n]) continue;
    node_encoded_[n] = 1;
    circuit::encode_gate(circuit_, n, f);
    for (NodeId fi : circuit_.node(n).fanins) {
      if (!node_encoded_[fi]) stack.push_back(fi);
    }
  }
  // Gate encodings alone cannot refute the root; if an earlier solve
  // already did, the next solve() reports kUnsat regardless.
  (void)solver_.add_formula(f);
}

CircuitSatResult CircuitSatSolver::solve(
    const std::vector<std::pair<NodeId, bool>>& objectives) {
  std::vector<NodeId> roots;
  roots.reserve(objectives.size());
  for (auto [n, v] : objectives) roots.push_back(n);
  if (opts_.cone_of_influence) {
    ensure_encoded(roots);
  } else {
    std::vector<NodeId> all(circuit_.num_nodes());
    for (NodeId n = 0; n < static_cast<NodeId>(circuit_.num_nodes()); ++n) {
      all[n] = n;
    }
    ensure_encoded(all);
  }
  std::vector<Lit> assumptions;
  assumptions.reserve(objectives.size());
  for (auto [n, v] : objectives) {
    assumptions.push_back(Lit(static_cast<Var>(n), !v));
  }
  CircuitSatResult r;
  r.result = solver_.solve(assumptions);
  if (r.result == sat::SolveResult::kSat) {
    r.node_values.assign(circuit_.num_nodes(), l_undef);
    for (NodeId n = 0; n < static_cast<NodeId>(circuit_.num_nodes()); ++n) {
      if (static_cast<std::size_t>(n) < solver_.model().size()) {
        r.node_values[n] = solver_.model()[n];
      }
    }
    r.input_pattern.reserve(circuit_.inputs().size());
    for (NodeId i : circuit_.inputs()) {
      lbool v = r.node_values[i];
      r.input_pattern.push_back(v);
      if (!v.is_undef()) ++r.specified_inputs;
    }
  }
  return r;
}

}  // namespace sateda::csat
