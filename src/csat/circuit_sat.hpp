/// \file circuit_sat.hpp
/// \brief High-level interface for solving satisfiability problems
///        (C, o) on combinational circuits (paper §5): the CNF model
///        of §2 augmented with the structural layer.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"
#include "csat/circuit_layer.hpp"
#include "sat/options.hpp"
#include "sat/solver.hpp"

namespace sateda::csat {

struct CircuitSatOptions {
  CircuitLayerOptions layer;
  sat::SolverOptions solver;
  /// Encode only the transitive fanin cones of the objectives instead
  /// of the whole circuit.
  bool cone_of_influence = true;
};

struct CircuitSatResult {
  sat::SolveResult result = sat::SolveResult::kUnknown;
  /// Value of every circuit node (l_undef = don't care / unassigned).
  std::vector<lbool> node_values;
  /// Primary input pattern, in Circuit::inputs() order.  With the
  /// justification layer this is typically *partial* — the paper's §5
  /// fix for overspecified patterns.
  std::vector<lbool> input_pattern;
  /// Number of inputs actually specified in input_pattern.
  int specified_inputs = 0;
};

/// One-stop solver for circuit objectives.
class CircuitSatSolver {
 public:
  explicit CircuitSatSolver(const circuit::Circuit& circuit,
                            CircuitSatOptions opts = {});

  /// Decides whether the objectives (node=value, ANDed together) are
  /// attainable, and if so returns a (possibly partial) input pattern.
  CircuitSatResult solve(
      const std::vector<std::pair<circuit::NodeId, bool>>& objectives);

  CircuitSatResult solve(circuit::NodeId node, bool value) {
    return solve({{node, value}});
  }

  const sat::Solver& solver() const { return solver_; }
  /// Mutable access, e.g. for adding blocking clauses between solves.
  sat::Solver& solver() { return solver_; }
  const CircuitLayer& layer() const { return layer_; }

 private:
  void ensure_encoded(const std::vector<circuit::NodeId>& roots);

  const circuit::Circuit& circuit_;
  CircuitSatOptions opts_;
  sat::Solver solver_;
  CircuitLayer layer_;
  std::vector<char> node_encoded_;
};

}  // namespace sateda::csat
