#include "csat/circuit_layer.hpp"

#include <algorithm>
#include <queue>
#include <cassert>

#include "csat/justify.hpp"

namespace sateda::csat {

using circuit::GateType;
using circuit::NodeId;

CircuitLayer::CircuitLayer(const circuit::Circuit& circuit,
                           CircuitLayerOptions opts)
    : circuit_(circuit), opts_(opts) {
  const std::size_t n = circuit.num_nodes();
  t0_.assign(n, 0);
  t1_.assign(n, 0);
  u0_.resize(n);
  u1_.resize(n);
  value_.assign(n, l_undef);
  unjustified_.assign(n, 0);
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    auto [v0, v1] = justify_thresholds(circuit.node(id).type,
                                       static_cast<int>(circuit.node(id).fanins.size()));
    u0_[id] = v0;
    u1_[id] = v1;
  }
}

bool CircuitLayer::node_justified(NodeId n, bool value) const {
  return value ? t1_[n] >= u1_[n] : t0_[n] >= u0_[n];
}

void CircuitLayer::mark(NodeId n) {
  if (unjustified_[n]) return;
  unjustified_[n] = 1;
  ++num_unjustified_;
  frontier_stack_.push_back(n);
  stats_.max_frontier =
      std::max<std::int64_t>(stats_.max_frontier, num_unjustified_);
}

void CircuitLayer::unmark(NodeId n) {
  if (!unjustified_[n]) return;
  unjustified_[n] = 0;
  --num_unjustified_;
}

void CircuitLayer::refresh(NodeId n) {
  if (value_[n].is_undef()) return;
  if (node_justified(n, value_[n].is_true())) {
    unmark(n);
  } else {
    mark(n);
  }
}

void CircuitLayer::on_assign(Lit l, int /*level*/) {
  const NodeId x = l.var();
  if (x >= static_cast<NodeId>(circuit_.num_nodes())) return;  // helper var
  const bool v = !l.negative();
  value_[x] = lbool(v);
  // The node itself may need justification (Table 2 check).
  refresh(x);
  // Its fanout gates gain an assigned input (Table 3 update).
  for (NodeId g : circuit_.fanouts(x)) {
    auto [d0, d1] = justify_counter_delta(circuit_.node(g).type, v);
    t0_[g] += d0;
    t1_[g] += d1;
    refresh(g);
  }
}

void CircuitLayer::on_unassign(Lit l) {
  const NodeId x = l.var();
  if (x >= static_cast<NodeId>(circuit_.num_nodes())) return;
  const bool v = !l.negative();
  value_[x] = l_undef;
  unmark(x);
  for (NodeId g : circuit_.fanouts(x)) {
    auto [d0, d1] = justify_counter_delta(circuit_.node(g).type, v);
    t0_[g] -= d0;
    t1_[g] -= d1;
    refresh(g);
  }
}

bool CircuitLayer::satisfied(const sat::Solver& /*solver*/) {
  if (!opts_.frontier_termination) return false;
  if (num_unjustified_ == 0) {
    ++stats_.frontier_terminations;
    return true;
  }
  return false;
}

Lit CircuitLayer::choose_branch(const sat::Solver& solver) {
  if (!opts_.backtrace_decisions ||
      opts_.backtrace_mode == BacktraceMode::kNone) {
    return kUndefLit;
  }
  // Find a live frontier node (lazy stack, compacted as we go).
  NodeId start = circuit::kNullNode;
  while (!frontier_stack_.empty()) {
    NodeId cand = frontier_stack_.back();
    if (unjustified_[cand]) {
      start = cand;
      break;
    }
    frontier_stack_.pop_back();
  }
  if (start == circuit::kNullNode) return kUndefLit;

  ++stats_.backtraces;
  return opts_.backtrace_mode == BacktraceMode::kMultiple
             ? multiple_backtrace(solver, start)
             : simple_backtrace(solver, start);
}

Lit CircuitLayer::simple_backtrace(const sat::Solver& solver, NodeId start) {
  // Simple backtracing [Abramovici et al.]: walk from the unjustified
  // node toward the inputs through unassigned nodes, tracking the
  // objective value across gate inversions.
  NodeId node = start;
  bool objective = value_[node].is_true();
  for (int guard = 0; guard < static_cast<int>(circuit_.num_nodes()); ++guard) {
    const circuit::Node& n = circuit_.node(node);
    // Desired value on the chosen fanin.
    bool fanin_obj;
    switch (n.type) {
      case GateType::kBuf: fanin_obj = objective; break;
      case GateType::kNot: fanin_obj = !objective; break;
      case GateType::kAnd: fanin_obj = objective; break;         // 1→all 1, 0→one 0
      case GateType::kNand: fanin_obj = !objective; break;       // 1→one 0, 0→all 1
      case GateType::kOr: fanin_obj = objective; break;          // 0→all 0, 1→one 1
      case GateType::kNor: fanin_obj = !objective; break;
      case GateType::kXor:
      case GateType::kXnor: fanin_obj = objective; break;        // either works
      default: return kUndefLit;  // reached an input/constant (shouldn't)
    }
    // Pick the first unassigned fanin.
    NodeId next = circuit::kNullNode;
    for (NodeId f : n.fanins) {
      if (solver.value(Var{f}).is_undef()) {
        next = f;
        break;
      }
    }
    if (next == circuit::kNullNode) {
      // Every fanin assigned yet unjustified: propagation-consistent
      // states cannot reach here for simple gates; bail to the default
      // heuristic defensively.
      return kUndefLit;
    }
    const circuit::Node& nn = circuit_.node(next);
    const bool at_decision_point =
        !opts_.backtrace_to_inputs || nn.type == GateType::kInput ||
        nn.fanins.empty();
    if (at_decision_point) {
      return Lit(static_cast<Var>(next), /*negative=*/!fanin_obj);
    }
    node = next;
    objective = fanin_obj;
  }
  return kUndefLit;
}

Lit CircuitLayer::multiple_backtrace(const sat::Solver& solver, NodeId start) {
  // Multiple backtracing [Abramovici et al., FAN]: propagate objective
  // demands (how many pending justifications want value 0/1 on a line)
  // from the frontier node through every unassigned path, then branch
  // on the primary input with the strongest combined demand.  Nodes
  // are processed in decreasing id, which is reverse topological order.
  if (obj0_.size() != circuit_.num_nodes()) {
    obj0_.assign(circuit_.num_nodes(), 0);
    obj1_.assign(circuit_.num_nodes(), 0);
  }
  std::priority_queue<NodeId> queue;
  std::vector<NodeId> touched;
  auto demand = [&](NodeId n, bool value, long amount) {
    if (amount <= 0) return;
    if (obj0_[n] == 0 && obj1_[n] == 0) {
      queue.push(n);
      touched.push_back(n);
    }
    (value ? obj1_ : obj0_)[n] += amount;
  };
  demand(start, value_[start].is_true(), 1);

  NodeId best_pi = circuit::kNullNode;
  long best_score = 0;
  bool best_value = false;
  while (!queue.empty()) {
    NodeId n = queue.top();
    queue.pop();
    long d0 = obj0_[n], d1 = obj1_[n];
    obj0_[n] = obj1_[n] = 0;
    if (d0 == 0 && d1 == 0) continue;  // duplicate queue entry
    const circuit::Node& node = circuit_.node(n);
    const bool assigned = !solver.value(Var{n}).is_undef();
    if (node.type == GateType::kInput) {
      if (!assigned && d0 + d1 > best_score) {
        best_score = d0 + d1;
        best_pi = n;
        best_value = d1 >= d0;
      }
      continue;
    }
    // Objectives only flow through the frontier node itself (assigned,
    // unjustified) and unassigned interior nodes.
    if (assigned && n != start) continue;
    auto first_unassigned = [&]() -> NodeId {
      for (NodeId f : node.fanins) {
        if (solver.value(Var{f}).is_undef()) return f;
      }
      return circuit::kNullNode;
    };
    switch (node.type) {
      case GateType::kBuf:
        demand(node.fanins[0], true, d1);
        demand(node.fanins[0], false, d0);
        break;
      case GateType::kNot:
        demand(node.fanins[0], true, d0);
        demand(node.fanins[0], false, d1);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        const bool inv = (node.type == GateType::kNand);
        const long all_ones = inv ? d0 : d1;   // output needs every input 1
        const long one_zero = inv ? d1 : d0;   // output needs some input 0
        for (NodeId f : node.fanins) {
          if (solver.value(Var{f}).is_undef()) demand(f, true, all_ones);
        }
        NodeId pick = first_unassigned();
        if (pick != circuit::kNullNode) demand(pick, false, one_zero);
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const bool inv = (node.type == GateType::kNor);
        const long all_zeros = inv ? d1 : d0;
        const long one_one = inv ? d0 : d1;
        for (NodeId f : node.fanins) {
          if (solver.value(Var{f}).is_undef()) demand(f, false, all_zeros);
        }
        NodeId pick = first_unassigned();
        if (pick != circuit::kNullNode) demand(pick, true, one_one);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        // Either polarity on each input can serve: spread the demand.
        for (NodeId f : node.fanins) {
          if (!solver.value(Var{f}).is_undef()) continue;
          demand(f, true, d0 + d1);
          demand(f, false, d0 + d1);
        }
        break;
      }
      default:
        break;  // constants: nothing to justify
    }
  }
  for (NodeId n : touched) obj0_[n] = obj1_[n] = 0;  // defensive reset
  if (best_pi == circuit::kNullNode) {
    // No unassigned PI demand (e.g. objectives died at assigned
    // boundaries): fall back to simple backtracing.
    return simple_backtrace(solver, start);
  }
  return Lit(static_cast<Var>(best_pi), /*negative=*/!best_value);
}

}  // namespace sateda::csat
