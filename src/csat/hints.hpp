/// \file hints.hpp
/// \brief Structure hints: netlist knowledge packaged for the solver.
///
/// The paper's circuit-SAT engine (§5) branches on primary inputs and
/// justification-frontier nodes and picks the decision value with the
/// smaller justification threshold (Table 2).  A plain CDCL solver
/// sees none of that once the circuit is Tseitin-flattened.
/// StructureHints reconstructs it on the CNF side: per-objective cone
/// variable groups, a branching priority list (in-cone primary inputs
/// plus the objective's immediate fanins — the initial justification
/// frontier), and per-variable phase hints derived from the gate
/// thresholds.  `apply()` pushes all of it through the generic
/// SatEngine hooks (`bump_variable` / `set_polarity`), so it works for
/// the single solver, the portfolio, and cube workers alike.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "circuit/netlist.hpp"
#include "cnf/literal.hpp"
#include "sat/engine.hpp"

namespace sateda::csat {

struct StructureHints {
  /// One variable group per objective: the CNF variables of the
  /// objective's transitive fanin cone, inputs first.
  std::vector<std::vector<Var>> cone_groups;
  /// Variables to branch on first (descending priority): in-cone
  /// primary inputs, then the objectives' immediate fanins (the
  /// justification frontier at decision level 0).
  std::vector<Var> priority;
  /// Saved-phase seeds: (var, value) where `value` is the gate's
  /// easier-to-justify output value (smaller Table 2 threshold).
  std::vector<std::pair<Var, bool>> phases;

  bool empty() const {
    return cone_groups.empty() && priority.empty() && phases.empty();
  }
  /// Feeds the hints to \p engine: one activity bump per cone variable,
  /// extra bumps for priority variables (last = highest activity), and
  /// a polarity seed per phase hint.
  void apply(sat::SatEngine& engine) const;
  std::string summary() const;
};

/// Builds hints for \p c under the node→CNF-variable map
/// \p node_to_var (kNullVar entries are skipped — out-of-cone nodes of
/// a compact encoding).  \p objectives lists (node, value) pairs the
/// formula asserts, typically the encode_objectives call's argument.
StructureHints make_structure_hints(
    const circuit::Circuit& c, const std::vector<Var>& node_to_var,
    const std::vector<std::pair<circuit::NodeId, bool>>& objectives);

}  // namespace sateda::csat
