#include "csat/hints.hpp"

#include <algorithm>

#include "csat/justify.hpp"

namespace sateda::csat {

using circuit::Circuit;
using circuit::GateType;
using circuit::NodeId;

void StructureHints::apply(sat::SatEngine& engine) const {
  const Var limit = static_cast<Var>(engine.num_vars());
  auto in_range = [&](Var v) { return v >= 0 && v < limit; };
  // Baseline: every in-cone variable gets one bump so cone variables
  // outrank auxiliary variables (assumption selectors, frame copies).
  for (const auto& group : cone_groups)
    for (Var v : group)
      if (in_range(v)) engine.bump_variable(v);
  // Priority variables (inputs, justification frontier) get extra
  // bumps, in order, so the decision heap tries them first.
  for (Var v : priority) {
    if (!in_range(v)) continue;
    engine.bump_variable(v);
    engine.bump_variable(v);
  }
  for (const auto& [v, value] : phases)
    if (in_range(v)) engine.set_polarity(v, value);
}

std::string StructureHints::summary() const {
  std::size_t grouped = 0;
  for (const auto& g : cone_groups) grouped += g.size();
  return "hints: " + std::to_string(cone_groups.size()) + " cones (" +
         std::to_string(grouped) + " vars), " +
         std::to_string(priority.size()) + " priority, " +
         std::to_string(phases.size()) + " phases";
}

StructureHints make_structure_hints(
    const Circuit& c, const std::vector<Var>& node_to_var,
    const std::vector<std::pair<NodeId, bool>>& objectives) {
  StructureHints h;
  const auto n = static_cast<NodeId>(c.num_nodes());
  std::vector<char> in_any_cone(n, 0);
  std::vector<char> in_priority(n, 0);

  for (const auto& [root, value] : objectives) {
    (void)value;
    // Per-objective cone, inputs first within the group.
    std::vector<char> seen(n, 0);
    std::vector<NodeId> stack{root};
    std::vector<Var> input_vars, gate_vars;
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = 1;
      in_any_cone[id] = 1;
      const circuit::Node& nd = c.node(id);
      const Var v = node_to_var[id];
      if (v != kNullVar) {
        (nd.type == GateType::kInput ? input_vars : gate_vars).push_back(v);
      }
      for (NodeId fi : nd.fanins) stack.push_back(fi);
    }
    std::vector<Var> group = std::move(input_vars);
    group.insert(group.end(), gate_vars.begin(), gate_vars.end());
    h.cone_groups.push_back(std::move(group));
    // The objective's immediate fanins form the initial justification
    // frontier (paper §5): once the objective value is asserted, these
    // are the nodes whose values decide whether it is justified.
    for (NodeId fi : c.node(root).fanins) in_priority[fi] = 1;
  }

  // Priority list: in-cone primary inputs first (the paper's engine
  // ultimately branches on inputs), then the frontier nodes.  apply()
  // bumps in order, so later entries end up hottest — put the frontier
  // last to make it the first decision.
  for (NodeId id = 0; id < n; ++id) {
    if (!in_any_cone[id] || node_to_var[id] == kNullVar) continue;
    if (c.node(id).type == GateType::kInput && !in_priority[id])
      h.priority.push_back(node_to_var[id]);
  }
  for (NodeId id = 0; id < n; ++id) {
    if (in_priority[id] && node_to_var[id] != kNullVar)
      h.priority.push_back(node_to_var[id]);
  }

  // Phase hints: prefer the output value with the smaller Table 2
  // justification threshold — the value one input can produce.
  for (NodeId id = 0; id < n; ++id) {
    if (!in_any_cone[id] || node_to_var[id] == kNullVar) continue;
    const circuit::Node& nd = c.node(id);
    const auto [u0, u1] =
        justify_thresholds(nd.type, static_cast<int>(nd.fanins.size()));
    if (u0 == u1) continue;  // XOR-like or single-input: no preference
    h.phases.emplace_back(node_to_var[id], u1 < u0);
  }
  return h;
}

}  // namespace sateda::csat
