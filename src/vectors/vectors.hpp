/// \file vectors.hpp
/// \brief Functional test vector generation (paper §3, ref. [13]):
///        enumerate distinct input vectors that drive a constraint
///        node of a circuit to a required value — e.g. exercising a
///        coverage condition in an HDL model.  Implemented as
///        solution enumeration with blocking clauses over the primary
///        inputs on one incremental solver.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "sat/options.hpp"

namespace sateda::vectors {

struct VectorGenOptions {
  /// Block the partial input cube rather than a fully specified
  /// vector: excludes the whole cube from future solutions, which
  /// spreads the enumeration across the input space faster.  Requires
  /// the §5 layer (partial patterns).
  bool block_cubes = true;
  bool use_structural_layer = true;
  std::uint64_t fill_seed = 11;  ///< don't-care completion
  sat::SolverOptions solver;
};

struct VectorGenResult {
  /// Complete, pairwise-distinct input vectors, each satisfying the
  /// constraint.
  std::vector<std::vector<bool>> vectors;
  /// True when enumeration exhausted the solution space before
  /// reaching the requested count.
  bool exhausted = false;
  int sat_calls = 0;
};

/// Generates up to \p count distinct vectors with
/// circuit node \p constraint = \p value.
VectorGenResult generate_vectors(const circuit::Circuit& c,
                                 circuit::NodeId constraint, bool value,
                                 int count, VectorGenOptions opts = {});

}  // namespace sateda::vectors
