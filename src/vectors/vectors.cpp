#include "vectors/vectors.hpp"

#include <random>

#include "circuit/encoder.hpp"
#include "csat/circuit_sat.hpp"

namespace sateda::vectors {

using circuit::NodeId;

VectorGenResult generate_vectors(const circuit::Circuit& c,
                                 NodeId constraint, bool value, int count,
                                 VectorGenOptions opts) {
  VectorGenResult result;
  csat::CircuitSatOptions copts;
  copts.solver = opts.solver;
  copts.layer.frontier_termination = opts.use_structural_layer;
  copts.layer.backtrace_decisions = opts.use_structural_layer;

  csat::CircuitSatSolver solver(c, copts);
  std::mt19937_64 rng(opts.fill_seed);
  std::bernoulli_distribution coin(0.5);

  while (static_cast<int>(result.vectors.size()) < count) {
    ++result.sat_calls;
    csat::CircuitSatResult r = solver.solve(constraint, value);
    if (r.result != sat::SolveResult::kSat) {
      result.exhausted = (r.result == sat::SolveResult::kUnsat);
      break;
    }
    // Complete the pattern.
    std::vector<bool> vec(c.inputs().size());
    for (std::size_t i = 0; i < vec.size(); ++i) {
      vec[i] = r.input_pattern[i].is_undef() ? coin(rng)
                                             : r.input_pattern[i].is_true();
    }
    result.vectors.push_back(vec);
    // Blocking clause: exclude the cube (partial pattern) or the
    // completed vector from future solutions.
    std::vector<Lit> block;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      Var v = static_cast<Var>(c.inputs()[i]);
      if (opts.block_cubes) {
        if (!r.input_pattern[i].is_undef()) {
          block.push_back(Lit(v, r.input_pattern[i].is_true()));
        }
      } else {
        block.push_back(Lit(v, vec[i]));
      }
    }
    // An empty block means every input is don't care — the constraint
    // holds universally and exactly the recorded vectors exist... in
    // cube mode that single cube covers everything: stop.
    if (block.empty()) {
      result.exhausted = true;
      break;
    }
    solver.solver().add_clause(std::move(block));
  }
  return result;
}

}  // namespace sateda::vectors
