#include "cnf/dimacs.hpp"

#include <fstream>
#include <sstream>

namespace sateda {

namespace {

Lit lit_from_dimacs(long code) {
  Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
  return Lit(v, code < 0);
}

}  // namespace

CnfFormula read_dimacs(std::istream& in) {
  CnfFormula f;
  bool saw_header = false;
  std::string token;
  std::vector<Lit> current;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ls >> token;
    if (!ls) continue;
    if (token == "c" || token[0] == 'c') continue;  // comment
    if (token == "p") {
      std::string fmt;
      long nv = 0, nc = 0;
      ls >> fmt >> nv >> nc;
      if (!ls || fmt != "cnf" || nv < 0) {
        throw DimacsError("malformed DIMACS header: " + line);
      }
      if (nv > 0) f.ensure_var(static_cast<Var>(nv - 1));
      saw_header = true;
      continue;
    }
    // Clause data; the first token is already consumed.
    std::istringstream rest(line);
    long code;
    while (rest >> code) {
      if (code == 0) {
        f.add_clause(Clause(current));
        current.clear();
      } else {
        current.push_back(lit_from_dimacs(code));
      }
    }
    if (!rest.eof()) {
      throw DimacsError("malformed DIMACS clause line: " + line);
    }
  }
  if (!current.empty()) {
    throw DimacsError("DIMACS input ends inside a clause (missing 0)");
  }
  if (!saw_header && f.num_clauses() == 0 && f.num_vars() == 0) {
    // Empty input is a legal (trivially satisfiable) formula.
  }
  return f;
}

CnfFormula read_dimacs_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DimacsError("cannot open DIMACS file: " + path);
  return read_dimacs(in);
}

CnfFormula read_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, const CnfFormula& f,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream cs(comment);
    std::string line;
    while (std::getline(cs, line)) out << "c " << line << "\n";
  }
  out << "p cnf " << f.num_vars() << " " << f.num_clauses() << "\n";
  for (const Clause& c : f) {
    for (Lit l : c) {
      out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

void write_dimacs_file(const std::string& path, const CnfFormula& f,
                       const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw DimacsError("cannot open file for writing: " + path);
  write_dimacs(out, f, comment);
}

std::string to_dimacs_string(const CnfFormula& f) {
  std::ostringstream out;
  write_dimacs(out, f);
  return out.str();
}

}  // namespace sateda
