#include "cnf/dimacs.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace sateda {

namespace {

/// Largest DIMACS variable index a Lit can encode (2*var+1 must fit in
/// the 32-bit literal code).
constexpr long long kMaxDimacsVar = 1LL << 30;

Lit lit_from_dimacs(long long code) {
  Var v = static_cast<Var>((code < 0 ? -code : code) - 1);
  return Lit(v, code < 0);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw DimacsError("line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

CnfFormula read_dimacs(std::istream& in, const DimacsOptions& opts) {
  CnfFormula f;
  bool saw_header = false;
  long long declared_vars = 0;
  long long declared_clauses = 0;
  long long clauses_read = 0;
  std::vector<Lit> current;
  std::size_t clause_start_line = 0;  // line the open clause began on
  std::string line;
  std::string tok;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    if (!(ls >> tok)) continue;       // blank line
    if (tok[0] == 'c') continue;      // comment
    if (tok == "p") {
      if (saw_header) fail(line_no, "duplicate DIMACS header");
      if (clauses_read > 0 || !current.empty()) {
        fail(line_no, "DIMACS header after clause data");
      }
      std::string fmt;
      if (!(ls >> fmt >> declared_vars >> declared_clauses) || fmt != "cnf" ||
          declared_vars < 0 || declared_clauses < 0) {
        fail(line_no, "malformed 'p cnf <vars> <clauses>' header: " + line);
      }
      if (ls >> tok) {
        fail(line_no, "trailing token '" + tok + "' after DIMACS header");
      }
      if (declared_vars > kMaxDimacsVar) {
        fail(line_no, "declared variable count " +
                          std::to_string(declared_vars) +
                          " exceeds the representable range");
      }
      if (declared_vars > 0) f.ensure_var(static_cast<Var>(declared_vars - 1));
      saw_header = true;
      continue;
    }
    // Clause data: reparse the whole line token by token.
    std::istringstream rest(line);
    while (rest >> tok) {
      if (tok[0] == 'c') break;  // trailing comment
      long long code = 0;
      const char* end = tok.data() + tok.size();
      auto [ptr, ec] = std::from_chars(tok.data(), end, code);
      if (ec == std::errc::result_out_of_range) {
        fail(line_no, "literal '" + tok + "' overflows");
      }
      if (ec != std::errc() || ptr != end) {
        fail(line_no, "bad token '" + tok + "' in clause data");
      }
      if (code == 0) {
        f.add_clause(Clause(current));
        current.clear();
        clause_start_line = 0;
        ++clauses_read;
        continue;
      }
      const long long mag = code < 0 ? -code : code;
      if (mag > kMaxDimacsVar) {
        fail(line_no, "literal '" + tok +
                          "' is outside the representable variable range");
      }
      if (opts.strict_header_bounds) {
        if (!saw_header) fail(line_no, "clause data before DIMACS header");
        if (mag > declared_vars) {
          fail(line_no, "literal '" + tok + "' exceeds the declared " +
                            std::to_string(declared_vars) + " variables");
        }
      }
      if (current.empty()) clause_start_line = line_no;
      current.push_back(lit_from_dimacs(code));
    }
  }
  if (!current.empty()) {
    fail(clause_start_line,
         "clause is missing its terminating 0 at end of input");
  }
  if (opts.strict_clause_count && saw_header &&
      clauses_read != declared_clauses) {
    fail(line_no, "header declares " + std::to_string(declared_clauses) +
                      " clauses but the input holds " +
                      std::to_string(clauses_read));
  }
  return f;
}

CnfFormula read_dimacs_file(const std::string& path,
                            const DimacsOptions& opts) {
  std::ifstream in(path);
  if (!in) throw DimacsError("cannot open DIMACS file: " + path);
  return read_dimacs(in, opts);
}

CnfFormula read_dimacs_string(const std::string& text,
                              const DimacsOptions& opts) {
  std::istringstream in(text);
  return read_dimacs(in, opts);
}

void write_dimacs(std::ostream& out, const CnfFormula& f,
                  const std::string& comment) {
  if (!comment.empty()) {
    std::istringstream cs(comment);
    std::string line;
    while (std::getline(cs, line)) out << "c " << line << "\n";
  }
  out << "p cnf " << f.num_vars() << " " << f.num_clauses() << "\n";
  for (const Clause& c : f) {
    for (Lit l : c) {
      out << (l.negative() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
}

void write_dimacs_file(const std::string& path, const CnfFormula& f,
                       const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw DimacsError("cannot open file for writing: " + path);
  write_dimacs(out, f, comment);
}

std::string to_dimacs_string(const CnfFormula& f) {
  std::ostringstream out;
  write_dimacs(out, f);
  return out.str();
}

}  // namespace sateda
