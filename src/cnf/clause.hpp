/// \file clause.hpp
/// \brief A disjunction of literals plus the bookkeeping used by the
///        CDCL engine (activity, learnt flag, deletion mark).
#pragma once

#include <algorithm>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "cnf/literal.hpp"

namespace sateda {

/// A clause: the disjunction of one or more literals.
///
/// The literal order is not semantically meaningful but the solver
/// keeps its two watched literals in positions 0 and 1.
class Clause {
 public:
  Clause() = default;
  explicit Clause(std::vector<Lit> lits, bool learnt = false)
      : lits_(std::move(lits)), learnt_(learnt) {}
  Clause(std::initializer_list<Lit> lits, bool learnt = false)
      : lits_(lits), learnt_(learnt) {}

  std::size_t size() const { return lits_.size(); }
  bool empty() const { return lits_.empty(); }

  Lit& operator[](std::size_t i) { return lits_[i]; }
  Lit operator[](std::size_t i) const { return lits_[i]; }

  auto begin() { return lits_.begin(); }
  auto end() { return lits_.end(); }
  auto begin() const { return lits_.begin(); }
  auto end() const { return lits_.end(); }

  std::span<const Lit> literals() const { return lits_; }
  std::vector<Lit>& mutable_literals() { return lits_; }

  /// True iff this clause was derived by conflict analysis or another
  /// learning mechanism (as opposed to belonging to the input formula).
  bool learnt() const { return learnt_; }
  void set_learnt(bool l) { learnt_ = l; }

  /// Bump-decayed activity used by the clause-deletion policy.
  double activity() const { return activity_; }
  void set_activity(double a) { activity_ = a; }

  /// Literal block distance (number of distinct decision levels) at
  /// learning time; a secondary quality metric for deletion.
  int lbd() const { return lbd_; }
  void set_lbd(int l) { lbd_ = l; }

  /// Marked clauses are garbage and skipped until compaction.
  bool deleted() const { return deleted_; }
  void mark_deleted() { deleted_ = true; }

  /// True iff the clause contains \p l.
  bool contains(Lit l) const {
    return std::find(lits_.begin(), lits_.end(), l) != lits_.end();
  }

  /// Canonicalizes: sorts literals and removes duplicates.  Returns
  /// false if the clause is a tautology (contains l and ~l) — the
  /// caller should then discard it.
  bool normalize() {
    std::sort(lits_.begin(), lits_.end());
    lits_.erase(std::unique(lits_.begin(), lits_.end()), lits_.end());
    for (std::size_t i = 0; i + 1 < lits_.size(); ++i) {
      if (lits_[i].var() == lits_[i + 1].var()) return false;
    }
    return true;
  }

 private:
  std::vector<Lit> lits_;
  double activity_ = 0.0;
  int lbd_ = 0;
  bool learnt_ = false;
  bool deleted_ = false;
};

/// Renders a clause as "(x1 + -x3 + x7)".
inline std::string to_string(const Clause& c) {
  std::string s = "(";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) s += " + ";
    s += to_string(c[i]);
  }
  return s + ")";
}

// Clause references inside the solver are arena offsets now — see
// sat/arena.hpp (CRef).  Clause here remains the formula-level
// container used by CnfFormula and the preprocessor.

}  // namespace sateda
