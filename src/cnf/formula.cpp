#include "cnf/formula.hpp"

#include <cassert>

namespace sateda {

std::size_t CnfFormula::num_literals() const {
  std::size_t n = 0;
  for (const Clause& c : clauses_) n += c.size();
  return n;
}

void CnfFormula::add_clause(Clause c) {
  for (Lit l : c) {
    assert(l.is_defined());
    ensure_var(l.var());
  }
  clauses_.push_back(std::move(c));
}

void CnfFormula::append(const CnfFormula& other) {
  ensure_var(other.num_vars() - 1);
  for (const Clause& c : other.clauses_) clauses_.push_back(c);
}

lbool CnfFormula::evaluate(const std::vector<lbool>& assignment) const {
  bool any_undef = false;
  for (const Clause& c : clauses_) {
    bool sat = false;
    bool undef = false;
    for (Lit l : c) {
      lbool v = static_cast<std::size_t>(l.var()) < assignment.size()
                    ? assignment[l.var()]
                    : l_undef;
      if ((v ^ l.negative()).is_true()) {
        sat = true;
        break;
      }
      if (v.is_undef()) undef = true;
    }
    if (sat) continue;
    if (!undef) return l_false;
    any_undef = true;
  }
  return any_undef ? l_undef : l_true;
}

bool CnfFormula::is_satisfied_by(const std::vector<bool>& assignment) const {
  for (const Clause& c : clauses_) {
    bool sat = false;
    for (Lit l : c) {
      bool v = assignment[l.var()];
      if (v != l.negative()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::size_t CnfFormula::normalize() {
  std::size_t removed = 0;
  std::vector<Clause> kept;
  kept.reserve(clauses_.size());
  for (Clause& c : clauses_) {
    if (c.normalize()) {
      kept.push_back(std::move(c));
    } else {
      ++removed;
    }
  }
  clauses_ = std::move(kept);
  return removed;
}

std::string CnfFormula::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (i) s += " · ";
    s += sateda::to_string(clauses_[i]);
  }
  return s;
}

}  // namespace sateda
